//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no network access, so this crate provides just enough
//! surface for the workspace to compile: the [`Serialize`] / [`Deserialize`] marker
//! traits (blanket-implemented, since nothing in the workspace serializes yet) and the
//! derive macros re-exported from the vendored `serde_derive`, which expand to
//! nothing.  Swapping in the real `serde` later requires no source changes outside the
//! manifests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}

pub use serde_derive::{Deserialize, Serialize};
