//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the API subset used by `crates/bench/benches/micro.rs`: named benchmark
//! functions, batched iteration, benchmark groups with a sample-size knob, and the
//! `criterion_group!` / `criterion_main!` macros.  Measurement is a simple
//! median-of-samples wall clock — no statistical analysis, no plots — but the numbers
//! are stable enough to compare hot paths against each other on one machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` like with the real crate.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How batched inputs are sized (accepted for API compatibility; the stand-in always
/// regenerates the input per iteration).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration setup.
    SmallInput,
    /// Large per-iteration setup.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Per-benchmark measurement driver handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    samples: usize,
    iters_per_sample: u64,
    result: Option<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            iters_per_sample: 0,
            result: None,
        }
    }

    /// Measures a routine: runs it repeatedly and records the median per-iteration
    /// time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Calibrate the per-sample iteration count to ~2 ms so cheap routines are
        // measured above timer resolution.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(4);
        }
        self.iters_per_sample = iters;
        let mut samples: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    std_black_box(routine());
                }
                start.elapsed() / iters as u32
            })
            .collect();
        samples.sort_unstable();
        self.result = Some(samples[samples.len() / 2]);
    }

    /// Measures a routine that consumes a fresh input per iteration.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        self.iter(|| routine(setup()));
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 15 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        match bencher.result {
            Some(median) => println!(
                "bench {name:<44} {:>12}   ({} iters/sample, {} samples)",
                fmt_duration(median),
                bencher.iters_per_sample,
                self.sample_size
            ),
            None => println!("bench {name:<44} (no measurement)"),
        }
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let saved = self.criterion.sample_size;
        if let Some(n) = self.sample_size {
            self.criterion.sample_size = n;
        }
        self.criterion.bench_function(name, f);
        self.criterion.sample_size = saved;
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion { sample_size: 3 };
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion { sample_size: 3 };
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_function("inner", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
