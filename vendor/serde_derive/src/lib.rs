//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public config and model
//! types so that a future build against real `serde` needs no source changes, but no
//! code in the workspace currently serializes anything.  These derives therefore
//! expand to nothing: the marker traits in the vendored `serde` stub are blanket- or
//! never-implemented as needed, and the derive exists purely so the attribute
//! positions keep compiling.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
