//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Supports the subset this workspace's property tests use: range and tuple
//! strategies, `collection::vec`, `prop_map` / `prop_flat_map`, the `proptest!` macro
//! with an optional `proptest_config` attribute, and `prop_assert!` /
//! `prop_assert_eq!`.  Cases are generated from a seed derived from the test name, so
//! runs are deterministic; there is **no shrinking** — a failing case reports its
//! inputs via `Debug` and stops.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;

/// Re-export used by generated code and strategy implementations.
pub use rand::{Rng, RngCore, SeedableRng};

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Mapped<Self, F>
    where
        Self: Sized,
    {
        Mapped { inner: self, f }
    }

    /// Generates a value, builds a dependent strategy from it, and samples that.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMapped<Self, F>
    where
        Self: Sized,
    {
        FlatMapped { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Mapped<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Mapped<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMapped<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMapped<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        let seed = self.inner.generate(rng);
        (self.f)(seed).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Lengths accepted by [`fn@vec`]: a fixed size or a half-open range.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            if self.start >= self.end {
                self.start
            } else {
                rng.random_range(self.clone())
            }
        }
    }

    /// Strategy producing a `Vec` of values from an element strategy.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Builds a vector strategy from an element strategy and a length (range).
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// Number of cases to run per property (the only knob this stand-in honours).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts inside a `proptest!` body; failure reports the case instead of panicking
/// through the generator loop.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {l:?}\n right: {r:?}",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {} ({})\n  left: {l:?}\n right: {r:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)*)
            ));
        }
    }};
}

/// Declares property tests: each runs `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($config) $($rest)*);
    };
    (@expand ($config:expr) $(#[test] fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config = $config;
                // Deterministic seed per test, stable across runs and platforms.
                let seed = stringify!($name)
                    .bytes()
                    .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
                    });
                let mut rng = $crate::__rng_from_seed(seed);
                for case in 0..config.cases {
                    let result: Result<(), String> = (|| {
                        let ($($pat,)+) = ($($crate::Strategy::generate(&($strategy), &mut rng),)+);
                        $body
                        Ok(())
                    })();
                    if let Err(message) = result {
                        panic!("property {} failed on case {case}: {message}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Internal: builds the per-test generator (used by the `proptest!` expansion).
#[doc(hidden)]
pub fn __rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vecs_generate_in_bounds(
            n in 4usize..28,
            pairs in collection::vec((0u32..30, 0u32..30), 0..40),
        ) {
            prop_assert!((4..28).contains(&n));
            prop_assert!(pairs.len() < 40);
            for &(a, b) in &pairs {
                prop_assert!(a < 30 && b < 30, "pair ({a}, {b}) out of bounds");
            }
        }

        #[test]
        fn flat_map_threads_dependencies((n, xs) in (1usize..10).prop_flat_map(|n| {
            ((n..n + 1), collection::vec(0..n, 3))
        })) {
            prop_assert!(xs.iter().all(|&x| x < n));
            prop_assert_eq!(xs.len(), 3);
        }
    }

    #[test]
    fn determinism_across_invocations() {
        use crate::Strategy;
        let strat = crate::collection::vec(0u32..1000, 10);
        let a = strat.generate(&mut crate::__rng_from_seed(1));
        let b = strat.generate(&mut crate::__rng_from_seed(1));
        assert_eq!(a, b);
    }
}
