//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this reproduction has no network access, so the workspace
//! vendors the small API subset it actually uses instead of pulling the real crate:
//!
//! * [`rngs::StdRng`] — a deterministic 64-bit generator (SplitMix64 stream),
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng`] / [`RngExt`] — `random`, `random_bool`, `random_range`,
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! The generator is *not* the real `StdRng` (ChaCha12): sequences differ from upstream
//! `rand`, but every consumer in this workspace only relies on determinism under a
//! fixed seed, which SplitMix64 provides with excellent statistical quality for the
//! non-cryptographic uses here (pivot selection, shuffling, edge sampling).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of 64-bit randomness.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

    #[inline]
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The workspace's standard deterministic generator: a SplitMix64 stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(GOLDEN_GAMMA);
            mix(self.state)
        }
    }

    impl SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix so that nearby seeds start in distant states.
            StdRng {
                state: mix(seed ^ GOLDEN_GAMMA),
            }
        }
    }
}

/// Types that can be sampled uniformly from their full range by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Draws one value uniformly from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, u16, u8);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-sampleable type (e.g. `f64` in `[0, 1)`).
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Samples uniformly from a (non-empty) range.
    #[inline]
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Alias of [`Rng`] kept so `use rand::RngExt` compiles against this stand-in exactly
/// as it does against `rand` 0.9.
pub use Rng as RngExt;

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Shuffles the slice in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        /// Uniformly random element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.random_range(5..=5usize);
            assert_eq!(y, 5);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle should not be the identity"
        );
    }
}
