//! Offline stand-in for [`rayon`](https://crates.io/crates/rayon).
//!
//! The build environment has no network access, so this crate implements the small
//! fork-join subset the SLUGGER pipeline needs on top of `std::thread::scope`:
//!
//! * [`scope`] — structured task spawning; all spawned tasks are joined before the
//!   scope returns.  Unlike real rayon, [`Scope::spawn`] returns a join handle so the
//!   caller can collect results in order without side channels.
//! * [`join`] — two-way fork-join.
//! * [`current_num_threads`] — the machine's available parallelism.
//!
//! There is no work-stealing pool: each spawned task gets an OS thread.  The SLUGGER
//! pipeline bounds the number of in-flight tasks itself (one per worker, workers ≤
//! shards ≤ a small constant), so thread creation cost is amortized over whole-shard
//! workloads and the scheduling behaviour is equivalent for its purposes.

#![warn(missing_docs)]

use std::thread;

/// Handle to a task spawned inside a [`scope`]; joining yields the task's result.
pub struct ScopedJoinHandle<'scope, T>(thread::ScopedJoinHandle<'scope, T>);

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the task and returns its result, propagating panics.
    pub fn join(self) -> T {
        match self.0.join() {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

/// A scope in which tasks can be spawned that borrow from the enclosing stack frame.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task on a fresh thread; the scope joins it before returning.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedJoinHandle(self.inner.spawn(f))
    }
}

/// Creates a scope for spawning borrowing tasks; returns once every task finished.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    thread::scope(|s| f(&Scope { inner: s }))
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// Number of threads the machine can run concurrently (≥ 1).
pub fn current_num_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_joins_in_order() {
        let data: Vec<u64> = (0..64).collect();
        let sums: Vec<u64> = scope(|s| {
            let handles: Vec<_> = data
                .chunks(16)
                .map(|chunk| s.spawn(move || chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });
        assert_eq!(sums.iter().sum::<u64>(), (0..64).sum::<u64>());
        assert_eq!(sums.len(), 4);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn num_threads_positive() {
        assert!(current_num_threads() >= 1);
    }
}
