//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Nothing in the workspace serializes JSON yet; this crate exists so manifests and
//! imports are already wired for the day real `serde`/`serde_json` become available.
//! [`to_string`] renders through `Debug` — good enough for logs and reports, not a
//! JSON codec.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Error type of the stand-in (never produced today).
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Renders a value through its `Debug` representation.
///
/// Real `serde_json::to_string` bounds on `Serialize`; the vendored `serde` stub
/// blanket-implements that trait, so the extra `Debug` bound here is the only
/// difference callers could observe.
pub fn to_string<T: std::fmt::Debug + serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(format!("{value:?}"))
}

#[cfg(test)]
mod tests {
    #[test]
    fn debug_rendering_roundtrips() {
        assert_eq!(super::to_string(&vec![1, 2, 3]).unwrap(), "[1, 2, 3]");
    }
}
