//! Offline stand-in for [`bytes`](https://crates.io/crates/bytes).
//!
//! Provides the subset `slugger-core::storage` uses: an append-only [`BytesMut`]
//! builder, a cheaply cloneable read cursor [`Bytes`], and the [`Buf`] / [`BufMut`]
//! marker names.  The reading methods live inherently on [`Bytes`] (the real crate
//! defines them on the `Buf` trait), so `use bytes::Buf` keeps compiling either way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

/// Marker stand-in for the `bytes::Buf` trait (methods are inherent on [`Bytes`]).
pub trait Buf {}
impl Buf for Bytes {}

/// Marker stand-in for the `bytes::BufMut` trait (methods are inherent on
/// [`BytesMut`]).
pub trait BufMut {}
impl BufMut for BytesMut {}

/// An immutable, cheaply cloneable byte buffer with a consuming read cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
}

impl Bytes {
    /// Bytes remaining ahead of the cursor.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.data.len() - self.start
    }

    /// Whether any bytes remain.
    #[inline]
    pub fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Total remaining length (alias of [`Bytes::remaining`], mirroring `len()` on the
    /// real type before any reads).
    #[inline]
    pub fn len(&self) -> usize {
        self.remaining()
    }

    /// Whether the buffer is exhausted.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads one byte, advancing the cursor. Panics when exhausted.
    #[inline]
    pub fn get_u8(&mut self) -> u8 {
        let b = self.data[self.start];
        self.start += 1;
        b
    }

    /// Fills `dst` from the cursor, advancing it. Panics on underflow.
    pub fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

impl Bytes {
    /// Buffer viewing a static byte string.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Buffer owning a copy of `bytes`.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: data.into(),
            start: 0,
        }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// An append-only byte builder that freezes into [`Bytes`].
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty builder with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Appends one byte.
    #[inline]
    pub fn put_u8(&mut self, byte: u8) {
        self.data.push(byte);
    }

    /// Appends a slice.
    #[inline]
    pub fn put_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_cursor() {
        let mut b = BytesMut::with_capacity(8);
        b.put_slice(b"SLGR");
        b.put_u8(7);
        assert_eq!(b.len(), 5);
        let mut bytes = b.freeze();
        let clone = bytes.clone();
        let mut magic = [0u8; 4];
        bytes.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"SLGR");
        assert_eq!(bytes.get_u8(), 7);
        assert!(!bytes.has_remaining());
        assert_eq!(clone.remaining(), 5, "clones keep their own cursor");
        assert_eq!(&clone[..2], b"SL");
    }
}
