//! Cross-crate integration: every summarization algorithm (SLUGGER and the four
//! baselines) must be lossless on the same inputs, and their relative ordering on
//! structured graphs must match the paper's qualitative findings (SLUGGER most concise;
//! SAGS cheapest but least concise).

use slugger::baselines::{
    mosso_summarize, randomized_summarize, sags_summarize, sweg_summarize, MossoConfig,
    RandomizedConfig, SagsConfig, SwegConfig,
};
use slugger::core::decode::verify_lossless;
use slugger::datasets::{small_registry, DatasetKey};
use slugger::prelude::*;

const TEST_SCALE: f64 = 0.12;
const ITERATIONS: usize = 6;

fn slugger_relative(graph: &Graph, seed: u64) -> f64 {
    let outcome = Slugger::new(SluggerConfig {
        iterations: ITERATIONS,
        seed,
        ..SluggerConfig::default()
    })
    .summarize(graph);
    verify_lossless(&outcome.summary, graph).expect("slugger lossless");
    outcome.metrics.relative_size
}

#[test]
fn all_algorithms_are_lossless_on_the_small_registry() {
    for spec in small_registry() {
        let graph = spec.generate(TEST_SCALE);
        let sweg = sweg_summarize(
            &graph,
            &SwegConfig {
                iterations: ITERATIONS,
                max_group_size: 128,
                seed: 3,
                ..SwegConfig::default()
            },
        );
        sweg.verify_lossless(&graph)
            .unwrap_or_else(|e| panic!("SWeG not lossless on {}: {e}", spec.key));
        let randomized = randomized_summarize(&graph, &RandomizedConfig::default());
        randomized
            .verify_lossless(&graph)
            .unwrap_or_else(|e| panic!("Randomized not lossless on {}: {e}", spec.key));
        let sags = sags_summarize(&graph, &SagsConfig::default());
        sags.verify_lossless(&graph)
            .unwrap_or_else(|e| panic!("SAGS not lossless on {}: {e}", spec.key));
        let mosso = mosso_summarize(&graph, &MossoConfig::default());
        mosso
            .verify_lossless(&graph)
            .unwrap_or_else(|e| panic!("MoSSo not lossless on {}: {e}", spec.key));
        let _ = slugger_relative(&graph, 1);
    }
}

#[test]
fn slugger_beats_or_matches_sweg_on_hierarchical_graphs() {
    // The protein and Facebook stand-ins have the nested structure the hierarchical
    // model is designed for: SLUGGER must not lose to the strongest flat baseline.
    // (At these test scales and iteration counts the two can come out within a few
    // percent of each other — the full-scale comparison is the Fig. 5 harness — so a
    // small tolerance is allowed here.)
    for key in [DatasetKey::PR, DatasetKey::FA] {
        let spec = small_registry()
            .into_iter()
            .find(|d| d.key == key)
            .expect("dataset in small registry");
        let graph = spec.generate(0.3);
        let slugger = {
            let outcome = Slugger::new(SluggerConfig {
                iterations: 10,
                seed: 7,
                ..SluggerConfig::default()
            })
            .summarize(&graph);
            verify_lossless(&outcome.summary, &graph).expect("slugger lossless");
            outcome.metrics.relative_size
        };
        let sweg = sweg_summarize(
            &graph,
            &SwegConfig {
                iterations: 10,
                max_group_size: 128,
                seed: 7,
                ..SwegConfig::default()
            },
        )
        .relative_size();
        assert!(
            slugger <= sweg * 1.05,
            "{key}: SLUGGER {slugger:.3} should not be clearly worse than SWeG {sweg:.3}"
        );
    }
}

#[test]
fn sags_is_least_concise_on_structured_graphs() {
    let spec = small_registry()
        .into_iter()
        .find(|d| d.key == DatasetKey::PR)
        .unwrap();
    let graph = spec.generate(0.3);
    let slugger = slugger_relative(&graph, 5);
    let sags = sags_summarize(&graph, &SagsConfig::default()).relative_size();
    assert!(
        sags >= slugger,
        "SAGS ({sags:.3}) is expected to be no more concise than SLUGGER ({slugger:.3})"
    );
}

#[test]
fn every_algorithm_output_is_at_most_slightly_above_the_trivial_encoding() {
    let spec = small_registry()
        .into_iter()
        .find(|d| d.key == DatasetKey::CA)
        .unwrap();
    let graph = spec.generate(TEST_SCALE);
    let results = [
        slugger_relative(&graph, 2),
        sweg_summarize(
            &graph,
            &SwegConfig {
                iterations: ITERATIONS,
                max_group_size: 128,
                seed: 2,
                ..SwegConfig::default()
            },
        )
        .relative_size(),
        randomized_summarize(&graph, &RandomizedConfig::default()).relative_size(),
        sags_summarize(&graph, &SagsConfig::default()).relative_size(),
        mosso_summarize(&graph, &MossoConfig::default()).relative_size(),
    ];
    for (i, r) in results.iter().enumerate() {
        // The flat metric charges |H*| membership edges, so a baseline can exceed 1.0
        // slightly on hard-to-compress graphs (the paper's own Fig. 5 shows the same);
        // anything beyond ~1.6 would indicate a bug.
        assert!(*r <= 1.6, "algorithm #{i} produced relative size {r}");
    }
}
