//! Property tests on the two representation models themselves (independent of any
//! particular summarization algorithm): the hierarchical model's structural invariants
//! under merging/pruning, and the flat model's optimal-encoding correctness.

use proptest::prelude::*;
use slugger::baselines::{FlatSummary, Grouping};
use slugger::core::decode::{decode_full, verify_lossless};
use slugger::core::prune::{prune_step1, prune_step2, prune_step3, DEFAULT_MAX_PAIR_PRODUCT};
use slugger::core::{EdgeSign, HierarchicalSummary};
use slugger::prelude::*;

/// Strategy: a random graph together with a random *valid* merge sequence and a random
/// assignment of p/n edges that encodes it exactly by construction (start from the
/// identity encoding, then randomly merge roots — the identity p-edges stay attached to
/// leaves, so the encoding remains exact regardless of the merges).
fn graph_and_merges() -> impl Strategy<Value = (Graph, Vec<(u32, u32)>)> {
    (4usize..28).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..60)
            .prop_map(move |e| Graph::from_edges(n, e));
        let merges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..n / 2);
        (edges, merges)
    })
}

/// Builds the identity summary of `graph` and applies the requested merges (skipping
/// the ones that are no longer valid because an endpoint stopped being a root).
fn build_summary(graph: &Graph, merges: &[(u32, u32)]) -> HierarchicalSummary {
    let mut summary = HierarchicalSummary::identity(graph.num_nodes());
    for (u, v) in graph.edges() {
        summary.set_edge(u, v, EdgeSign::Positive);
    }
    for &(a, b) in merges {
        let ra = summary.root_of(a.min(graph.num_nodes() as u32 - 1));
        let rb = summary.root_of(b.min(graph.num_nodes() as u32 - 1));
        if ra != rb && summary.is_root(ra) && summary.is_root(rb) {
            summary.merge_roots(ra, rb);
        }
    }
    summary
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn leaf_level_encoding_survives_arbitrary_merges((graph, merges) in graph_and_merges()) {
        let summary = build_summary(&graph, &merges);
        prop_assert!(summary.validate().is_ok());
        prop_assert!(verify_lossless(&summary, &graph).is_ok());
    }

    #[test]
    fn pruning_substeps_never_change_the_decoded_graph((graph, merges) in graph_and_merges()) {
        let mut summary = build_summary(&graph, &merges);
        let before = decode_full(&summary);
        prune_step1(&mut summary);
        prop_assert_eq!(decode_full(&summary).edge_set(), before.edge_set());
        prune_step2(&mut summary);
        prop_assert_eq!(decode_full(&summary).edge_set(), before.edge_set());
        prune_step3(&mut summary, &graph, DEFAULT_MAX_PAIR_PRODUCT);
        prop_assert_eq!(decode_full(&summary).edge_set(), before.edge_set());
        prop_assert!(summary.validate().is_ok());
    }

    #[test]
    fn pruning_substeps_never_increase_the_cost((graph, merges) in graph_and_merges()) {
        let mut summary = build_summary(&graph, &merges);
        let c0 = summary.encoding_cost();
        prune_step1(&mut summary);
        let c1 = summary.encoding_cost();
        prune_step2(&mut summary);
        let c2 = summary.encoding_cost();
        prune_step3(&mut summary, &graph, DEFAULT_MAX_PAIR_PRODUCT);
        let c3 = summary.encoding_cost();
        prop_assert!(c1 <= c0 && c2 <= c1 && c3 <= c2, "costs {c0} -> {c1} -> {c2} -> {c3}");
    }

    #[test]
    fn flat_optimal_encoding_is_lossless_for_any_grouping(
        n in 3usize..30,
        edges in proptest::collection::vec((0u32..30, 0u32..30), 0..80),
        groups in proptest::collection::vec(0u32..6, 30),
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .collect();
        let graph = Graph::from_edges(n, edges);
        let assignment: Vec<u32> = (0..n).map(|u| groups[u] % n as u32).collect();
        let grouping = Grouping::from_assignment(assignment);
        grouping.validate().unwrap();
        let summary = FlatSummary::build(&graph, grouping);
        prop_assert!(summary.verify_lossless(&graph).is_ok());
        // The optimal encoding can never cost more than listing every edge.
        prop_assert!(summary.encoding.edge_cost() <= graph.num_edges());
    }
}

#[test]
fn hierarchical_model_expresses_flat_model_outputs() {
    // Sect. II-B: the flat model is a special case of the hierarchical one.  Encode a
    // graph flat, then transcribe the encoding into a HierarchicalSummary and check it
    // represents the same graph with the same number of p/n edges.
    let graph = Graph::from_edges(6, vec![(0, 2), (0, 3), (1, 2), (1, 3), (4, 5), (0, 1)]);
    let grouping = Grouping::from_assignment(vec![0, 0, 2, 2, 4, 5]);
    let flat = FlatSummary::build(&graph, grouping);

    let mut hier = HierarchicalSummary::identity(6);
    // Supernodes {0,1} and {2,3} become internal supernodes; 4 and 5 stay singletons.
    let s01 = hier.merge_roots(0, 1);
    let s23 = hier.merge_roots(2, 3);
    let map_group = |g: u32| match g {
        0 => s01,
        2 => s23,
        other => other,
    };
    for &(a, b) in &flat.encoding.p {
        hier.set_edge(map_group(a), map_group(b), EdgeSign::Positive);
    }
    for &(u, v) in &flat.encoding.c_plus {
        hier.set_edge(u, v, EdgeSign::Positive);
    }
    for &(u, v) in &flat.encoding.c_minus {
        hier.set_edge(u, v, EdgeSign::Negative);
    }
    verify_lossless(&hier, &graph).unwrap();
    assert_eq!(
        hier.num_p_edges() + hier.num_n_edges(),
        flat.encoding.edge_cost()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn storage_roundtrip_preserves_summary_and_graph((graph, merges) in graph_and_merges()) {
        use slugger::core::storage::{decode_summary, encode_summary};
        let summary = build_summary(&graph, &merges);
        let bytes = encode_summary(&summary);
        let restored = decode_summary(&bytes).expect("decode");
        prop_assert!(restored.validate().is_ok());
        prop_assert_eq!(restored.num_p_edges(), summary.num_p_edges());
        prop_assert_eq!(restored.num_n_edges(), summary.num_n_edges());
        prop_assert_eq!(restored.num_h_edges(), summary.num_h_edges());
        prop_assert_eq!(decode_full(&restored).edge_set(), decode_full(&summary).edge_set());
    }

    #[test]
    fn edge_list_io_roundtrip(edges in proptest::collection::vec((0u32..50, 0u32..50), 0..150)) {
        use slugger::graph::io::{read_edge_list, write_edge_list};
        let graph = Graph::from_edges(50, edges);
        let mut buffer = Vec::new();
        write_edge_list(&graph, &mut buffer).unwrap();
        let restored = read_edge_list(buffer.as_slice()).unwrap();
        prop_assert_eq!(restored.edge_set(), graph.edge_set());
    }
}
