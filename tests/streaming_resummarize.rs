//! Cross-algorithm streaming integration: the incremental re-summarizer against
//! the full-rebuild baseline and MoSSo on the same fully dynamic edge streams.
//!
//! After **every** delta batch:
//!
//! * the incrementally maintained summary decodes **identically** to the current
//!   graph (the lossless invariant of `slugger_core::incremental`), i.e. exactly
//!   the graph a from-scratch run would be summarizing;
//! * its (pruned-snapshot) encoding cost stays within a fixed factor of a full
//!   SLUGGER rebuild on the current graph.
//!
//! The stream also round-trips through `storage` mid-way — persisting the summary
//! and resuming from the reloaded bytes must preserve the invariant — and MoSSo
//! consumes the identical `GraphDelta` batches as the flat-model streaming
//! baseline.

use slugger::baselines::{MossoConfig, MossoSummarizer};
use slugger::core::decode::decode_full;
use slugger::core::incremental::{IncrementalConfig, IncrementalSummarizer};
use slugger::core::storage::{read_summary, write_summary};
use slugger::graph::gen::{caveman, rmat, CavemanConfig, RmatConfig};
use slugger::graph::stream::{stream_batches, DynamicGraph, StreamConfig};
use slugger::prelude::*;

/// Cost factor the incremental summary must stay within, relative to a full
/// rebuild on the identical graph.  The incremental path only re-opens the dirty
/// region, so it can lag the global optimum a little — but staying within a
/// constant factor after ten churned batches is exactly what makes it usable.
const COST_FACTOR: f64 = 1.5;

fn rebuild_cost(graph: &Graph, seed: u64) -> usize {
    let outcome = Slugger::new(SluggerConfig {
        iterations: 5,
        seed,
        ..SluggerConfig::default()
    })
    .summarize(graph);
    outcome.metrics.cost
}

fn check_stream(name: &str, target: &Graph, stream_seed: u64) {
    let (initial, batches) = stream_batches(
        target,
        &StreamConfig {
            initial_fraction: 0.85,
            num_batches: 6,
            churn: 0.3,
            seed: stream_seed,
        },
    );
    let bootstrap = Slugger::new(SluggerConfig {
        iterations: 5,
        seed: 3,
        ..SluggerConfig::default()
    });
    let mut inc =
        IncrementalSummarizer::bootstrap(&initial, &bootstrap, IncrementalConfig::default());
    let mut mosso = MossoSummarizer::new(target.num_nodes(), MossoConfig::default());
    for (u, v) in initial.edges() {
        mosso.insert_edge(u, v);
    }
    let mut current = DynamicGraph::from_graph(&initial);

    for (i, delta) in batches.iter().enumerate() {
        delta.apply_to(&mut current);
        inc.resummarize(delta);
        mosso.apply_delta(delta);

        // Decode-identity: the maintained summary represents exactly the graph a
        // from-scratch run would see right now.
        let graph_now = current.to_graph();
        assert_eq!(
            decode_full(inc.summary()).edge_set(),
            graph_now.edge_set(),
            "{name}: incremental summary diverged from the stream after batch {i}"
        );
        inc.summary()
            .validate()
            .unwrap_or_else(|e| panic!("{name}: invalid summary after batch {i}: {e}"));

        // Cost competitiveness (pruned snapshot vs pruned full rebuild).
        let (pruned, _) = inc.pruned_summary(2);
        let rebuilt = rebuild_cost(&graph_now, 3);
        assert!(
            (pruned.encoding_cost() as f64) <= (rebuilt as f64) * COST_FACTOR + 8.0,
            "{name}: batch {i}: incremental cost {} exceeds {COST_FACTOR}x the \
             rebuild cost {rebuilt}",
            pruned.encoding_cost()
        );

        // Halfway through, persist the maintained summary and resume from the
        // reloaded bytes: the invariant must survive the storage round-trip.
        if i == batches.len() / 2 {
            let mut buffer = Vec::new();
            write_summary(inc.summary(), &mut buffer).unwrap();
            let restored = read_summary(&buffer[..]).unwrap();
            inc = IncrementalSummarizer::from_summary(
                restored,
                &graph_now,
                IncrementalConfig::default(),
            )
            .unwrap();
            inc.verify_lossless()
                .unwrap_or_else(|e| panic!("{name}: reloaded summary not lossless: {e}"));
        }
    }

    // The stream converged to the target; so must every maintained state.
    assert_eq!(decode_full(inc.summary()).edge_set(), target.edge_set());
    let (mosso_summary, mosso_graph) = mosso.finalize();
    assert_eq!(mosso_graph.edge_set(), target.edge_set());
    mosso_summary
        .verify_lossless(&mosso_graph)
        .unwrap_or_else(|e| panic!("{name}: MoSSo lost the stream: {e}"));
}

#[test]
fn caveman_stream_decodes_identically_after_every_batch() {
    let target = caveman(&CavemanConfig {
        num_nodes: 400,
        num_cliques: 50,
        min_clique: 5,
        max_clique: 9,
        rewire_probability: 0.02,
        seed: 31,
    });
    check_stream("caveman", &target, 11);
}

#[test]
fn rmat_stream_decodes_identically_after_every_batch() {
    let target = rmat(&RmatConfig {
        scale: 10,
        num_edges: 7_000,
        seed: 9,
        ..RmatConfig::default()
    });
    check_stream("rmat", &target, 17);
}
