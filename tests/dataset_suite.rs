//! Integration of the dataset registry with the summarizers: every one of the 16
//! stand-ins must generate, validate, and summarize losslessly (at a tiny scale so the
//! whole suite stays fast under `cargo test`).

use slugger::core::decode::verify_lossless;
use slugger::datasets::{registry, DatasetKey, Domain};
use slugger::prelude::*;

#[test]
fn all_sixteen_standins_generate_and_summarize_losslessly() {
    for spec in registry() {
        let graph = spec.generate(0.05);
        graph
            .validate()
            .unwrap_or_else(|e| panic!("{} generated an invalid graph: {e}", spec.key));
        assert!(graph.num_edges() > 0, "{} has no edges", spec.key);
        let outcome = Slugger::new(SluggerConfig {
            iterations: 3,
            max_candidate_size: 64,
            seed: 9,
            ..SluggerConfig::default()
        })
        .summarize(&graph);
        verify_lossless(&outcome.summary, &graph)
            .unwrap_or_else(|e| panic!("{} not lossless: {e}", spec.key));
        assert!(outcome.metrics.cost <= graph.num_edges());
    }
}

#[test]
fn registry_metadata_is_consistent_with_the_paper() {
    let reg = registry();
    assert_eq!(reg.len(), 16);
    // Spot-check Table II numbers and domains.
    let by_key = |k: DatasetKey| reg.iter().find(|d| d.key == k).unwrap();
    assert_eq!(by_key(DatasetKey::CA).paper_nodes, 26_475);
    assert_eq!(by_key(DatasetKey::FA).paper_edges, 88_234);
    assert_eq!(by_key(DatasetKey::HO).domain, Domain::Collaboration);
    assert_eq!(by_key(DatasetKey::U5).paper_edges, 783_027_125);
    // Ordered by paper edge count (Table II lists them smallest to largest).
    let edges: Vec<usize> = reg.iter().map(|d| d.paper_edges).collect();
    let mut sorted = edges.clone();
    sorted.sort_unstable();
    assert_eq!(edges, sorted);
}

#[test]
fn scaling_up_produces_more_edges() {
    let spec = registry()
        .into_iter()
        .find(|d| d.key == DatasetKey::DB)
        .unwrap();
    let small = spec.generate(0.05);
    let larger = spec.generate(0.2);
    assert!(larger.num_edges() > small.num_edges());
    assert!(larger.num_nodes() > small.num_nodes());
}

#[test]
fn hyperlink_standins_compress_better_than_random_social_standins() {
    // The paper's hyperlink graphs are by far the most compressible; our RMAT
    // stand-ins should preserve that ordering against the BA-based Youtube stand-in.
    let config = SluggerConfig {
        iterations: 5,
        seed: 4,
        ..SluggerConfig::default()
    };
    let reg = registry();
    let cn = reg
        .iter()
        .find(|d| d.key == DatasetKey::CN)
        .unwrap()
        .generate(0.15);
    let yo = reg
        .iter()
        .find(|d| d.key == DatasetKey::YO)
        .unwrap()
        .generate(0.15);
    let cn_size = Slugger::new(config).summarize(&cn).metrics.relative_size;
    let yo_size = Slugger::new(config).summarize(&yo).metrics.relative_size;
    assert!(
        cn_size < yo_size,
        "hyperlink stand-in ({cn_size:.3}) should compress better than the BA stand-in ({yo_size:.3})"
    );
}
