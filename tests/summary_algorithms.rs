//! Integration of `slugger-algos` with `slugger-core`: every algorithm must return the
//! same answer when run on the compressed summary (through partial decompression) as on
//! the raw graph — the property behind the paper's Sect. VIII-C experiments.

use slugger::algos::{
    bfs_distances, bfs_order, count_triangles, dfs_order, dijkstra, pagerank, PageRankConfig,
};
use slugger::core::decode::SummaryNeighborView;
use slugger::datasets::{dataset, DatasetKey};
use slugger::graph::gen::{caveman, CavemanConfig};
use slugger::prelude::*;

fn summarize(graph: &Graph) -> SluggerOutcome {
    Slugger::new(SluggerConfig {
        iterations: 6,
        seed: 11,
        ..SluggerConfig::default()
    })
    .summarize(graph)
}

#[test]
fn traversals_agree_between_raw_and_summary() {
    let graph = caveman(&CavemanConfig {
        num_nodes: 150,
        num_cliques: 22,
        ..CavemanConfig::default()
    });
    let outcome = summarize(&graph);
    let view = SummaryNeighborView::new(&outcome.summary);
    for start in [0u32, 17, 90] {
        let mut raw_bfs = bfs_order(&graph, start);
        let mut sum_bfs = bfs_order(&view, start);
        raw_bfs.sort_unstable();
        sum_bfs.sort_unstable();
        assert_eq!(raw_bfs, sum_bfs, "BFS reachability from {start}");

        let mut raw_dfs = dfs_order(&graph, start);
        let mut sum_dfs = dfs_order(&view, start);
        raw_dfs.sort_unstable();
        sum_dfs.sort_unstable();
        assert_eq!(raw_dfs, sum_dfs, "DFS reachability from {start}");
    }
}

#[test]
fn distances_agree_between_raw_and_summary() {
    let graph = dataset(DatasetKey::CA).generate(0.1);
    let outcome = summarize(&graph);
    let view = SummaryNeighborView::new(&outcome.summary);
    let raw = bfs_distances(&graph, 0);
    let summary = bfs_distances(&view, 0);
    assert_eq!(raw, summary);

    let raw_w = dijkstra(&graph, 0, |_, _| 1.0);
    let summary_w = dijkstra(&view, 0, |_, _| 1.0);
    for (a, b) in raw_w.iter().zip(summary_w.iter()) {
        match (a, b) {
            (None, None) => {}
            (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9),
            other => panic!("distance mismatch: {other:?}"),
        }
    }
}

#[test]
fn pagerank_agrees_between_raw_and_summary() {
    let graph = dataset(DatasetKey::FA).generate(0.15);
    let outcome = summarize(&graph);
    let view = SummaryNeighborView::new(&outcome.summary);
    let cfg = PageRankConfig {
        iterations: 12,
        ..PageRankConfig::default()
    };
    let raw = pagerank(&graph, &cfg);
    let summary = pagerank(&view, &cfg);
    for (a, b) in raw.iter().zip(summary.iter()) {
        assert!((a - b).abs() < 1e-9, "pagerank mismatch {a} vs {b}");
    }
}

#[test]
fn triangle_counts_agree_between_raw_and_summary() {
    let graph = caveman(&CavemanConfig {
        num_nodes: 100,
        num_cliques: 16,
        min_clique: 4,
        max_clique: 7,
        rewire_probability: 0.03,
        seed: 2,
    });
    let outcome = summarize(&graph);
    let view = SummaryNeighborView::new(&outcome.summary);
    assert_eq!(count_triangles(&graph), count_triangles(&view));
}
