//! Workspace-level property tests: SLUGGER must be lossless on *every* graph, whatever
//! generator, seed, or configuration produced it, and partial decompression must agree
//! with full decompression.

use proptest::prelude::*;
use slugger::core::decode::{decode_full, neighbors_of, verify_lossless};
use slugger::graph::gen::{caveman, erdos_renyi, nested_sbm, CavemanConfig, NestedSbmConfig};
use slugger::prelude::*;

/// Strategy: a random simple graph built from an explicit edge list over `n ≤ 40`
/// nodes (arbitrary structure, including multi-component and isolated nodes).
fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_edges.min(120))
            .prop_map(move |edges| Graph::from_edges(n, edges))
    })
}

fn quick_slugger(seed: u64, iterations: usize) -> Slugger {
    Slugger::new(SluggerConfig {
        iterations,
        max_candidate_size: 32,
        max_shingle_splits: 3,
        seed,
        ..SluggerConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn slugger_is_lossless_on_arbitrary_graphs(graph in arbitrary_graph(), seed in 0u64..1000) {
        let outcome = quick_slugger(seed, 3).summarize(&graph);
        prop_assert!(verify_lossless(&outcome.summary, &graph).is_ok(),
            "lossless verification failed: {:?}", verify_lossless(&outcome.summary, &graph));
        prop_assert!(outcome.summary.validate().is_ok());
    }

    #[test]
    fn partial_decompression_matches_full_decode(graph in arbitrary_graph(), seed in 0u64..1000) {
        let outcome = quick_slugger(seed, 2).summarize(&graph);
        let decoded = decode_full(&outcome.summary);
        for v in 0..graph.num_nodes() as u32 {
            let partial = neighbors_of(&outcome.summary, v);
            prop_assert_eq!(partial, decoded.neighbors(v).to_vec(), "node {}", v);
        }
    }

    #[test]
    fn encoding_cost_never_exceeds_trivial_encoding(graph in arbitrary_graph(), seed in 0u64..1000) {
        // The identity summary costs exactly |E|; SLUGGER only merges when the saving
        // threshold is met, and pruning never increases the cost, so the final cost may
        // never exceed |E|.
        let outcome = quick_slugger(seed, 4).summarize(&graph);
        prop_assert!(outcome.metrics.cost <= graph.num_edges(),
            "cost {} exceeds |E| = {}", outcome.metrics.cost, graph.num_edges());
    }
}

#[test]
fn slugger_is_lossless_on_structured_generators() {
    let graphs = vec![
        caveman(&CavemanConfig {
            num_nodes: 180,
            num_cliques: 30,
            ..CavemanConfig::default()
        }),
        nested_sbm(&NestedSbmConfig {
            num_nodes: 220,
            levels: 2,
            branching: 4,
            base_probability: 0.004,
            level_boost: 14.0,
            seed: 5,
        }),
        erdos_renyi(150, 450, 9),
    ];
    for (i, graph) in graphs.into_iter().enumerate() {
        let outcome = Slugger::new(SluggerConfig {
            iterations: 6,
            seed: i as u64,
            ..SluggerConfig::default()
        })
        .summarize(&graph);
        verify_lossless(&outcome.summary, &graph)
            .unwrap_or_else(|e| panic!("generator {i} not lossless: {e}"));
        assert!(outcome.metrics.cost <= graph.num_edges());
    }
}

#[test]
fn repeated_runs_with_different_seeds_are_all_lossless() {
    let graph = caveman(&CavemanConfig {
        num_nodes: 120,
        num_cliques: 18,
        ..CavemanConfig::default()
    });
    for seed in 0..8u64 {
        let outcome = quick_slugger(seed, 5).summarize(&graph);
        verify_lossless(&outcome.summary, &graph).unwrap();
    }
}
