//! # slugger
//!
//! Facade crate of the SLUGGER reproduction (Lee, Ko, Shin, *SLUGGER: Lossless
//! Hierarchical Summarization of Massive Graphs*, ICDE 2022).  It re-exports the
//! workspace crates under one roof so applications can depend on a single crate:
//!
//! * [`graph`] — graph substrate, generators, sampling, I/O (`slugger-graph`).
//! * [`core`] — the hierarchical summarization model and the SLUGGER algorithm
//!   (`slugger-core`).
//! * [`baselines`] — Randomized, SWeG, SAGS, MoSSo on the flat model
//!   (`slugger-baselines`).
//! * [`algos`] — BFS/DFS/PageRank/Dijkstra/triangles over raw graphs or summaries
//!   (`slugger-algos`).
//! * [`datasets`] — synthetic stand-ins for the paper's 16 evaluation graphs
//!   (`slugger-datasets`).
//!
//! ```
//! use slugger::prelude::*;
//!
//! let graph = slugger::graph::gen::caveman(&Default::default());
//! let outcome = Slugger::with_defaults().summarize(&graph);
//! assert!(verify_lossless(&outcome.summary, &graph).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use slugger_algos as algos;
pub use slugger_baselines as baselines;
pub use slugger_core as core;
pub use slugger_datasets as datasets;
pub use slugger_graph as graph;

/// One-stop prelude for applications.
pub mod prelude {
    pub use slugger_baselines::prelude::*;
    pub use slugger_core::decode::{decode_full, neighbors_of, verify_lossless};
    pub use slugger_core::{Slugger, SluggerConfig, SluggerOutcome, SummaryMetrics};
    pub use slugger_graph::prelude::*;
}
