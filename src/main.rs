//! `slugger-cli` — command-line front end of the SLUGGER reproduction.
//!
//! ```text
//! slugger-cli summarize <edges.txt> [--output summary.slg] [--iterations 20] [--seed 0]
//! slugger-cli decode    <summary.slg> [--output edges.txt]
//! slugger-cli neighbors <summary.slg> <node> [<node> ...]
//! slugger-cli stats     <edges.txt>
//! slugger-cli generate  <DATASET-KEY> [--scale 1.0] [--output edges.txt]
//! ```
//!
//! Edge lists are whitespace-separated `u v` pairs (comments start with `#`); summaries
//! use the compact binary format of `slugger_core::storage`.

use slugger::core::decode::{decode_full, neighbors_of, verify_lossless};
use slugger::core::storage::{read_summary, write_summary};
use slugger::core::{Slugger, SluggerConfig};
use slugger::datasets::{registry, DatasetKey};
use slugger::graph::io::{read_edge_list_file, write_edge_list_file};
use slugger::graph::stats::graph_stats;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  slugger-cli summarize <edges.txt> [--output summary.slg] [--iterations N] [--seed S] [--height-bound H]
  slugger-cli decode    <summary.slg> [--output edges.txt]
  slugger-cli neighbors <summary.slg> <node> [<node> ...]
  slugger-cli stats     <edges.txt>
  slugger-cli generate  <DATASET-KEY> [--scale X] [--output edges.txt]
  slugger-cli datasets";

/// Dispatches a parsed command line. Returns a human-readable error on misuse.
fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("missing command".into());
    };
    let rest = &args[1..];
    match command.as_str() {
        "summarize" => cmd_summarize(rest),
        "decode" => cmd_decode(rest),
        "neighbors" => cmd_neighbors(rest),
        "stats" => cmd_stats(rest),
        "generate" => cmd_generate(rest),
        "datasets" => cmd_datasets(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Extracts `--flag value` from an argument list, returning the remaining positionals.
fn parse_flags(args: &[String]) -> (Vec<String>, std::collections::HashMap<String, String>) {
    let mut positionals = Vec::new();
    let mut flags = std::collections::HashMap::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let value = iter.next().cloned().unwrap_or_default();
            flags.insert(name.to_string(), value);
        } else {
            positionals.push(arg.clone());
        }
    }
    (positionals, flags)
}

fn parse_number<T: std::str::FromStr>(
    flags: &std::collections::HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("--{key} expects a number, got {raw:?}")),
    }
}

fn cmd_summarize(args: &[String]) -> Result<(), String> {
    let (positionals, flags) = parse_flags(args);
    let [input] = positionals.as_slice() else {
        return Err("summarize expects exactly one input edge list".into());
    };
    let iterations: usize = parse_number(&flags, "iterations", 20)?;
    let seed: u64 = parse_number(&flags, "seed", 0)?;
    let height_bound: usize = parse_number(&flags, "height-bound", 0)?;
    let graph = read_edge_list_file(input).map_err(|e| e.to_string())?;
    eprintln!(
        "read {}: {} nodes, {} edges",
        input,
        graph.num_nodes(),
        graph.num_edges()
    );
    let config = SluggerConfig {
        iterations,
        seed,
        height_bound: if height_bound == 0 {
            None
        } else {
            Some(height_bound)
        },
        ..SluggerConfig::default()
    };
    let outcome = Slugger::new(config).summarize(&graph);
    verify_lossless(&outcome.summary, &graph).map_err(|e| format!("internal error: {e}"))?;
    let m = &outcome.metrics;
    println!("p-edges          {}", m.p_edges);
    println!("n-edges          {}", m.n_edges);
    println!("h-edges          {}", m.h_edges);
    println!("total cost       {}", m.cost);
    println!("relative size    {:.4}", m.relative_size);
    println!(
        "supernodes       {} ({} roots)",
        m.num_supernodes, m.num_roots
    );
    println!("max tree height  {}", m.max_height);
    println!("avg leaf depth   {:.2}", m.avg_leaf_depth);
    println!("elapsed          {:.3}s", outcome.elapsed.as_secs_f64());
    if let Some(path) = flags.get("output") {
        let file = std::fs::File::create(path).map_err(|e| e.to_string())?;
        let written = write_summary(&outcome.summary, file).map_err(|e| e.to_string())?;
        println!("summary written to {path} ({written} bytes)");
    }
    Ok(())
}

fn cmd_decode(args: &[String]) -> Result<(), String> {
    let (positionals, flags) = parse_flags(args);
    let [input] = positionals.as_slice() else {
        return Err("decode expects exactly one summary file".into());
    };
    let file = std::fs::File::open(input).map_err(|e| e.to_string())?;
    let summary = read_summary(file).map_err(|e| e.to_string())?;
    let graph = decode_full(&summary);
    println!(
        "decoded {} supernodes back into {} nodes / {} edges",
        summary.num_supernodes(),
        graph.num_nodes(),
        graph.num_edges()
    );
    if let Some(path) = flags.get("output") {
        write_edge_list_file(&graph, path).map_err(|e| e.to_string())?;
        println!("edge list written to {path}");
    }
    Ok(())
}

fn cmd_neighbors(args: &[String]) -> Result<(), String> {
    let (positionals, _) = parse_flags(args);
    let (input, nodes) = positionals
        .split_first()
        .ok_or("neighbors expects a summary file and at least one node id")?;
    if nodes.is_empty() {
        return Err("neighbors expects at least one node id".into());
    }
    let file = std::fs::File::open(input).map_err(|e| e.to_string())?;
    let summary = read_summary(file).map_err(|e| e.to_string())?;
    for raw in nodes {
        let node: u32 = raw
            .parse()
            .map_err(|_| format!("node id {raw:?} is not a number"))?;
        if node as usize >= summary.num_subnodes() {
            return Err(format!(
                "node {node} out of range (summary has {} nodes)",
                summary.num_subnodes()
            ));
        }
        let neighbors = neighbors_of(&summary, node);
        println!("{node}: {} neighbors: {:?}", neighbors.len(), neighbors);
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let (positionals, _) = parse_flags(args);
    let [input] = positionals.as_slice() else {
        return Err("stats expects exactly one input edge list".into());
    };
    let graph = read_edge_list_file(input).map_err(|e| e.to_string())?;
    let stats = graph_stats(&graph);
    println!("nodes        {}", stats.num_nodes);
    println!("edges        {}", stats.num_edges);
    println!("max degree   {}", stats.max_degree);
    println!("avg degree   {:.2}", stats.avg_degree);
    println!("components   {}", stats.num_components);
    println!("isolated     {}", stats.num_isolated);
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let (positionals, flags) = parse_flags(args);
    let [key_raw] = positionals.as_slice() else {
        return Err("generate expects exactly one dataset key (see `slugger-cli datasets`)".into());
    };
    let key = DatasetKey::all()
        .into_iter()
        .find(|k| k.label().eq_ignore_ascii_case(key_raw))
        .ok_or_else(|| format!("unknown dataset key {key_raw:?}"))?;
    let scale: f64 = parse_number(&flags, "scale", 1.0)?;
    let spec = registry()
        .into_iter()
        .find(|d| d.key == key)
        .expect("key comes from the registry");
    let graph = spec.generate(scale);
    println!(
        "{} ({}): generated {} nodes / {} edges at scale {scale}",
        key,
        spec.paper_name,
        graph.num_nodes(),
        graph.num_edges()
    );
    if let Some(path) = flags.get("output") {
        write_edge_list_file(&graph, path).map_err(|e| e.to_string())?;
        println!("edge list written to {path}");
    }
    Ok(())
}

fn cmd_datasets() -> Result<(), String> {
    println!("available dataset stand-ins (original size in parentheses):");
    for spec in registry() {
        println!(
            "  {}  {:<12} {:>9} nodes, {:>11} edges in the paper",
            spec.key, spec.paper_name, spec.paper_nodes, spec.paper_edges
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(items: &[&str]) -> Vec<String> {
        items.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flag_parsing_splits_positionals_and_flags() {
        let (pos, flags) = parse_flags(&s(&["input.txt", "--iterations", "7", "--output", "x"]));
        assert_eq!(pos, vec!["input.txt"]);
        assert_eq!(flags.get("iterations").map(String::as_str), Some("7"));
        assert_eq!(flags.get("output").map(String::as_str), Some("x"));
    }

    #[test]
    fn numeric_flag_parsing_validates() {
        let (_, flags) = parse_flags(&s(&["--iterations", "abc"]));
        assert!(parse_number::<usize>(&flags, "iterations", 20).is_err());
        assert_eq!(parse_number::<usize>(&flags, "seed", 5).unwrap(), 5);
    }

    #[test]
    fn unknown_command_is_rejected() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn datasets_listing_and_help_succeed() {
        assert!(run(&s(&["datasets"])).is_ok());
        assert!(run(&s(&["help"])).is_ok());
    }

    #[test]
    fn end_to_end_summarize_decode_neighbors_via_temp_files() {
        use slugger::graph::gen::{caveman, CavemanConfig};
        let dir = std::env::temp_dir();
        let edges_path = dir.join("slugger_cli_test_edges.txt");
        let summary_path = dir.join("slugger_cli_test_summary.slg");
        let decoded_path = dir.join("slugger_cli_test_decoded.txt");
        let graph = caveman(&CavemanConfig {
            num_nodes: 60,
            num_cliques: 10,
            ..CavemanConfig::default()
        });
        slugger::graph::io::write_edge_list_file(&graph, &edges_path).unwrap();

        run(&s(&[
            "summarize",
            edges_path.to_str().unwrap(),
            "--iterations",
            "3",
            "--output",
            summary_path.to_str().unwrap(),
        ]))
        .unwrap();
        run(&s(&[
            "decode",
            summary_path.to_str().unwrap(),
            "--output",
            decoded_path.to_str().unwrap(),
        ]))
        .unwrap();
        run(&s(&["neighbors", summary_path.to_str().unwrap(), "0", "5"])).unwrap();
        run(&s(&["stats", edges_path.to_str().unwrap()])).unwrap();

        let decoded = slugger::graph::io::read_edge_list_file(&decoded_path).unwrap();
        assert_eq!(decoded.edge_set(), graph.edge_set());

        for p in [&edges_path, &summary_path, &decoded_path] {
            std::fs::remove_file(p).ok();
        }
    }
}
