//! Regression pins for the `GraphDelta` / `stream_batches` edge cases the
//! scenario churn programs exercise: empty batches, delete-and-re-insert of
//! one edge inside a single delta, operations touching ids that carry no edges
//! at all, and degenerate `stream_batches` configurations.  Each must be an
//! idempotent no-op (or exact round-trip) leaving the graph byte-identical to
//! the equivalent clean delta.

use slugger_graph::gen::{caveman, CavemanConfig};
use slugger_graph::stream::{stream_batches, StreamConfig};
use slugger_graph::{DynamicGraph, GraphDelta, NodeId};

fn seeded_graph() -> DynamicGraph {
    let g = caveman(&CavemanConfig {
        num_nodes: 120,
        num_cliques: 14,
        min_clique: 5,
        max_clique: 8,
        rewire_probability: 0.02,
        seed: 3,
    });
    DynamicGraph::from_graph(&g)
}

fn edges_of(g: &DynamicGraph) -> Vec<(NodeId, NodeId)> {
    g.edges().collect()
}

#[test]
fn empty_delta_is_a_no_op() {
    let mut g = seeded_graph();
    let before = edges_of(&g);
    let delta = GraphDelta::new();
    assert!(delta.is_empty());
    let (deleted, inserted) = delta.apply_to(&mut g);
    assert_eq!((deleted, inserted), (0, 0));
    assert_eq!(edges_of(&g), before);
}

#[test]
fn delete_and_reinsert_same_edge_in_one_delta_round_trips() {
    let mut g = seeded_graph();
    let edge = edges_of(&g)[0];
    let before = edges_of(&g);
    // Deletions apply first, then insertions: the edge must survive the batch,
    // however many times each side repeats.
    let delta = GraphDelta {
        deletions: vec![edge, edge, edge],
        insertions: vec![edge, edge],
    };
    let (deleted, inserted) = delta.apply_to(&mut g);
    assert_eq!(
        (deleted, inserted),
        (1, 1),
        "only the first of each applies"
    );
    assert_eq!(edges_of(&g), before, "net effect must be zero");
}

#[test]
fn operations_on_edge_free_ids_are_idempotent_no_ops() {
    // Nodes 100..120 exist in the universe but the caveman generator left some
    // of them isolated; operations touching isolated endpoints must behave
    // exactly like any other idempotent op.
    let mut g = seeded_graph();
    let isolated: Vec<NodeId> = (0..g.num_nodes() as NodeId)
        .filter(|&u| g.degree(u) == 0)
        .collect();
    assert!(
        isolated.len() >= 2,
        "test premise: the generator leaves isolated nodes"
    );
    let (a, b) = (isolated[0], isolated[1]);
    let before = edges_of(&g);

    // Deleting a never-present edge between isolated nodes: no-op.
    let delete_absent = GraphDelta {
        deletions: vec![(a, b), (b, a)],
        insertions: vec![],
    };
    assert_eq!(delete_absent.apply_to(&mut g), (0, 0));
    assert_eq!(edges_of(&g), before);

    // Insert, then delete it again across two batches: exact round-trip.
    let insert = GraphDelta::from_insertions(vec![(a, b)]);
    assert_eq!(insert.apply_to(&mut g), (0, 1));
    assert!(g.has_edge(a, b));
    let delete = GraphDelta {
        deletions: vec![(a, b)],
        insertions: vec![],
    };
    assert_eq!(delete.apply_to(&mut g), (1, 0));
    assert_eq!(
        edges_of(&g),
        before,
        "insert/delete must round-trip exactly"
    );
}

#[test]
fn noop_padded_delta_equals_its_clean_core() {
    let mut padded_graph = seeded_graph();
    let mut clean_graph = padded_graph.clone();
    let present = edges_of(&padded_graph)[3];
    let (a, b) = {
        let g = &padded_graph;
        let mut pair = (0, 1);
        'outer: for u in 0..g.num_nodes() as NodeId {
            for v in (u + 1)..g.num_nodes() as NodeId {
                if !g.has_edge(u, v) {
                    pair = (u, v);
                    break 'outer;
                }
            }
        }
        pair
    };
    // The clean core: insert one absent edge.
    let clean = GraphDelta::from_insertions(vec![(a, b)]);
    // The padded version: same core buried under every no-op shape.
    let padded = GraphDelta {
        deletions: vec![(a, b), present, (b, a)],
        insertions: vec![present, (a, b), (a, b), present],
    };
    clean.apply_to(&mut clean_graph);
    padded.apply_to(&mut padded_graph);
    assert_eq!(
        edges_of(&padded_graph),
        edges_of(&clean_graph),
        "no-op padding must not change the resulting graph"
    );
}

#[test]
fn stream_batches_tolerates_more_batches_than_edges() {
    let target = caveman(&CavemanConfig {
        num_nodes: 60,
        num_cliques: 8,
        ..CavemanConfig::default()
    });
    // Leave ~2 edges for 40 batches: most batches must be empty, and the
    // stream must still converge exactly.
    let (initial, batches) = stream_batches(
        &target,
        &StreamConfig {
            initial_fraction: 0.99,
            num_batches: 40,
            churn: 0.0,
            seed: 1,
        },
    );
    assert_eq!(batches.len(), 40);
    assert!(
        batches.iter().any(|b| b.is_empty()),
        "over-split streams must produce empty batches"
    );
    let mut current = DynamicGraph::from_graph(&initial);
    for delta in &batches {
        delta.apply_to(&mut current);
    }
    assert_eq!(current.to_graph().edge_set(), target.edge_set());
}

#[test]
fn stream_batches_with_full_initial_fraction_is_pure_churn() {
    let target = caveman(&CavemanConfig {
        num_nodes: 80,
        num_cliques: 10,
        ..CavemanConfig::default()
    });
    // Everything is in the snapshot; batches only churn (delete + re-insert).
    let (initial, batches) = stream_batches(
        &target,
        &StreamConfig {
            initial_fraction: 1.0,
            num_batches: 5,
            churn: 0.5,
            seed: 9,
        },
    );
    assert_eq!(initial.edge_set(), target.edge_set());
    assert!(
        batches.iter().any(|b| !b.deletions.is_empty()),
        "churn must still generate deletions"
    );
    let mut current = DynamicGraph::from_graph(&initial);
    for delta in &batches {
        delta.apply_to(&mut current);
    }
    assert_eq!(
        current.to_graph().edge_set(),
        target.edge_set(),
        "pure-churn streams must converge back to the target"
    );
}

#[test]
fn stream_batches_with_zero_initial_fraction_streams_everything() {
    let target = caveman(&CavemanConfig {
        num_nodes: 80,
        num_cliques: 10,
        ..CavemanConfig::default()
    });
    let (initial, batches) = stream_batches(
        &target,
        &StreamConfig {
            initial_fraction: 0.0,
            num_batches: 7,
            churn: 0.3,
            seed: 2,
        },
    );
    assert_eq!(initial.num_edges(), 0);
    let mut current = DynamicGraph::from_graph(&initial);
    for delta in &batches {
        delta.apply_to(&mut current);
    }
    assert_eq!(current.to_graph().edge_set(), target.edge_set());
}
