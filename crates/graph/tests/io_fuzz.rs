//! Fuzz-style robustness tests of the edge-list reader (`slugger_graph::io`),
//! mirroring the `read_summary` hardening: on *any* input — arbitrary byte soup,
//! near-miss numeric lines, oversized ids — `read_snap` must return `Ok` or a
//! typed [`EdgeListError`], never panic, and never attempt an allocation sized
//! by attacker-controlled ids.

// The vendored `proptest!` macro expands recursively per statement.
#![recursion_limit = "256"]

use proptest::prelude::*;
use slugger_graph::io::{read_edge_list_capped, read_snap, EdgeListError, DEFAULT_MAX_NODE_ID};

/// Small cap so hostile-but-valid ids can't make the *test* allocate big graphs;
/// the cap path itself is what's under test.
const FUZZ_CAP: u32 = 4096;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec(0u8..=255u8, 0usize..512),
    ) {
        if let Ok(graph) = read_edge_list_capped(&bytes[..], FUZZ_CAP) {
            graph.validate().unwrap();
            prop_assert!(graph.num_nodes() <= FUZZ_CAP as usize + 1);
        }
    }

    #[test]
    fn numeric_looking_lines_never_panic(
        lines in proptest::collection::vec(
            (0u64..=u32::MAX as u64 + 10, 0u64..=u32::MAX as u64 + 10, 0usize..4),
            0usize..20,
        ),
    ) {
        // Near-miss inputs: mostly-valid `u v` pairs, some overflowing u32 by a
        // little, with 0..3 junk trailing columns — the shapes a truncated or
        // concatenated SNAP download actually produces.
        let mut text = String::from("# fuzz\n");
        for (u, v, extra) in &lines {
            text.push_str(&format!("{u}\t{v}"));
            for e in 0..*extra {
                text.push_str(&format!("\t{e}"));
            }
            text.push('\n');
        }
        match read_edge_list_capped(text.as_bytes(), FUZZ_CAP) {
            Ok(graph) => {
                graph.validate().unwrap();
                for (u, v, _) in &lines {
                    prop_assert!(*u <= FUZZ_CAP as u64 && *v <= FUZZ_CAP as u64);
                }
            }
            Err(EdgeListError::Parse { line, .. } | EdgeListError::IdOutOfRange { line, .. }) => {
                prop_assert!(line >= 2 && line <= lines.len() + 1);
            }
            Err(EdgeListError::Io(e)) => return Err(format!("in-memory read cannot fail: {e}")),
        }
    }

    #[test]
    fn truncations_of_a_valid_list_never_panic(
        n in 2u32..40,
        cut in 0usize..400,
    ) {
        let mut text = String::new();
        for u in 0..n {
            text.push_str(&format!("{} {}\n", u, (u + 1) % n));
        }
        let bytes = &text.as_bytes()[..cut.min(text.len())];
        // A truncation can only fail on its (possibly half) last line.
        if let Ok(graph) = read_snap(bytes) {
            graph.validate().unwrap();
        }
    }
}

#[test]
fn default_cap_is_enforced_and_documented_value() {
    let err = read_snap("134217728 0\n".as_bytes()).unwrap_err();
    match err {
        EdgeListError::IdOutOfRange { id, max, .. } => {
            assert_eq!(id, DEFAULT_MAX_NODE_ID + 1);
            assert_eq!(max, DEFAULT_MAX_NODE_ID);
        }
        other => panic!("unexpected error: {other}"),
    }
}
