//! Plain-text edge-list I/O.
//!
//! The paper's datasets are distributed as whitespace-separated edge lists (one edge
//! per line, `#`-prefixed comments).  This module reads and writes that format so the
//! harness can operate both on generated stand-ins and on real downloads if the user
//! supplies them.
//!
//! ## SNAP-format policy
//!
//! The reader accepts the [SNAP](https://snap.stanford.edu/data/) edge-list dialect
//! as-is — [`read_snap`] / [`read_snap_file`] are the documented entry points (the
//! generic [`read_edge_list`] is the same parser):
//!
//! * one whitespace-separated `u v` pair per line (tabs or spaces; trailing columns
//!   after the first two are ignored, so timestamped triples parse too);
//! * lines starting with `#` or `%` are comments, blank lines are skipped;
//! * node ids are `u32`s up to a cap ([`DEFAULT_MAX_NODE_ID`], overridable via
//!   [`read_edge_list_capped`]) — the graph gets `max_id + 1` nodes, so sparse id
//!   spaces produce isolated nodes rather than a remapping, while ids past the cap
//!   are a typed error instead of a multi-gigabyte allocation;
//! * **duplicate edges are deduplicated** and **self-loops are dropped** when the
//!   graph is frozen ([`Graph::from_edges`]): SNAP ships directed lists with both
//!   `u v` and `v u` present, while SLUGGER's model (and every generator here) is
//!   simple and undirected, so `(u, v)`, `(v, u)` and repeats all collapse into a
//!   single undirected edge and `(u, u)` contributes nothing.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Largest node id [`read_edge_list`] / [`read_snap`] accept by default.
///
/// Ids are `u32`, so a single hostile line like `4294967295 0` is *syntactically*
/// valid — but freezing the graph allocates per-node structures for `max_id + 1`
/// nodes, which at `u32::MAX` is a multi-gigabyte allocation that aborts the
/// process instead of returning an error.  The cap (2²⁷ − 1 ≈ 134M, comfortably
/// above every published SNAP dataset) turns that abort into
/// [`EdgeListError::IdOutOfRange`]; callers with genuinely larger id spaces can
/// raise it through [`read_edge_list_capped`].
pub const DEFAULT_MAX_NODE_ID: NodeId = (1 << 27) - 1;

/// Errors produced while reading an edge list.
#[derive(Debug)]
pub enum EdgeListError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line that is neither a comment nor a parsable `u v` pair.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// A node id above the configured cap (see [`DEFAULT_MAX_NODE_ID`] for why
    /// oversized ids are rejected instead of allocated for).
    IdOutOfRange {
        /// 1-based line number of the offending line.
        line: usize,
        /// The offending id.
        id: NodeId,
        /// The cap in effect.
        max: NodeId,
    },
}

impl std::fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "I/O error: {e}"),
            EdgeListError::Parse { line, content } => {
                write!(f, "parse error on line {line}: {content:?}")
            }
            EdgeListError::IdOutOfRange { line, id, max } => {
                write!(f, "node id {id} on line {line} exceeds the cap {max}")
            }
        }
    }
}

impl std::error::Error for EdgeListError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EdgeListError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for EdgeListError {
    fn from(e: io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

/// Reads an undirected edge list from any reader.
///
/// Lines starting with `#` or `%` are treated as comments; blank lines are skipped.
/// Node ids up to [`DEFAULT_MAX_NODE_ID`] are accepted; the resulting graph has
/// `max_id + 1` nodes.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, EdgeListError> {
    read_edge_list_capped(reader, DEFAULT_MAX_NODE_ID)
}

/// [`read_edge_list`] with an explicit node-id cap, for callers whose id space is
/// known to be larger (or, in fuzz tests, much smaller) than the default.
pub fn read_edge_list_capped<R: Read>(
    reader: R,
    max_node_id: NodeId,
) -> Result<Graph, EdgeListError> {
    let reader = BufReader::new(reader);
    let mut builder = GraphBuilder::new(0);
    let mut line_buf = String::new();
    let mut reader = reader;
    let mut line_no = 0usize;
    loop {
        line_buf.clear();
        let n = reader.read_line(&mut line_buf)?;
        if n == 0 {
            break;
        }
        line_no += 1;
        let line = line_buf.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (u, v) = match (it.next(), it.next()) {
            (Some(a), Some(b)) => {
                let u: NodeId = a.parse().map_err(|_| EdgeListError::Parse {
                    line: line_no,
                    content: line.to_string(),
                })?;
                let v: NodeId = b.parse().map_err(|_| EdgeListError::Parse {
                    line: line_no,
                    content: line.to_string(),
                })?;
                (u, v)
            }
            _ => {
                return Err(EdgeListError::Parse {
                    line: line_no,
                    content: line.to_string(),
                })
            }
        };
        let hi = u.max(v);
        if hi > max_node_id {
            return Err(EdgeListError::IdOutOfRange {
                line: line_no,
                id: hi,
                max: max_node_id,
            });
        }
        builder.ensure_nodes((hi as usize) + 1);
        builder.add_edge(u, v);
    }
    Ok(builder.build())
}

/// Reads an undirected edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<Graph, EdgeListError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file)
}

/// Reads a SNAP-format edge list from any reader (see the module docs for the
/// dedup/self-loop policy).  Same parser as [`read_edge_list`], named for the
/// dialect it is used with.
pub fn read_snap<R: Read>(reader: R) -> Result<Graph, EdgeListError> {
    read_edge_list(reader)
}

/// Reads a SNAP-format edge list from a file path (see the module docs for the
/// dedup/self-loop policy).
pub fn read_snap_file<P: AsRef<Path>>(path: P) -> Result<Graph, EdgeListError> {
    read_edge_list_file(path)
}

/// Writes a graph as an edge list (`u v` per line, `u < v`) to any writer.
pub fn write_edge_list<W: Write>(graph: &Graph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# nodes {} edges {}",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    for (u, v) in graph.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Writes a graph as an edge list to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(graph: &Graph, path: P) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(graph, file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_simple_edge_list() {
        let text = "# comment\n0 1\n1 2\n\n% another comment\n2 3\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
    }

    #[test]
    fn read_rejects_garbage() {
        let text = "0 1\nnot an edge\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        match err {
            EdgeListError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn read_rejects_single_column() {
        let text = "42\n";
        assert!(matches!(
            read_edge_list(text.as_bytes()),
            Err(EdgeListError::Parse { .. })
        ));
    }

    #[test]
    fn write_then_read_roundtrip() {
        let g = Graph::from_edges(5, vec![(0, 1), (1, 2), (3, 4), (0, 4)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g.edge_set(), g2.edge_set());
        assert_eq!(g.num_nodes(), g2.num_nodes());
    }

    #[test]
    fn snap_dialect_dedups_both_directions_and_drops_self_loops() {
        // A directed SNAP dump: both orientations listed, repeats, a self-loop,
        // tab separators, and a trailing timestamp column.
        let text = "# Directed graph: example\n\
                    # FromNodeId\tToNodeId\n\
                    0\t1\n\
                    1\t0\n\
                    0\t1\n\
                    2\t2\n\
                    1\t3\t1464737\n";
        let g = read_snap(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 2, "dups and the self-loop must collapse");
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 3));
        assert!(!g.has_edge(2, 2));
        g.validate().unwrap();
    }

    #[test]
    fn snap_sparse_ids_produce_isolated_nodes() {
        let g = read_snap("3 9\n".as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 0);
    }

    #[test]
    fn oversized_ids_error_instead_of_allocating() {
        // Syntactically valid, but freezing a u32::MAX-node graph would abort
        // the process with OOM — must surface as a typed error.
        let err = read_snap("4294967295 0\n".as_bytes()).unwrap_err();
        match err {
            EdgeListError::IdOutOfRange { line, id, max } => {
                assert_eq!(line, 1);
                assert_eq!(id, u32::MAX);
                assert_eq!(max, DEFAULT_MAX_NODE_ID);
            }
            other => panic!("unexpected error: {other}"),
        }
        // A lowered cap rejects ordinary ids, an exact-fit cap accepts them.
        assert!(matches!(
            read_edge_list_capped("3 9\n".as_bytes(), 5),
            Err(EdgeListError::IdOutOfRange { id: 9, .. })
        ));
        assert!(read_edge_list_capped("3 9\n".as_bytes(), 9).is_ok());
    }

    #[test]
    fn error_display_is_informative() {
        let err = EdgeListError::Parse {
            line: 7,
            content: "x y z".into(),
        };
        let msg = format!("{err}");
        assert!(msg.contains("line 7"));
    }
}
