//! # slugger-graph
//!
//! Graph substrate for the SLUGGER reproduction (Lee, Ko, Shin, *SLUGGER: Lossless
//! Hierarchical Summarization of Massive Graphs*, ICDE 2022).
//!
//! This crate provides everything the summarization algorithms need from "the graph
//! side" of the system:
//!
//! * [`Graph`] — a compact, immutable, CSR-style simple undirected graph with sorted
//!   adjacency lists, O(log d) edge lookup and cache-friendly neighbor iteration.
//! * [`GraphBuilder`] — mutable edge accumulation (deduplicating, dropping self loops)
//!   that freezes into a [`Graph`].
//! * [`NeighborAccess`] — the trait through which graph algorithms (BFS, PageRank, …)
//!   see a graph, implemented both by [`Graph`] and by the hierarchical summaries in
//!   `slugger-core`, enabling the paper's Sect. VIII-C experiments.
//! * [`gen`] — deterministic synthetic graph generators (Erdős–Rényi, Barabási–Albert,
//!   nested stochastic block model, RMAT, caveman, hub-and-spoke, and the Theorem 1
//!   construction of the paper).
//! * [`sample`] — induced-subgraph node sampling used by the scalability experiment
//!   (Fig. 1(b)).
//! * [`stream`] — the dynamic-graph substrate of the streaming workloads:
//!   [`DynamicGraph`] (editable sorted adjacency), [`GraphDelta`] (batched
//!   insertions/deletions) and a deterministic edge-stream generator.
//! * [`io`] — plain-text edge-list reading/writing.
//! * [`hash`] — a fast FxHash-style hasher plus the `SplitMix64`-based value hashing
//!   used by min-hash candidate generation.
//! * [`stats`] — summary statistics (degree distribution, components, …).
//!
//! All randomness is seeded explicitly; every generator is deterministic given its
//! seed, which the experiment harness relies on for reproducibility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod gen;
pub mod graph;
pub mod hash;
pub mod io;
pub mod sample;
pub mod stats;
pub mod stream;

pub use builder::GraphBuilder;
pub use graph::{AdjacencyList, Graph, NeighborAccess, NodeId};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use stream::{DynamicGraph, GraphDelta};

/// Convenience prelude re-exporting the items almost every consumer needs.
pub mod prelude {
    pub use crate::builder::GraphBuilder;
    pub use crate::graph::{AdjacencyList, Graph, NeighborAccess, NodeId};
    pub use crate::hash::{FxHashMap, FxHashSet};
    pub use crate::stream::{DynamicGraph, GraphDelta};
}
