//! Fast, deterministic hashing primitives.
//!
//! The SLUGGER pipeline hashes node identifiers constantly: min-hash shingles during
//! candidate generation, adjacency keyed by supernode id, memo tables keyed by small
//! integer vectors.  The default SipHash hasher of `std::collections::HashMap` is
//! needlessly slow for these small integer keys, so this module provides
//!
//! * [`FxHasher`] — a re-implementation of the well-known Fx (Firefox/rustc) hash,
//!   written here because the reproduction restricts itself to the whitelisted
//!   dependency set (no `rustc-hash`),
//! * [`FxHashMap`] / [`FxHashSet`] — aliases plugging [`FxHasher`] into the standard
//!   collections,
//! * [`splitmix64`] / [`hash_u64_with_seed`] — a statistically strong 64-bit mixer used
//!   as the "random permutation" h(·) of the min-hash step (Sect. III-B2 of the paper).

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`]. Drop-in replacement for `std::collections::HashMap`.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`]. Drop-in replacement for `std::collections::HashSet`.
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hash function: a very fast multiply-and-rotate hash suitable for small
/// integer-like keys where HashDoS resistance is irrelevant.
#[derive(Default, Clone, Copy, Debug)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }
}

/// The SplitMix64 finalizer: a bijective 64-bit mixer with excellent avalanche
/// behaviour.  Used to derive per-iteration "random permutations" for min-hashing.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hashes a value under a given seed; distinct seeds behave like independent random
/// permutations of the input domain, which is exactly what the shingle computation of
/// the candidate-generation step needs (a fresh permutation per iteration).
#[inline]
pub fn hash_u64_with_seed(value: u64, seed: u64) -> u64 {
    splitmix64(value ^ splitmix64(seed))
}

/// Hashes a `u32` node identifier under a seed. Convenience wrapper around
/// [`hash_u64_with_seed`].
#[inline]
pub fn hash_node_with_seed(node: u32, seed: u64) -> u64 {
    hash_u64_with_seed(node as u64, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fx_hash_map_basic_roundtrip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
    }

    #[test]
    fn fx_hasher_distinguishes_small_keys() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let bh: BuildHasherDefault<FxHasher> = BuildHasherDefault::default();
        let h1 = bh.hash_one(1u64);
        let h2 = bh.hash_one(2u64);
        let h3 = bh.hash_one(3u64);
        assert_ne!(h1, h2);
        assert_ne!(h2, h3);
        assert_ne!(h1, h3);
    }

    #[test]
    fn splitmix64_is_bijective_on_sample() {
        // Not a proof of bijectivity, but distinct inputs must map to distinct outputs.
        let mut seen = FxHashSet::default();
        for i in 0..10_000u64 {
            assert!(seen.insert(splitmix64(i)));
        }
    }

    #[test]
    fn seeded_hash_changes_with_seed() {
        let a = hash_u64_with_seed(42, 1);
        let b = hash_u64_with_seed(42, 2);
        assert_ne!(a, b);
        // Deterministic for the same seed.
        assert_eq!(a, hash_u64_with_seed(42, 1));
    }

    #[test]
    fn seeded_hash_behaves_like_permutation_per_seed() {
        // Under a fixed seed, the ranking induced on a small domain has no collisions.
        for seed in 0..8u64 {
            let mut seen = FxHashSet::default();
            for node in 0..2_000u32 {
                assert!(seen.insert(hash_node_with_seed(node, seed)));
            }
        }
    }
}
