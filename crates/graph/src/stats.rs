//! Graph summary statistics used by the dataset registry and the experiment harness.

use crate::graph::{Graph, NodeId};

/// Basic statistics of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// `|V|`.
    pub num_nodes: usize,
    /// `|E|`.
    pub num_edges: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Average degree `2|E|/|V|`.
    pub avg_degree: f64,
    /// Number of connected components.
    pub num_components: usize,
    /// Number of isolated (degree-0) nodes.
    pub num_isolated: usize,
}

/// Computes [`GraphStats`] for a graph. O(|V| + |E|).
pub fn graph_stats(graph: &Graph) -> GraphStats {
    GraphStats {
        num_nodes: graph.num_nodes(),
        num_edges: graph.num_edges(),
        max_degree: graph.max_degree(),
        avg_degree: graph.avg_degree(),
        num_components: connected_components(graph),
        num_isolated: (0..graph.num_nodes() as NodeId)
            .filter(|&u| graph.degree(u) == 0)
            .count(),
    }
}

/// Number of connected components (isolated nodes count as their own component).
pub fn connected_components(graph: &Graph) -> usize {
    let n = graph.num_nodes();
    let mut visited = vec![false; n];
    let mut components = 0usize;
    let mut stack: Vec<NodeId> = Vec::new();
    for start in 0..n as NodeId {
        if visited[start as usize] {
            continue;
        }
        components += 1;
        visited[start as usize] = true;
        stack.push(start);
        while let Some(u) = stack.pop() {
            for &v in graph.neighbors(u) {
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    stack.push(v);
                }
            }
        }
    }
    components
}

/// Degree histogram: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(graph: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; graph.max_degree() + 1];
    for u in 0..graph.num_nodes() as NodeId {
        hist[graph.degree(u)] += 1;
    }
    hist
}

/// Global clustering coefficient estimated over at most `max_samples` length-2 paths
/// centred on random-ish nodes (deterministic: nodes are visited in id order).
pub fn clustering_coefficient(graph: &Graph, max_samples: usize) -> f64 {
    let mut wedges = 0usize;
    let mut closed = 0usize;
    'outer: for u in 0..graph.num_nodes() as NodeId {
        let nbrs = graph.neighbors(u);
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                wedges += 1;
                if graph.has_edge(a, b) {
                    closed += 1;
                }
                if wedges >= max_samples {
                    break 'outer;
                }
            }
        }
    }
    if wedges == 0 {
        0.0
    } else {
        closed as f64 / wedges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_two_triangles() {
        let g = Graph::from_edges(7, vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let s = graph_stats(&g);
        assert_eq!(s.num_nodes, 7);
        assert_eq!(s.num_edges, 6);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.num_components, 3); // two triangles + isolated node 6
        assert_eq!(s.num_isolated, 1);
    }

    #[test]
    fn components_of_path() {
        let g = Graph::from_edges(5, vec![(0, 1), (1, 2), (3, 4)]);
        assert_eq!(connected_components(&g), 2);
    }

    #[test]
    fn degree_histogram_star() {
        let g = Graph::from_edges(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]);
        let hist = degree_histogram(&g);
        assert_eq!(hist, vec![0, 4, 0, 0, 1]);
    }

    #[test]
    fn clustering_of_clique_is_one() {
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5u32 {
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(5, edges);
        assert!((clustering_coefficient(&g, 10_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_star_is_zero() {
        let g = Graph::from_edges(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(clustering_coefficient(&g, 10_000), 0.0);
    }
}
