//! Incremental graph construction.
//!
//! [`GraphBuilder`] accumulates undirected edges (in any order, with duplicates and
//! self-loops tolerated) and freezes them into an immutable [`Graph`].  Generators,
//! dataset loaders, and the MoSSo edge-stream driver all construct graphs through it.

use crate::graph::{Graph, NodeId};

/// Mutable accumulator of undirected edges.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_nodes` nodes (ids `0..num_nodes`).
    pub fn new(num_nodes: usize) -> Self {
        GraphBuilder {
            num_nodes,
            edges: Vec::new(),
        }
    }

    /// Creates a builder with a pre-reserved edge capacity.
    pub fn with_capacity(num_nodes: usize, edge_capacity: usize) -> Self {
        GraphBuilder {
            num_nodes,
            edges: Vec::with_capacity(edge_capacity),
        }
    }

    /// Number of nodes the built graph will have.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edge insertions so far (before deduplication).
    pub fn num_inserted_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `(u, v)`.  Self-loops and duplicates are accepted here
    /// and removed when the graph is frozen.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        debug_assert!((u as usize) < self.num_nodes && (v as usize) < self.num_nodes);
        self.edges.push((u, v));
    }

    /// Adds every edge from an iterator.
    pub fn extend_edges<I: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, iter: I) {
        self.edges.extend(iter);
    }

    /// Grows the node count if `n` exceeds the current one. Useful when reading edge
    /// lists whose node-id range is unknown up front.
    pub fn ensure_nodes(&mut self, n: usize) {
        if n > self.num_nodes {
            self.num_nodes = n;
        }
    }

    /// Freezes the builder into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        Graph::from_edges(self.num_nodes, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        assert_eq!(b.num_inserted_edges(), 3);
        let g = b.build();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        g.validate().unwrap();
    }

    #[test]
    fn builder_dedups_on_build() {
        let mut b = GraphBuilder::with_capacity(3, 4);
        b.extend_edges(vec![(0, 1), (1, 0), (0, 0), (1, 2)]);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn ensure_nodes_grows() {
        let mut b = GraphBuilder::new(2);
        b.ensure_nodes(10);
        b.add_edge(8, 9);
        let g = b.build();
        assert_eq!(g.num_nodes(), 10);
        assert!(g.has_edge(8, 9));
    }

    #[test]
    fn ensure_nodes_never_shrinks() {
        let mut b = GraphBuilder::new(5);
        b.ensure_nodes(2);
        assert_eq!(b.num_nodes(), 5);
    }
}
