//! The compact undirected graph type and the neighbor-access abstraction.
//!
//! The paper considers *simple undirected graphs* `G = (V, E)` (Sect. II): no edge
//! directions, no self-loops, no multi-edges.  [`Graph`] stores such a graph in CSR
//! (compressed sparse row) form: one `offsets` array of length `|V| + 1` and one
//! `neighbors` array of length `2·|E|`, with each adjacency list sorted so that edge
//! membership queries are a binary search.

use crate::hash::FxHashSet;
use serde::{Deserialize, Serialize};

/// Node identifier. The paper's graphs have up to tens of millions of nodes, so `u32`
/// is sufficient and halves memory traffic compared to `usize`.
pub type NodeId = u32;

/// Read-only neighbor access, the only interface the graph algorithms of
/// `slugger-algos` need.  Both the raw [`Graph`] and the hierarchical summary of
/// `slugger-core` implement it; for a summary, `for_each_neighbor` performs on-the-fly
/// partial decompression (Algorithm 4 of the paper).
pub trait NeighborAccess {
    /// Number of nodes; node ids are `0..num_nodes()`.
    fn num_nodes(&self) -> usize;

    /// Invokes `f` once for every neighbor of `u` (in unspecified order, no duplicates).
    fn for_each_neighbor(&self, u: NodeId, f: &mut dyn FnMut(NodeId));

    /// Collects the neighbors of `u` into a vector. Convenience wrapper around
    /// [`NeighborAccess::for_each_neighbor`].
    fn neighbors_vec(&self, u: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.for_each_neighbor(u, &mut |v| out.push(v));
        out
    }

    /// Degree of `u`.
    fn degree_of(&self, u: NodeId) -> usize {
        let mut d = 0usize;
        self.for_each_neighbor(u, &mut |_| d += 1);
        d
    }
}

/// Slice-based sorted-adjacency access: the interface hot paths (candidate
/// generation, dirty-region expansion) iterate neighbors through, so they run
/// unchanged on the immutable CSR [`Graph`] and on the editable
/// [`crate::stream::DynamicGraph`] of the streaming workloads.
///
/// Unlike [`NeighborAccess`] (a dyn-friendly callback interface for graph
/// algorithms), this trait hands out borrowed slices and therefore requires the
/// adjacency to be materialized and **sorted ascending**.
pub trait AdjacencyList {
    /// Number of nodes; node ids are `0..num_nodes()`.
    fn num_nodes(&self) -> usize;

    /// Sorted adjacency slice of `u`.
    fn neighbors(&self, u: NodeId) -> &[NodeId];

    /// Whether the edge `(u, v)` is present (binary search on the sorted
    /// adjacency).  Generic consumers — e.g. the region-restricted pruning of
    /// `slugger-core` — need membership tests on both the static [`Graph`] and the
    /// streaming [`crate::stream::DynamicGraph`].
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }
}

/// A simple undirected graph in CSR form.
///
/// Construct one through [`crate::builder::GraphBuilder`], [`Graph::from_edges`], or a
/// generator in [`crate::gen`].
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct Graph {
    num_nodes: usize,
    num_edges: usize,
    offsets: Vec<usize>,
    neighbors: Vec<NodeId>,
}

impl Graph {
    /// Builds a graph with `num_nodes` nodes from an iterator of undirected edges.
    ///
    /// Self-loops are dropped and duplicate edges (in either orientation) are merged,
    /// mirroring the dataset preprocessing of Sect. IV-A ("we removed all edge
    /// directions, duplicated edges, and self-loops").
    pub fn from_edges<I>(num_nodes: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); num_nodes];
        for (u, v) in edges {
            if u == v {
                continue;
            }
            let (u, v) = (u as usize, v as usize);
            assert!(
                u < num_nodes && v < num_nodes,
                "edge ({u}, {v}) out of bounds for {num_nodes} nodes"
            );
            adj[u].push(v as NodeId);
            adj[v].push(u as NodeId);
        }
        let mut offsets = Vec::with_capacity(num_nodes + 1);
        let mut neighbors = Vec::new();
        offsets.push(0);
        let mut num_edges = 0usize;
        for list in adj.iter_mut() {
            list.sort_unstable();
            list.dedup();
            num_edges += list.len();
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len());
        }
        debug_assert_eq!(num_edges % 2, 0);
        Graph {
            num_nodes,
            num_edges: num_edges / 2,
            offsets,
            neighbors,
        }
    }

    /// The empty graph on `num_nodes` nodes.
    pub fn empty(num_nodes: usize) -> Self {
        Graph {
            num_nodes,
            num_edges: 0,
            offsets: vec![0; num_nodes + 1],
            neighbors: Vec::new(),
        }
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sorted adjacency list of `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let u = u as usize;
        &self.neighbors[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        let u = u as usize;
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Whether the undirected edge `(u, v)` exists. O(log deg(u)).
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        // Search the shorter adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterates over every undirected edge exactly once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.num_nodes as NodeId).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes as NodeId)
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// Average degree `2|E| / |V|` (0 when there are no nodes).
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.num_nodes as f64
        }
    }

    /// Returns the set of edges as a hash set of `(min, max)` pairs.  Intended for
    /// tests and verification (e.g. comparing a decoded summary against the input);
    /// costs O(|E|) memory.
    pub fn edge_set(&self) -> FxHashSet<(NodeId, NodeId)> {
        self.edges().collect()
    }

    /// Checks structural invariants (sorted adjacency, symmetry, no loops). Used by
    /// tests; O(|E| log |E|).
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.len() != self.num_nodes + 1 {
            return Err("offsets length mismatch".into());
        }
        for u in 0..self.num_nodes as NodeId {
            let nbrs = self.neighbors(u);
            if !nbrs.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("adjacency of {u} not strictly sorted"));
            }
            for &v in nbrs {
                if v == u {
                    return Err(format!("self loop at {u}"));
                }
                if (v as usize) >= self.num_nodes {
                    return Err(format!("neighbor {v} of {u} out of range"));
                }
                if self.neighbors(v).binary_search(&u).is_err() {
                    return Err(format!("edge ({u},{v}) not symmetric"));
                }
            }
        }
        let half: usize = (0..self.num_nodes as NodeId).map(|u| self.degree(u)).sum();
        if half != 2 * self.num_edges {
            return Err("edge count mismatch".into());
        }
        Ok(())
    }
}

impl AdjacencyList for Graph {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn neighbors(&self, u: NodeId) -> &[NodeId] {
        Graph::neighbors(self, u)
    }
}

impl NeighborAccess for Graph {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn for_each_neighbor(&self, u: NodeId, f: &mut dyn FnMut(NodeId)) {
        for &v in self.neighbors(u) {
            f(v);
        }
    }

    fn neighbors_vec(&self, u: NodeId) -> Vec<NodeId> {
        self.neighbors(u).to_vec()
    }

    fn degree_of(&self, u: NodeId) -> usize {
        self.degree(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        Graph::from_edges(n, (0..n as NodeId - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn from_edges_dedups_and_drops_loops() {
        let g = Graph::from_edges(4, vec![(0, 1), (1, 0), (1, 1), (2, 3), (2, 3), (3, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(1, 1));
        assert!(!g.has_edge(0, 2));
        g.validate().unwrap();
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Graph::from_edges(5, vec![(0, 4), (0, 2), (0, 1), (0, 3)]);
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = path_graph(6);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 5);
        assert!(edges.iter().all(|&(u, v)| u < v));
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(3);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.neighbors(0), &[] as &[NodeId]);
        assert_eq!(g.max_degree(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn degree_statistics() {
        let g = Graph::from_edges(4, vec![(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn neighbor_access_trait_matches_direct_access() {
        let g = path_graph(5);
        for u in 0..5u32 {
            let via_trait = <Graph as NeighborAccess>::neighbors_vec(&g, u);
            assert_eq!(via_trait, g.neighbors(u).to_vec());
            assert_eq!(<Graph as NeighborAccess>::degree_of(&g, u), g.degree(u));
        }
        assert_eq!(<Graph as NeighborAccess>::num_nodes(&g), 5);
    }

    #[test]
    fn edge_set_matches_edges() {
        let g = Graph::from_edges(5, vec![(0, 1), (1, 2), (3, 4)]);
        let set = g.edge_set();
        assert_eq!(set.len(), 3);
        assert!(set.contains(&(0, 1)));
        assert!(set.contains(&(1, 2)));
        assert!(set.contains(&(3, 4)));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_edge_panics() {
        let _ = Graph::from_edges(2, vec![(0, 5)]);
    }
}
