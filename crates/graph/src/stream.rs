//! Dynamic-graph substrate for the streaming workloads: a mutable adjacency
//! structure ([`DynamicGraph`]) that supports edge insertions *and* deletions, the
//! batch delta type ([`GraphDelta`]) shared by the incremental re-summarizer in
//! `slugger-core` and the MoSSo baseline in `slugger-baselines`, and a deterministic
//! edge-stream generator ([`stream_batches`]) that turns any static graph into an
//! initial snapshot plus a sequence of delta batches (optionally with churn:
//! edges that are deleted and later re-inserted).
//!
//! Everything here is seeded and deterministic, like the rest of the crate.

use crate::graph::{AdjacencyList, Graph, NeighborAccess, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// A simple undirected graph under edit: per-node **sorted** adjacency lists that
/// support O(deg) edge insertion/removal while staying binary-searchable, plus an
/// exact edge count.
///
/// This is the maintained "current graph" of a streaming run.  It deliberately
/// mirrors [`Graph`]'s semantics (no self-loops, no multi-edges) so a
/// [`DynamicGraph`] and the [`Graph`] materialized from it always agree.
#[derive(Clone, Debug, Default)]
pub struct DynamicGraph {
    lists: Vec<Vec<NodeId>>,
    num_edges: usize,
}

impl DynamicGraph {
    /// The empty dynamic graph on `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        DynamicGraph {
            lists: vec![Vec::new(); num_nodes],
            num_edges: 0,
        }
    }

    /// Copies a static graph into editable form.
    pub fn from_graph(graph: &Graph) -> Self {
        let lists = (0..graph.num_nodes() as NodeId)
            .map(|u| graph.neighbors(u).to_vec())
            .collect();
        DynamicGraph {
            lists,
            num_edges: graph.num_edges(),
        }
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.lists.len()
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sorted adjacency list of `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.lists[u as usize]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.lists[u as usize].len()
    }

    /// Whether the undirected edge `(u, v)` exists. O(log deg).
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u != v && self.lists[u as usize].binary_search(&v).is_ok()
    }

    /// Inserts the undirected edge `(u, v)`.  Returns `false` (and changes nothing)
    /// for self-loops and already-present edges.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        let pos_u = match self.lists[u as usize].binary_search(&v) {
            Ok(_) => return false,
            Err(pos) => pos,
        };
        self.lists[u as usize].insert(pos_u, v);
        let pos_v = self.lists[v as usize]
            .binary_search(&u)
            .expect_err("adjacency lists out of sync");
        self.lists[v as usize].insert(pos_v, u);
        self.num_edges += 1;
        true
    }

    /// Removes the undirected edge `(u, v)`.  Returns `false` (and changes nothing)
    /// when the edge is absent.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        let pos_u = match self.lists[u as usize].binary_search(&v) {
            Ok(pos) => pos,
            Err(_) => return false,
        };
        self.lists[u as usize].remove(pos_u);
        let pos_v = self.lists[v as usize]
            .binary_search(&u)
            .expect("adjacency lists out of sync");
        self.lists[v as usize].remove(pos_v);
        self.num_edges -= 1;
        true
    }

    /// Iterates over every undirected edge exactly once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.lists.iter().enumerate().flat_map(|(u, list)| {
            let u = u as NodeId;
            list.iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Freezes the current state into an immutable CSR [`Graph`].
    pub fn to_graph(&self) -> Graph {
        Graph::from_edges(self.num_nodes(), self.edges())
    }
}

impl AdjacencyList for DynamicGraph {
    fn num_nodes(&self) -> usize {
        DynamicGraph::num_nodes(self)
    }

    fn neighbors(&self, u: NodeId) -> &[NodeId] {
        DynamicGraph::neighbors(self, u)
    }
}

impl NeighborAccess for DynamicGraph {
    fn num_nodes(&self) -> usize {
        DynamicGraph::num_nodes(self)
    }

    fn for_each_neighbor(&self, u: NodeId, f: &mut dyn FnMut(NodeId)) {
        for &v in DynamicGraph::neighbors(self, u) {
            f(v);
        }
    }

    fn neighbors_vec(&self, u: NodeId) -> Vec<NodeId> {
        DynamicGraph::neighbors(self, u).to_vec()
    }

    fn degree_of(&self, u: NodeId) -> usize {
        self.degree(u)
    }
}

/// One batch of a fully dynamic edge stream: edges to delete and edges to insert.
///
/// Consumers apply **deletions first, then insertions**, each idempotently (a
/// deletion of an absent edge and an insertion of a present edge are no-ops), so an
/// edge appearing in both lists is present after the batch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphDelta {
    /// Edges removed by this batch.
    pub deletions: Vec<(NodeId, NodeId)>,
    /// Edges added by this batch.
    pub insertions: Vec<(NodeId, NodeId)>,
}

impl GraphDelta {
    /// The empty delta.
    pub fn new() -> Self {
        GraphDelta::default()
    }

    /// A pure-insertion delta.
    pub fn from_insertions<I: IntoIterator<Item = (NodeId, NodeId)>>(edges: I) -> Self {
        GraphDelta {
            deletions: Vec::new(),
            insertions: edges.into_iter().collect(),
        }
    }

    /// Total number of operations in the batch.
    pub fn len(&self) -> usize {
        self.deletions.len() + self.insertions.len()
    }

    /// Whether the batch contains no operations.
    pub fn is_empty(&self) -> bool {
        self.deletions.is_empty() && self.insertions.is_empty()
    }

    /// Applies the batch to a dynamic graph (deletions first, then insertions) and
    /// returns `(applied_deletions, applied_insertions)`.
    pub fn apply_to(&self, graph: &mut DynamicGraph) -> (usize, usize) {
        let mut deleted = 0usize;
        for &(u, v) in &self.deletions {
            if graph.remove_edge(u, v) {
                deleted += 1;
            }
        }
        let mut inserted = 0usize;
        for &(u, v) in &self.insertions {
            if graph.insert_edge(u, v) {
                inserted += 1;
            }
        }
        (deleted, inserted)
    }
}

/// Configuration of the deterministic stream generator [`stream_batches`].
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Fraction of the target graph's edges present in the initial snapshot.
    pub initial_fraction: f64,
    /// Number of delta batches the remaining edges are spread over.
    pub num_batches: usize,
    /// Churn ratio: per batch, this fraction of the batch's insertion count is
    /// additionally *deleted* from the currently present edges and re-inserted in
    /// the following batch (the last batch deletes nothing), exercising the
    /// fully-dynamic path while still converging to the target graph.
    pub churn: f64,
    /// Seed of the (deterministic) edge shuffle and churn sampling.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            initial_fraction: 0.9,
            num_batches: 10,
            churn: 0.25,
            seed: 0,
        }
    }
}

/// Splits `target` into an initial snapshot plus `num_batches` delta batches such
/// that applying every batch in order to the snapshot reproduces `target` exactly.
///
/// The edge order is a seeded shuffle; with `churn > 0` each non-final batch also
/// deletes a few already-present edges, which the next batch re-inserts (so every
/// batch of a churned stream mixes deletions and insertions).  Pure function of
/// `(target, config)`.
pub fn stream_batches(target: &Graph, config: &StreamConfig) -> (Graph, Vec<GraphDelta>) {
    let mut edges: Vec<(NodeId, NodeId)> = target.edges().collect();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x57e4_a11c_e5ee_d000);
    edges.shuffle(&mut rng);
    let initial_count =
        ((edges.len() as f64) * config.initial_fraction.clamp(0.0, 1.0)).round() as usize;
    let initial_count = initial_count.min(edges.len());
    let initial = Graph::from_edges(target.num_nodes(), edges[..initial_count].iter().copied());
    let remaining = &edges[initial_count..];
    let num_batches = config.num_batches.max(1);
    let per_batch = remaining.len().div_ceil(num_batches).max(1);

    let mut batches: Vec<GraphDelta> = Vec::with_capacity(num_batches);
    // Edges present at the *start* of the upcoming batch (initial snapshot plus
    // everything inserted in earlier batches, minus their pending churn
    // deletions).  Churn victims are sampled from this set **before** the batch's
    // own insertions are appended: consumers apply deletions first, so deleting
    // an edge this very batch also inserts would silently no-op and the
    // effective churn rate would fall below `StreamConfig::churn`.
    let mut present: Vec<(NodeId, NodeId)> = edges[..initial_count].to_vec();
    let mut carry: Vec<(NodeId, NodeId)> = Vec::new();
    for b in 0..num_batches {
        let start = (b * per_batch).min(remaining.len());
        let end = ((b + 1) * per_batch).min(remaining.len());
        let fresh = &remaining[start..end];
        let mut delta = GraphDelta::new();
        let last = b + 1 == num_batches;
        let mut next_carry: Vec<(NodeId, NodeId)> = Vec::new();
        if !last && config.churn > 0.0 && !present.is_empty() {
            let churn_count = ((fresh.len().max(1) as f64) * config.churn).round() as usize;
            for _ in 0..churn_count.min(present.len().saturating_sub(1)) {
                let idx = rng.random_range(0..present.len());
                let edge = present.swap_remove(idx);
                delta.deletions.push(edge);
                next_carry.push(edge);
            }
        }
        // Re-insert the previous batch's churn deletions, then the fresh edges;
        // both are present again from this batch on (so they stay eligible as
        // future churn victims).
        delta.insertions.append(&mut carry);
        delta.insertions.extend_from_slice(fresh);
        present.extend_from_slice(&delta.insertions);
        carry = next_carry;
        batches.push(delta);
    }
    // Any churn still pending after the loop would break convergence; the loop
    // re-inserts every deletion one batch later and deletes nothing in the final
    // batch, so `carry` must be empty here.
    debug_assert!(carry.is_empty());
    (initial, batches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{caveman, CavemanConfig};

    #[test]
    fn dynamic_graph_insert_remove_roundtrip() {
        let mut g = DynamicGraph::new(5);
        assert!(g.insert_edge(0, 1));
        assert!(g.insert_edge(1, 2));
        assert!(!g.insert_edge(1, 0), "duplicate insert must be a no-op");
        assert!(!g.insert_edge(2, 2), "self-loop must be rejected");
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1), "double remove must be a no-op");
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(0, 1));
        let frozen = g.to_graph();
        assert_eq!(frozen.num_edges(), 1);
        assert!(frozen.has_edge(1, 2));
        frozen.validate().unwrap();
    }

    #[test]
    fn dynamic_graph_matches_static_source() {
        let target = caveman(&CavemanConfig {
            num_nodes: 120,
            num_cliques: 15,
            ..CavemanConfig::default()
        });
        let dynamic = DynamicGraph::from_graph(&target);
        assert_eq!(dynamic.num_edges(), target.num_edges());
        assert_eq!(dynamic.to_graph().edge_set(), target.edge_set());
        for u in 0..target.num_nodes() as NodeId {
            assert_eq!(dynamic.neighbors(u), target.neighbors(u));
        }
    }

    #[test]
    fn delta_apply_is_idempotent_per_op() {
        let mut g = DynamicGraph::new(4);
        g.insert_edge(0, 1);
        let delta = GraphDelta {
            deletions: vec![(0, 1), (0, 1), (2, 3)],
            insertions: vec![(0, 1), (1, 2), (1, 2)],
        };
        let (deleted, inserted) = delta.apply_to(&mut g);
        assert_eq!(deleted, 1, "only the present edge deletes");
        assert_eq!(inserted, 2, "duplicate insertion is a no-op");
        assert!(
            g.has_edge(0, 1),
            "delete-then-insert leaves the edge present"
        );
        assert!(g.has_edge(1, 2));
        assert_eq!(delta.len(), 6);
        assert!(!delta.is_empty());
    }

    #[test]
    fn stream_batches_converge_to_the_target() {
        let target = caveman(&CavemanConfig {
            num_nodes: 200,
            num_cliques: 25,
            ..CavemanConfig::default()
        });
        for churn in [0.0, 0.5] {
            let config = StreamConfig {
                initial_fraction: 0.8,
                num_batches: 6,
                churn,
                seed: 7,
            };
            let (initial, batches) = stream_batches(&target, &config);
            assert_eq!(batches.len(), 6);
            let mut current = DynamicGraph::from_graph(&initial);
            assert!(current.num_edges() < target.num_edges());
            for delta in &batches {
                delta.apply_to(&mut current);
            }
            assert_eq!(
                current.to_graph().edge_set(),
                target.edge_set(),
                "stream (churn {churn}) must converge to the target graph"
            );
            if churn > 0.0 {
                assert!(
                    batches.iter().any(|d| !d.deletions.is_empty()),
                    "churned streams must contain deletions"
                );
            }
        }
    }

    #[test]
    fn stream_batches_are_deterministic() {
        let target = caveman(&CavemanConfig {
            num_nodes: 100,
            ..CavemanConfig::default()
        });
        let config = StreamConfig::default();
        let (a_init, a_batches) = stream_batches(&target, &config);
        let (b_init, b_batches) = stream_batches(&target, &config);
        assert_eq!(a_init.edge_set(), b_init.edge_set());
        assert_eq!(a_batches, b_batches);
    }
}
