//! RMAT (recursive matrix / Kronecker-style) graph generator.
//!
//! Hyperlink graphs (CNR-2000, EU-05, IC-04, UK-02, UK-05 in the paper) exhibit strong
//! community-within-community locality and are by far the most compressible datasets
//! in the evaluation.  RMAT graphs reproduce that self-similar structure: each edge is
//! placed by recursively descending into one of the four quadrants of the adjacency
//! matrix with skewed probabilities.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the RMAT generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RmatConfig {
    /// log2 of the number of nodes (the graph has `2^scale` nodes).
    pub scale: u32,
    /// Number of undirected edges to attempt (duplicates and self-loops are dropped,
    /// so the final count is slightly lower).
    pub num_edges: usize,
    /// Quadrant probability `a` (top-left). Classic values: a=0.57.
    pub a: f64,
    /// Quadrant probability `b` (top-right). Classic values: b=0.19.
    pub b: f64,
    /// Quadrant probability `c` (bottom-left). Classic values: c=0.19.
    pub c: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for RmatConfig {
    fn default() -> Self {
        RmatConfig {
            scale: 10,
            num_edges: 8_192,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed: 0,
        }
    }
}

/// Generates an RMAT graph (see [`RmatConfig`]).
pub fn rmat(config: &RmatConfig) -> Graph {
    assert!(
        config.scale >= 1 && config.scale <= 30,
        "scale out of range"
    );
    let d = 1.0 - config.a - config.b - config.c;
    assert!(
        config.a >= 0.0 && config.b >= 0.0 && config.c >= 0.0 && d >= 0.0,
        "quadrant probabilities must be a valid distribution"
    );
    let n = 1usize << config.scale;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut builder = GraphBuilder::with_capacity(n, config.num_edges);
    for _ in 0..config.num_edges {
        let (u, v) = rmat_edge(&mut rng, config.scale, config.a, config.b, config.c);
        builder.add_edge(u, v);
    }
    builder.build()
}

fn rmat_edge(rng: &mut StdRng, scale: u32, a: f64, b: f64, c: f64) -> (NodeId, NodeId) {
    let mut u: u64 = 0;
    let mut v: u64 = 0;
    for _ in 0..scale {
        u <<= 1;
        v <<= 1;
        // Add a little per-level noise so the graph is not exactly self-similar, as is
        // standard practice (Graph500 does the same).
        let noise = |rng: &mut StdRng| 0.9 + 0.2 * rng.random::<f64>();
        let an = a * noise(rng);
        let bn = b * noise(rng);
        let cn = c * noise(rng);
        let dn = (1.0 - a - b - c) * noise(rng);
        let sum = an + bn + cn + dn;
        let r: f64 = rng.random::<f64>() * sum;
        if r < an {
            // top-left quadrant: neither bit set
        } else if r < an + bn {
            v |= 1;
        } else if r < an + bn + cn {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u as NodeId, v as NodeId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_is_power_of_two() {
        let g = rmat(&RmatConfig {
            scale: 8,
            num_edges: 2000,
            ..RmatConfig::default()
        });
        assert_eq!(g.num_nodes(), 256);
        g.validate().unwrap();
        // Duplicates get merged, so edge count is at most the attempts.
        assert!(g.num_edges() <= 2000);
        assert!(
            g.num_edges() > 500,
            "suspiciously few edges: {}",
            g.num_edges()
        );
    }

    #[test]
    fn skew_produces_heavy_hubs() {
        let g = rmat(&RmatConfig {
            scale: 10,
            num_edges: 10_000,
            ..RmatConfig::default()
        });
        assert!(g.max_degree() as f64 > 5.0 * g.avg_degree());
    }

    #[test]
    fn deterministic() {
        let cfg = RmatConfig::default();
        assert_eq!(rmat(&cfg).edge_set(), rmat(&cfg).edge_set());
    }

    #[test]
    #[should_panic(expected = "valid distribution")]
    fn invalid_probabilities_rejected() {
        let _ = rmat(&RmatConfig {
            a: 0.9,
            b: 0.3,
            c: 0.1,
            ..RmatConfig::default()
        });
    }
}
