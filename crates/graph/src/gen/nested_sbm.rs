//! Nested (hierarchical) stochastic block model.
//!
//! Sect. I of the paper motivates the hierarchical summarization model with graphs in
//! which "a group of nodes with similar connectivity have subgroups with higher
//! similarity, which in turn have subgroups with even higher similarity" (students of a
//! university → department → advisor).  This generator produces exactly that: a
//! balanced hierarchy of blocks with edge probability increasing with the depth of the
//! lowest common block of the two endpoints.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the nested stochastic block model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NestedSbmConfig {
    /// Total number of nodes.
    pub num_nodes: usize,
    /// Number of levels in the block hierarchy (≥ 1). Level 0 is "the whole graph".
    pub levels: usize,
    /// Branching factor: every block splits into this many child blocks.
    pub branching: usize,
    /// Edge probability between two nodes whose lowest common block is the root.
    pub base_probability: f64,
    /// Multiplicative probability boost per extra shared level.  With boost `b`, two
    /// nodes sharing a depth-`d` block connect with probability
    /// `min(1, base_probability · b^d)`.
    pub level_boost: f64,
    /// Seed for the random number generator.
    pub seed: u64,
}

impl Default for NestedSbmConfig {
    fn default() -> Self {
        NestedSbmConfig {
            num_nodes: 1_000,
            levels: 3,
            branching: 4,
            base_probability: 0.001,
            level_boost: 8.0,
            seed: 0,
        }
    }
}

/// Identifier of the block containing `node` at `depth` levels below the root, for a
/// balanced hierarchy over `num_nodes` nodes with the given branching factor.
///
/// Exposed so that experiments and tests can recover the planted hierarchy (e.g. to
/// compare it against the hierarchy SLUGGER discovers).
pub fn block_at_depth(node: NodeId, num_nodes: usize, branching: usize, depth: usize) -> usize {
    let blocks = branching.pow(depth as u32);
    let width = num_nodes.div_ceil(blocks);
    (node as usize) / width.max(1)
}

/// Generates a nested-SBM graph (see [`NestedSbmConfig`]).
///
/// The expected edge count grows with `base_probability`; callers that need a target
/// edge count should tune `base_probability` (as `slugger-datasets` does).
pub fn nested_sbm(config: &NestedSbmConfig) -> Graph {
    let n = config.num_nodes;
    assert!(n >= 2, "nested_sbm requires at least 2 nodes");
    assert!(config.levels >= 1, "nested_sbm requires at least 1 level");
    assert!(config.branching >= 2, "branching factor must be at least 2");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut builder = GraphBuilder::new(n);

    // Probability of an edge given the deepest shared level d (0 = only the root).
    let probs: Vec<f64> = (0..=config.levels)
        .map(|d| (config.base_probability * config.level_boost.powi(d as i32)).min(1.0))
        .collect();

    // Sampling strategy: iterate over depths from deepest shared block to shallowest
    // and sample within-block pairs with the *incremental* probability at that depth,
    // using geometric skipping so the cost is proportional to the number of edges, not
    // to n².  For simplicity and because dataset stand-ins are modest (≤ ~100k nodes),
    // we instead sample per-block pairs at the deepest level exactly and use sparse
    // skip-sampling across blocks.
    //
    // Concretely: for every unordered node pair we would need the probability of its
    // deepest shared level.  Equivalent decomposition: at each depth d from 1..=levels,
    // add edges *within* depth-d blocks with probability p_extra(d) such that the union
    // over depths reproduces probs[shared_depth]; a pair sharing depth D participates
    // in draws for every d ≤ D.  Choosing p_extra so that
    //   1 - Π_{d ≤ D}(1 - p_extra(d)) = probs[D]
    // gives p_extra(d) = 1 - (1 - probs[d]) / (1 - probs[d-1]).
    let mut p_extra = vec![0.0f64; config.levels + 1];
    p_extra[0] = probs[0];
    for d in 1..=config.levels {
        let prev = 1.0 - probs[d - 1];
        p_extra[d] = if prev <= f64::EPSILON {
            0.0
        } else {
            (1.0 - (1.0 - probs[d]) / prev).clamp(0.0, 1.0)
        };
    }

    for (depth, &p) in p_extra.iter().enumerate().take(config.levels + 1) {
        if p <= 0.0 {
            continue;
        }
        let blocks = config.branching.pow(depth as u32);
        let width = n.div_ceil(blocks).max(1);
        for block in 0..blocks {
            let lo = block * width;
            if lo >= n {
                break;
            }
            let hi = ((block + 1) * width).min(n);
            sample_pairs_within(&mut builder, &mut rng, lo as NodeId, hi as NodeId, p);
        }
    }
    builder.build()
}

/// Adds each unordered pair in `[lo, hi)` independently with probability `p`, using
/// geometric skipping (O(#edges) instead of O(range²) when `p` is small).
fn sample_pairs_within(
    builder: &mut GraphBuilder,
    rng: &mut StdRng,
    lo: NodeId,
    hi: NodeId,
    p: f64,
) {
    let range = (hi - lo) as u64;
    if range < 2 {
        return;
    }
    let total_pairs = range * (range - 1) / 2;
    if p >= 1.0 {
        for u in lo..hi {
            for v in (u + 1)..hi {
                builder.add_edge(u, v);
            }
        }
        return;
    }
    let log1mp = (1.0 - p).ln();
    let mut idx: u64 = 0;
    loop {
        let r: f64 = rng.random::<f64>();
        let skip = ((1.0 - r).ln() / log1mp).floor() as u64;
        idx = idx.saturating_add(skip);
        if idx >= total_pairs {
            break;
        }
        let (u, v) = pair_from_index(idx, range);
        builder.add_edge(lo + u as NodeId, lo + v as NodeId);
        idx += 1;
        if idx >= total_pairs {
            break;
        }
    }
}

/// Maps a linear index in `[0, C(range, 2))` to an unordered pair `(u, v)` with
/// `u < v < range`, enumerating pairs row by row.
fn pair_from_index(index: u64, range: u64) -> (u64, u64) {
    // Row u contributes (range - 1 - u) pairs.  Find the row by solving the triangular
    // inequality; a simple loop is fine because ranges here are block widths.
    let mut u = 0u64;
    let mut remaining = index;
    loop {
        let row = range - 1 - u;
        if remaining < row {
            return (u, u + 1 + remaining);
        }
        remaining -= row;
        u += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_index_enumerates_all_pairs() {
        let range = 7u64;
        let total = range * (range - 1) / 2;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..total {
            let (u, v) = pair_from_index(idx, range);
            assert!(u < v && v < range);
            assert!(seen.insert((u, v)));
        }
        assert_eq!(seen.len() as u64, total);
    }

    #[test]
    fn block_assignment_is_balanced() {
        assert_eq!(block_at_depth(0, 100, 2, 1), 0);
        assert_eq!(block_at_depth(49, 100, 2, 1), 0);
        assert_eq!(block_at_depth(50, 100, 2, 1), 1);
        assert_eq!(block_at_depth(99, 100, 2, 1), 1);
    }

    #[test]
    fn deeper_blocks_are_denser() {
        let config = NestedSbmConfig {
            num_nodes: 400,
            levels: 2,
            branching: 4,
            base_probability: 0.002,
            level_boost: 20.0,
            seed: 13,
        };
        let g = nested_sbm(&config);
        g.validate().unwrap();
        // Measure empirical density within deepest blocks vs across the whole graph.
        let deepest_blocks = config.branching.pow(config.levels as u32);
        let width = config.num_nodes.div_ceil(deepest_blocks);
        let mut inside = 0usize;
        let mut inside_pairs = 0usize;
        for b in 0..deepest_blocks {
            let lo = (b * width) as NodeId;
            let hi = (((b + 1) * width).min(config.num_nodes)) as NodeId;
            for u in lo..hi {
                for v in (u + 1)..hi {
                    inside_pairs += 1;
                    if g.has_edge(u, v) {
                        inside += 1;
                    }
                }
            }
        }
        let total_pairs = config.num_nodes * (config.num_nodes - 1) / 2;
        let overall_density = g.num_edges() as f64 / total_pairs as f64;
        let inside_density = inside as f64 / inside_pairs as f64;
        assert!(
            inside_density > 3.0 * overall_density,
            "inside {inside_density} vs overall {overall_density}"
        );
    }

    #[test]
    fn deterministic() {
        let config = NestedSbmConfig::default();
        assert_eq!(
            nested_sbm(&config).edge_set(),
            nested_sbm(&config).edge_set()
        );
    }

    #[test]
    fn full_probability_block_is_clique() {
        let config = NestedSbmConfig {
            num_nodes: 12,
            levels: 1,
            branching: 3,
            base_probability: 0.0,
            level_boost: 1.0,
            seed: 3,
        };
        // base 0 and boost 1 => no edges at all.
        let g = nested_sbm(&config);
        assert_eq!(g.num_edges(), 0);
    }
}
