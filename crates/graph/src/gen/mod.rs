//! Deterministic synthetic graph generators.
//!
//! The SLUGGER evaluation runs on 16 real-world graphs that this reproduction cannot
//! download; `slugger-datasets` builds stand-ins from the generators in this module
//! (see DESIGN.md §2–3 for the substitution rationale).  Each generator takes an
//! explicit seed and is fully deterministic.
//!
//! Available families:
//!
//! * [`erdos_renyi`] — uniform random graphs (baseline, incompressible).
//! * [`barabasi_albert`] — preferential attachment, power-law degree distribution.
//! * [`nested_sbm`] — a *hierarchical* stochastic block model: communities that contain
//!   sub-communities that contain sub-sub-communities, the structure Sect. I of the
//!   paper argues is pervasive and that the hierarchical model exploits.
//! * [`rmat`] — recursive matrix (Kronecker-like) graphs, mimicking hyperlink graphs.
//! * [`caveman`] — overlapping dense cliques connected sparsely (collaboration graphs).
//! * [`hub_and_spoke`] — a small core of hubs plus power-law periphery (internet
//!   topologies).
//! * [`theorem1_graph`] — the explicit construction of Fig. 3(a)/Theorem 1, for which
//!   the hierarchical model is provably more concise than the flat one.

mod barabasi_albert;
mod caveman;
mod erdos_renyi;
mod fig3;
mod hub;
mod nested_sbm;
mod rmat;

pub use barabasi_albert::barabasi_albert;
pub use caveman::{caveman, CavemanConfig};
pub use erdos_renyi::erdos_renyi;
pub use fig3::{theorem1_graph, Theorem1Shape};
pub use hub::{hub_and_spoke, HubConfig};
pub use nested_sbm::{block_at_depth, nested_sbm, NestedSbmConfig};
pub use rmat::{rmat, RmatConfig};

use crate::graph::NodeId;
use rand::Rng;

/// Draws an unordered pair of distinct nodes uniformly at random.
pub(crate) fn random_pair<R: Rng>(rng: &mut R, n: usize) -> (NodeId, NodeId) {
    debug_assert!(n >= 2);
    let u = rng.random_range(0..n) as NodeId;
    loop {
        let v = rng.random_range(0..n) as NodeId;
        if v != u {
            return (u, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_pair_never_returns_loop() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let (u, v) = random_pair(&mut rng, 5);
            assert_ne!(u, v);
            assert!(u < 5 && v < 5);
        }
    }
}
