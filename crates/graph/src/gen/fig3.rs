//! The Theorem 1 / Fig. 3(a) construction.
//!
//! Theorem 1 of the paper exhibits a family of graphs that the hierarchical graph
//! summarization model represents with `o(n^1.5)` edges while *every* flat
//! summarization takes `Ω(n^1.5)` edges.  The construction (read off Fig. 3 and the
//! proof in Sect. VII-A): there are `n` "internal" groups and `k = o(n^0.5)` leaf
//! blocks per group, i.e. `n·k` subnodes arranged in an `n × k` grid.  Every subnode
//! is connected to every other subnode *except* those in the same column of a
//! different row-group — concretely, each subnode has exactly `2k` non-neighbors
//! besides itself (the proof states "the number of subnodes that are not directly
//! connected to u is exactly 2k").
//!
//! We realize that degree profile with a circulant complement: subnode `(i, j)`
//! (group `i`, offset `j`) is *not* adjacent to the `2k` subnodes in groups
//! `i ± 1 (mod n)` (all offsets), and adjacent to everything else.  The complement
//! (non-edges) then has `Θ(n·k²)` edges while each node keeps degree `(n-2)·k … `
//! matching the proof's counting, and the hierarchical model encodes the graph with
//! `Θ(n·k)` edges: one p-self-loop over the universe supernode, one n-edge per
//! adjacent group pair, and `n·k + n` hierarchy edges.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// Shape parameters of the Theorem 1 construction.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Theorem1Shape {
    /// Number of groups (`n` in the paper's notation).
    pub groups: usize,
    /// Subnodes per group (`k` in the paper's notation, `k = o(n^0.5)` asymptotically).
    pub per_group: usize,
}

impl Theorem1Shape {
    /// Total number of subnodes (`n·k`).
    pub fn num_nodes(&self) -> usize {
        self.groups * self.per_group
    }

    /// Group index of a subnode.
    pub fn group_of(&self, node: NodeId) -> usize {
        (node as usize) / self.per_group
    }

    /// Whether two *distinct* subnodes are adjacent in the construction: everyone is
    /// adjacent except nodes in cyclically neighboring groups.
    pub fn adjacent(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        let gu = self.group_of(u);
        let gv = self.group_of(v);
        let n = self.groups;
        let diff = (gu + n - gv) % n;
        !(diff == 1 || diff == n - 1)
    }
}

/// Builds the Theorem 1 graph for the given shape.
///
/// The graph is dense (Θ(n²k²) subedges), so keep `groups · per_group` modest
/// (≤ a few thousand nodes) — which is plenty to demonstrate the asymptotic gap in
/// the `theorem1_conciseness` experiment.
pub fn theorem1_graph(shape: Theorem1Shape) -> Graph {
    assert!(
        shape.groups >= 4,
        "need at least 4 groups for the construction"
    );
    assert!(shape.per_group >= 1);
    let n = shape.num_nodes();
    let mut builder = GraphBuilder::new(n);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            if shape.adjacent(u, v) {
                builder.add_edge(u, v);
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_node_has_exactly_2k_non_neighbors() {
        let shape = Theorem1Shape {
            groups: 8,
            per_group: 3,
        };
        let g = theorem1_graph(shape);
        let k = shape.per_group;
        let total = shape.num_nodes();
        for u in 0..total as NodeId {
            let non_neighbors = total - 1 - g.degree(u);
            assert_eq!(non_neighbors, 2 * k, "node {u}");
        }
    }

    #[test]
    fn adjacency_is_symmetric_and_excludes_adjacent_groups() {
        let shape = Theorem1Shape {
            groups: 6,
            per_group: 2,
        };
        let g = theorem1_graph(shape);
        g.validate().unwrap();
        // Nodes 0,1 are group 0; nodes 2,3 group 1 (cyclically adjacent): no edges.
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 3));
        // Group 0 and group 2 are not adjacent groups: fully connected.
        assert!(g.has_edge(0, 4));
        assert!(g.has_edge(1, 5));
        // Within-group pairs are connected (diff == 0).
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn edge_count_matches_formula() {
        let shape = Theorem1Shape {
            groups: 10,
            per_group: 2,
        };
        let g = theorem1_graph(shape);
        let total = shape.num_nodes();
        let k = shape.per_group;
        // Each node is adjacent to total - 1 - 2k others.
        let expected = total * (total - 1 - 2 * k) / 2;
        assert_eq!(g.num_edges(), expected);
    }
}
