//! Hub-and-spoke graphs mimicking internet topologies (Caida, Skitter in the paper).
//!
//! A small core of densely inter-connected hubs, plus a large periphery where each
//! node attaches to a few hubs (chosen with skew) and occasionally to another
//! peripheral node.  Peripheral nodes hanging off the same hubs have identical
//! connectivity — ideal supernode material.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters for [`hub_and_spoke`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HubConfig {
    /// Total number of nodes (core + periphery).
    pub num_nodes: usize,
    /// Number of core hub nodes.
    pub num_hubs: usize,
    /// Probability of an edge between any two hubs.
    pub hub_density: f64,
    /// Average number of hub attachments per peripheral node.
    pub spokes_per_node: f64,
    /// Probability that a peripheral node also links to a random peripheral node.
    pub peripheral_link_probability: f64,
    /// Zipf-like skew of hub popularity (0 = uniform, higher = more skewed).
    pub hub_skew: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for HubConfig {
    fn default() -> Self {
        HubConfig {
            num_nodes: 2_000,
            num_hubs: 40,
            hub_density: 0.3,
            spokes_per_node: 2.0,
            peripheral_link_probability: 0.1,
            hub_skew: 1.0,
            seed: 0,
        }
    }
}

/// Generates a hub-and-spoke graph (see [`HubConfig`]).
pub fn hub_and_spoke(config: &HubConfig) -> Graph {
    let n = config.num_nodes;
    let h = config.num_hubs;
    assert!(h >= 1 && h < n, "need 1 <= num_hubs < num_nodes");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut builder = GraphBuilder::new(n);

    // Core: dense-ish hub mesh.
    for a in 0..h as NodeId {
        for b in (a + 1)..h as NodeId {
            if rng.random_bool(config.hub_density) {
                builder.add_edge(a, b);
            }
        }
    }

    // Zipf-like cumulative weights over hubs.
    let weights: Vec<f64> = (0..h)
        .map(|i| 1.0 / ((i + 1) as f64).powf(config.hub_skew))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cumulative = Vec::with_capacity(h);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cumulative.push(acc);
    }
    let pick_hub = |rng: &mut StdRng| -> NodeId {
        let r: f64 = rng.random::<f64>();
        match cumulative.iter().position(|&c| r <= c) {
            Some(i) => i as NodeId,
            None => (h - 1) as NodeId,
        }
    };

    // Periphery.
    for u in h..n {
        let spokes = sample_poisson_like(&mut rng, config.spokes_per_node).max(1);
        for _ in 0..spokes {
            let hub = pick_hub(&mut rng);
            builder.add_edge(u as NodeId, hub);
        }
        if rng.random_bool(config.peripheral_link_probability) && n - h >= 2 {
            let other = loop {
                let candidate = rng.random_range(h..n) as NodeId;
                if candidate as usize != u {
                    break candidate;
                }
            };
            builder.add_edge(u as NodeId, other);
        }
    }
    builder.build()
}

/// A small Poisson-ish sampler (Knuth's algorithm), adequate for expected values ≤ 10.
fn sample_poisson_like(rng: &mut StdRng, mean: f64) -> usize {
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.random::<f64>();
        if p <= l || k > 64 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_shape() {
        let g = hub_and_spoke(&HubConfig::default());
        assert_eq!(g.num_nodes(), 2_000);
        g.validate().unwrap();
        // Hubs must dominate the degree distribution.
        let max_hub_degree = (0..40u32).map(|u| g.degree(u)).max().unwrap();
        let max_peripheral_degree = (40..2_000u32).map(|u| g.degree(u)).max().unwrap();
        assert!(max_hub_degree > max_peripheral_degree);
    }

    #[test]
    fn every_peripheral_node_has_a_spoke() {
        let g = hub_and_spoke(&HubConfig {
            num_nodes: 300,
            num_hubs: 10,
            ..HubConfig::default()
        });
        for u in 10..300u32 {
            assert!(g.degree(u) >= 1, "node {u} is isolated");
        }
    }

    #[test]
    fn deterministic() {
        let cfg = HubConfig::default();
        assert_eq!(
            hub_and_spoke(&cfg).edge_set(),
            hub_and_spoke(&cfg).edge_set()
        );
    }

    #[test]
    fn poisson_sampler_has_reasonable_mean() {
        let mut rng = StdRng::seed_from_u64(99);
        let samples: Vec<usize> = (0..5_000)
            .map(|_| sample_poisson_like(&mut rng, 3.0))
            .collect();
        let mean = samples.iter().sum::<usize>() as f64 / samples.len() as f64;
        assert!((mean - 3.0).abs() < 0.3, "mean was {mean}");
    }
}
