//! Relaxed caveman / overlapping-clique graphs.
//!
//! Collaboration networks (DBLP, Hollywood in the paper) are unions of many small
//! near-cliques (papers, movie casts) that overlap through shared members.  Such
//! graphs compress extremely well under summarization because clique members have
//! nearly identical connectivity.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters for [`caveman`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CavemanConfig {
    /// Total number of nodes.
    pub num_nodes: usize,
    /// Number of cliques ("caves").
    pub num_cliques: usize,
    /// Minimum clique size.
    pub min_clique: usize,
    /// Maximum clique size.
    pub max_clique: usize,
    /// Probability that an intra-clique edge is rewired to a random endpoint
    /// (the "relaxation"; 0 = perfect cliques).
    pub rewire_probability: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for CavemanConfig {
    fn default() -> Self {
        CavemanConfig {
            num_nodes: 1_000,
            num_cliques: 120,
            min_clique: 4,
            max_clique: 12,
            rewire_probability: 0.05,
            seed: 0,
        }
    }
}

/// Generates a relaxed caveman graph: `num_cliques` cliques whose members are drawn
/// (with overlap) from the node set, with a fraction of edges rewired randomly.
pub fn caveman(config: &CavemanConfig) -> Graph {
    let n = config.num_nodes;
    assert!(n >= 2);
    assert!(config.min_clique >= 2 && config.min_clique <= config.max_clique);
    assert!(config.max_clique <= n);
    assert!((0.0..=1.0).contains(&config.rewire_probability));
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut builder = GraphBuilder::new(n);
    for clique_idx in 0..config.num_cliques {
        let size = rng.random_range(config.min_clique..=config.max_clique);
        // Anchor each clique in a contiguous region (locality) but let a couple of
        // members come from anywhere (overlap between communities).
        let anchor = (clique_idx * n / config.num_cliques.max(1)) % n;
        let mut members: Vec<NodeId> = Vec::with_capacity(size);
        for k in 0..size {
            let node = if k + 2 < size {
                ((anchor + k) % n) as NodeId
            } else {
                rng.random_range(0..n) as NodeId
            };
            if !members.contains(&node) {
                members.push(node);
            }
        }
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                if rng.random_bool(config.rewire_probability) {
                    let w = rng.random_range(0..n) as NodeId;
                    if w != members[i] {
                        builder.add_edge(members[i], w);
                    }
                } else {
                    builder.add_edge(members[i], members[j]);
                }
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_shape() {
        let g = caveman(&CavemanConfig::default());
        assert_eq!(g.num_nodes(), 1_000);
        assert!(g.num_edges() > 1_000);
        g.validate().unwrap();
    }

    #[test]
    fn zero_rewire_yields_high_clustering() {
        let cfg = CavemanConfig {
            num_nodes: 200,
            num_cliques: 25,
            min_clique: 6,
            max_clique: 6,
            rewire_probability: 0.0,
            seed: 4,
        };
        let g = caveman(&cfg);
        // Count triangles crudely: any node in a 6-clique participates in many.
        let mut triangles = 0usize;
        for u in 0..g.num_nodes() as NodeId {
            let nbrs = g.neighbors(u);
            for (i, &a) in nbrs.iter().enumerate() {
                for &b in &nbrs[i + 1..] {
                    if g.has_edge(a, b) {
                        triangles += 1;
                    }
                }
            }
        }
        assert!(triangles > 100);
    }

    #[test]
    fn deterministic() {
        let cfg = CavemanConfig::default();
        assert_eq!(caveman(&cfg).edge_set(), caveman(&cfg).edge_set());
    }

    #[test]
    #[should_panic]
    fn rejects_bad_clique_bounds() {
        let _ = caveman(&CavemanConfig {
            min_clique: 10,
            max_clique: 4,
            ..CavemanConfig::default()
        });
    }
}
