//! Erdős–Rényi `G(n, m)` random graphs.

use crate::builder::GraphBuilder;
use crate::gen::random_pair;
use crate::graph::Graph;
use crate::hash::FxHashSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generates a uniform random simple graph with `n` nodes and (approximately, exactly
/// when feasible) `m` distinct edges.
///
/// Uniform random graphs have no similarity structure, so all summarization methods
/// compress them poorly; they serve as a sanity baseline and as stress-test inputs.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n >= 2, "erdos_renyi requires at least 2 nodes");
    let max_edges = n * (n - 1) / 2;
    let m = m.min(max_edges);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen: FxHashSet<(u32, u32)> = FxHashSet::default();
    let mut builder = GraphBuilder::with_capacity(n, m);
    // Rejection sampling is fine while m is well below the maximum; otherwise fall
    // back to sampling from the complete edge list.
    if m * 3 < max_edges || max_edges > 50_000_000 {
        while chosen.len() < m {
            let (u, v) = random_pair(&mut rng, n);
            let key = (u.min(v), u.max(v));
            if chosen.insert(key) {
                builder.add_edge(key.0, key.1);
            }
        }
    } else {
        use rand::seq::SliceRandom;
        let mut all: Vec<(u32, u32)> = Vec::with_capacity(max_edges);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                all.push((u, v));
            }
        }
        all.shuffle(&mut rng);
        for &(u, v) in all.iter().take(m) {
            builder.add_edge(u, v);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count_sparse() {
        let g = erdos_renyi(100, 300, 1);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 300);
        g.validate().unwrap();
    }

    #[test]
    fn dense_request_clamped_to_complete_graph() {
        let g = erdos_renyi(6, 1000, 2);
        assert_eq!(g.num_edges(), 15);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = erdos_renyi(50, 120, 9);
        let b = erdos_renyi(50, 120, 9);
        assert_eq!(a.edge_set(), b.edge_set());
    }

    #[test]
    fn different_seeds_differ() {
        let a = erdos_renyi(50, 120, 9);
        let b = erdos_renyi(50, 120, 10);
        assert_ne!(a.edge_set(), b.edge_set());
    }
}
