//! Barabási–Albert preferential-attachment graphs.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generates a Barabási–Albert graph: starting from a small clique, each new node
/// attaches to `m` existing nodes chosen proportionally to their degree.
///
/// Produces the heavy-tailed degree distributions typical of social and web graphs;
/// hubs with many shared neighbors are exactly the structure graph summarization
/// merges into supernodes.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1, "attachment count must be at least 1");
    assert!(n > m, "need more nodes than the attachment count");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, n * m);
    // `targets` holds one entry per edge endpoint, so sampling uniformly from it is
    // sampling proportionally to degree (the classic BA implementation trick).
    let mut endpoint_pool: Vec<NodeId> = Vec::with_capacity(2 * n * m);

    let seed_nodes = m + 1;
    for u in 0..seed_nodes as NodeId {
        for v in (u + 1)..seed_nodes as NodeId {
            builder.add_edge(u, v);
            endpoint_pool.push(u);
            endpoint_pool.push(v);
        }
    }

    let mut picked: Vec<NodeId> = Vec::with_capacity(m);
    for u in seed_nodes..n {
        picked.clear();
        let mut guard = 0usize;
        while picked.len() < m && guard < 50 * m {
            guard += 1;
            let t = endpoint_pool[rng.random_range(0..endpoint_pool.len())];
            if t as usize != u && !picked.contains(&t) {
                picked.push(t);
            }
        }
        // Extremely unlikely fallback: fill with arbitrary distinct earlier nodes.
        let mut fallback = 0 as NodeId;
        while picked.len() < m {
            if fallback as usize != u && !picked.contains(&fallback) {
                picked.push(fallback);
            }
            fallback += 1;
        }
        for &t in &picked {
            builder.add_edge(u as NodeId, t);
            endpoint_pool.push(u as NodeId);
            endpoint_pool.push(t);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_and_edge_counts() {
        let n = 200;
        let m = 3;
        let g = barabasi_albert(n, m, 5);
        assert_eq!(g.num_nodes(), n);
        // Seed clique has C(m+1, 2) edges; every further node adds exactly m.
        let expected = (m + 1) * m / 2 + (n - m - 1) * m;
        assert_eq!(g.num_edges(), expected);
        g.validate().unwrap();
    }

    #[test]
    fn produces_hubs() {
        let g = barabasi_albert(500, 2, 11);
        // Preferential attachment should create at least one node far above average degree.
        assert!(g.max_degree() as f64 > 4.0 * g.avg_degree());
    }

    #[test]
    fn deterministic() {
        let a = barabasi_albert(100, 2, 3);
        let b = barabasi_albert(100, 2, 3);
        assert_eq!(a.edge_set(), b.edge_set());
    }

    #[test]
    #[should_panic(expected = "more nodes")]
    fn rejects_too_few_nodes() {
        let _ = barabasi_albert(2, 5, 0);
    }
}
