//! Output-invariance regression tests for the conflict-partitioned parallel apply
//! stage: sweeping `parallelism × shards` through the pipeline must produce a
//! summary **byte-identical** to the serial ascending-set-index replay — not merely
//! cost-equal, but identical arena structure (ids, parents, children, members,
//! liveness) and identical p/n-edge content.

use slugger_core::testsupport::{canonical, lattice};
use slugger_core::{Parallelism, Slugger, SluggerConfig};
use slugger_graph::gen::{caveman, rmat, CavemanConfig, RmatConfig};
use slugger_graph::Graph;

fn graphs() -> Vec<(&'static str, Graph)> {
    vec![
        (
            "caveman",
            caveman(&CavemanConfig {
                num_nodes: 300,
                num_cliques: 40,
                min_clique: 5,
                max_clique: 9,
                rewire_probability: 0.03,
                seed: 11,
            }),
        ),
        (
            "rmat",
            rmat(&RmatConfig {
                scale: 11,
                num_edges: 12_000,
                seed: 5,
                ..RmatConfig::default()
            }),
        ),
    ]
}

fn config(parallelism: Parallelism, shards: usize, seed: u64) -> SluggerConfig {
    SluggerConfig {
        iterations: 6,
        max_candidate_size: 64,
        max_shingle_splits: 5,
        seed,
        parallelism,
        shards,
        ..SluggerConfig::default()
    }
}

#[test]
fn parallel_apply_summary_is_byte_identical_across_parallelism_and_shards() {
    for (name, graph) in graphs() {
        let seed = 3u64;
        // `parallelism = 1` takes the serial ascending-set-index replay: the
        // reference the conflict-partitioned path must reproduce exactly.
        let baseline = Slugger::new(config(Parallelism::Sequential, 8, seed)).summarize(&graph);
        let expected = canonical(&baseline.summary);
        for point in lattice() {
            let outcome =
                Slugger::new(config(point.parallelism, point.shards, seed)).summarize(&graph);
            assert_eq!(
                canonical(&outcome.summary),
                expected,
                "{name}: summary diverged at parallelism {}, shards {}",
                point.threads,
                point.shards
            );
            // The per-iteration trajectory must agree too (same merges, same
            // costs, in the same order).
            for (a, b) in baseline.iterations.iter().zip(outcome.iterations.iter()) {
                assert_eq!(a.merges, b.merges, "{name}: iteration {}", a.iteration);
                assert_eq!(a.cost, b.cost, "{name}: iteration {}", a.iteration);
                assert_eq!(a.roots, b.roots, "{name}: iteration {}", a.iteration);
            }
            if point.threads > 1 {
                assert!(
                    outcome.stages.apply_batched_plans > 0,
                    "{name}: the parallel apply path must actually run at \
                     parallelism {}",
                    point.threads
                );
            }
        }
    }
}

#[test]
fn parallel_apply_handles_degenerate_graphs() {
    for parallelism in [Parallelism::Fixed(2), Parallelism::Fixed(8)] {
        let empty = Graph::empty(5);
        let outcome = Slugger::new(config(parallelism, 4, 0)).summarize(&empty);
        assert_eq!(outcome.metrics.cost, 0);
        let single = Graph::from_edges(2, vec![(0, 1)]);
        let outcome = Slugger::new(config(parallelism, 4, 0)).summarize(&single);
        slugger_core::decode::verify_lossless(&outcome.summary, &single).unwrap();
    }
}
