//! Checkpoint-corruption fallback (`slugger_core::storage::durable`).
//!
//! Property under test: damage to the **newest** checkpoint — any single flipped
//! byte, or a randomly splattered byte range — makes recovery either fall back
//! to the previous checkpoint (replaying the longer WAL tail to the *same*
//! summary an uninterrupted run produces) or fail with a typed
//! [`DurableError`].  Never a panic, and never a silently wrong summary: every
//! `Ok` recovery is checked against the uninterrupted run's canonical form.

// The vendored `proptest!` macro expands recursively per statement.
#![recursion_limit = "256"]

use proptest::prelude::*;
use slugger_core::decode::canonical_form;
use slugger_core::incremental::{IncrementalConfig, IncrementalSummarizer};
use slugger_core::storage::durable::fault::MemIo;
use slugger_core::storage::durable::{DurableError, DurablePolicy, DurableSummarizer};
use slugger_graph::gen::{caveman, CavemanConfig};
use slugger_graph::stream::{stream_batches, GraphDelta, StreamConfig};
use slugger_graph::Graph;

fn small_stream() -> (Graph, Vec<GraphDelta>) {
    let target = caveman(&CavemanConfig {
        num_nodes: 70,
        num_cliques: 9,
        min_clique: 5,
        max_clique: 8,
        rewire_probability: 0.02,
        seed: 19,
    });
    stream_batches(
        &target,
        &StreamConfig {
            initial_fraction: 0.8,
            num_batches: 4,
            churn: 0.3,
            seed: 13,
        },
    )
}

fn config() -> IncrementalConfig {
    IncrementalConfig {
        iterations: 2,
        seed: 29,
        ..IncrementalConfig::default()
    }
}

fn policy() -> DurablePolicy {
    DurablePolicy {
        checkpoint_every_batches: 2,
        checkpoint_wal_bytes: 0,
    }
}

/// A durable directory holding a mid-stream state with **two** checkpoints on
/// disk (seqs 1 and 2 after batches 2 and 4) plus the WAL covering the gap, and
/// the uninterrupted run's canonical form for the full stream.
fn corrupted_fixture() -> (MemIo, String) {
    let (initial, batches) = small_stream();
    let cfg = config();
    let mut plain = IncrementalSummarizer::from_graph(&initial, cfg);
    for delta in &batches {
        plain.resummarize(delta);
    }
    let expected = format!("{:?}", canonical_form(plain.summary()));

    let io = MemIo::new();
    let inner = IncrementalSummarizer::from_graph(&initial, cfg);
    let mut durable = DurableSummarizer::create(inner, policy(), io.clone()).unwrap();
    for delta in &batches {
        durable.ingest(delta).unwrap();
    }
    drop(durable);
    (io, expected)
}

/// Runs recovery on the (tampered) directory and checks the contract: `Ok` must
/// fall back past the damaged newest checkpoint *and* match the uninterrupted
/// run after finishing the stream; `Err` must be a typed corruption-class error.
fn check_recovery_contract(io: MemIo, expected: &str, what: &str) -> Result<(), String> {
    let (_, batches) = small_stream();
    match DurableSummarizer::open(config(), policy(), io) {
        Ok((mut recovered, report)) => {
            prop_assert!(
                report.checkpoints_skipped >= 1,
                "{what}: damaged newest checkpoint was accepted"
            );
            while recovered.batches() < batches.len() {
                recovered.ingest(&batches[recovered.batches()]).unwrap();
            }
            prop_assert_eq!(
                format!("{:?}", canonical_form(recovered.summary())),
                expected.to_string(),
                "{}: fallback recovery diverged from the uninterrupted run",
                what
            );
        }
        // Typed failure is acceptable; a panic (which would abort the test
        // runner) or a silently wrong summary is not.
        Err(DurableError::Corrupt { .. })
        | Err(DurableError::NoCheckpoint)
        | Err(DurableError::Storage(_))
        | Err(DurableError::State(_)) => {}
        Err(DurableError::Io(e)) => {
            return Err(format!("{what}: unexpected I/O error: {e}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn single_byte_flip_in_newest_checkpoint_falls_back_or_errors(
        pos_milli in 0usize..1000,
        bit in 0u8..8,
    ) {
        let (io, expected) = corrupted_fixture();
        let newest = io
            .names()
            .into_iter()
            .filter(|n| n.starts_with("ckpt-"))
            .max()
            .unwrap();
        let len = io.file(&newest).unwrap().len();
        let pos = (pos_milli * len / 1000).min(len - 1);
        io.tamper(&newest, |data| data[pos] ^= 1 << bit);
        check_recovery_contract(io, &expected, "single flip")?;
    }

    #[test]
    fn splattered_byte_range_in_newest_checkpoint_falls_back_or_errors(
        start_milli in 0usize..1000,
        garbage in proptest::collection::vec(0u8..=255u8, 1usize..64),
    ) {
        let (io, expected) = corrupted_fixture();
        let newest = io
            .names()
            .into_iter()
            .filter(|n| n.starts_with("ckpt-"))
            .max()
            .unwrap();
        let len = io.file(&newest).unwrap().len();
        let start = (start_milli * len / 1000).min(len - 1);
        io.tamper(&newest, |data| {
            for (i, b) in garbage.iter().enumerate() {
                if start + i < data.len() {
                    data[start + i] = *b;
                } else {
                    data.push(*b);
                }
            }
        });
        check_recovery_contract(io, &expected, "splatter")?;
    }

    #[test]
    fn truncated_newest_checkpoint_falls_back_or_errors(
        keep_milli in 0usize..1000,
    ) {
        let (io, expected) = corrupted_fixture();
        let newest = io
            .names()
            .into_iter()
            .filter(|n| n.starts_with("ckpt-"))
            .max()
            .unwrap();
        let len = io.file(&newest).unwrap().len();
        let keep = (keep_milli * len / 1000).min(len.saturating_sub(1));
        io.tamper(&newest, |data| data.truncate(keep));
        check_recovery_contract(io, &expected, "truncation")?;
    }
}

/// The non-property base case: with both checkpoints intact, recovery prefers
/// the newest and skips nothing.
#[test]
fn intact_directory_loads_the_newest_checkpoint() {
    let (io, expected) = corrupted_fixture();
    let (_, batches) = small_stream();
    let (recovered, report) = DurableSummarizer::open(config(), policy(), io).unwrap();
    assert_eq!(report.checkpoints_skipped, 0);
    assert_eq!(recovered.batches(), batches.len());
    assert_eq!(
        format!("{:?}", canonical_form(recovered.summary())),
        expected
    );
}
