//! Invalidation-soundness and identity pins for the persistent candidate index
//! (`candidates::index`):
//!
//! - **Oracle**: across randomized delta / prune / compact / recovery
//!   interleavings, the candidate sets computed *through the warm index* must be
//!   byte-identical to `candidates::reference` recomputing everything from
//!   scratch on the same view — after every batch, for every pass seed.  Any
//!   missed invalidation (a structural event that changes a root's shingle
//!   without retiring its cached signature) shows up here as a divergence.
//! - **Identity**: a stream with the index on is byte-identical (canonical form,
//!   after every batch) to the same stream with the index off, across
//!   parallelism × shards — the index is a pure accelerator.
//! - **Compaction**: a mid-stream `compact_now` renumbers the cached entries in
//!   place rather than dropping them — the next batch still serves cache hits.

use slugger_core::candidates::{self, CandidateConfig};
use slugger_core::incremental::{pass_shingle_seed, IncrementalConfig, IncrementalSummarizer};
use slugger_core::model::HierarchicalSummary;
use slugger_core::{Parallelism, Slugger, SluggerConfig};
use slugger_graph::gen::{caveman, CavemanConfig};
use slugger_graph::stream::{stream_batches, StreamConfig};
use slugger_graph::Graph;

/// One arena slot of the canonical form: (parent, children, members, alive).
type CanonicalSlot = (Option<u32>, Vec<u32>, Vec<u32>, bool);

/// Every observable byte of the model, hash maps flattened into sorted vectors
/// (the `apply_invariance.rs` / `incremental_invariance.rs` canonical form).
#[derive(Debug, PartialEq, Eq)]
struct CanonicalSummary {
    num_subnodes: usize,
    arena: Vec<CanonicalSlot>,
    edges: Vec<((u32, u32), i32)>,
}

fn canonical(summary: &HierarchicalSummary) -> CanonicalSummary {
    let arena = (0..summary.arena_len() as u32)
        .map(|id| {
            (
                summary.parent(id),
                summary.children(id).to_vec(),
                summary.members(id).to_vec(),
                summary.is_alive(id),
            )
        })
        .collect();
    let mut edges: Vec<((u32, u32), i32)> = summary
        .pn_edges()
        .map(|(key, sign)| (key, sign.weight()))
        .collect();
    edges.sort_unstable();
    CanonicalSummary {
        num_subnodes: summary.num_subnodes(),
        arena,
        edges,
    }
}

fn target_graph(seed: u64) -> Graph {
    caveman(&CavemanConfig {
        num_nodes: 260,
        num_cliques: 32,
        min_clique: 5,
        max_clique: 9,
        rewire_probability: 0.03,
        seed,
    })
}

fn bootstrap_slugger(seed: u64) -> Slugger {
    Slugger::new(SluggerConfig {
        iterations: 4,
        max_candidate_size: 64,
        max_shingle_splits: 5,
        seed,
        ..SluggerConfig::default()
    })
}

fn stream_config(seed: u64) -> IncrementalConfig {
    IncrementalConfig {
        iterations: 3,
        max_candidate_size: 48,
        max_shingle_splits: 4,
        seed,
        ..IncrementalConfig::default()
    }
}

/// Asserts the warm-index candidate sets equal the from-scratch reference on the
/// current view, for every per-batch pass seed.
fn assert_oracle(inc: &mut IncrementalSummarizer, context: &str) {
    let config = *inc.config();
    let candidate_config = CandidateConfig {
        max_group_size: config.max_candidate_size,
        max_shingle_splits: config.max_shingle_splits,
    };
    for t in 1..=config.iterations {
        let indexed = inc.probe_candidate_sets(t);
        let roots: Vec<u32> = inc.summary().roots().collect();
        let expected = candidates::reference::candidate_sets(
            inc.summary(),
            &inc.graph().to_graph(),
            &roots,
            pass_shingle_seed(config.seed, t),
            &candidate_config,
        );
        assert_eq!(indexed, expected, "{context}: oracle diverged at pass {t}");
    }
}

#[test]
fn random_interleavings_match_the_reference_oracle() {
    let target = target_graph(21);
    let (initial, batches) = stream_batches(
        &target,
        &StreamConfig {
            initial_fraction: 0.75,
            num_batches: 8,
            churn: 0.35,
            seed: 5,
        },
    );
    let config = stream_config(13);
    let mut inc = IncrementalSummarizer::bootstrap(&initial, &bootstrap_slugger(7), config);
    // An uninterrupted control stream: the interleaved run (including its
    // recovery swaps) must stay canonically identical to it after every batch.
    let mut control = IncrementalSummarizer::bootstrap(&initial, &bootstrap_slugger(7), config);
    assert_oracle(&mut inc, "bootstrap");
    for (i, delta) in batches.iter().enumerate() {
        inc.resummarize(delta);
        control.resummarize(delta);
        assert_oracle(&mut inc, &format!("batch {i}"));
        // Deterministic "random" interleaving of the maintenance events.
        if i % 2 == 1 {
            inc.prune_now(2);
            control.prune_now(2);
            assert_oracle(&mut inc, &format!("batch {i} after prune"));
        }
        if i % 3 == 2 {
            inc.compact_now();
            control.compact_now();
            assert_oracle(&mut inc, &format!("batch {i} after compact"));
        }
        if i % 4 == 3 {
            // Crash/recover: rebuild from exactly the durable checkpoint state
            // (summary, epoch, batches) — the index comes back cold and must
            // both stay sound and leave the stream's outputs untouched.
            inc = IncrementalSummarizer::resume(
                inc.summary().clone(),
                &inc.graph().to_graph(),
                config,
                inc.epoch(),
                inc.batches(),
            )
            .unwrap();
            assert_oracle(&mut inc, &format!("batch {i} after recovery"));
        }
        inc.verify_lossless()
            .unwrap_or_else(|e| panic!("batch {i}: {e}"));
        assert_eq!(
            canonical(inc.summary()),
            canonical(control.summary()),
            "batch {i}: interleaved run diverged from the uninterrupted control"
        );
    }
}

#[test]
fn index_on_and_off_are_byte_identical_across_parallelism_and_shards() {
    let target = target_graph(33);
    let (initial, batches) = stream_batches(
        &target,
        &StreamConfig {
            initial_fraction: 0.8,
            num_batches: 4,
            churn: 0.3,
            seed: 9,
        },
    );
    let run = |candidate_index: bool, parallelism: Parallelism, shards: usize| {
        let mut inc = IncrementalSummarizer::bootstrap(
            &initial,
            &bootstrap_slugger(3),
            IncrementalConfig {
                candidate_index,
                parallelism,
                shards,
                ..stream_config(17)
            },
        );
        batches
            .iter()
            .map(|delta| {
                inc.resummarize(delta);
                canonical(inc.summary())
            })
            .collect::<Vec<_>>()
    };
    let baseline = run(false, Parallelism::Sequential, 8);
    for parallelism in [1usize, 2, 4, 8] {
        for shards in [1usize, 4, 16] {
            let p = if parallelism == 1 {
                Parallelism::Sequential
            } else {
                Parallelism::Fixed(parallelism)
            };
            let indexed = run(true, p, shards);
            for (batch, (got, expected)) in indexed.iter().zip(baseline.iter()).enumerate() {
                assert_eq!(
                    got, expected,
                    "index-on diverged from index-off after batch {batch} at \
                     parallelism {parallelism}, shards {shards}"
                );
            }
        }
    }
}

#[test]
fn mid_stream_compact_remaps_rather_than_drops_the_index() {
    let target = target_graph(41);
    let (initial, batches) = stream_batches(
        &target,
        &StreamConfig {
            initial_fraction: 0.75,
            num_batches: 6,
            churn: 0.3,
            seed: 11,
        },
    );
    // Automatic compaction off: dead slots pile up so the forced compact below
    // has real renumbering to do.
    let config = IncrementalConfig {
        compact_dead_ratio: 0.0,
        ..stream_config(19)
    };
    let mut inc = IncrementalSummarizer::bootstrap(&initial, &bootstrap_slugger(5), config);
    for delta in &batches[..4] {
        inc.resummarize(delta);
    }
    // Warm the cache over every root, then force the remap.
    inc.probe_candidate_sets(1);
    let entries_before = inc.candidate_index().num_entries();
    assert!(entries_before > 0, "stream must have warmed the index");
    assert!(
        inc.summary().num_dead_slots() > 0,
        "stream must have left dead slots to reclaim"
    );
    let reclaimed = inc.compact_now();
    assert!(reclaimed > 0, "forced compaction must reclaim slots");
    assert!(
        inc.candidate_index().num_entries() > 0,
        "compaction must remap the cached entries, not drop them"
    );
    assert_oracle(&mut inc, "after forced compact");
    // The next batch still serves hits from the remapped cache.
    let report = inc.resummarize(&batches[4]);
    assert!(
        report.cached_roots > 0,
        "post-compaction batch must still hit the remapped cache \
         (reshingled {}, cached {})",
        report.reshingled_roots,
        report.cached_roots
    );
    inc.verify_lossless().unwrap();
}
