//! Snapshot-vs-oracle equivalence for the summary-native read path
//! (`slugger_core::snapshot`):
//!
//! - **Oracle**: across randomized delta / prune / compact / recovery
//!   interleavings, every published epoch snapshot must answer neighbor and
//!   degree queries byte-identically to `decode_full` of that epoch's summary,
//!   for **every** node — through the `QueryEngine` (i.e. through its cache),
//!   not just the raw snapshot accessors.
//! - **Pinning**: a reader pinned to an early epoch keeps serving that epoch's
//!   exact answers while the stream moves on, prunes and compacts underneath
//!   it — snapshots own their state, arena renumbering cannot reach them.
//! - **Lattice**: the published answers are identical across
//!   parallelism {1, 2, 4, 8} x shards {1, 4, 16} — scheduling is invisible to
//!   readers, same as the existing canonical-form invariance pins.
//! - **Durability**: a mid-stream kill/recover (fault-injected `MemIo`)
//!   republishes a snapshot whose answers match an uninterrupted control run
//!   at every batch boundary.
//! - **No panics**: arbitrary `u32` ids (way past the arena) never panic any
//!   query entry point — they return typed errors or empty views (proptest).

// The vendored `proptest!` macro expands recursively per statement.

use proptest::prelude::*;
use slugger_core::decode::{decode_full, try_neighbors_of, DecodeError, SummaryNeighborView};
use slugger_core::incremental::{IncrementalConfig, IncrementalSummarizer};
use slugger_core::snapshot::{QueryEngine, SnapshotSlot};
use slugger_core::storage::durable::fault::{FaultPlan, MemIo};
use slugger_core::storage::durable::{DurableError, DurablePolicy, DurableSummarizer};
use slugger_core::{Parallelism, Slugger, SluggerConfig};
use slugger_graph::gen::{caveman, CavemanConfig};
use slugger_graph::stream::{stream_batches, StreamConfig};
use slugger_graph::{Graph, NeighborAccess, NodeId};
use std::sync::Arc;

fn target_graph(seed: u64) -> Graph {
    caveman(&CavemanConfig {
        num_nodes: 260,
        num_cliques: 32,
        min_clique: 5,
        max_clique: 9,
        rewire_probability: 0.03,
        seed,
    })
}

fn bootstrap_slugger(seed: u64) -> Slugger {
    Slugger::new(SluggerConfig {
        iterations: 4,
        max_candidate_size: 64,
        max_shingle_splits: 5,
        seed,
        ..SluggerConfig::default()
    })
}

fn stream_config(seed: u64) -> IncrementalConfig {
    IncrementalConfig {
        iterations: 3,
        max_candidate_size: 48,
        max_shingle_splits: 4,
        seed,
        ..IncrementalConfig::default()
    }
}

/// The full answer surface of one snapshot: for every node, the neighbor list
/// the engine serves (and, implicitly, the degree).
fn engine_answers(engine: &mut QueryEngine) -> Vec<Vec<NodeId>> {
    (0..engine.snapshot().num_subnodes() as NodeId)
        .map(|v| {
            let neighbors = engine
                .neighbors(v)
                .unwrap_or_else(|e| panic!("in-range node {v}: {e}"))
                .to_vec();
            let degree = engine.degree(v).unwrap();
            assert_eq!(degree, neighbors.len(), "degree disagrees at node {v}");
            neighbors
        })
        .collect()
}

/// Asserts the engine's answers (through the cache: every node queried twice)
/// equal `decode_full` of the snapshot's own summary.
fn assert_snapshot_matches_decode(slot: &SnapshotSlot, context: &str) {
    let snapshot = slot
        .latest()
        .unwrap_or_else(|| panic!("{context}: no snapshot published"));
    let decoded = decode_full(snapshot.summary());
    let mut engine = QueryEngine::new(Arc::clone(&snapshot));
    for sweep in 0..2 {
        for v in 0..snapshot.num_subnodes() as NodeId {
            let got = engine
                .neighbors(v)
                .unwrap_or_else(|e| panic!("{context}: node {v}: {e}"));
            assert_eq!(
                got,
                decoded.neighbors(v),
                "{context}: sweep {sweep}: engine answer diverged at node {v}"
            );
        }
    }
    assert!(
        engine.cache_hits() > 0,
        "{context}: the second sweep must be served from the cache"
    );
}

#[test]
fn random_interleavings_publish_oracle_identical_snapshots() {
    let target = target_graph(21);
    let (initial, batches) = stream_batches(
        &target,
        &StreamConfig {
            initial_fraction: 0.75,
            num_batches: 8,
            churn: 0.35,
            seed: 5,
        },
    );
    let config = stream_config(13);
    let slot = SnapshotSlot::new();
    let mut inc = IncrementalSummarizer::bootstrap(&initial, &bootstrap_slugger(7), config);
    inc.attach_snapshots(slot.clone()).unwrap();
    assert_snapshot_matches_decode(&slot, "bootstrap");
    for (i, delta) in batches.iter().enumerate() {
        inc.resummarize(delta);
        assert_eq!(
            slot.latest_epoch().map(|(_, batch)| batch),
            Some(inc.batches()),
            "batch {i}: publication must track the batch counter"
        );
        assert_snapshot_matches_decode(&slot, &format!("batch {i}"));
        // Deterministic "random" interleaving of the maintenance events.
        if i % 2 == 1 {
            inc.prune_now(2);
            inc.publish_snapshot_now().unwrap();
            assert_snapshot_matches_decode(&slot, &format!("batch {i} after prune"));
        }
        if i % 3 == 2 {
            inc.compact_now();
            inc.publish_snapshot_now().unwrap();
            assert_snapshot_matches_decode(&slot, &format!("batch {i} after compact"));
        }
        if i % 4 == 3 {
            // Crash/recover from exactly the durable checkpoint state: the
            // recovered summarizer re-attaches the slot and must republish a
            // snapshot answering identically to its own summary.
            inc = IncrementalSummarizer::resume(
                inc.summary().clone(),
                &inc.graph().to_graph(),
                config,
                inc.epoch(),
                inc.batches(),
            )
            .unwrap();
            inc.attach_snapshots(slot.clone()).unwrap();
            assert_snapshot_matches_decode(&slot, &format!("batch {i} after recovery"));
        }
    }
    // The stream converged to the target, and so does the served view.
    let snapshot = slot.latest().unwrap();
    assert_eq!(
        decode_full(snapshot.summary()).edge_set(),
        target.edge_set()
    );
}

#[test]
fn pinned_snapshots_survive_pruning_and_compaction() {
    let target = target_graph(33);
    let (initial, batches) = stream_batches(
        &target,
        &StreamConfig {
            initial_fraction: 0.75,
            num_batches: 6,
            churn: 0.3,
            seed: 9,
        },
    );
    // Automatic compaction off so the forced compact below has real
    // renumbering to do under the pinned reader.
    let config = IncrementalConfig {
        compact_dead_ratio: 0.0,
        ..stream_config(17)
    };
    let slot = SnapshotSlot::new();
    let mut inc = IncrementalSummarizer::bootstrap(&initial, &bootstrap_slugger(3), config);
    inc.attach_snapshots(slot.clone()).unwrap();
    inc.resummarize(&batches[0]);

    // Pin a reader to the epoch published after batch 0 and record its truth.
    let pinned = slot.latest().unwrap();
    let mut reader = QueryEngine::new(Arc::clone(&pinned));
    let frozen = engine_answers(&mut reader);
    let frozen_epoch = reader.epoch();

    // The stream moves on: more churn, a global prune, a forced compaction.
    for delta in &batches[1..] {
        inc.resummarize(delta);
    }
    inc.prune_now(2);
    let reclaimed = inc.compact_now();
    assert!(reclaimed > 0, "forced compaction must reclaim dead slots");
    inc.publish_snapshot_now().unwrap();

    // The pinned reader still serves the frozen epoch's exact answers...
    assert_eq!(reader.epoch(), frozen_epoch);
    assert_eq!(
        engine_answers(&mut reader),
        frozen,
        "a pinned snapshot must be immune to later pruning and compaction"
    );
    // ...while re-pinning to the slot serves the new epoch.
    assert!(reader.pin_latest(&slot), "a newer snapshot is available");
    assert_ne!(reader.epoch(), frozen_epoch);
    assert_snapshot_matches_decode(&slot, "after compaction");
}

#[test]
fn snapshot_answers_are_identical_across_parallelism_and_shards() {
    let target = target_graph(41);
    let (initial, batches) = stream_batches(
        &target,
        &StreamConfig {
            initial_fraction: 0.8,
            num_batches: 4,
            churn: 0.3,
            seed: 11,
        },
    );
    let run = |parallelism: Parallelism, shards: usize| -> Vec<Vec<Vec<NodeId>>> {
        let slot = SnapshotSlot::new();
        let mut inc = IncrementalSummarizer::bootstrap(
            &initial,
            &bootstrap_slugger(5),
            IncrementalConfig {
                parallelism,
                shards,
                ..stream_config(19)
            },
        );
        inc.attach_snapshots(slot.clone()).unwrap();
        batches
            .iter()
            .map(|delta| {
                inc.resummarize(delta);
                let mut engine = QueryEngine::new(slot.latest().unwrap());
                engine_answers(&mut engine)
            })
            .collect()
    };
    let baseline = run(Parallelism::Sequential, 8);
    for point in slugger_core::testsupport::lattice() {
        let got = run(point.parallelism, point.shards);
        assert_eq!(
            got, baseline,
            "served answers diverged at parallelism {}, shards {}",
            point.threads, point.shards
        );
    }
}

#[test]
fn kill_recover_republishes_identical_snapshots() {
    let target = target_graph(51);
    let (initial, batches) = stream_batches(
        &target,
        &StreamConfig {
            initial_fraction: 0.8,
            num_batches: 4,
            churn: 0.3,
            seed: 7,
        },
    );
    let config = stream_config(23);
    let policy = DurablePolicy {
        checkpoint_every_batches: 2,
        checkpoint_wal_bytes: 0,
    };

    // Uninterrupted in-memory control: the per-batch answer surface.
    let control_slot = SnapshotSlot::new();
    let mut control = IncrementalSummarizer::bootstrap(&initial, &bootstrap_slugger(29), config);
    control.attach_snapshots(control_slot.clone()).unwrap();
    let control_answers: Vec<Vec<Vec<NodeId>>> = batches
        .iter()
        .map(|delta| {
            control.resummarize(delta);
            let mut engine = QueryEngine::new(control_slot.latest().unwrap());
            engine_answers(&mut engine)
        })
        .collect();

    // Durable run over fault-injected memory: one crash per fault phase, then
    // recovery re-opens the directory, re-attaches the slot (publishing the
    // recovered state) and finishes the stream.
    let drive = |io: MemIo, slot: &SnapshotSlot| -> Result<Vec<Vec<Vec<NodeId>>>, DurableError> {
        let (mut durable, _report) = DurableSummarizer::open_or_create(config, policy, io, || {
            IncrementalSummarizer::bootstrap(&initial, &bootstrap_slugger(29), config)
        })?;
        durable
            .attach_snapshots(slot.clone())
            .expect("recovered summary must validate at publication");
        let recovered = slot.latest().expect("open publishes the recovered state");
        assert_eq!(
            decode_full(recovered.summary()).edge_set(),
            decode_full(durable.summary()).edge_set(),
            "the published recovery snapshot must match the recovered summary"
        );
        let mut answers = Vec::new();
        while durable.batches() < batches.len() {
            durable.ingest(&batches[durable.batches()])?;
            let mut engine = QueryEngine::new(slot.latest().unwrap());
            answers.push(engine_answers(&mut engine));
        }
        Ok(answers)
    };

    // Probe a clean run for its fault-point count, then crash at three spread
    // points (the exhaustive sweep lives in durable_recovery.rs — here the
    // claim under test is the *snapshot* equivalence after recovery).
    let probe = MemIo::new();
    let clean_slot = SnapshotSlot::new();
    let clean = drive(probe.clone(), &clean_slot).expect("clean durable run");
    assert_eq!(
        clean.last(),
        control_answers.last(),
        "durable run must serve the control's final answers"
    );
    let total_ops = probe.ops();
    for at_op in [total_ops / 4, total_ops / 2, (3 * total_ops) / 4] {
        let io = MemIo::new();
        io.arm(FaultPlan {
            at_op,
            keep_bytes: if at_op % 2 == 0 { 0 } else { 3 },
        });
        let slot = SnapshotSlot::new();
        let mut attempts = 0;
        let answers = loop {
            match drive(io.clone(), &slot) {
                Ok(answers) => break answers,
                Err(_) => {
                    attempts += 1;
                    assert!(
                        attempts <= 3,
                        "fault at op {at_op}: recovery did not converge"
                    );
                    // Crash: drop unsynced data (clearing the fired fault) so
                    // the "restarted process" can recover and finish the run.
                    let mut crashed = io.clone();
                    crashed.crash(0);
                }
            }
        };
        // Whatever batches the post-recovery run ingested must have served
        // exactly the control's answers for those batch indices.  A fault that
        // lands after the final batch was acknowledged leaves nothing to
        // replay — then the recovered snapshot itself must serve the control's
        // final answers.
        let served = answers.len();
        if served == 0 {
            let mut engine = QueryEngine::new(slot.latest().unwrap());
            assert_eq!(
                engine_answers(&mut engine),
                *control_answers.last().unwrap(),
                "fault at op {at_op}: recovered final snapshot diverged from control"
            );
        } else {
            assert_eq!(
                answers,
                control_answers[batches.len() - served..],
                "fault at op {at_op}: post-recovery snapshots diverged from control"
            );
        }
    }
}

/// The proptest body (a plain function so the vendored `proptest!` macro —
/// which recurses per statement — only has to expand a single call): no query
/// entry point may panic on an arbitrary id, and in-range ids must agree with
/// the decode oracle.
fn check_arbitrary_ids_never_panic(graph_seed: u64, ids: &[u32]) {
    let target = caveman(&CavemanConfig {
        num_nodes: 120,
        num_cliques: 14,
        min_clique: 5,
        max_clique: 8,
        rewire_probability: 0.02,
        seed: graph_seed,
    });
    let outcome = bootstrap_slugger(graph_seed).summarize(&target);
    let slot = SnapshotSlot::new();
    let mut inc =
        IncrementalSummarizer::from_summary(outcome.summary, &target, stream_config(graph_seed))
            .unwrap();
    inc.attach_snapshots(slot.clone()).unwrap();
    let snapshot = slot.latest().unwrap();
    let mut engine = QueryEngine::new(Arc::clone(&snapshot));
    let n = snapshot.num_subnodes();
    let view = SummaryNeighborView::new(snapshot.summary());
    for &v in ids {
        let in_range = (v as usize) < n;
        // Raw decode entry point.
        match try_neighbors_of(snapshot.summary(), v) {
            Ok(_) => assert!(in_range, "node {v}: out-of-range id decoded"),
            Err(DecodeError::NodeOutOfRange { node, num_subnodes }) => {
                assert!(!in_range);
                assert_eq!((node, num_subnodes), (v, n));
            }
            Err(e) => panic!("node {v}: unexpected error {e}"),
        }
        // Snapshot accessors and the engine (cache path included).
        assert_eq!(snapshot.try_neighbors(v).is_ok(), in_range);
        assert_eq!(snapshot.try_degree(v).is_ok(), in_range);
        assert_eq!(engine.neighbors(v).is_ok(), in_range);
        assert_eq!(engine.degree(v).is_ok(), in_range);
        assert_eq!(engine.bfs_within(v, 2).is_ok(), in_range);
        assert_eq!(engine.bfs_distances(v).is_ok(), in_range);
        // The infallible algorithm view: empty instead of a panic.
        if !in_range {
            assert!(view.neighbors_vec(v).is_empty());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn arbitrary_ids_never_panic(
        graph_seed in 0u64..200,
        ids in proptest::collection::vec(0u32..u32::MAX, 24usize),
    ) {
        check_arbitrary_ids_never_panic(graph_seed, &ids);
    }
}
