//! Integration tests of the sharded merge pipeline: thread-count invariance,
//! losslessness at every parallelism level, and determinism of the shard structure.
//!
//! The pipeline's contract (see `slugger_core::pipeline`) is that both the
//! [`Parallelism`] knob and the shard count are pure scheduling knobs: for a fixed
//! seed the summary must be bit-for-bit equivalent no matter how many threads or
//! shards execute the planning.  These tests pin that down on structured (caveman)
//! and skewed (RMAT) graphs.

use slugger_core::decode::{decode_full, verify_lossless};
use slugger_core::{Parallelism, Slugger, SluggerConfig};
use slugger_graph::gen::{caveman, rmat, CavemanConfig, RmatConfig};
use slugger_graph::Graph;

fn caveman_graph() -> Graph {
    caveman(&CavemanConfig {
        num_nodes: 300,
        num_cliques: 40,
        min_clique: 5,
        max_clique: 9,
        rewire_probability: 0.03,
        seed: 11,
    })
}

fn rmat_graph() -> Graph {
    rmat(&RmatConfig {
        scale: 11,
        num_edges: 12_000,
        seed: 5,
        ..RmatConfig::default()
    })
}

fn config(parallelism: Parallelism, seed: u64) -> SluggerConfig {
    SluggerConfig {
        iterations: 6,
        max_candidate_size: 64,
        max_shingle_splits: 5,
        seed,
        parallelism,
        ..SluggerConfig::default()
    }
}

const LEVELS: [Parallelism; 3] = [
    Parallelism::Sequential,
    Parallelism::Fixed(2),
    Parallelism::Fixed(8),
];

#[test]
fn lossless_roundtrip_at_every_parallelism_level() {
    for graph in [caveman_graph(), rmat_graph()] {
        for parallelism in LEVELS {
            let outcome = Slugger::new(config(parallelism, 3)).summarize(&graph);
            // Full Algorithm-4 decode must reproduce the input edge set exactly.
            let decoded = decode_full(&outcome.summary);
            assert_eq!(
                decoded.edge_set(),
                graph.edge_set(),
                "decode mismatch at {parallelism:?}"
            );
            verify_lossless(&outcome.summary, &graph).unwrap();
            outcome.summary.validate().unwrap();
        }
    }
}

#[test]
fn parallel_runs_reproduce_the_sequential_summary() {
    for (graph, seed) in [(caveman_graph(), 42u64), (rmat_graph(), 7u64)] {
        let sequential = Slugger::new(config(Parallelism::Sequential, seed)).summarize(&graph);
        for parallelism in [
            Parallelism::Fixed(2),
            Parallelism::Fixed(8),
            Parallelism::Auto,
        ] {
            let parallel = Slugger::new(config(parallelism, seed)).summarize(&graph);
            assert_eq!(
                sequential.metrics.cost, parallel.metrics.cost,
                "encoding cost diverged at {parallelism:?}"
            );
            assert_eq!(sequential.metrics.p_edges, parallel.metrics.p_edges);
            assert_eq!(sequential.metrics.n_edges, parallel.metrics.n_edges);
            assert_eq!(sequential.metrics.h_edges, parallel.metrics.h_edges);
            // Stronger than cost equality: the decoded graphs and the per-iteration
            // trajectories must agree too.
            assert_eq!(
                decode_full(&sequential.summary).edge_set(),
                decode_full(&parallel.summary).edge_set()
            );
            for (a, b) in sequential.iterations.iter().zip(parallel.iterations.iter()) {
                assert_eq!(a.merges, b.merges, "iteration {} diverged", a.iteration);
                assert_eq!(a.cost, b.cost, "iteration {} diverged", a.iteration);
            }
        }
    }
}

#[test]
fn neither_shard_count_nor_thread_count_changes_the_result() {
    // Every candidate set is planned against the frozen iteration view with its own
    // RNG stream, so both knobs are pure scheduling: the summary is a function of
    // (graph, seed) alone.
    let graph = caveman_graph();
    let baseline = Slugger::new(config(Parallelism::Sequential, 9)).summarize(&graph);
    for shards in [1usize, 4, 13] {
        for parallelism in [Parallelism::Sequential, Parallelism::Fixed(8)] {
            let outcome = Slugger::new(SluggerConfig {
                shards,
                ..config(parallelism, 9)
            })
            .summarize(&graph);
            assert_eq!(
                baseline.metrics.cost, outcome.metrics.cost,
                "result changed at shards = {shards}, {parallelism:?}"
            );
            verify_lossless(&outcome.summary, &graph).unwrap();
        }
    }
}

#[test]
fn empty_and_tiny_graphs_survive_parallel_execution() {
    for parallelism in LEVELS {
        let empty = Graph::empty(4);
        let outcome = Slugger::new(config(parallelism, 0)).summarize(&empty);
        assert_eq!(outcome.metrics.cost, 0);
        let single = Graph::from_edges(2, vec![(0, 1)]);
        let outcome = Slugger::new(config(parallelism, 0)).summarize(&single);
        verify_lossless(&outcome.summary, &single).unwrap();
    }
}
