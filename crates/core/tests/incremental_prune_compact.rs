//! Acceptance tests for engine-aware incremental pruning and arena compaction
//! (the streaming engine's post-batch prune + compact lifecycle):
//!
//! * after **every** batch of a 10-batch RMAT stream, the incrementally-pruned
//!   maintained summary decodes to the live graph;
//! * a forced mid-stream `compact` (plus an aggressive dead-slot threshold)
//!   changes neither the id-free canonical form nor any subsequent batch's
//!   output, across parallelism {1, 2, 4, 8} × shards {1, 4, 16};
//! * resident arena slots stay bounded by the live summary over the stream
//!   (the dead-slot ratio never exceeds the compaction threshold at batch end);
//! * the incrementally-pruned summary's encoding cost stays within a pinned ε of
//!   a from-scratch `prune_all` snapshot taken off the legacy unpruned stream;
//! * a proptest interleaves random delta batches with `prune_now`/`compact_now`
//!   and asserts decode-identity plus full engine-bookkeeping validation after
//!   every operation, including a mid-stream storage round-trip of a *pruned,
//!   compacted* summary.

// The vendored `proptest!` macro expands recursively per statement.
#![recursion_limit = "1024"]

use proptest::prelude::*;
use slugger_core::incremental::{IncrementalConfig, IncrementalSummarizer};
use slugger_core::model::HierarchicalSummary;
use slugger_core::storage::{read_summary, write_summary};
use slugger_core::{Parallelism, Slugger, SluggerConfig};
use slugger_graph::gen::{caveman, rmat, CavemanConfig, RmatConfig};
use slugger_graph::stream::{stream_batches, DynamicGraph, GraphDelta, StreamConfig};
use slugger_graph::Graph;
use std::collections::{BTreeMap, BTreeSet};

/// The id-free canonical form of a summary (see `storage_roundtrip.rs`): alive
/// supernodes keyed by their member sets, each mapped to its parent's member set,
/// plus the p/n-edges keyed by both endpoints' member sets.  Compaction renumbers
/// the arena, so this — not raw ids — is what must be preserved.
type Canonical = (
    usize,
    BTreeMap<Vec<u32>, Option<Vec<u32>>>,
    BTreeSet<(Vec<u32>, Vec<u32>, i32)>,
);

fn canonical(summary: &HierarchicalSummary) -> Canonical {
    let mut nodes: BTreeMap<Vec<u32>, Option<Vec<u32>>> = BTreeMap::new();
    for id in 0..summary.arena_len() as u32 {
        if !summary.is_alive(id) {
            continue;
        }
        let members = summary.members(id).to_vec();
        let parent = summary.parent(id).map(|p| summary.members(p).to_vec());
        assert!(
            nodes.insert(members, parent).is_none(),
            "alive member sets must be unique"
        );
    }
    let mut edges: BTreeSet<(Vec<u32>, Vec<u32>, i32)> = BTreeSet::new();
    for ((a, b), sign) in summary.pn_edges() {
        let ma = summary.members(a).to_vec();
        let mb = summary.members(b).to_vec();
        let (x, y) = if ma <= mb { (ma, mb) } else { (mb, ma) };
        edges.insert((x, y, sign.weight()));
    }
    (summary.num_subnodes(), nodes, edges)
}

const NUM_BATCHES: usize = 10;

fn rmat_stream() -> (Graph, Graph, Vec<GraphDelta>) {
    let target = rmat(&RmatConfig {
        scale: 10,
        num_edges: 4_000,
        seed: 6,
        ..RmatConfig::default()
    });
    let (initial, batches) = stream_batches(
        &target,
        &StreamConfig {
            initial_fraction: 0.8,
            num_batches: NUM_BATCHES,
            churn: 0.3,
            seed: 5,
        },
    );
    (target, initial, batches)
}

fn bootstrap_slugger(parallelism: Parallelism, shards: usize) -> Slugger {
    Slugger::new(SluggerConfig {
        iterations: 4,
        max_candidate_size: 64,
        max_shingle_splits: 5,
        seed: 7,
        parallelism,
        shards,
        ..SluggerConfig::default()
    })
}

fn stream_config(parallelism: Parallelism, shards: usize) -> IncrementalConfig {
    IncrementalConfig {
        iterations: 3,
        max_candidate_size: 48,
        max_shingle_splits: 4,
        seed: 13,
        parallelism,
        shards,
        ..IncrementalConfig::default()
    }
}

/// Runs the stream under one pipeline setting; asserts decode-identity against the
/// live graph after every batch and returns the per-batch id-free canonical form.
/// `compaction` enables an aggressive dead-slot threshold plus one forced
/// mid-stream `compact_now`.
fn run_stream(
    initial: &Graph,
    batches: &[GraphDelta],
    parallelism: Parallelism,
    shards: usize,
    compaction: bool,
) -> Vec<Canonical> {
    let config = IncrementalConfig {
        compact_dead_ratio: if compaction { 0.25 } else { 0.0 },
        ..stream_config(parallelism, shards)
    };
    let mut inc =
        IncrementalSummarizer::bootstrap(initial, &bootstrap_slugger(parallelism, shards), config);
    let mut current = DynamicGraph::from_graph(initial);
    let mut compacted = 0usize;
    let mut out = Vec::with_capacity(batches.len());
    for (i, delta) in batches.iter().enumerate() {
        delta.apply_to(&mut current);
        let report = inc.resummarize(delta);
        compacted += report.compacted_slots;
        if compaction && i == batches.len() / 2 {
            compacted += inc.compact_now();
        }
        assert_eq!(
            slugger_core::decode::decode_full(inc.summary()).edge_set(),
            current.to_graph().edge_set(),
            "batch {i}: maintained summary diverged from the live graph \
             (parallelism {parallelism:?}, shards {shards}, compaction {compaction})"
        );
        inc.validate()
            .unwrap_or_else(|e| panic!("batch {i}: engine bookkeeping diverged: {e}"));
        if compaction {
            // Resident arena bounded by the live summary: at batch end the dead
            // fraction must sit at or below the compaction threshold.
            assert!(
                report.dead_slots as f64 <= 0.25 * report.arena_len as f64 + 1.0,
                "batch {i}: dead slots {} of {} exceed the compaction threshold",
                report.dead_slots,
                report.arena_len
            );
        }
        out.push(canonical(inc.summary()));
    }
    if compaction {
        assert!(
            compacted > 0,
            "a churned 10-batch stream must trigger at least one compaction"
        );
    }
    out
}

/// The acceptance sweep: a forced mid-stream compact (and threshold-triggered
/// compactions) must change nothing, and every `parallelism × shards` setting must
/// produce the identical stream of summaries — all compared in id-free canonical
/// form against the sequential, never-compacting baseline.
#[test]
fn compaction_and_parallelism_never_change_the_stream() {
    let (_, initial, batches) = rmat_stream();
    let baseline = run_stream(&initial, &batches, Parallelism::Sequential, 8, false);
    for parallelism in [1usize, 2, 4, 8] {
        for shards in [1usize, 4, 16] {
            let p = if parallelism == 1 {
                Parallelism::Sequential
            } else {
                Parallelism::Fixed(parallelism)
            };
            let run = run_stream(&initial, &batches, p, shards, true);
            for (batch, (got, expected)) in run.iter().zip(baseline.iter()).enumerate() {
                assert_eq!(
                    got, expected,
                    "summary diverged after batch {batch} at parallelism \
                     {parallelism}, shards {shards} (with compaction)"
                );
            }
        }
    }
}

/// The incrementally-pruned maintained summary must stay cost-competitive with a
/// from-scratch `prune_all` snapshot taken off the legacy (unpruned-maintained)
/// stream.  The two streams legitimately diverge — pruning between batches changes
/// later candidate grouping — so the pin is an ε on encoding cost, not canonical
/// equality.
#[test]
fn incremental_prune_cost_matches_snapshot_prune_within_epsilon() {
    const EPSILON: f64 = 0.05;
    let (_, initial, batches) = rmat_stream();
    let incremental_config = stream_config(Parallelism::Sequential, 8);
    let legacy_config = IncrementalConfig {
        prune_rounds: 0,
        compact_dead_ratio: 0.0,
        ..incremental_config
    };
    let slugger = bootstrap_slugger(Parallelism::Sequential, 8);
    let mut pruned = IncrementalSummarizer::bootstrap(&initial, &slugger, incremental_config);
    let mut legacy = IncrementalSummarizer::bootstrap(&initial, &slugger, legacy_config);
    for (i, delta) in batches.iter().enumerate() {
        let report = pruned.resummarize(delta);
        legacy.resummarize(delta);
        let (snapshot, _) = legacy.pruned_summary(2);
        let incremental_cost = report.cost as f64;
        let snapshot_cost = snapshot.encoding_cost() as f64;
        assert!(
            incremental_cost <= snapshot_cost * (1.0 + EPSILON) + 8.0,
            "batch {i}: incrementally-pruned cost {incremental_cost} exceeds \
             snapshot-pruned cost {snapshot_cost} by more than {EPSILON}"
        );
    }
    // And the maintained summary really is pruned: a global prune pass on top of
    // the per-batch region prunes finds (next to) nothing left to remove.
    let (_, residual) = pruned.pruned_summary(2);
    let live: usize = pruned.summary().arena_len() - pruned.summary().num_dead_slots();
    assert!(
        residual.total_changes() * 20 <= live.max(20),
        "region pruning left {} global opportunities over {} live supernodes",
        residual.total_changes(),
        live
    );
}

fn proptest_target(seed: u64) -> Graph {
    caveman(&CavemanConfig {
        num_nodes: 140,
        num_cliques: 18,
        min_clique: 5,
        max_clique: 9,
        rewire_probability: 0.03,
        seed,
    })
}

/// The proptest body (a plain function so the vendored `proptest!` macro — which
/// recurses per statement — only has to expand a single call): random delta
/// batches interleaved with forced global prunes and forced compactions, under
/// randomized prune/compaction knobs.  Decode-identity and the full
/// engine-bookkeeping validation must hold after every single operation, and a
/// mid-stream storage round-trip of the (pruned, possibly compacted) summary must
/// resume losslessly.
fn check_prune_compact_interleaving(
    graph_seed: u64,
    stream_seed: u64,
    prune_rounds: usize,
    compact_ratio: f64,
    ops: &[u8],
) {
    let target = proptest_target(graph_seed);
    let (initial, batches) = stream_batches(
        &target,
        &StreamConfig {
            initial_fraction: 0.75,
            num_batches: ops.len(),
            churn: 0.3,
            seed: stream_seed,
        },
    );
    let config = IncrementalConfig {
        iterations: 3,
        max_candidate_size: 48,
        max_shingle_splits: 4,
        prune_rounds,
        compact_dead_ratio: compact_ratio,
        seed: stream_seed,
        ..IncrementalConfig::default()
    };
    let slugger = Slugger::new(SluggerConfig {
        iterations: 4,
        max_candidate_size: 64,
        max_shingle_splits: 5,
        seed: graph_seed,
        ..SluggerConfig::default()
    });
    let mut inc = IncrementalSummarizer::bootstrap(&initial, &slugger, config);
    let mut current = DynamicGraph::from_graph(&initial);
    for (i, (delta, &op)) in batches.iter().zip(ops.iter()).enumerate() {
        delta.apply_to(&mut current);
        inc.resummarize(delta);
        inc.verify_lossless()
            .unwrap_or_else(|e| panic!("batch {i}: not lossless after batch: {e}"));
        inc.validate()
            .unwrap_or_else(|e| panic!("batch {i}: bookkeeping after batch: {e}"));
        match op {
            1 => {
                inc.prune_now(1);
            }
            2 => {
                inc.compact_now();
            }
            3 => {
                inc.prune_now(2);
                inc.compact_now();
            }
            _ => {}
        }
        inc.verify_lossless()
            .unwrap_or_else(|e| panic!("batch {i}: not lossless after op {op}: {e}"));
        inc.validate()
            .unwrap_or_else(|e| panic!("batch {i}: bookkeeping after op {op}: {e}"));
        inc.summary()
            .validate()
            .unwrap_or_else(|e| panic!("batch {i}: summary invalid: {e}"));
        if i == batches.len() / 2 {
            // Mid-stream persistence of a pruned (op-dependent: compacted)
            // summary: the canonical form must survive the round-trip and the
            // resumed stream must keep the invariant.
            let before = canonical(inc.summary());
            let mut buffer = Vec::new();
            write_summary(inc.summary(), &mut buffer).unwrap();
            let restored = read_summary(&buffer[..]).unwrap();
            assert_eq!(canonical(&restored), before);
            inc =
                IncrementalSummarizer::from_summary(restored, &current.to_graph(), config).unwrap();
            inc.verify_lossless()
                .unwrap_or_else(|e| panic!("batch {i}: reload broke losslessness: {e}"));
        }
    }
    // The stream converged to the target graph, and so did the summary.
    assert_eq!(
        slugger_core::decode::decode_full(inc.summary()).edge_set(),
        target.edge_set()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prune_compact_interleaving_stays_lossless(
        graph_seed in 0u64..500,
        stream_seed in 0u64..500,
        knobs in 0u8..9,
        ops in proptest::collection::vec(0u8..4, 6usize),
    ) {
        // `knobs` packs (prune_rounds ∈ {0,1,2}) × (compact_dead_ratio ∈
        // {0.0, 0.25, 0.75}) — the vendored proptest supports 4 parameters.
        let prune_rounds = (knobs % 3) as usize;
        let compact_ratio = [0.0f64, 0.25, 0.75][(knobs / 3) as usize];
        check_prune_compact_interleaving(
            graph_seed,
            stream_seed,
            prune_rounds,
            compact_ratio,
            &ops,
        );
    }
}
