//! Property tests of the apply stage's conflict partitioning
//! (`slugger_core::engine::apply::conflict_batches`):
//!
//! * every plan lands in **exactly one** batch;
//! * batches are **genuinely independent** — no two plans in a batch share a
//!   touched-or-adjacent root (footprints recomputed here from first principles,
//!   not via the implementation's own helper);
//! * conflicting plans are **ordered** — the earlier (lower set-index) plan's batch
//!   is strictly smaller, so commits preserve the serial order of every
//!   conflicting pair;
//! * replaying through the conflict-partitioned parallel path produces the same
//!   state as the serial replay, for the random plans the properties generated.

// The vendored `proptest!` macro expands recursively per statement.
#![recursion_limit = "256"]

use proptest::prelude::*;
use slugger_core::candidates::{self, CandidateConfig};
use slugger_core::engine::apply::{
    apply_plans, apply_plans_with, conflict_batches, ApplyWorkers, SetPlan,
};
use slugger_core::engine::plan::{PlanScratch, PlanningEngine};
use slugger_core::engine::{MergeCtx, MergeEngine};
use slugger_core::merge::{plan_candidate_set, MergeOptions};
use slugger_core::pipeline::set_rng;
use slugger_graph::Graph;
use std::collections::BTreeSet;

/// Plans every candidate set of the graph's identity state, exactly as one pipeline
/// iteration would.
fn plan_iteration(engine: &MergeEngine, graph: &Graph, seed: u64) -> Vec<SetPlan> {
    let roots = engine.roots();
    let sets = candidates::candidate_sets(
        engine.summary(),
        graph,
        &roots,
        seed,
        &CandidateConfig {
            max_group_size: 24,
            max_shingle_splits: 3,
        },
    );
    let mut ctx = MergeCtx::new();
    let mut scratch = PlanScratch::new();
    sets.iter()
        .enumerate()
        .map(|(set_index, set)| {
            let mut overlay = PlanningEngine::new(engine, set, &mut scratch);
            let mut rng = set_rng(seed, 1, set_index);
            let (merges, stats) = plan_candidate_set(
                &mut overlay,
                &mut ctx,
                set,
                &MergeOptions {
                    threshold: 0.0,
                    height_bound: None,
                },
                &mut rng,
            );
            SetPlan {
                set_index,
                merges,
                stats,
            }
        })
        .collect()
}

/// The footprint of a plan, recomputed from first principles: every frozen root a
/// merge names, plus every root adjacent to it on the frozen engine.
fn footprint(engine: &MergeEngine, plan: &SetPlan) -> BTreeSet<u32> {
    use slugger_core::engine::apply::MergeRef;
    let mut out = BTreeSet::new();
    for merge in &plan.merges {
        for operand in [merge.a, merge.b] {
            if let MergeRef::Root(root) = operand {
                out.insert(root);
                out.extend(engine.adjacent_roots(root));
            }
        }
    }
    out
}

fn check_batches(graph: &Graph, seed: u64) {
    let engine = MergeEngine::new(graph);
    let plans = plan_iteration(&engine, graph, seed);
    let batches = conflict_batches(&engine, &plans);

    // Exactly one batch per plan.
    assert_eq!(batches.len(), plans.len());

    let footprints: Vec<BTreeSet<u32>> = plans.iter().map(|p| footprint(&engine, p)).collect();
    for i in 0..plans.len() {
        for j in (i + 1)..plans.len() {
            let conflicting = !footprints[i].is_disjoint(&footprints[j]);
            if batches[i] == batches[j] {
                // Same batch ⟹ genuinely independent: no shared touched-or-adjacent
                // root (empty plans are vacuously independent).
                assert!(
                    !conflicting || footprints[i].is_empty(),
                    "plans {i} and {j} share batch {} but also share roots {:?}",
                    batches[i],
                    footprints[i]
                        .intersection(&footprints[j])
                        .collect::<Vec<_>>()
                );
            }
            if conflicting && !footprints[i].is_empty() {
                // Conflicting ⟹ strictly ordered, preserving the serial replay order.
                assert!(
                    batches[i] < batches[j],
                    "conflicting plans {i} (batch {}) and {j} (batch {}) are not ordered",
                    batches[i],
                    batches[j]
                );
            }
        }
    }

    // The partitioned parallel replay must reproduce the serial replay.
    let mut serial = MergeEngine::new(graph);
    let mut ctx = MergeCtx::new();
    apply_plans(&mut serial, &mut ctx, &plans);
    for threads in [2usize, 4] {
        let mut parallel = MergeEngine::new(graph);
        let mut pctx = MergeCtx::new();
        let mut workers = ApplyWorkers::new();
        apply_plans_with(&mut parallel, &mut pctx, &mut workers, &plans, threads);
        assert_eq!(
            serial.summary().encoding_cost(),
            parallel.summary().encoding_cost(),
            "cost diverged at {threads} threads"
        );
        assert_eq!(serial.roots(), parallel.roots());
        for id in 0..serial.summary().arena_len() as u32 {
            assert_eq!(serial.summary().parent(id), parallel.summary().parent(id));
            assert_eq!(
                serial.summary().children(id),
                parallel.summary().children(id)
            );
        }
        parallel.summary().validate().unwrap();
    }
}

/// Strategy: a random graph (node count, then an edge list over it) plus a seed.
fn graph_and_seed() -> impl Strategy<Value = (Graph, u64)> {
    (12usize..48).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 8..160)
            .prop_map(move |e| Graph::from_edges(n, e));
        (edges, 0u64..32)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_plan_in_exactly_one_independent_ordered_batch((graph, seed) in graph_and_seed()) {
        check_batches(&graph, seed);
    }
}
