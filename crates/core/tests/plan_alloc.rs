//! Counting-allocator test pinning the pooled planning overlay's allocation
//! discipline: once the per-worker `PlanScratch` / `MergeCtx` pools are warm,
//! planning a candidate set performs **zero heap allocations** — no overlay maps, no
//! per-root metadata clones, no per-merge adjacency folds, no queue/plan vectors.
//!
//! The file holds a single test (plus the allocator plumbing) so no other test
//! thread can allocate inside the measured window.

use slugger_core::engine::plan::{PlanScratch, PlanningEngine};
use slugger_core::engine::{MergeCtx, MergeEngine};
use slugger_core::merge::{plan_candidate_set, MergeOptions};
use slugger_core::pipeline::set_rng;
use slugger_graph::gen::{caveman, CavemanConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Forwards to the system allocator, counting allocation events while armed.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_set_planning_allocates_nothing() {
    let graph = caveman(&CavemanConfig {
        num_nodes: 120,
        num_cliques: 15,
        min_clique: 5,
        max_clique: 9,
        rewire_probability: 0.02,
        seed: 7,
    });
    let engine = MergeEngine::new(&graph);
    let roots = engine.roots();
    // Two candidate sets over live roots; planning alternates between them, so the
    // measured pass re-plans sets whose roles the pools already served.
    let set_a: Vec<u32> = roots.iter().copied().take(40).collect();
    let set_b: Vec<u32> = roots.iter().copied().skip(40).take(40).collect();
    let options = MergeOptions {
        threshold: 0.0,
        height_bound: None,
    };
    let mut ctx = MergeCtx::new();
    let mut scratch = PlanScratch::new();

    let plan = |ctx: &mut MergeCtx, scratch: &mut PlanScratch, set: &[u32], stream: usize| {
        let mut overlay = PlanningEngine::new(&engine, set, scratch);
        let mut rng = set_rng(9, 1, stream);
        let (merges, stats) = plan_candidate_set(&mut overlay, ctx, set, &options, &mut rng);
        assert!(stats.evaluated > 0, "the workload must exercise planning");
        // Recycle the plan's merge vector, as the apply stage's consumer would.
        ctx.recycle_merges(merges);
    };

    // Warm-up: populate the memo, the overlay pools and the merge-vector pool.
    // Every round replays the identical (set, RNG stream) workload, so the pooled
    // buffers' capacities converge to the workload's demand multiset; the number of
    // rounds that takes is an allocator implementation detail, so warm adaptively
    // until a full round stays off the heap (the convergence itself is asserted by
    // the round cap).
    let mut rounds = 0usize;
    loop {
        ALLOCS.store(0, Ordering::SeqCst);
        ARMED.store(true, Ordering::SeqCst);
        plan(&mut ctx, &mut scratch, &set_a, 0);
        plan(&mut ctx, &mut scratch, &set_b, 1);
        ARMED.store(false, Ordering::SeqCst);
        if ALLOCS.load(Ordering::SeqCst) == 0 {
            break;
        }
        rounds += 1;
        assert!(
            rounds < 32,
            "planning pools failed to reach an allocation-free steady state"
        );
    }

    // Steady state: re-planning the same sets must not touch the heap at all.
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    plan(&mut ctx, &mut scratch, &set_a, 0);
    plan(&mut ctx, &mut scratch, &set_b, 1);
    ARMED.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        allocs, 0,
        "steady-state planning of two warmed candidate sets performed {allocs} heap allocations"
    );
}
