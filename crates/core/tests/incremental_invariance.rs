//! Output-invariance regression tests for the incremental re-summarizer: a delta
//! stream must produce a summary **byte-identical** across every
//! `parallelism × shards` setting, after *every* batch — the `apply_invariance`
//! contract extended to the streaming path (dirty-region localization,
//! dissolution, re-expansion and the per-batch pipeline passes must all be pure
//! functions of the engine's content, never of hash-map layout or thread
//! scheduling).

use slugger_core::incremental::{IncrementalConfig, IncrementalSummarizer};
use slugger_core::testsupport::{canonical, lattice, CanonicalSummary};
use slugger_core::{Parallelism, Slugger, SluggerConfig};
use slugger_graph::gen::{caveman, rmat, CavemanConfig, RmatConfig};
use slugger_graph::stream::{stream_batches, StreamConfig};
use slugger_graph::Graph;

fn targets() -> Vec<(&'static str, Graph)> {
    vec![
        (
            "caveman",
            caveman(&CavemanConfig {
                num_nodes: 260,
                num_cliques: 32,
                min_clique: 5,
                max_clique: 9,
                rewire_probability: 0.03,
                seed: 21,
            }),
        ),
        (
            "rmat",
            rmat(&RmatConfig {
                scale: 10,
                num_edges: 6_000,
                seed: 4,
                ..RmatConfig::default()
            }),
        ),
    ]
}

/// Runs the full stream under one pipeline setting, returning the canonical
/// summary after every batch.
fn run_stream(
    initial: &Graph,
    batches: &[slugger_graph::stream::GraphDelta],
    parallelism: Parallelism,
    shards: usize,
) -> Vec<CanonicalSummary> {
    let bootstrap = Slugger::new(SluggerConfig {
        iterations: 4,
        max_candidate_size: 64,
        max_shingle_splits: 5,
        seed: 7,
        // The bootstrap run itself is pinned invariant by apply_invariance.rs; use
        // the same knobs here so the incremental engine starts from the identical
        // summary under every setting.
        parallelism,
        shards,
        ..SluggerConfig::default()
    });
    let mut inc = IncrementalSummarizer::bootstrap(
        initial,
        &bootstrap,
        IncrementalConfig {
            iterations: 3,
            max_candidate_size: 48,
            max_shingle_splits: 4,
            seed: 13,
            parallelism,
            shards,
            ..IncrementalConfig::default()
        },
    );
    batches
        .iter()
        .map(|delta| {
            inc.resummarize(delta);
            canonical(inc.summary())
        })
        .collect()
}

#[test]
fn incremental_stream_is_byte_identical_across_parallelism_and_shards() {
    for (name, target) in targets() {
        let (initial, batches) = stream_batches(
            &target,
            &StreamConfig {
                initial_fraction: 0.8,
                num_batches: 4,
                churn: 0.3,
                seed: 5,
            },
        );
        let baseline = run_stream(&initial, &batches, Parallelism::Sequential, 8);
        for point in lattice() {
            let run = run_stream(&initial, &batches, point.parallelism, point.shards);
            for (batch, (got, expected)) in run.iter().zip(baseline.iter()).enumerate() {
                assert_eq!(
                    got, expected,
                    "{name}: summary diverged after batch {batch} at \
                     parallelism {}, shards {}",
                    point.threads, point.shards
                );
            }
        }
    }
}
