//! Property tests of the binary summary format (`slugger_core::storage`):
//!
//! * `write_summary` → `read_summary` preserves the **canonical form** of the
//!   model — the id-free structure (member sets, parent links, signed edges) —
//!   not merely `encoding_cost`;
//! * `read_summary` returns `Err` — it must **never panic or abort** — on
//!   arbitrary byte soup, on every truncation of a valid encoding, and on
//!   bit-flipped encodings (where a flip may also legitimately decode to a
//!   *different but internally consistent* summary, e.g. a toggled edge sign).

// The vendored `proptest!` macro expands recursively per statement.
#![recursion_limit = "256"]

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use slugger_core::model::{EdgeSign, HierarchicalSummary};
use slugger_core::storage::{read_summary, write_summary};
use slugger_core::{Slugger, SluggerConfig};
use slugger_graph::Graph;
use std::collections::{BTreeMap, BTreeSet};

/// The id-free canonical form of a summary: alive supernodes keyed by their member
/// sets (which are unique — members strictly grow up the hierarchy and partition
/// `V` across trees), each mapped to its parent's member set, plus the p/n-edges
/// keyed by both endpoints' member sets.  Storage round-trips may renumber the
/// arena (dead slots are not serialized), so this — not raw ids — is what must be
/// preserved.
type Canonical = (
    usize,
    BTreeMap<Vec<u32>, Option<Vec<u32>>>,
    BTreeSet<(Vec<u32>, Vec<u32>, i32)>,
);

fn canonical(summary: &HierarchicalSummary) -> Canonical {
    let mut nodes: BTreeMap<Vec<u32>, Option<Vec<u32>>> = BTreeMap::new();
    for id in 0..summary.arena_len() as u32 {
        if !summary.is_alive(id) {
            continue;
        }
        let members = summary.members(id).to_vec();
        let parent = summary.parent(id).map(|p| summary.members(p).to_vec());
        assert!(
            nodes.insert(members, parent).is_none(),
            "alive member sets must be unique"
        );
    }
    let mut edges: BTreeSet<(Vec<u32>, Vec<u32>, i32)> = BTreeSet::new();
    for ((a, b), sign) in summary.pn_edges() {
        let ma = summary.members(a).to_vec();
        let mb = summary.members(b).to_vec();
        let (x, y) = if ma <= mb { (ma, mb) } else { (mb, ma) };
        edges.insert((x, y, sign.weight()));
    }
    (summary.num_subnodes(), nodes, edges)
}

/// A random hierarchical summary: `merges` random root merges over `n` leaves,
/// then random p/n-edges between alive supernodes (self-loops included).
fn built_summary(n: usize, merges: usize, seed: u64) -> HierarchicalSummary {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut summary = HierarchicalSummary::identity(n);
    for _ in 0..merges {
        let roots: Vec<u32> = summary.roots().collect();
        if roots.len() < 2 {
            break;
        }
        let i = rng.random_range(0..roots.len());
        let mut j = rng.random_range(0..roots.len() - 1);
        if j >= i {
            j += 1;
        }
        summary.merge_roots(roots[i], roots[j]);
    }
    let alive: Vec<u32> = (0..summary.arena_len() as u32)
        .filter(|&id| summary.is_alive(id))
        .collect();
    for _ in 0..rng.random_range(0..2 * n + 1) {
        let a = alive[rng.random_range(0..alive.len())];
        let b = alive[rng.random_range(0..alive.len())];
        let sign = if rng.random_bool(0.7) {
            EdgeSign::Positive
        } else {
            EdgeSign::Negative
        };
        summary.set_edge(a, b, sign);
    }
    summary
}

fn roundtrip(summary: &HierarchicalSummary) -> HierarchicalSummary {
    let mut buffer = Vec::new();
    write_summary(summary, &mut buffer).expect("writing to a Vec cannot fail");
    read_summary(&buffer[..]).expect("a written summary must read back")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_preserves_the_canonical_form(
        n in 2usize..40,
        merges in 0usize..30,
        seed in 0u64..1_000,
    ) {
        let summary = built_summary(n, merges, seed);
        let restored = roundtrip(&summary);
        restored.validate().unwrap();
        assert_eq!(canonical(&restored), canonical(&summary));
        assert_eq!(restored.encoding_cost(), summary.encoding_cost());
        // And the roundtrip is idempotent: re-serializing the restored summary
        // yields the identical byte stream (ids are canonical after one pass).
        let restored_again = roundtrip(&restored);
        assert_eq!(canonical(&restored_again), canonical(&restored));
    }

    #[test]
    fn pruned_slugger_output_roundtrips(
        n in 12usize..48,
        edges in proptest::collection::vec((0u32..48, 0u32..48), 8..120),
        seed in 0u64..64,
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .collect();
        let graph = Graph::from_edges(n, edges);
        let outcome = Slugger::new(SluggerConfig {
            iterations: 3,
            max_candidate_size: 32,
            max_shingle_splits: 3,
            seed,
            ..SluggerConfig::default()
        })
        .summarize(&graph);
        // Slugger output is pruned: multi-arity supernodes and dead arena slots —
        // exactly what forces the reader to renumber.
        let restored = roundtrip(&outcome.summary);
        restored.validate().unwrap();
        assert_eq!(canonical(&restored), canonical(&outcome.summary));
        assert_eq!(
            slugger_core::decode::decode_full(&restored).edge_set(),
            graph.edge_set(),
            "restored summary must still decode to the input graph"
        );
    }

    #[test]
    fn truncations_of_a_valid_encoding_error_out(
        n in 2usize..24,
        merges in 0usize..16,
        seed in 0u64..1_000,
    ) {
        let summary = built_summary(n, merges, seed);
        let mut buffer = Vec::new();
        write_summary(&summary, &mut buffer).unwrap();
        for len in 0..buffer.len() {
            // Every strict prefix is missing declared payload: Err, never a panic.
            assert!(
                read_summary(&buffer[..len]).is_err(),
                "truncation to {len} of {} bytes must fail to parse",
                buffer.len()
            );
        }
    }

    #[test]
    fn bit_flips_never_panic(
        n in 2usize..24,
        merges in 0usize..16,
        seed in 0u64..1_000,
        flip in (0usize..4_096, 0u8..8),
    ) {
        let summary = built_summary(n, merges, seed);
        let mut buffer = Vec::new();
        write_summary(&summary, &mut buffer).unwrap();
        let (pos, bit) = flip;
        let pos = pos % buffer.len();
        buffer[pos] ^= 1 << bit;
        // A flip may still decode (e.g. a toggled edge sign); the contract is
        // "no panic, and whatever parses is internally consistent".
        if let Ok(mutated) = read_summary(&buffer[..]) {
            mutated.validate().unwrap();
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec(0u8..=255u8, 0usize..512),
    ) {
        if let Ok(parsed) = read_summary(&bytes[..]) {
            parsed.validate().unwrap();
        }
    }

    #[test]
    fn arbitrary_bytes_with_valid_magic_never_panic(
        tail in proptest::collection::vec(0u8..=255u8, 0usize..256),
    ) {
        // Force the parser past the header check so the fuzz reaches the count and
        // table handling.
        let mut bytes = slugger_core::storage::MAGIC.to_vec();
        bytes.push(slugger_core::storage::VERSION);
        bytes.extend_from_slice(&tail);
        if let Ok(parsed) = read_summary(&bytes[..]) {
            parsed.validate().unwrap();
        }
    }
}
