//! The scenario matrix: every invariance-lattice property, re-proven for every
//! registered streaming scenario (`slugger-scenarios`) at smoke scale.
//!
//! The per-feature suites (`apply_invariance`, `incremental_invariance`,
//! `candidate_index`, `partial_dissolution`, `durable_recovery`,
//! `query_snapshot`) each pin one guarantee on one or two curated workloads.
//! This harness turns those guarantees into a property that holds **per
//! workload class**: for each scenario — hub death, community merge/split,
//! delete-heavy phases, power-law bursts, no-op storms, temporal locality —
//! it asserts
//!
//! 1. **decode-identity** after every batch: the summary decodes to exactly
//!    the live graph a consumer applying the same deltas holds;
//! 2. **byte-identity across the lattice**: identical canonical summaries at
//!    every `parallelism {1, 2, 4, 8} × shards {1, 4, 16}` point, per batch;
//! 3. **candidate-index on/off byte-identity**: the incremental candidate
//!    index is a pure acceleration;
//! 4. **partial-vs-whole dissolution equivalence**: decode-identical and
//!    internally consistent (the summaries may legitimately differ
//!    structurally — dissolution scope changes merge opportunities);
//! 5. **kill/recover identity**: a mid-stream crash (fault-injected `MemIo`)
//!    recovers to a run indistinguishable (id-free canonical form) from an
//!    uninterrupted one.

use slugger_core::decode::{canonical_form, decode_full};
use slugger_core::incremental::{IncrementalConfig, IncrementalSummarizer};
use slugger_core::storage::durable::fault::{FaultPlan, MemIo};
use slugger_core::storage::durable::{DurableError, DurablePolicy, DurableSummarizer};
use slugger_core::testsupport::{canonical, lattice, CanonicalSummary};
use slugger_core::{Parallelism, Slugger, SluggerConfig};
use slugger_graph::{DynamicGraph, Graph, GraphDelta};
use slugger_scenarios::{registry, CollectedScenario};

/// Smoke scale: large enough that every churn program has real structure to
/// demolish, small enough for debug-mode tier-1.
const SCALE: f64 = 0.015;
const BATCHES: usize = 4;
const STREAM_SEED: u64 = 29;

fn smoke_stream(scenario: &slugger_scenarios::Scenario) -> CollectedScenario {
    scenario
        .instantiate(SCALE, BATCHES, STREAM_SEED)
        .collect_stream()
}

fn bootstrap_slugger(parallelism: Parallelism, shards: usize) -> Slugger {
    Slugger::new(SluggerConfig {
        iterations: 3,
        max_candidate_size: 48,
        max_shingle_splits: 4,
        seed: 7,
        parallelism,
        shards,
        ..SluggerConfig::default()
    })
}

fn incremental_config(parallelism: Parallelism, shards: usize) -> IncrementalConfig {
    IncrementalConfig {
        iterations: 2,
        max_candidate_size: 32,
        max_shingle_splits: 3,
        seed: 13,
        parallelism,
        shards,
        ..IncrementalConfig::default()
    }
}

/// Drives the full stream under `config`, returning the canonical summary
/// after every batch.
fn run_canonical(
    initial: &Graph,
    batches: &[GraphDelta],
    bootstrap: &Slugger,
    config: IncrementalConfig,
) -> Vec<CanonicalSummary> {
    let mut inc = IncrementalSummarizer::bootstrap(initial, bootstrap, config);
    batches
        .iter()
        .map(|delta| {
            inc.resummarize(delta);
            canonical(inc.summary())
        })
        .collect()
}

#[test]
fn registry_covers_the_required_scenario_classes() {
    let scenarios = registry();
    assert!(
        scenarios.len() >= 6,
        "the matrix needs at least 6 scenarios, found {}",
        scenarios.len()
    );
    for required in ["hub-death", "community-merge", "delete-heavy", "burst"] {
        assert!(
            scenarios.iter().any(|s| s.name.contains(required)),
            "no registered scenario covers the {required:?} class"
        );
    }
}

#[test]
fn decode_identity_holds_after_every_batch_of_every_scenario() {
    for scenario in registry() {
        let stream = smoke_stream(&scenario);
        let config = incremental_config(Parallelism::Sequential, 8);
        let mut inc = IncrementalSummarizer::bootstrap(
            &stream.initial,
            &bootstrap_slugger(Parallelism::Sequential, 8),
            config,
        );
        // The consumer's live graph, maintained independently of the engine.
        let mut live = DynamicGraph::from_graph(&stream.initial);
        for (i, delta) in stream.batches.iter().enumerate() {
            inc.resummarize(delta);
            delta.apply_to(&mut live);
            assert_eq!(
                decode_full(inc.summary()).edge_set(),
                live.to_graph().edge_set(),
                "{}: decode-identity broke after batch {i}",
                scenario.name
            );
            inc.validate().unwrap_or_else(|e| {
                panic!("{}: engine invalid after batch {i}: {e}", scenario.name)
            });
        }
        assert_eq!(inc.batches(), stream.batches.len());
    }
}

#[test]
fn summaries_are_byte_identical_across_the_lattice_for_every_scenario() {
    for scenario in registry() {
        let stream = smoke_stream(&scenario);
        let baseline = run_canonical(
            &stream.initial,
            &stream.batches,
            &bootstrap_slugger(Parallelism::Sequential, 8),
            incremental_config(Parallelism::Sequential, 8),
        );
        for point in lattice() {
            let run = run_canonical(
                &stream.initial,
                &stream.batches,
                &bootstrap_slugger(point.parallelism, point.shards),
                incremental_config(point.parallelism, point.shards),
            );
            for (batch, (got, expected)) in run.iter().zip(baseline.iter()).enumerate() {
                assert_eq!(
                    got, expected,
                    "{}: summary diverged after batch {batch} at parallelism {}, shards {}",
                    scenario.name, point.threads, point.shards
                );
            }
        }
    }
}

#[test]
fn candidate_index_on_and_off_are_byte_identical_for_every_scenario() {
    for scenario in registry() {
        let stream = smoke_stream(&scenario);
        let bootstrap = bootstrap_slugger(Parallelism::Sequential, 8);
        let with_index = run_canonical(
            &stream.initial,
            &stream.batches,
            &bootstrap,
            IncrementalConfig {
                candidate_index: true,
                ..incremental_config(Parallelism::Sequential, 8)
            },
        );
        let without_index = run_canonical(
            &stream.initial,
            &stream.batches,
            &bootstrap,
            IncrementalConfig {
                candidate_index: false,
                ..incremental_config(Parallelism::Sequential, 8)
            },
        );
        for (batch, (a, b)) in with_index.iter().zip(without_index.iter()).enumerate() {
            assert_eq!(
                a, b,
                "{}: candidate index changed the summary after batch {batch}",
                scenario.name
            );
        }
    }
}

#[test]
fn partial_and_whole_dissolution_are_decode_equivalent_for_every_scenario() {
    for scenario in registry() {
        let stream = smoke_stream(&scenario);
        let bootstrap = bootstrap_slugger(Parallelism::Sequential, 8);
        let mut partial = IncrementalSummarizer::bootstrap(
            &stream.initial,
            &bootstrap,
            IncrementalConfig {
                partial_dissolution: true,
                ..incremental_config(Parallelism::Sequential, 8)
            },
        );
        let mut whole = IncrementalSummarizer::bootstrap(
            &stream.initial,
            &bootstrap,
            IncrementalConfig {
                partial_dissolution: false,
                ..incremental_config(Parallelism::Sequential, 8)
            },
        );
        for (i, delta) in stream.batches.iter().enumerate() {
            partial.resummarize(delta);
            whole.resummarize(delta);
            // The two dissolution scopes may diverge structurally; the pinned
            // property is semantic: identical decoded graphs, valid engines.
            assert_eq!(
                decode_full(partial.summary()).edge_set(),
                decode_full(whole.summary()).edge_set(),
                "{}: dissolution scopes decoded differently after batch {i}",
                scenario.name
            );
            partial.validate().unwrap_or_else(|e| {
                panic!("{}: partial invalid after batch {i}: {e}", scenario.name)
            });
            whole.validate().unwrap_or_else(|e| {
                panic!("{}: whole invalid after batch {i}: {e}", scenario.name)
            });
        }
    }
}

#[test]
fn kill_recover_matches_the_uninterrupted_run_for_every_scenario() {
    for scenario in registry() {
        let stream = smoke_stream(&scenario);
        let config = incremental_config(Parallelism::Sequential, 8);
        let policy = DurablePolicy {
            checkpoint_every_batches: 2,
            checkpoint_wal_bytes: 0,
        };

        // Uninterrupted in-memory control.
        let mut control = IncrementalSummarizer::bootstrap(
            &stream.initial,
            &bootstrap_slugger(Parallelism::Sequential, 8),
            config,
        );
        for delta in &stream.batches {
            control.resummarize(delta);
        }
        let control_form = format!("{:?}", canonical_form(control.summary()));

        // Drives a durable run over `io` to stream completion.
        let drive = |io: MemIo| -> Result<String, DurableError> {
            let (mut durable, _report) =
                DurableSummarizer::open_or_create(config, policy, io, || {
                    IncrementalSummarizer::bootstrap(
                        &stream.initial,
                        &bootstrap_slugger(Parallelism::Sequential, 8),
                        config,
                    )
                })?;
            while durable.batches() < stream.batches.len() {
                durable.ingest(&stream.batches[durable.batches()])?;
            }
            Ok(format!("{:?}", canonical_form(durable.summary())))
        };

        // Probe a clean run for its fault-point count; it must already match.
        let probe = MemIo::new();
        let clean = drive(probe.clone()).expect("clean durable run");
        assert_eq!(
            clean, control_form,
            "{}: durable run diverged from in-memory control",
            scenario.name
        );

        // Crash mid-stream (truncating the last unsynced write to a torn
        // 3-byte tail) and recover until the stream completes.
        let at_op = probe.ops() / 2;
        let io = MemIo::new();
        io.arm(FaultPlan {
            at_op,
            keep_bytes: 3,
        });
        let mut attempts = 0;
        let recovered = loop {
            match drive(io.clone()) {
                Ok(form) => break form,
                Err(_) => {
                    attempts += 1;
                    assert!(
                        attempts <= 3,
                        "{}: fault at op {at_op}: recovery did not converge",
                        scenario.name
                    );
                    let mut crashed = io.clone();
                    crashed.crash(0);
                }
            }
        };
        assert_eq!(
            recovered, control_form,
            "{}: post-recovery state diverged from the uninterrupted run",
            scenario.name
        );
    }
}
