//! Regression tests pinning the optimized hot paths to straightforward reference
//! behaviour:
//!
//! * the optimized candidate stage (lazy per-node hashing, sort-based bucketing,
//!   scratch reuse, parallel shingle fold) must produce **byte-identical** groups to
//!   the naive [`slugger_core::candidates::reference`] implementation across seeds,
//!   graph generators, configurations and thread counts;
//! * the per-worker [`MergeCtx`] scratch buffers must never leak state between
//!   evaluations — evaluating a pair with a heavily reused context must equal
//!   evaluating it with a fresh one (property-tested over random graphs and pairs).

// The vendored `proptest!` macro expands recursively per statement; the property
// tests below are long enough to need a higher limit.
#![recursion_limit = "256"]

use proptest::prelude::*;
use slugger_core::candidates::{self, CandidateConfig, CandidateScratch};
use slugger_core::engine::{MergeCtx, MergeEngine};
use slugger_core::model::HierarchicalSummary;
use slugger_core::{Slugger, SluggerConfig};
use slugger_graph::gen::{caveman, rmat, CavemanConfig, RmatConfig};
use slugger_graph::Graph;

fn identity_roots(graph: &Graph) -> (HierarchicalSummary, Vec<u32>) {
    let summary = HierarchicalSummary::identity(graph.num_nodes());
    let roots: Vec<u32> = summary.roots().collect();
    (summary, roots)
}

/// The graphs the regression sweeps: structured (caveman) and skewed (RMAT).
fn generator_suite() -> Vec<(&'static str, Graph)> {
    vec![
        (
            "caveman",
            caveman(&CavemanConfig {
                num_nodes: 400,
                num_cliques: 40,
                min_clique: 5,
                max_clique: 10,
                rewire_probability: 0.05,
                seed: 7,
            }),
        ),
        (
            "rmat",
            rmat(&RmatConfig {
                scale: 10,
                num_edges: 6_000,
                seed: 3,
                ..RmatConfig::default()
            }),
        ),
    ]
}

#[test]
fn optimized_candidate_sets_match_reference_across_seeds_and_generators() {
    for (name, graph) in generator_suite() {
        let (summary, roots) = identity_roots(&graph);
        for (cap, splits) in [(500usize, 10usize), (32, 5), (16, 3), (8, 0)] {
            let config = CandidateConfig {
                max_group_size: cap,
                max_shingle_splits: splits,
            };
            let mut scratch = CandidateScratch::default();
            for seed in [0u64, 1, 2, 17, 42, 0xdead_beef] {
                let expected =
                    candidates::reference::candidate_sets(&summary, &graph, &roots, seed, &config);
                // Scratch deliberately reused across seeds and configs: reuse must
                // be invisible.
                let optimized = candidates::candidate_sets_with(
                    &summary,
                    &graph,
                    &roots,
                    seed,
                    &config,
                    1,
                    &mut scratch,
                );
                assert_eq!(
                    optimized, expected,
                    "grouping diverged on {name} (cap {cap}, splits {splits}, seed {seed})"
                );
            }
        }
    }
}

#[test]
fn optimized_shingles_match_reference() {
    for (name, graph) in generator_suite() {
        let (summary, roots) = identity_roots(&graph);
        for seed in [0u64, 9, 1 << 40, u64::MAX] {
            assert_eq!(
                candidates::shingles(&summary, &graph, &roots, seed),
                candidates::reference::shingles(&summary, &graph, &roots, seed),
                "shingles diverged on {name} at seed {seed}"
            );
        }
    }
}

#[test]
fn thread_count_is_invisible_to_the_grouping() {
    for (name, graph) in generator_suite() {
        let (summary, roots) = identity_roots(&graph);
        let config = CandidateConfig {
            max_group_size: 24,
            max_shingle_splits: 5,
        };
        for seed in [5u64, 23] {
            let baseline = candidates::candidate_sets(&summary, &graph, &roots, seed, &config);
            for threads in [2usize, 3, 8] {
                let mut scratch = CandidateScratch::default();
                let grouped = candidates::candidate_sets_with(
                    &summary,
                    &graph,
                    &roots,
                    seed,
                    &config,
                    threads,
                    &mut scratch,
                );
                assert_eq!(
                    grouped, baseline,
                    "{name}: {threads} threads changed the grouping at seed {seed}"
                );
            }
        }
    }
}

#[test]
fn parallel_shingle_fold_is_invisible_to_the_grouping() {
    // The suite's other graphs sit below PARALLEL_SHINGLE_THRESHOLD, so this is the
    // test that actually drives the rayon-chunked fold: the root set must exceed
    // the threshold for the first split, and the chunked fold must produce the
    // identical grouping (and match the naive reference) at every thread count.
    let graph = rmat(&RmatConfig {
        scale: 14,
        num_edges: 40_000,
        seed: 1,
        ..RmatConfig::default()
    });
    let (summary, roots) = identity_roots(&graph);
    assert!(
        roots.len() >= candidates::PARALLEL_SHINGLE_THRESHOLD,
        "test graph too small to engage the parallel fold ({} roots)",
        roots.len()
    );
    let config = CandidateConfig::default();
    let seed = 9;
    let expected = candidates::reference::candidate_sets(&summary, &graph, &roots, seed, &config);
    for threads in [1usize, 2, 4, 8] {
        let mut scratch = CandidateScratch::default();
        let grouped = candidates::candidate_sets_with(
            &summary,
            &graph,
            &roots,
            seed,
            &config,
            threads,
            &mut scratch,
        );
        assert_eq!(
            grouped, expected,
            "parallel fold changed the grouping at {threads} threads"
        );
    }
}

#[test]
fn candidate_sets_match_reference_on_a_coarse_summary() {
    // Not just the identity summary: after real merging the members/neighborhood
    // folds span multi-node supernodes, which the lazy hash must handle identically.
    let graph = caveman(&CavemanConfig {
        num_nodes: 300,
        num_cliques: 30,
        ..CavemanConfig::default()
    });
    let outcome = Slugger::new(SluggerConfig {
        iterations: 4,
        max_candidate_size: 64,
        pruning_rounds: 0,
        seed: 11,
        ..SluggerConfig::default()
    })
    .summarize(&graph);
    let summary = outcome.summary;
    let roots: Vec<u32> = summary.roots().collect();
    let config = CandidateConfig {
        max_group_size: 16,
        max_shingle_splits: 4,
    };
    let mut scratch = CandidateScratch::default();
    for seed in 0..8u64 {
        assert_eq!(
            candidates::candidate_sets_with(
                &summary,
                &graph,
                &roots,
                seed,
                &config,
                1,
                &mut scratch
            ),
            candidates::reference::candidate_sets(&summary, &graph, &roots, seed, &config),
            "coarse-summary grouping diverged at seed {seed}"
        );
    }
}

/// Strategy: a random graph plus a list of candidate root pairs to evaluate.
fn graph_and_pairs() -> impl Strategy<Value = (Graph, Vec<(u32, u32)>)> {
    (6usize..24).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 4..80)
            .prop_map(move |e| Graph::from_edges(n, e));
        let pairs = proptest::collection::vec((0..n as u32, 0..n as u32), 1..24);
        (edges, pairs)
    })
}

/// Scratch-buffer reuse must never leak state between evaluations: a context that
/// has evaluated (and memoized) dozens of other pairs must return exactly the same
/// evaluation as a context used for nothing else.
fn check_scratch_reuse_never_leaks(graph: &Graph, pairs: &[(u32, u32)]) {
    let engine = MergeEngine::new(graph);
    let mut reused = MergeCtx::new();
    // Memoization is per-problem and deterministic, so the memo cannot leak either;
    // `disabled` additionally re-solves every panel, exercising the scratch without
    // any caching at all.
    let mut reused_nomemo = MergeCtx::disabled();
    for &(a, b) in pairs {
        if a == b || !graph_has_roots(&engine, a, b) {
            continue;
        }
        let mut fresh = MergeCtx::new();
        let clean = engine.evaluate_merge(a, b, &mut fresh);
        let warm = engine.evaluate_merge(a, b, &mut reused);
        let warm_nomemo = engine.evaluate_merge(a, b, &mut reused_nomemo);
        assert_eq!(clean.cost_before, warm.cost_before, "({a}, {b})");
        assert_eq!(clean.cost_after, warm.cost_after, "({a}, {b})");
        assert_eq!(clean.cost_before, warm_nomemo.cost_before, "({a}, {b})");
        assert_eq!(clean.cost_after, warm_nomemo.cost_after, "({a}, {b})");
        // Evaluate twice in a row on the reused context: the second answer must not
        // drift (the scratch is cleared per call, not per context).
        let again = engine.evaluate_merge(a, b, &mut reused);
        assert_eq!(warm.cost_after, again.cost_after);
    }
}

/// Reusing one context across an entire merge *application* sequence must agree with
/// using a fresh context per step.
fn check_ctx_reuse_invisible_to_applications(graph: &Graph, pairs: &[(u32, u32)]) {
    let mut shared = MergeEngine::new(graph);
    let mut fresh_per_step = MergeEngine::new(graph);
    let mut reused = MergeCtx::new();
    for &(a, b) in pairs {
        if a == b || !graph_has_roots(&shared, a, b) || !graph_has_roots(&fresh_per_step, a, b) {
            continue;
        }
        let m1 = shared.apply_merge(a, b, &mut reused);
        let mut fresh = MergeCtx::new();
        let m2 = fresh_per_step.apply_merge(a, b, &mut fresh);
        assert_eq!(m1, m2);
        assert_eq!(
            shared.summary().encoding_cost(),
            fresh_per_step.summary().encoding_cost()
        );
    }
    shared.summary().validate().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn merge_ctx_scratch_reuse_never_leaks_between_evaluations(
        (graph, pairs) in graph_and_pairs()
    ) {
        check_scratch_reuse_never_leaks(&graph, &pairs);
    }

    #[test]
    fn merge_ctx_reuse_is_invisible_to_applications(
        (graph, pairs) in graph_and_pairs()
    ) {
        check_ctx_reuse_invisible_to_applications(&graph, &pairs);
    }
}

fn graph_has_roots(engine: &MergeEngine, a: u32, b: u32) -> bool {
    engine.summary().is_root(a) && engine.summary().is_root(b)
}
