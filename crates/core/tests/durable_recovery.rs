//! Kill-and-recover sweep of the durability protocol
//! (`slugger_core::storage::durable`).
//!
//! The central claim under test is **determinism of recovery**: no matter where
//! a crash lands — any mutating I/O operation of any protocol step, with or
//! without a torn tail — recovering and finishing the stream produces a summary
//! whose id-free canonical form is identical to an uninterrupted in-memory run.
//! The sweep enumerates *every* fault point (probed by counting the mutating
//! operations of a clean run) rather than sampling a few, and the same identity
//! is pinned across the `parallelism × shards` scheduling lattice like the
//! existing invariance tests.
//!
//! On top of the crash sweep, tampering scenarios cover damage the crash model
//! itself can't produce: duplicated tail records (re-sent appends), truncated
//! WAL tails, and bit flips in the middle of a synced segment.

use slugger_core::decode::canonical_form;
use slugger_core::incremental::{IncrementalConfig, IncrementalSummarizer};
use slugger_core::storage::durable::fault::{FaultPlan, MemIo};
use slugger_core::storage::durable::{DurableError, DurableIo, DurablePolicy, DurableSummarizer};
use slugger_core::Parallelism;
use slugger_graph::gen::{caveman, CavemanConfig};
use slugger_graph::stream::{stream_batches, GraphDelta, StreamConfig};
use slugger_graph::Graph;

/// Small stream so the full fault sweep stays fast in debug mode (tier-1 runs
/// `cargo test -q` unoptimized).
fn small_stream() -> (Graph, Vec<GraphDelta>) {
    let target = caveman(&CavemanConfig {
        num_nodes: 80,
        num_cliques: 10,
        min_clique: 5,
        max_clique: 8,
        rewire_probability: 0.02,
        seed: 11,
    });
    stream_batches(
        &target,
        &StreamConfig {
            initial_fraction: 0.8,
            num_batches: 4,
            churn: 0.3,
            seed: 7,
        },
    )
}

fn config_for(parallelism: Parallelism, shards: usize) -> IncrementalConfig {
    IncrementalConfig {
        iterations: 2,
        seed: 23,
        parallelism,
        shards,
        ..IncrementalConfig::default()
    }
}

fn policy() -> DurablePolicy {
    DurablePolicy {
        checkpoint_every_batches: 2,
        checkpoint_wal_bytes: 0,
    }
}

/// Uninterrupted in-memory reference run.
fn reference(initial: &Graph, batches: &[GraphDelta], config: IncrementalConfig) -> String {
    let mut inc = IncrementalSummarizer::from_graph(initial, config);
    for delta in batches {
        inc.resummarize(delta);
    }
    format!("{:?}", canonical_form(inc.summary()))
}

/// Drives a full durable stream over `io`: create-or-open, then ingest every
/// batch the directory does not already hold.  Any error (an injected fault, or
/// inconsistent state behind a fault that already fired) is returned so the
/// caller can crash and retry — exactly how a supervised service would run it.
fn drive(
    io: MemIo,
    initial: &Graph,
    batches: &[GraphDelta],
    config: IncrementalConfig,
) -> Result<String, DurableError> {
    let (mut durable, _report) = DurableSummarizer::open_or_create(config, policy(), io, || {
        IncrementalSummarizer::from_graph(initial, config)
    })?;
    while durable.batches() < batches.len() {
        durable.ingest(&batches[durable.batches()])?;
    }
    Ok(format!("{:?}", canonical_form(durable.summary())))
}

/// The crash sweep for one scheduling configuration: probe the clean run's op
/// count, then for every op index, inject a fault there (alternating short-write
/// budgets), crash with an alternating unsynced-tail keep, recover, finish, and
/// demand identity with the uninterrupted run.
fn sweep_all_fault_points(parallelism: Parallelism, shards: usize) {
    let (initial, batches) = small_stream();
    let config = config_for(parallelism, shards);
    let expected = reference(&initial, &batches, config);

    // Probe: clean run, counting mutating I/O ops = the fault points.
    let probe = MemIo::new();
    let clean = drive(probe.clone(), &initial, &batches, config).expect("clean run");
    assert_eq!(clean, expected, "durable run must match the in-memory run");
    let total_ops = probe.ops();
    assert!(total_ops > 10, "the protocol should have many fault points");

    for op in 0..total_ops {
        let io = MemIo::new();
        io.arm(FaultPlan {
            at_op: op,
            // Alternate between clean failures and short writes.
            keep_bytes: if op % 2 == 0 { 0 } else { 3 },
        });
        let mut attempts = 0;
        let got = loop {
            match drive(io.clone(), &initial, &batches, config) {
                Ok(s) => break s,
                Err(_) => {
                    attempts += 1;
                    assert!(
                        attempts <= 3,
                        "op {op}/{total_ops}: recovery did not converge"
                    );
                    // Crash: drop unsynced data, alternately keeping a torn tail.
                    let mut crashed = io.clone();
                    crashed.crash(if op % 3 == 0 { 2 } else { 0 });
                }
            }
        };
        assert_eq!(
            got, expected,
            "kill-and-recover at op {op}/{total_ops} diverged from the uninterrupted run"
        );
        // Double-crash leg: everything the finished run acknowledged must
        // survive one more clean crash.  In particular, batches ingested after
        // a torn-tail recovery must not sit behind the old torn bytes (the
        // active segment is healed to its intact prefix), or the second
        // recovery's stop-at-first-torn-record parse would silently drop them.
        let mut settled = io.clone();
        settled.crash(0);
        let (reopened, _) = DurableSummarizer::open(config, policy(), settled)
            .unwrap_or_else(|e| panic!("op {op}/{total_ops}: second recovery failed: {e}"));
        assert_eq!(
            reopened.batches(),
            batches.len(),
            "op {op}/{total_ops}: acknowledged batches lost by the second recovery"
        );
        assert_eq!(
            format!("{:?}", canonical_form(reopened.summary())),
            expected,
            "op {op}/{total_ops}: second recovery diverged from the uninterrupted run"
        );
    }
}

#[test]
fn fault_sweep_sequential_one_shard() {
    sweep_all_fault_points(Parallelism::Sequential, 1);
}

#[test]
fn fault_sweep_two_threads_four_shards() {
    sweep_all_fault_points(Parallelism::Fixed(2), 4);
}

#[test]
fn fault_sweep_four_threads_sixteen_shards() {
    sweep_all_fault_points(Parallelism::Fixed(4), 16);
}

#[test]
fn fault_sweep_eight_threads_four_shards() {
    sweep_all_fault_points(Parallelism::Fixed(8), 4);
}

/// The full scheduling lattice of the acceptance criterion, checked at one
/// representative fault point each (the exhaustive per-op sweep above covers
/// four corners of the lattice; an op-level sweep of all 12 cells would retread
/// the same protocol paths at debug-mode cost).
#[test]
fn recovery_identity_across_the_scheduling_lattice() {
    let (initial, batches) = small_stream();
    for &parallelism in &[
        Parallelism::Sequential,
        Parallelism::Fixed(2),
        Parallelism::Fixed(4),
        Parallelism::Fixed(8),
    ] {
        for &shards in &[1usize, 4, 16] {
            let config = config_for(parallelism, shards);
            let expected = reference(&initial, &batches, config);
            // Clean durable run doubles as the fault-point probe.
            let probe = MemIo::new();
            let clean = drive(probe.clone(), &initial, &batches, config).expect("clean run");
            assert_eq!(clean, expected);
            // Crash about two-thirds through the protocol with a short write,
            // keep a torn tail, then recover and finish.
            let io = MemIo::new();
            io.arm(FaultPlan {
                at_op: probe.ops() * 2 / 3,
                keep_bytes: 1,
            });
            let mut attempts = 0;
            let got = loop {
                match drive(io.clone(), &initial, &batches, config) {
                    Ok(s) => break s,
                    Err(_) => {
                        attempts += 1;
                        assert!(attempts <= 3, "recovery did not converge");
                        let mut crashed = io.clone();
                        crashed.crash(2);
                    }
                }
            };
            assert_eq!(
                got, expected,
                "lattice cell ({parallelism:?}, {shards}) diverged after kill-and-recover"
            );
        }
    }
}

/// The torn-tail double-crash scenario in isolation: a crash mid-append leaves
/// a torn tail; recovery discards it and **heals** the active segment down to
/// its intact prefix, so batches acknowledged after that recovery land inside
/// the parseable region and a *second* recovery still sees them.  (Without the
/// heal, post-recovery appends would land after the torn bytes, where the next
/// recovery's stop-at-first-torn-record parse never reaches — acknowledged,
/// fsynced batches would silently vanish.)
#[test]
fn batches_ingested_after_torn_tail_recovery_survive_a_second_crash() {
    let (initial, batches) = small_stream();
    let config = config_for(Parallelism::Sequential, 1);
    let expected = reference(&initial, &batches, config);

    // No automatic checkpoints: the second recovery leans entirely on the WAL.
    let no_ckpt = DurablePolicy {
        checkpoint_every_batches: 0,
        checkpoint_wal_bytes: 0,
    };
    let io = MemIo::new();
    let inner = IncrementalSummarizer::from_graph(&initial, config);
    let mut durable = DurableSummarizer::create(inner, no_ckpt, io.clone()).unwrap();
    durable.ingest(&batches[0]).unwrap();
    // Crash mid-append of batch 2: a 5-byte short write becomes the torn tail.
    io.arm(FaultPlan {
        at_op: 0,
        keep_bytes: 5,
    });
    assert!(durable.ingest(&batches[1]).is_err());
    drop(durable);
    let mut crashed = io.clone();
    crashed.crash(usize::MAX); // the torn fragment reached the platter

    // First recovery: batch 1 survives, the torn tail is discarded.
    let (mut recovered, report) = DurableSummarizer::open(config, no_ckpt, crashed).unwrap();
    assert!(report.torn_tail);
    assert_eq!(recovered.batches(), 1);
    // Re-feed batch 2 and push batch 3; ingest acknowledged both (fsynced).
    recovered.ingest(&batches[1]).unwrap();
    recovered.ingest(&batches[2]).unwrap();
    drop(recovered);

    // Second crash loses nothing that was synced — so the acknowledged batches
    // must come back.
    let mut crashed2 = io.clone();
    crashed2.crash(0);
    let (mut recovered2, report2) = DurableSummarizer::open(config, no_ckpt, crashed2).unwrap();
    assert_eq!(
        recovered2.batches(),
        3,
        "batches acknowledged after a torn-tail recovery were lost by the next recovery"
    );
    assert!(!report2.torn_tail, "the healed segment must parse clean");
    recovered2.ingest(&batches[3]).unwrap();
    assert_eq!(
        format!("{:?}", canonical_form(recovered2.summary())),
        expected
    );
}

/// A duplicated tail record (an append retried after an unacknowledged sync)
/// is skipped by batch index during replay.
#[test]
fn duplicated_tail_record_is_skipped() {
    let (initial, batches) = small_stream();
    let config = config_for(Parallelism::Sequential, 1);
    let expected = reference(&initial, &batches, config);

    let io = MemIo::new();
    let inner = IncrementalSummarizer::from_graph(&initial, config);
    let mut durable = DurableSummarizer::create(inner, policy(), io.clone()).unwrap();
    for delta in &batches[..3] {
        durable.ingest(delta).unwrap();
    }
    drop(durable);
    // Duplicate the live WAL segment's tail record "on the platter".
    let wal = io
        .names()
        .into_iter()
        .filter(|n| n.starts_with("wal-"))
        .max()
        .unwrap();
    io.tamper(&wal, |data| {
        // Records follow the 17-byte segment header; the last record of this
        // segment is batch 3 (checkpoint at batch 2 started a fresh segment).
        let tail = data[17..].to_vec();
        data.extend_from_slice(&tail);
    });
    let mut crashed = io.clone();
    crashed.crash(usize::MAX); // keep everything, including the duplicate
    let (mut recovered, report) = DurableSummarizer::open(config, policy(), crashed).unwrap();
    assert_eq!(recovered.batches(), 3, "duplicate must not double-apply");
    assert_eq!(report.replayed_batches, 1);
    for delta in &batches[3..] {
        recovered.ingest(delta).unwrap();
    }
    assert_eq!(
        format!("{:?}", canonical_form(recovered.summary())),
        expected
    );
}

/// Truncating the WAL tail (any number of bytes) is tolerated: recovery keeps
/// the intact prefix and the driver re-feeds the rest of the stream.
#[test]
fn truncated_wal_tail_recovers_at_every_cut() {
    let (initial, batches) = small_stream();
    let config = config_for(Parallelism::Sequential, 1);
    let expected = reference(&initial, &batches, config);

    let io = MemIo::new();
    let inner = IncrementalSummarizer::from_graph(&initial, config);
    let mut durable = DurableSummarizer::create(inner, policy(), io.clone()).unwrap();
    for delta in &batches[..3] {
        durable.ingest(delta).unwrap();
    }
    drop(durable);
    let wal = io
        .names()
        .into_iter()
        .filter(|n| n.starts_with("wal-"))
        .max()
        .unwrap();
    let full = io.file(&wal).unwrap();
    for cut in 0..=full.len() {
        // Rebuild the directory from the healthy one, with the WAL cut short.
        let io2 = MemIo::new();
        let mut h = io2.clone();
        for name in io.names() {
            let bytes = if name == wal {
                full[..cut].to_vec()
            } else {
                io.file(&name).unwrap()
            };
            h.write(&name, &bytes).unwrap();
            h.sync(&name).unwrap();
        }
        let (mut recovered, _report) = DurableSummarizer::open(config, policy(), io2)
            .unwrap_or_else(|e| panic!("cut at {cut}/{}: {e}", full.len()));
        assert!(
            recovered.batches() >= 2,
            "checkpointed batches must survive"
        );
        while recovered.batches() < batches.len() {
            recovered.ingest(&batches[recovered.batches()]).unwrap();
        }
        assert_eq!(
            format!("{:?}", canonical_form(recovered.summary())),
            expected,
            "cut at {cut}/{} diverged",
            full.len()
        );
    }
}

/// A bit flip inside a synced WAL segment makes the damaged record and
/// everything after it a torn tail: recovery keeps the consistent prefix (never
/// panics, never applies the damaged record) and the driver re-feeds the rest.
#[test]
fn bit_flipped_wal_record_truncates_to_the_consistent_prefix() {
    let (initial, batches) = small_stream();
    let config = config_for(Parallelism::Sequential, 1);
    let expected = reference(&initial, &batches, config);

    // Policy with no checkpoints after creation: the whole stream lives in one
    // WAL segment, so a mid-segment flip has records before *and* after it.
    let no_ckpt = DurablePolicy {
        checkpoint_every_batches: 0,
        checkpoint_wal_bytes: 0,
    };
    let io = MemIo::new();
    let inner = IncrementalSummarizer::from_graph(&initial, config);
    let mut durable = DurableSummarizer::create(inner, no_ckpt, io.clone()).unwrap();
    for delta in &batches[..3] {
        durable.ingest(delta).unwrap();
    }
    drop(durable);
    let wal = io
        .names()
        .into_iter()
        .filter(|n| n.starts_with("wal-"))
        .max()
        .unwrap();
    let len = io.file(&wal).unwrap().len();
    // Flip a byte in the middle record region (past the 17-byte header).
    let pos = 17 + (len - 17) / 2;
    io.tamper(&wal, |data| data[pos] ^= 0x10);
    let mut crashed = io.clone();
    crashed.crash(usize::MAX);
    match DurableSummarizer::open(config, no_ckpt, crashed) {
        Ok((mut recovered, _)) => {
            assert!(recovered.batches() < 3, "the damaged record must not apply");
            while recovered.batches() < batches.len() {
                recovered.ingest(&batches[recovered.batches()]).unwrap();
            }
            assert_eq!(
                format!("{:?}", canonical_form(recovered.summary())),
                expected
            );
        }
        // A flip in a record's *length field* can masquerade as structural
        // damage past the torn-tail rules — a typed error is the other
        // acceptable outcome, never a panic.
        Err(DurableError::Corrupt { .. }) | Err(DurableError::NoCheckpoint) => {}
        Err(other) => panic!("unexpected error class: {other}"),
    }
}
