//! Acceptance tests for subtree-granular **partial dissolution** (the streaming
//! engine's localized alternative to whole-tree region dissolution):
//!
//! * a proptest runs the same random delta stream — interleaved with forced
//!   global prunes and forced compactions — through two maintained summaries
//!   that differ only in [`IncrementalConfig::partial_dissolution`], and asserts
//!   after **every** operation that both decode to the identical live graph and
//!   both pass the full engine-bookkeeping validation (`MergeEngine::validate`);
//! * the per-batch dissolution accounting is pinned: under partial dissolution
//!   `dissolved_subnodes ≤ region_subnodes`, while whole-tree dissolution always
//!   re-expands the entire region (`dissolved_subnodes == region_subnodes`);
//! * a regression test pins the headline case — a delta touching exactly one
//!   leaf of a deep multi-level tree kills only that leaf's root spine, leaving
//!   the off-spine sibling subtree alive as a surviving supernode.

// The vendored `proptest!` macro expands recursively per statement.
#![recursion_limit = "1024"]

use proptest::prelude::*;
use slugger_core::engine::{MergeCtx, MergeEngine};
use slugger_core::incremental::{IncrementalConfig, IncrementalSummarizer};
use slugger_core::{Slugger, SluggerConfig};
use slugger_graph::gen::{caveman, CavemanConfig};
use slugger_graph::stream::{stream_batches, DynamicGraph, GraphDelta, StreamConfig};
use slugger_graph::Graph;

fn proptest_target(seed: u64) -> Graph {
    caveman(&CavemanConfig {
        num_nodes: 140,
        num_cliques: 18,
        min_clique: 5,
        max_clique: 9,
        rewire_probability: 0.03,
        seed,
    })
}

/// The proptest body (a plain function so the vendored `proptest!` macro — which
/// recurses per statement — only has to expand a single call): the same random
/// delta batches and the same interleaved `prune_now`/`compact_now` operations
/// drive a partial-dissolution summarizer and a whole-tree one side by side.
/// The two summaries legitimately diverge structurally (different surviving
/// roots re-enter planning), so the equivalence is semantic: identical decode
/// output and valid engine bookkeeping after every operation.
fn check_partial_matches_whole(graph_seed: u64, stream_seed: u64, ops: &[u8]) {
    let target = proptest_target(graph_seed);
    let (initial, batches) = stream_batches(
        &target,
        &StreamConfig {
            initial_fraction: 0.75,
            num_batches: ops.len(),
            churn: 0.3,
            seed: stream_seed,
        },
    );
    let base = IncrementalConfig {
        iterations: 3,
        max_candidate_size: 48,
        max_shingle_splits: 4,
        prune_rounds: 1,
        compact_dead_ratio: 0.25,
        seed: stream_seed,
        ..IncrementalConfig::default()
    };
    let slugger = Slugger::new(SluggerConfig {
        iterations: 4,
        max_candidate_size: 64,
        max_shingle_splits: 5,
        seed: graph_seed,
        ..SluggerConfig::default()
    });
    let mut partial = IncrementalSummarizer::bootstrap(
        &initial,
        &slugger,
        IncrementalConfig {
            partial_dissolution: true,
            ..base
        },
    );
    let mut whole = IncrementalSummarizer::bootstrap(
        &initial,
        &slugger,
        IncrementalConfig {
            partial_dissolution: false,
            ..base
        },
    );
    let mut current = DynamicGraph::from_graph(&initial);
    for (i, (delta, &op)) in batches.iter().zip(ops.iter()).enumerate() {
        delta.apply_to(&mut current);
        let rp = partial.resummarize(delta);
        let rw = whole.resummarize(delta);
        assert!(
            rp.dissolved_subnodes <= rp.region_subnodes,
            "batch {i}: partial dissolution re-expanded {} of {} region subnodes",
            rp.dissolved_subnodes,
            rp.region_subnodes
        );
        assert_eq!(
            rw.dissolved_subnodes, rw.region_subnodes,
            "batch {i}: whole-tree dissolution must re-expand the entire region"
        );
        match op {
            1 => {
                partial.prune_now(1);
                whole.prune_now(1);
            }
            2 => {
                partial.compact_now();
                whole.compact_now();
            }
            3 => {
                partial.prune_now(2);
                partial.compact_now();
                whole.prune_now(2);
                whole.compact_now();
            }
            _ => {}
        }
        partial
            .verify_lossless()
            .unwrap_or_else(|e| panic!("batch {i}: partial path not lossless: {e}"));
        whole
            .verify_lossless()
            .unwrap_or_else(|e| panic!("batch {i}: whole-tree path not lossless: {e}"));
        partial
            .validate()
            .unwrap_or_else(|e| panic!("batch {i}: partial-path bookkeeping: {e}"));
        whole
            .validate()
            .unwrap_or_else(|e| panic!("batch {i}: whole-tree bookkeeping: {e}"));
        let live = current.to_graph().edge_set();
        assert_eq!(
            slugger_core::decode::decode_full(partial.summary()).edge_set(),
            live,
            "batch {i}: partial-dissolution summary diverged from the live graph"
        );
        assert_eq!(
            slugger_core::decode::decode_full(whole.summary()).edge_set(),
            live,
            "batch {i}: whole-tree summary diverged from the live graph"
        );
    }
    // Both streams converged to the target graph.
    assert_eq!(
        slugger_core::decode::decode_full(partial.summary()).edge_set(),
        target.edge_set()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn partial_dissolution_is_equivalent_to_whole_tree_dissolution(
        graph_seed in 0u64..500,
        stream_seed in 0u64..500,
        ops in proptest::collection::vec(0u8..4, 5usize),
    ) {
        check_partial_matches_whole(graph_seed, stream_seed, &ops);
    }
}

/// The headline regression: a delta touching exactly **one** leaf of a deep
/// three-level tree dissolves only that leaf's root spine.  The off-spine
/// sibling subtree (`m1 = {2, 3}`) survives intact as a root, the spine nodes
/// die, and the dissolution accounting reports exactly the touched leaves.
#[test]
fn delta_touching_one_leaf_of_a_deep_tree_dissolves_only_its_spine() {
    // Double-star: hubs 0 and 1 are adjacent and both see every spoke 2..=5;
    // node 6 starts isolated and is wired to spoke 4 by the delta.
    let graph = Graph::from_edges(
        7,
        vec![
            (0, 1),
            (0, 2),
            (1, 2),
            (0, 3),
            (1, 3),
            (0, 4),
            (1, 4),
            (0, 5),
            (1, 5),
        ],
    );
    // Hand-build the deep tree m3{ m2{ m1{2, 3}, 4 }, 5 } over the spokes.
    let mut engine = MergeEngine::new(&graph);
    let mut ctx = MergeCtx::new();
    let m1 = engine.apply_merge(2, 3, &mut ctx);
    let m2 = engine.apply_merge(m1, 4, &mut ctx);
    let m3 = engine.apply_merge(m2, 5, &mut ctx);
    let summary = engine.into_summary();

    // Zero pipeline iterations and no pruning pin the post-dissolution
    // structure so the assertions below see exactly what dissolution left.
    let config = IncrementalConfig {
        iterations: 0,
        prune_rounds: 0,
        compact_dead_ratio: 0.0,
        partial_dissolution: true,
        ..IncrementalConfig::default()
    };
    let mut inc = IncrementalSummarizer::from_summary(summary, &graph, config)
        .expect("engine-built summary must be lossless");
    let delta = GraphDelta {
        deletions: Vec::new(),
        insertions: vec![(4, 6)],
    };
    let report = inc.resummarize(&delta);

    // Touched leaves: 4 (inside the deep tree) and 6 (a singleton root).  Only
    // those two re-expand; the spine {m2, m3} is the only casualty.
    assert_eq!(
        report.dissolved_subnodes, 2,
        "only the touched leaves re-expand"
    );
    assert_eq!(
        report.dissolved_supernodes, 2,
        "only the spine {{m2, m3}} dies"
    );
    assert!(
        report.region_subnodes >= 4,
        "the dirty region spans at least the deep tree's four spokes, got {}",
        report.region_subnodes
    );

    let summary = inc.summary();
    assert!(summary.is_alive(m1), "off-spine subtree m1 must survive");
    assert!(summary.is_root(m1), "m1 must be promoted to a root");
    assert_eq!(summary.members(m1), &[2, 3]);
    assert!(!summary.is_alive(m2), "spine node m2 must die");
    assert!(!summary.is_alive(m3), "spine node m3 must die");

    inc.verify_lossless()
        .expect("partial dissolution + restore must stay lossless");
    inc.validate().expect("engine bookkeeping must stay valid");
    let mut live = DynamicGraph::from_graph(&graph);
    delta.apply_to(&mut live);
    assert_eq!(
        slugger_core::decode::decode_full(inc.summary()).edge_set(),
        live.to_graph().edge_set()
    );
}
