//! The stage-based, shard-aware execution substrate of the summarization loop.
//!
//! Every iteration of SLUGGER (and of the SWeG baseline, which reuses this module)
//! flows through five stages:
//!
//! 1. **candidates** — generate disjoint candidate sets from the frozen iteration
//!    view ([`crate::candidates`]); the streaming region passes
//!    ([`crate::incremental`]) run this stage through a persistent batch-to-batch
//!    shingle cache ([`crate::candidates::CandidateIndex`]) that re-hashes only
//!    the roots structural events invalidated — same output, dirty-proportional
//!    cost;
//! 2. **shard** — [`partition_sets`] deals whole candidate sets onto `shards` worker
//!    shards by longest-processing-time scheduling over the estimated per-set cost
//!    (a set is never split, so merges never cross shards);
//! 3. **merge** — each shard forks per-shard scratch state ([`ShardWorker::fork`],
//!    for SLUGGER just an encoder memo) and plans each of its sets' merges against
//!    the frozen view, drawing randomness from a per-set stream ([`set_rng`], seeded
//!    by `(seed, iteration, set_index)`);
//! 4. **apply** — the plans are reconciled onto the authoritative state
//!    ([`crate::engine::apply`]), keeping cost bookkeeping exact: serially in
//!    ascending set-index order on one thread, or through conflict-partitioned
//!    batches (resolved in parallel, committed into precomputed arena slots) on
//!    worker threads — byte-identical to the serial replay either way;
//! 5. **prune** — after the last iteration, pruning runs as before
//!    ([`crate::prune`]).
//!
//! # Determinism
//!
//! SLUGGER's output is a pure function of `(input graph, seed)`: every candidate set
//! is planned against the frozen view with its own RNG stream, so neither the shard
//! count nor the [`Parallelism`] knob (how many OS threads execute the shards)
//! changes the summary — `Parallelism::Sequential` and `Parallelism::Fixed(8)`
//! produce **identical** results, the property the pipeline tests pin down.
//! (An algorithm whose [`ShardWorker::fork`] state accumulates across a shard's sets
//! — the SWeG baseline clones its grouping per shard — additionally depends on the
//! shard count, but still never on the thread count.)

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use slugger_graph::hash::hash_u64_with_seed;

/// Default number of worker shards per iteration.
///
/// A scheduling-granularity knob, *not* a thread count: the same shard structure is
/// used no matter how many threads execute it.  More shards = finer load balancing
/// but less per-shard memo locality.
pub const DEFAULT_SHARDS: usize = 8;

/// How many OS threads execute the shards of an iteration.
///
/// Never affects results — only wall-clock time.  See the module docs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Parallelism {
    /// Everything on the calling thread.
    #[default]
    Sequential,
    /// Up to `n` worker threads (clamped to at least 1).
    Fixed(usize),
    /// One thread per available CPU.
    Auto,
}

impl Parallelism {
    /// The worker-thread count this knob stands for, before any shard cap.
    pub fn threads(self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Fixed(n) => n.max(1),
            Parallelism::Auto => rayon::current_num_threads(),
        }
    }

    /// The number of worker threads to use for `num_shards` shards.
    pub fn worker_threads(self, num_shards: usize) -> usize {
        self.threads().min(num_shards.max(1))
    }
}

/// A deterministic assignment of candidate sets to shards.
#[derive(Clone, Debug)]
pub struct ShardAssignment {
    /// Per shard, the candidate-set indices it owns, in ascending order.
    shards: Vec<Vec<usize>>,
}

impl ShardAssignment {
    /// The per-shard set-index lists.
    pub fn shards(&self) -> &[Vec<usize>] {
        &self.shards
    }

    /// Number of shards that own at least one set.
    pub fn non_empty(&self) -> usize {
        self.shards.iter().filter(|s| !s.is_empty()).count()
    }
}

/// Estimated planning cost of a candidate set of `len` roots.
///
/// The merging step evaluates every remaining partner for each pivot, i.e.
/// O(|set|²) `Saving(A, B, G)` evaluations, so the square is the right load-balance
/// weight (candidate sets vary from pairs to the 500-root cap — three orders of
/// magnitude in cost).
#[inline]
pub fn estimated_set_cost(len: usize) -> u64 {
    (len as u64) * (len as u64)
}

/// Deals candidate sets (given their estimated costs) across `num_shards` shards by
/// **longest-processing-time** scheduling: sets are placed in descending cost order
/// onto the currently least-loaded shard.
///
/// Whole sets are assigned — never split — so all merges stay within one shard.  The
/// assignment is a pure function of `(set_costs, num_shards)` (ties broken by set
/// index and then by shard index), and each shard's internal processing order stays
/// ascending by set index — a scheduling change can therefore never alter SLUGGER's
/// output, which plans every set independently against the frozen view.
pub fn partition_sets(set_costs: &[u64], num_shards: usize) -> ShardAssignment {
    let num_shards = num_shards.max(1);
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); num_shards];
    let mut order: Vec<usize> = (0..set_costs.len()).collect();
    order.sort_by(|&a, &b| set_costs[b].cmp(&set_costs[a]).then(a.cmp(&b)));
    let mut loads: Vec<u64> = vec![0; num_shards];
    for set_index in order {
        let lightest = loads
            .iter()
            .enumerate()
            .min_by_key(|&(shard, &load)| (load, shard))
            .map(|(shard, _)| shard)
            .expect("at least one shard");
        shards[lightest].push(set_index);
        // Even a trivial set occupies its shard's queue slot; never weigh it zero.
        loads[lightest] += set_costs[set_index].max(1);
    }
    for shard in &mut shards {
        shard.sort_unstable();
    }
    ShardAssignment { shards }
}

/// The independent random stream of one candidate set: seeded from
/// `(seed, iteration, set_index)` so results do not depend on which shard or thread
/// processes the set, nor on how many sets precede it.
pub fn set_rng(seed: u64, iteration: usize, set_index: usize) -> StdRng {
    let stream = hash_u64_with_seed(
        (iteration as u64) << 32 ^ set_index as u64,
        seed ^ 0x5ba4_11e5_eed5_7ead,
    );
    StdRng::seed_from_u64(stream)
}

/// An algorithm that plans merges for candidate sets on forked per-shard state.
///
/// Implemented by SLUGGER (fork = a fresh planner over the frozen engine view plus
/// a private encoder memo) and by the SWeG baseline (fork = a `Grouping` clone).
pub trait ShardWorker: Sync {
    /// Per-shard mutable planning state.
    type Planner: Send;
    /// The plan produced for one candidate set.
    type Plan: Send;

    /// Forks the frozen iteration view into fresh per-shard state.
    fn fork(&self) -> Self::Planner;

    /// Prepares an already-used planner for the next shard.
    ///
    /// The default replaces it with freshly forked state, which is always correct
    /// (and what the SWeG baseline needs: its plans build on the per-shard grouping
    /// clone).  Workers whose planner state can never affect output — SLUGGER's
    /// planner is a deterministic solver memo plus scratch pools that clear per set
    /// — override this with a no-op, so warmed state persists across shards and,
    /// via [`PlannerPool`], across iterations.
    fn reset(&self, planner: &mut Self::Planner) {
        *planner = self.fork();
    }

    /// Plans one candidate set, mutating the shard state in place.
    fn plan_set(
        &self,
        planner: &mut Self::Planner,
        set_index: usize,
        set: &[u32],
        rng: &mut StdRng,
    ) -> Self::Plan;
}

/// A caller-owned pool of per-worker planners for [`plan_shards_pooled`].
///
/// Keeping the pool alive across calls lets workers with a no-op
/// [`ShardWorker::reset`] carry warmed planner state (encoder memos, overlay
/// scratch pools) from iteration to iteration instead of rebuilding it cold; for
/// workers using the forking default the pool is behaviorally invisible.
#[derive(Default)]
pub struct PlannerPool<P> {
    planners: Vec<P>,
    /// Whether the same-index planner has planned a shard before (and therefore
    /// needs a [`ShardWorker::reset`] before the next one).
    used: Vec<bool>,
}

impl<P> PlannerPool<P> {
    /// An empty pool; planners are forked on first use.
    pub fn new() -> Self {
        PlannerPool {
            planners: Vec::new(),
            used: Vec::new(),
        }
    }

    /// Number of planners forked so far.
    pub fn len(&self) -> usize {
        self.planners.len()
    }

    /// Whether no planner has been forked yet.
    pub fn is_empty(&self) -> bool {
        self.planners.is_empty()
    }

    /// Mutable access to the pooled planners (e.g. to recycle buffers into them).
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, P> {
        self.planners.iter_mut()
    }
}

/// Runs the **shard** and **merge** stages: partitions `sets` into `num_shards`
/// shards, plans every shard (in parallel according to `parallelism`), and returns
/// the plans in ascending set-index order, ready for the apply stage.
///
/// `rng_for_set` supplies each set's independent random stream (see [`set_rng`]).
/// Planner state lives only for this call; use [`plan_shards_pooled`] to persist it.
pub fn plan_shards<W: ShardWorker>(
    worker: &W,
    sets: &[Vec<u32>],
    num_shards: usize,
    parallelism: Parallelism,
    rng_for_set: &(dyn Fn(usize) -> StdRng + Sync),
) -> Vec<W::Plan> {
    plan_shards_pooled(
        worker,
        sets,
        num_shards,
        parallelism,
        rng_for_set,
        &mut PlannerPool::new(),
    )
}

/// [`plan_shards`] with caller-owned planner state: planners are forked into `pool`
/// on first use and prepared for each further shard via [`ShardWorker::reset`], so
/// drivers that call this once per iteration keep warmed planner state alive for
/// the whole run (when the worker's `reset` retains it).
pub fn plan_shards_pooled<W: ShardWorker>(
    worker: &W,
    sets: &[Vec<u32>],
    num_shards: usize,
    parallelism: Parallelism,
    rng_for_set: &(dyn Fn(usize) -> StdRng + Sync),
    pool: &mut PlannerPool<W::Planner>,
) -> Vec<W::Plan> {
    let set_costs: Vec<u64> = sets.iter().map(|s| estimated_set_cost(s.len())).collect();
    let assignment = partition_sets(&set_costs, num_shards);
    let threads = parallelism.worker_threads(assignment.non_empty());

    let mut plans: Vec<Option<W::Plan>> = Vec::with_capacity(sets.len());
    plans.resize_with(sets.len(), || None);

    while pool.planners.len() < threads {
        pool.planners.push(worker.fork());
        pool.used.push(false);
    }

    let run_shard = |planner: &mut W::Planner,
                     used: &mut bool,
                     set_indices: &[usize]|
     -> Vec<(usize, W::Plan)> {
        if *used {
            worker.reset(planner);
        }
        *used = true;
        set_indices
            .iter()
            .map(|&set_index| {
                let mut rng = rng_for_set(set_index);
                let plan = worker.plan_set(planner, set_index, &sets[set_index], &mut rng);
                (set_index, plan)
            })
            .collect()
    };

    if threads <= 1 {
        let planner = &mut pool.planners[0];
        let used = &mut pool.used[0];
        for shard in assignment.shards() {
            if shard.is_empty() {
                continue;
            }
            for (set_index, plan) in run_shard(planner, used, shard) {
                plans[set_index] = Some(plan);
            }
        }
    } else {
        // Deal shards round-robin onto `threads` workers.  Each worker still gets
        // per-shard planner state (via `reset`), so the grouping affects
        // scheduling only.
        let buckets: Vec<Vec<&[usize]>> = {
            let mut buckets: Vec<Vec<&[usize]>> = vec![Vec::new(); threads];
            for (i, shard) in assignment
                .shards()
                .iter()
                .filter(|s| !s.is_empty())
                .enumerate()
            {
                buckets[i % threads].push(shard);
            }
            buckets
        };
        let produced: Vec<Vec<(usize, W::Plan)>> = rayon::scope(|scope| {
            let handles: Vec<_> = pool
                .planners
                .iter_mut()
                .zip(pool.used.iter_mut())
                .zip(buckets.iter())
                .filter(|(_, bucket)| !bucket.is_empty())
                .map(|((planner, used), bucket)| {
                    scope.spawn(move || {
                        bucket
                            .iter()
                            .flat_map(|shard| run_shard(planner, used, shard))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });
        for (set_index, plan) in produced.into_iter().flatten() {
            plans[set_index] = Some(plan);
        }
    }

    plans
        .into_iter()
        .map(|p| p.expect("every set is planned by exactly one shard"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_never_splits_a_set_and_covers_all() {
        for (num_sets, num_shards) in [(0usize, 4), (1, 4), (7, 3), (16, 8), (5, 16), (100, 7)] {
            // Mix of cheap and expensive sets to exercise the LPT placement.
            let costs: Vec<u64> = (0..num_sets)
                .map(|i| estimated_set_cost(2 + (i * 37) % 50))
                .collect();
            let assignment = partition_sets(&costs, num_shards);
            assert_eq!(assignment.shards().len(), num_shards.max(1));
            let mut seen = vec![0usize; num_sets];
            for shard in assignment.shards() {
                assert!(
                    shard.windows(2).all(|w| w[0] < w[1]),
                    "shard processing order must be ascending"
                );
                for &set_index in shard {
                    seen[set_index] += 1;
                }
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "every candidate set must live in exactly one shard ({num_sets} sets, {num_shards} shards): {seen:?}"
            );
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let assignment = partition_sets(&[1, 1, 1, 1, 1], 0);
        assert_eq!(assignment.shards().len(), 1);
        assert_eq!(assignment.shards()[0], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn lpt_balances_skewed_costs_better_than_round_robin() {
        // One huge set followed by many small ones: round-robin would stack the huge
        // set plus a share of the small ones on shard 0; LPT gives the huge set a
        // shard of its own.
        let mut costs = vec![estimated_set_cost(500)];
        costs.extend(std::iter::repeat_n(estimated_set_cost(4), 24));
        let assignment = partition_sets(&costs, 4);
        let load = |shard: &[usize]| -> u64 { shard.iter().map(|&i| costs[i]).sum() };
        let loads: Vec<u64> = assignment.shards().iter().map(|s| load(s)).collect();
        let huge_shard = assignment
            .shards()
            .iter()
            .position(|s| s.contains(&0))
            .unwrap();
        assert_eq!(
            assignment.shards()[huge_shard],
            vec![0],
            "the dominant set must monopolize its shard, got {:?}",
            assignment.shards()
        );
        // The small sets spread over the remaining shards.
        let max_other = loads
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != huge_shard)
            .map(|(_, &l)| l)
            .max()
            .unwrap();
        assert!(
            max_other <= 9 * estimated_set_cost(4),
            "small sets must spread out, loads {loads:?}"
        );
    }

    #[test]
    fn partition_is_deterministic() {
        let costs: Vec<u64> = (0..40).map(|i| estimated_set_cost(2 + i % 13)).collect();
        let a = partition_sets(&costs, 8);
        let b = partition_sets(&costs, 8);
        assert_eq!(a.shards(), b.shards());
    }

    #[test]
    fn set_rng_streams_are_independent_and_reproducible() {
        use rand::RngExt;
        let mut a = set_rng(7, 3, 0);
        let mut a2 = set_rng(7, 3, 0);
        let mut b = set_rng(7, 3, 1);
        let mut c = set_rng(7, 4, 0);
        let mut d = set_rng(8, 3, 0);
        let draw = |rng: &mut rand::rngs::StdRng| -> Vec<u64> {
            (0..8).map(|_| rng.random::<u64>()).collect()
        };
        let base = draw(&mut a);
        assert_eq!(base, draw(&mut a2), "same (seed, iter, set) ⇒ same stream");
        assert_ne!(base, draw(&mut b), "set index must change the stream");
        assert_ne!(base, draw(&mut c), "iteration must change the stream");
        assert_ne!(base, draw(&mut d), "seed must change the stream");
    }

    #[test]
    fn worker_threads_clamp() {
        assert_eq!(Parallelism::Sequential.worker_threads(8), 1);
        assert_eq!(Parallelism::Fixed(4).worker_threads(8), 4);
        assert_eq!(Parallelism::Fixed(0).worker_threads(8), 1);
        assert_eq!(Parallelism::Fixed(64).worker_threads(8), 8);
        assert!(Parallelism::Auto.worker_threads(64) >= 1);
    }

    /// A toy worker: per-shard state is a running sum; the plan for a set is
    /// `(shard_sum_so_far, sum_of_set, one random draw)`.  Used to prove thread-count
    /// independence of the executor itself.
    struct SummingWorker;

    impl ShardWorker for SummingWorker {
        type Planner = u64;
        type Plan = (u64, u64, u64);

        fn fork(&self) -> u64 {
            0
        }

        fn plan_set(
            &self,
            planner: &mut u64,
            _set_index: usize,
            set: &[u32],
            rng: &mut StdRng,
        ) -> (u64, u64, u64) {
            use rand::RngExt;
            let sum: u64 = set.iter().map(|&x| x as u64).sum();
            *planner += sum;
            (*planner, sum, rng.random::<u64>())
        }
    }

    #[test]
    fn executor_output_is_independent_of_thread_count() {
        let sets: Vec<Vec<u32>> = (0..37).map(|i| vec![i, i + 1, 2 * i]).collect();
        let rng_for_set = |set_index: usize| set_rng(42, 1, set_index);
        let baseline = plan_shards(
            &SummingWorker,
            &sets,
            6,
            Parallelism::Sequential,
            &rng_for_set,
        );
        for parallelism in [
            Parallelism::Fixed(2),
            Parallelism::Fixed(3),
            Parallelism::Fixed(8),
            Parallelism::Auto,
        ] {
            let plans = plan_shards(&SummingWorker, &sets, 6, parallelism, &rng_for_set);
            assert_eq!(plans, baseline, "{parallelism:?} diverged from sequential");
        }
    }
}
