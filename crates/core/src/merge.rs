//! The merging step (Algorithm 2): within each candidate set, repeatedly pick a random
//! root `A`, find the partner `B` maximizing `Saving(A, B, G)` (Eq. 8), and merge the
//! pair when the saving clears the iteration threshold `θ(t)` (Eq. 9).

use crate::engine::apply::{MergeRef, PlannedMerge};
use crate::engine::{MergeCtx, MergeEngine, MergeState};
use crate::model::SupernodeId;
use rand::rngs::StdRng;
use rand::RngExt;
use slugger_graph::hash::FxHashMap;

/// The merging threshold `θ(t)` of Eq. 9: high early on (so only clearly beneficial
/// pairs merge first), zero at the final iteration (so any non-worsening merge is
/// taken).
pub fn merging_threshold(iteration: usize, total_iterations: usize) -> f64 {
    if iteration >= total_iterations {
        0.0
    } else {
        1.0 / (1.0 + iteration as f64)
    }
}

/// Statistics of one merging pass over a single candidate set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Number of candidate pairs whose saving was evaluated.
    pub evaluated: usize,
    /// Number of merges performed.
    pub merged: usize,
}

impl MergeStats {
    /// Accumulates another batch of statistics.
    pub fn absorb(&mut self, other: MergeStats) {
        self.evaluated += other.evaluated;
        self.merged += other.merged;
    }
}

/// Options for the merging step.
#[derive(Clone, Copy, Debug)]
pub struct MergeOptions {
    /// Threshold `θ(t)` for the current iteration.
    pub threshold: f64,
    /// Optional upper bound on the hierarchy-tree height (the Table V variant): a merge
    /// is skipped when the resulting tree would exceed this height.
    pub height_bound: Option<usize>,
}

/// Plans one candidate set `D` (Algorithm 2): merges greedily until every root has
/// been considered once as the pivot `A`, recording each merge as a
/// [`PlannedMerge`] so the sequence can be replayed on the authoritative engine by
/// the [`crate::engine::apply`] reconciliation layer.
///
/// The merges *are applied* to the given [`MergeState`] — in the sharded pipeline
/// that is a per-set copy-on-write overlay over the frozen iteration view; planning
/// directly on the authoritative [`MergeEngine`] is the in-place special case used
/// by [`process_candidate_set`].
pub fn plan_candidate_set<E: MergeState>(
    engine: &mut E,
    ctx: &mut MergeCtx,
    candidate_set: &[SupernodeId],
    options: &MergeOptions,
    rng: &mut StdRng,
) -> (Vec<PlannedMerge>, MergeStats) {
    let mut stats = MergeStats::default();
    // The pivot queue and the planned-product index are pooled in the context's
    // scratch (taken out for the duration of the call so the evaluate/apply calls
    // below can still borrow `ctx`); the merges vector is recycled from the pool
    // when a consumer has returned one.
    let mut merges: Vec<PlannedMerge> = ctx.scratch.merge_pool.pop().unwrap_or_default();
    merges.clear();
    // Supernodes created by this set's own merges, mapped to their plan position so
    // later merges can reference them positionally (engine-local ids are not stable
    // across a replay).
    let mut planned_ids: FxHashMap<SupernodeId, usize> =
        std::mem::take(&mut ctx.scratch.planned_ids);
    planned_ids.clear();
    // Q ← D; in the sharded pipeline candidate sets are disjoint, but stay defensive
    // against callers feeding stale ids (e.g. hand-built sets in tests).
    let mut queue: Vec<SupernodeId> = std::mem::take(&mut ctx.scratch.plan_queue);
    queue.clear();
    queue.extend(candidate_set.iter().copied().filter(|&r| engine.is_root(r)));
    while queue.len() > 1 {
        // Pick and remove a random pivot A.
        let idx = rng.random_range(0..queue.len());
        let a = queue.swap_remove(idx);
        if !engine.is_root(a) {
            continue;
        }
        // Find the partner with maximum saving.
        let mut best: Option<(usize, f64)> = None;
        for (pos, &z) in queue.iter().enumerate() {
            if z == a || !engine.is_root(z) {
                continue;
            }
            if let Some(bound) = options.height_bound {
                let new_height = engine.root_height(a).max(engine.root_height(z)) + 1;
                if new_height > bound {
                    continue;
                }
            }
            let eval = engine.evaluate_merge(a, z, ctx);
            stats.evaluated += 1;
            let better = match best {
                None => true,
                Some((_, s)) => eval.saving > s,
            };
            if better {
                best = Some((pos, eval.saving));
            }
        }
        let Some((pos, saving)) = best else { continue };
        if saving >= options.threshold {
            let b = queue[pos];
            let as_ref = |id: SupernodeId| match planned_ids.get(&id) {
                Some(&i) => MergeRef::Planned(i),
                None => MergeRef::Root(id),
            };
            merges.push(PlannedMerge {
                a: as_ref(a),
                b: as_ref(b),
            });
            let merged = engine.apply_merge(a, b, ctx);
            planned_ids.insert(merged, merges.len() - 1);
            stats.merged += 1;
            // Q ← (Q \ {B}) ∪ {A ∪ B}
            queue[pos] = merged;
        }
    }
    ctx.scratch.plan_queue = queue;
    ctx.scratch.planned_ids = planned_ids;
    (merges, stats)
}

/// Processes one candidate set `D` (Algorithm 2) directly on the given engine: the
/// plan-and-apply-in-place special case of [`plan_candidate_set`].
pub fn process_candidate_set(
    engine: &mut MergeEngine,
    ctx: &mut MergeCtx,
    candidate_set: &[SupernodeId],
    options: &MergeOptions,
    rng: &mut StdRng,
) -> MergeStats {
    let (merges, stats) = plan_candidate_set(engine, ctx, candidate_set, options, rng);
    // In-place processing has no replay consumer; recycle the plan immediately.
    ctx.recycle_merges(merges);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use slugger_graph::Graph;

    #[test]
    fn threshold_schedule_matches_eq9() {
        assert!((merging_threshold(1, 20) - 0.5).abs() < 1e-12);
        assert!((merging_threshold(2, 20) - 1.0 / 3.0).abs() < 1e-12);
        assert!((merging_threshold(19, 20) - 0.05).abs() < 1e-12);
        assert_eq!(merging_threshold(20, 20), 0.0);
        assert_eq!(merging_threshold(25, 20), 0.0);
    }

    fn twin_heavy_graph() -> Graph {
        // Two hubs (0, 1) and six twin spokes attached to both: ideal merge fodder.
        let mut edges = Vec::new();
        for spoke in 2..8u32 {
            edges.push((0, spoke));
            edges.push((1, spoke));
        }
        edges.push((0, 1));
        Graph::from_edges(8, edges)
    }

    #[test]
    fn processing_a_candidate_set_merges_twins() {
        let g = twin_heavy_graph();
        let mut engine = MergeEngine::new(&g);
        let mut ctx = MergeCtx::new();
        let mut rng = StdRng::seed_from_u64(3);
        let spokes: Vec<SupernodeId> = (2..8).collect();
        let before = engine.summary().encoding_cost();
        let stats = process_candidate_set(
            &mut engine,
            &mut ctx,
            &spokes,
            &MergeOptions {
                threshold: 0.0,
                height_bound: None,
            },
            &mut rng,
        );
        assert!(stats.evaluated > 0);
        assert!(
            stats.merged >= 4,
            "expected most twins to merge, got {stats:?}"
        );
        // Merging twins is cost-neutral before pruning (saved p-edges pay for the new
        // h-edges); the gain appears once edge-free internal supernodes are pruned.
        let after = engine.summary().encoding_cost();
        assert!(after <= before, "cost must not grow ({before} -> {after})");
        let graph = twin_heavy_graph();
        let mut summary = engine.into_summary();
        crate::prune::prune_all(&mut summary, &graph, 2);
        assert!(
            summary.encoding_cost() < before,
            "pruned cost should drop ({before} -> {})",
            summary.encoding_cost()
        );
        crate::decode::verify_lossless(&summary, &graph).unwrap();
    }

    #[test]
    fn high_threshold_blocks_marginal_merges() {
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        let mut engine = MergeEngine::new(&g);
        let mut ctx = MergeCtx::new();
        let mut rng = StdRng::seed_from_u64(5);
        let all: Vec<SupernodeId> = (0..4).collect();
        let stats = process_candidate_set(
            &mut engine,
            &mut ctx,
            &all,
            &MergeOptions {
                threshold: 0.9,
                height_bound: None,
            },
            &mut rng,
        );
        assert_eq!(stats.merged, 0);
        assert_eq!(engine.num_roots(), 4);
    }

    #[test]
    fn height_bound_limits_tree_growth() {
        let g = twin_heavy_graph();
        let mut engine = MergeEngine::new(&g);
        let mut ctx = MergeCtx::new();
        let mut rng = StdRng::seed_from_u64(9);
        let spokes: Vec<SupernodeId> = (2..8).collect();
        // Height bound 1: only leaf-leaf merges allowed, so every merged tree has
        // exactly two leaves.
        let _ = process_candidate_set(
            &mut engine,
            &mut ctx,
            &spokes,
            &MergeOptions {
                threshold: 0.0,
                height_bound: Some(1),
            },
            &mut rng,
        );
        for root in engine.roots() {
            assert!(engine.root_height(root) <= 1);
            assert!(engine.summary().members(root).len() <= 2);
        }
        engine.summary().validate().unwrap();
    }

    #[test]
    fn stale_candidates_are_skipped() {
        let g = twin_heavy_graph();
        let mut engine = MergeEngine::new(&g);
        let mut ctx = MergeCtx::new();
        let mut rng = StdRng::seed_from_u64(1);
        // Merge 2 and 3 beforehand; the candidate set still names them.
        let m = engine.apply_merge(2, 3, &mut ctx);
        let candidates: Vec<SupernodeId> = vec![2, 3, 4, 5, m];
        let stats = process_candidate_set(
            &mut engine,
            &mut ctx,
            &candidates,
            &MergeOptions {
                threshold: 0.0,
                height_bound: None,
            },
            &mut rng,
        );
        // No panic, and some work happened on the live roots.
        assert!(stats.evaluated > 0);
        engine.summary().validate().unwrap();
    }
}
