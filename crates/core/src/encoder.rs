//! Local re-encoding of p/n-edges when two root supernodes are merged (Sect. III-B3).
//!
//! When roots `A` and `B` merge into `M`, SLUGGER re-encodes
//!
//! * **Case 1** — the p/n-edges *within* the panel `{M} ∪ S_A ∪ S_B`, where
//!   `S_X = {X} ∪ children(X)` (at most 7 supernodes, Fig. 4's yellow panel), and
//! * **Case 2** — the p/n-edges *between* that panel and `S_C` (at most 3 supernodes,
//!   the orange panel) for every root `C` sharing a p/n-edge with the yellow panel,
//!
//! while leaving every other edge untouched.  Exactness is guaranteed by a simple
//! invariant: the *finest partition* of the panel into **cells** (the deepest panel
//! supernodes) is such that every panel edge covers each cell pair either completely
//! or not at all; therefore the represented graph is unchanged iff the new panel edges
//! contribute the same signed net coverage to every non-vacuous cell pair as the old
//! ones did.  The solver below searches the minimum-cardinality edge set with that
//! property, exhaustively over the constant-size panel, exactly as the paper describes
//! ("a valid one reducing the encoding cost most among them can be exhaustively
//! searched").
//!
//! The search results are **memoized** ([`EncoderMemo`]) keyed by the cell-pair
//! requirement vector — the quotient of the paper's "p-edges and n-edges between up to
//! 10 supernodes before the update" key that actually determines the optimum — so each
//! distinct local configuration is solved only once per process, mirroring the paper's
//! look-up table.

use slugger_graph::hash::FxHashMap;

/// Abstract panel supernode indices shared by the solver and the merge engine.
/// `M` is the freshly created merged supernode; `A`/`B` the two merged roots;
/// `A1/A2/B1/B2` their direct children (present only when the root is internal);
/// `C/C1/C2` the orange-panel root and its children (Case 2 only).
pub mod panel {
    /// The merged supernode `A ∪ B`.
    pub const M: u8 = 0;
    /// The first merged root.
    pub const A: u8 = 1;
    /// The second merged root.
    pub const B: u8 = 2;
    /// First child of `A` (when `A` is internal).
    pub const A1: u8 = 3;
    /// Second child of `A` (when `A` is internal).
    pub const A2: u8 = 4;
    /// First child of `B` (when `B` is internal).
    pub const B1: u8 = 5;
    /// Second child of `B` (when `B` is internal).
    pub const B2: u8 = 6;
    /// The adjacent root `C` of the orange panel.
    pub const C: u8 = 7;
    /// First child of `C` (when `C` is internal).
    pub const C1: u8 = 8;
    /// Second child of `C` (when `C` is internal).
    pub const C2: u8 = 9;
}

/// Maximum absolute requirement value the solver accepts.  Requirements are signed
/// sums of at most a handful of ±1 panel edges, so |d| ≤ 8 always holds; the bound
/// exists only to keep the memo key compact.
pub const MAX_REQUIREMENT: i32 = 16;

/// An edge of a panel encoding: two abstract panel supernode indices and a weight
/// (+1 = p-edge, −1 = n-edge).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AbstractEdge {
    /// First endpoint (abstract index from [`panel`]).
    pub a: u8,
    /// Second endpoint (abstract index from [`panel`]).
    pub b: u8,
    /// +1 for a p-edge, −1 for an n-edge.
    pub weight: i8,
}

/// Maximum number of edges a panel solution can carry.  A Case-1 panel has at most
/// 18 admissible slots and a Case-2 panel at most 21, so 24 covers every reachable
/// solution; [`PanelSolution::push`] asserts the bound.
pub const MAX_SOLUTION_EDGES: usize = 24;

/// A solved minimum panel encoding.
///
/// Stored inline (`Copy`) rather than heap-allocated: the merge stage recalls one
/// memoized solution per candidate-pair evaluation, and cloning a `Vec` there made
/// the allocator the hottest object in the pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PanelSolution {
    /// Total number of p/n-edges in the encoding.
    pub cost: u32,
    len: u8,
    edges: [AbstractEdge; MAX_SOLUTION_EDGES],
}

impl PanelSolution {
    /// An empty (zero-cost) solution to extend via [`PanelSolution::push`].
    pub fn empty() -> Self {
        PanelSolution {
            cost: 0,
            len: 0,
            edges: [AbstractEdge {
                a: 0,
                b: 0,
                weight: 0,
            }; MAX_SOLUTION_EDGES],
        }
    }

    /// Appends an edge (does not touch `cost`, which callers account separately).
    pub fn push(&mut self, edge: AbstractEdge) {
        assert!(
            (self.len as usize) < MAX_SOLUTION_EDGES,
            "panel solution overflow"
        );
        self.edges[self.len as usize] = edge;
        self.len += 1;
    }

    /// The edges of the encoding, with abstract endpoints.
    pub fn edges(&self) -> &[AbstractEdge] {
        &self.edges[..self.len as usize]
    }
}

// ---------------------------------------------------------------------------------
// Case 1: edges within {M} ∪ S_A ∪ S_B
// ---------------------------------------------------------------------------------

/// Shape of a Case-1 problem: whether each merged root is internal (has two children)
/// or a leaf.  During the merging phase every supernode has zero or two children.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Case1Shape {
    /// `A` has two children (`A1`, `A2`).
    pub a_internal: bool,
    /// `B` has two children (`B1`, `B2`).
    pub b_internal: bool,
}

impl Case1Shape {
    /// The cells (finest panel partition) on the `A`-then-`B` order.
    pub fn cells(&self) -> Vec<u8> {
        let mut cells = Vec::with_capacity(4);
        if self.a_internal {
            cells.push(panel::A1);
            cells.push(panel::A2);
        } else {
            cells.push(panel::A);
        }
        if self.b_internal {
            cells.push(panel::B1);
            cells.push(panel::B2);
        } else {
            cells.push(panel::B);
        }
        cells
    }

    /// All panel supernodes (always starts with `M`, `A`, `B`).
    pub fn supers(&self) -> Vec<u8> {
        let mut s = vec![panel::M, panel::A, panel::B];
        if self.a_internal {
            s.push(panel::A1);
            s.push(panel::A2);
        }
        if self.b_internal {
            s.push(panel::B1);
            s.push(panel::B2);
        }
        s
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        (if self.a_internal { 2 } else { 1 }) + (if self.b_internal { 2 } else { 1 })
    }

    /// Number of unordered cell pairs, including self pairs.
    pub fn num_pairs(&self) -> usize {
        let k = self.num_cells();
        k * (k + 1) / 2
    }
}

/// Index of the unordered pair `(i, j)` with `i ≤ j` among `k` cells: pairs are listed
/// as (0,0), (0,1), …, (0,k-1), (1,1), …
#[inline]
pub fn pair_index(i: usize, j: usize, k: usize) -> usize {
    debug_assert!(i <= j && j < k);
    i * k - (i * i - i) / 2 + (j - i)
}

/// Which cells an abstract panel supernode contains, for a Case-1 shape.
fn case1_coverage(shape: Case1Shape, sup: u8) -> Vec<usize> {
    let cells = shape.cells();
    let find = |c: u8| cells.iter().position(|&x| x == c).expect("cell present");
    match sup {
        panel::M => (0..cells.len()).collect(),
        panel::A => {
            if shape.a_internal {
                vec![find(panel::A1), find(panel::A2)]
            } else {
                vec![find(panel::A)]
            }
        }
        panel::B => {
            if shape.b_internal {
                vec![find(panel::B1), find(panel::B2)]
            } else {
                vec![find(panel::B)]
            }
        }
        panel::A1 | panel::A2 | panel::B1 | panel::B2 => vec![find(sup)],
        _ => unreachable!("not a Case-1 panel supernode"),
    }
}

/// Whether `x` is a (strict) hierarchical ancestor of `y` within the Case-1 panel.
fn case1_is_ancestor(x: u8, y: u8) -> bool {
    match (x, y) {
        (panel::M, _) if y != panel::M => true,
        (panel::A, panel::A1) | (panel::A, panel::A2) => true,
        (panel::B, panel::B1) | (panel::B, panel::B2) => true,
        _ => false,
    }
}

/// A candidate slot: an unordered pair of panel supernodes (possibly a self-loop) with
/// the list of cell-pair indices it covers.
#[derive(Clone, Debug)]
struct Slot {
    a: u8,
    b: u8,
    covers: Vec<usize>,
}

/// Builds the unit slots (cell-cell pairs, each covering exactly one cell pair, indexed
/// by that pair) and the "high" slots (everything else) for a Case-1 shape.
fn case1_slots(shape: Case1Shape) -> (Vec<Option<Slot>>, Vec<Slot>) {
    let supers = shape.supers();
    let cells = shape.cells();
    let k = cells.len();
    let num_pairs = shape.num_pairs();
    let mut units: Vec<Option<Slot>> = vec![None; num_pairs];
    let mut high: Vec<Slot> = Vec::new();
    for (si, &x) in supers.iter().enumerate() {
        for &y in &supers[si..] {
            if x != y && (case1_is_ancestor(x, y) || case1_is_ancestor(y, x)) {
                continue;
            }
            let cov_x = case1_coverage(shape, x);
            let cov_y = case1_coverage(shape, y);
            let mut covers = Vec::new();
            for &ci in &cov_x {
                for &cj in &cov_y {
                    let (lo, hi) = if ci <= cj { (ci, cj) } else { (cj, ci) };
                    let idx = pair_index(lo, hi, k);
                    if !covers.contains(&idx) {
                        covers.push(idx);
                    }
                }
            }
            if x == y {
                // Self-loop: covers all pairs within its coverage, including self pairs
                // (already handled by the double loop above since cov_x == cov_y).
            }
            covers.sort_unstable();
            let slot = Slot { a: x, b: y, covers };
            let is_cell_pair = cells.contains(&x) && cells.contains(&y);
            if is_cell_pair {
                debug_assert_eq!(slot.covers.len(), 1);
                let idx = slot.covers[0];
                units[idx] = Some(slot);
            } else {
                high.push(slot);
            }
        }
    }
    (units, high)
}

/// Memo key of a Case-1 problem.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Case1Problem {
    /// Panel shape.
    pub shape: Case1Shape,
    /// Required net per cell pair (pair order per [`pair_index`]); entries beyond
    /// `shape.num_pairs()` are zero.
    pub required: [i8; 10],
    /// Bit `i` set ⇔ cell pair `i` is constrained (has at least one subnode pair).
    pub constrained: u16,
}

/// Solves a Case-1 problem from scratch (no memo).  Always feasible because "keep the
/// old configuration" is in the search space; panics only if a requirement exceeds
/// [`MAX_REQUIREMENT`], which cannot be produced by the merge engine.
pub fn solve_case1(problem: &Case1Problem) -> PanelSolution {
    let (units, high) = case1_slots(problem.shape);
    let num_pairs = problem.shape.num_pairs();
    let required: Vec<i32> = (0..num_pairs).map(|i| problem.required[i] as i32).collect();
    let constrained: Vec<bool> = (0..num_pairs)
        .map(|i| problem.constrained >> i & 1 == 1)
        .collect();
    solve_with_slots(&units, &high, &required, &constrained)
        .expect("Case-1 problems are always feasible")
}

// ---------------------------------------------------------------------------------
// Case 2: edges between ({M} ∪ S_A ∪ S_B) and S_C
// ---------------------------------------------------------------------------------

/// Shape of a Case-2 problem.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Case2Shape {
    /// `A` has two children.
    pub a_internal: bool,
    /// `B` has two children.
    pub b_internal: bool,
    /// `C` has two children.
    pub c_internal: bool,
}

impl Case2Shape {
    /// Yellow cells, `A`-side then `B`-side.
    pub fn yellow_cells(&self) -> Vec<u8> {
        Case1Shape {
            a_internal: self.a_internal,
            b_internal: self.b_internal,
        }
        .cells()
    }

    /// Orange cells.
    pub fn orange_cells(&self) -> Vec<u8> {
        if self.c_internal {
            vec![panel::C1, panel::C2]
        } else {
            vec![panel::C]
        }
    }

    /// Orange panel supernodes.
    pub fn orange_supers(&self) -> Vec<u8> {
        if self.c_internal {
            vec![panel::C, panel::C1, panel::C2]
        } else {
            vec![panel::C]
        }
    }

    /// Number of yellow × orange cell pairs; pair index = `yellow_idx * |orange| + orange_idx`.
    pub fn num_pairs(&self) -> usize {
        self.yellow_cells().len() * self.orange_cells().len()
    }
}

/// Memo key of a Case-2 problem.  All cross cell pairs are constrained (two distinct
/// non-empty supernodes always span at least one subnode pair), so no mask is needed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Case2Problem {
    /// Panel shape.
    pub shape: Case2Shape,
    /// Required net per yellow × orange cell pair; entries beyond `shape.num_pairs()`
    /// are zero.
    pub required: [i8; 8],
}

/// One yellow side (either `A` or `B`) of a Case-2 problem, solved independently once
/// the `M`-level slots are fixed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct SideProblem {
    side_internal: bool,
    c_internal: bool,
    /// Residual requirements for this side's (≤2) cells × (≤2) orange cells, in
    /// `side_cell_idx * |orange| + orange_idx` order.
    residual: [i8; 4],
}

#[derive(Clone, Debug)]
struct SideSolution {
    cost: u32,
    /// Edges with abstract endpoints where the yellow endpoint uses `A`/`A1`/`A2`
    /// placeholders (the caller remaps to the `B` side when needed).
    edges: Vec<AbstractEdge>,
}

fn solve_side(problem: &SideProblem) -> Option<SideSolution> {
    let side_supers: Vec<u8> = if problem.side_internal {
        vec![panel::A, panel::A1, panel::A2]
    } else {
        vec![panel::A]
    };
    let side_cells: Vec<u8> = if problem.side_internal {
        vec![panel::A1, panel::A2]
    } else {
        vec![panel::A]
    };
    let orange_supers: Vec<u8> = if problem.c_internal {
        vec![panel::C, panel::C1, panel::C2]
    } else {
        vec![panel::C]
    };
    let orange_cells: Vec<u8> = if problem.c_internal {
        vec![panel::C1, panel::C2]
    } else {
        vec![panel::C]
    };
    let kc = orange_cells.len();
    let num_pairs = side_cells.len() * kc;

    let mut units: Vec<Option<Slot>> = vec![None; num_pairs];
    let mut high: Vec<Slot> = Vec::new();
    for &x in &side_supers {
        for &y in &orange_supers {
            let cov_x: Vec<usize> = if side_cells.contains(&x) {
                vec![side_cells.iter().position(|&c| c == x).unwrap()]
            } else {
                (0..side_cells.len()).collect()
            };
            let cov_y: Vec<usize> = if orange_cells.contains(&y) {
                vec![orange_cells.iter().position(|&c| c == y).unwrap()]
            } else {
                (0..kc).collect()
            };
            let mut covers = Vec::new();
            for &ci in &cov_x {
                for &cj in &cov_y {
                    covers.push(ci * kc + cj);
                }
            }
            covers.sort_unstable();
            let slot = Slot { a: x, b: y, covers };
            if side_cells.contains(&x) && orange_cells.contains(&y) {
                let idx = slot.covers[0];
                units[idx] = Some(slot);
            } else {
                high.push(slot);
            }
        }
    }
    let required: Vec<i32> = (0..num_pairs).map(|i| problem.residual[i] as i32).collect();
    let constrained = vec![true; num_pairs];
    solve_with_slots(&units, &high, &required, &constrained).map(|sol| SideSolution {
        cost: sol.cost,
        edges: sol.edges().to_vec(),
    })
}

/// Remaps a side solution computed with `A`-side placeholders onto the `B` side.
fn remap_side_to_b(edges: &[AbstractEdge]) -> Vec<AbstractEdge> {
    edges
        .iter()
        .map(|e| {
            let remap = |s: u8| match s {
                panel::A => panel::B,
                panel::A1 => panel::B1,
                panel::A2 => panel::B2,
                other => other,
            };
            AbstractEdge {
                a: remap(e.a),
                b: remap(e.b),
                weight: e.weight,
            }
        })
        .collect()
}

/// Solves a Case-2 problem from scratch with a throwaway side cache.  Prefer
/// [`EncoderMemo::case2`], which shares both caches across calls.
pub fn solve_case2(problem: &Case2Problem) -> PanelSolution {
    let mut scratch = FxHashMap::default();
    solve_case2_with_memo(problem, &mut scratch)
}

/// Solves a Case-2 problem from scratch (no top-level memo), by enumerating the
/// `M`-level slots and solving each yellow side independently (the sides share no
/// slots once the `M`-level contribution is fixed).
fn solve_case2_with_memo(
    problem: &Case2Problem,
    side_memo: &mut FxHashMap<SideProblemKey, Option<SideSolution>>,
) -> PanelSolution {
    let shape = problem.shape;
    let yellow_cells = shape.yellow_cells();
    let orange_cells = shape.orange_cells();
    let orange_supers = shape.orange_supers();
    let kc = orange_cells.len();
    let a_cells = if shape.a_internal { 2 } else { 1 };
    let b_cells = if shape.b_internal { 2 } else { 1 };
    debug_assert_eq!(yellow_cells.len(), a_cells + b_cells);

    // M-level slots: (M, o) for every orange supernode.
    let m_slots: Vec<Slot> = orange_supers
        .iter()
        .map(|&o| {
            let cov_o: Vec<usize> = if orange_cells.contains(&o) {
                vec![orange_cells.iter().position(|&c| c == o).unwrap()]
            } else {
                (0..kc).collect()
            };
            let covers = (0..yellow_cells.len())
                .flat_map(|y| cov_o.iter().map(move |&c| y * kc + c))
                .collect();
            Slot {
                a: panel::M,
                b: o,
                covers,
            }
        })
        .collect();

    let mut best: Option<PanelSolution> = None;
    let mut assignment = vec![0i8; m_slots.len()];
    enumerate_m_slots(
        &m_slots,
        0,
        &mut assignment,
        problem,
        a_cells,
        b_cells,
        kc,
        side_memo,
        &mut best,
    );
    best.expect("Case-2 problems are always feasible")
}

/// Key type for the internal side-problem memo.
type SideProblemKey = (bool, bool, [i8; 4]);

#[allow(clippy::too_many_arguments)]
fn enumerate_m_slots(
    m_slots: &[Slot],
    idx: usize,
    assignment: &mut Vec<i8>,
    problem: &Case2Problem,
    a_cells: usize,
    b_cells: usize,
    kc: usize,
    side_memo: &mut FxHashMap<SideProblemKey, Option<SideSolution>>,
    best: &mut Option<PanelSolution>,
) {
    if idx == m_slots.len() {
        let m_cost: u32 = assignment.iter().filter(|&&w| w != 0).count() as u32;
        if let Some(b) = best {
            if m_cost >= b.cost {
                return;
            }
        }
        // Contribution of the M-level edges to every pair.
        let num_pairs = problem.shape.num_pairs();
        let mut contribution = vec![0i32; num_pairs];
        for (slot, &w) in m_slots.iter().zip(assignment.iter()) {
            if w != 0 {
                for &p in &slot.covers {
                    contribution[p] += w as i32;
                }
            }
        }
        // Side A residuals: yellow cells 0..a_cells.
        let mut res_a = [0i8; 4];
        for y in 0..a_cells {
            for c in 0..kc {
                let r = problem.required[y * kc + c] as i32 - contribution[y * kc + c];
                if r.unsigned_abs() as i32 > MAX_REQUIREMENT {
                    return;
                }
                res_a[y * kc + c] = r as i8;
            }
        }
        let mut res_b = [0i8; 4];
        for y in 0..b_cells {
            for c in 0..kc {
                let global = (a_cells + y) * kc + c;
                let r = problem.required[global] as i32 - contribution[global];
                if r.unsigned_abs() as i32 > MAX_REQUIREMENT {
                    return;
                }
                res_b[y * kc + c] = r as i8;
            }
        }
        let sol_a = cached_side(
            SideProblem {
                side_internal: problem.shape.a_internal,
                c_internal: problem.shape.c_internal,
                residual: res_a,
            },
            side_memo,
        );
        let Some(sol_a) = sol_a else { return };
        if let Some(b) = best {
            if m_cost + sol_a.cost >= b.cost {
                return;
            }
        }
        let sol_b = cached_side(
            SideProblem {
                side_internal: problem.shape.b_internal,
                c_internal: problem.shape.c_internal,
                residual: res_b,
            },
            side_memo,
        );
        let Some(sol_b) = sol_b else { return };
        let total = m_cost + sol_a.cost + sol_b.cost;
        let better = best.as_ref().is_none_or(|b| total < b.cost);
        if better {
            let mut solution = PanelSolution::empty();
            solution.cost = total;
            for (slot, &w) in m_slots.iter().zip(assignment.iter()) {
                if w != 0 {
                    solution.push(AbstractEdge {
                        a: slot.a,
                        b: slot.b,
                        weight: w,
                    });
                }
            }
            for &e in &sol_a.edges {
                solution.push(e);
            }
            for e in remap_side_to_b(&sol_b.edges) {
                solution.push(e);
            }
            *best = Some(solution);
        }
        return;
    }
    for &w in &[0i8, 1, -1] {
        assignment[idx] = w;
        enumerate_m_slots(
            m_slots,
            idx + 1,
            assignment,
            problem,
            a_cells,
            b_cells,
            kc,
            side_memo,
            best,
        );
    }
    assignment[idx] = 0;
}

fn cached_side(
    problem: SideProblem,
    memo: &mut FxHashMap<SideProblemKey, Option<SideSolution>>,
) -> Option<SideSolution> {
    let key = (problem.side_internal, problem.c_internal, problem.residual);
    if let Some(cached) = memo.get(&key) {
        return cached.clone();
    }
    let solved = solve_side(&problem);
    memo.insert(key, solved.clone());
    solved
}

// ---------------------------------------------------------------------------------
// Generic slot solver
// ---------------------------------------------------------------------------------

/// Exhaustive minimum-cost search: assign −1/0/+1 to the "high" slots by DFS with
/// cost pruning; the per-pair "unit" slots are then uniquely determined as residuals.
/// Returns `None` when infeasible (a residual outside {−1, 0, +1} with no unit slot,
/// or any residual outside that range).
fn solve_with_slots(
    units: &[Option<Slot>],
    high: &[Slot],
    required: &[i32],
    constrained: &[bool],
) -> Option<PanelSolution> {
    struct Ctx<'a> {
        units: &'a [Option<Slot>],
        high: &'a [Slot],
        required: &'a [i32],
        constrained: &'a [bool],
        best: Option<PanelSolution>,
    }

    fn finish(ctx: &mut Ctx<'_>, assignment: &[i8], contribution: &[i32], high_cost: u32) {
        let mut cost = high_cost;
        let mut unit_weights: Vec<i8> = vec![0; ctx.units.len()];
        for p in 0..ctx.required.len() {
            if !ctx.constrained[p] {
                continue;
            }
            let residual = ctx.required[p] - contribution[p];
            if residual == 0 {
                continue;
            }
            if residual.abs() > 1 || ctx.units[p].is_none() {
                return; // infeasible under this high assignment
            }
            unit_weights[p] = residual as i8;
            cost += 1;
            if let Some(best) = &ctx.best {
                if cost >= best.cost {
                    return;
                }
            }
        }
        let better = ctx.best.as_ref().is_none_or(|b| cost < b.cost);
        if better {
            let mut solution = PanelSolution::empty();
            solution.cost = cost;
            for (slot, &w) in ctx.high.iter().zip(assignment.iter()) {
                if w != 0 {
                    solution.push(AbstractEdge {
                        a: slot.a,
                        b: slot.b,
                        weight: w,
                    });
                }
            }
            for (p, &w) in unit_weights.iter().enumerate() {
                if w != 0 {
                    let slot = ctx.units[p].as_ref().unwrap();
                    solution.push(AbstractEdge {
                        a: slot.a,
                        b: slot.b,
                        weight: w,
                    });
                }
            }
            ctx.best = Some(solution);
        }
    }

    fn dfs(
        ctx: &mut Ctx<'_>,
        idx: usize,
        assignment: &mut Vec<i8>,
        contribution: &mut Vec<i32>,
        high_cost: u32,
    ) {
        if let Some(best) = &ctx.best {
            if high_cost >= best.cost {
                return;
            }
        }
        if idx == ctx.high.len() {
            finish(ctx, assignment, contribution, high_cost);
            return;
        }
        for &w in &[0i8, 1, -1] {
            assignment[idx] = w;
            if w != 0 {
                for &p in &ctx.high[idx].covers {
                    contribution[p] += w as i32;
                }
            }
            dfs(
                ctx,
                idx + 1,
                assignment,
                contribution,
                high_cost + u32::from(w != 0),
            );
            if w != 0 {
                for &p in &ctx.high[idx].covers {
                    contribution[p] -= w as i32;
                }
            }
        }
        assignment[idx] = 0;
    }

    let mut ctx = Ctx {
        units,
        high,
        required,
        constrained,
        best: None,
    };
    let mut assignment = vec![0i8; high.len()];
    let mut contribution = vec![0i32; required.len()];
    dfs(&mut ctx, 0, &mut assignment, &mut contribution, 0);
    ctx.best
}

// ---------------------------------------------------------------------------------
// Memoization
// ---------------------------------------------------------------------------------

/// Process-wide memo for panel re-encodings (Sect. III-B3 "Memoization").
///
/// The memoized results depend only on the abstract panel configuration, never on the
/// input graph, so a single memo can serve many summarization runs — the paper makes
/// the same observation ("they can even be used when summarizing different input
/// graphs").
#[derive(Default)]
pub struct EncoderMemo {
    /// When `false` every query is re-solved from scratch (used by the ablation bench
    /// that quantifies the value of memoization).
    pub enabled: bool,
    case1: FxHashMap<Case1Problem, PanelSolution>,
    case2: FxHashMap<Case2Problem, PanelSolution>,
    side: FxHashMap<SideProblemKey, Option<SideSolution>>,
    hits: u64,
    misses: u64,
}

impl EncoderMemo {
    /// Creates an enabled memo.
    pub fn new() -> Self {
        EncoderMemo {
            enabled: true,
            ..Default::default()
        }
    }

    /// Creates a disabled memo (every call re-solves).
    pub fn disabled() -> Self {
        EncoderMemo {
            enabled: false,
            ..Default::default()
        }
    }

    /// Solves (or recalls) a Case-1 problem.
    pub fn case1(&mut self, problem: &Case1Problem) -> PanelSolution {
        if !self.enabled {
            self.misses += 1;
            return solve_case1(problem);
        }
        if let Some(&sol) = self.case1.get(problem) {
            self.hits += 1;
            return sol;
        }
        self.misses += 1;
        let sol = solve_case1(problem);
        self.case1.insert(*problem, sol);
        sol
    }

    /// Solves (or recalls) a Case-2 problem.
    pub fn case2(&mut self, problem: &Case2Problem) -> PanelSolution {
        if !self.enabled {
            self.misses += 1;
            return solve_case2(problem);
        }
        if let Some(&sol) = self.case2.get(problem) {
            self.hits += 1;
            return sol;
        }
        self.misses += 1;
        let sol = solve_case2_with_memo(problem, &mut self.side);
        self.case2.insert(*problem, sol);
        sol
    }

    /// (cache hits, cache misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of distinct memoized entries.
    pub fn len(&self) -> usize {
        self.case1.len() + self.case2.len() + self.side.len()
    }

    /// Whether nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case1(
        shape: Case1Shape,
        reqs: &[(usize, usize, i8)],
        constrained_pairs: &[(usize, usize)],
    ) -> PanelSolution {
        let k = shape.num_cells();
        let mut required = [0i8; 10];
        for &(i, j, v) in reqs {
            required[pair_index(i.min(j), i.max(j), k)] = v;
        }
        let mut constrained = 0u16;
        for &(i, j) in constrained_pairs {
            constrained |= 1 << pair_index(i.min(j), i.max(j), k);
        }
        solve_case1(&Case1Problem {
            shape,
            required,
            constrained,
        })
    }

    /// All cross pairs constrained, self pairs vacuous (typical for singleton leaves).
    fn all_cross_pairs(k: usize) -> Vec<(usize, usize)> {
        let mut v = Vec::new();
        for i in 0..k {
            for j in (i + 1)..k {
                v.push((i, j));
            }
        }
        v
    }

    #[test]
    fn merging_two_singletons_with_edge_costs_one() {
        // Cells {A, B}, requirement: (A,B) = 1, self pairs vacuous.
        let shape = Case1Shape {
            a_internal: false,
            b_internal: false,
        };
        let sol = case1(shape, &[(0, 1, 1)], &all_cross_pairs(2));
        assert_eq!(sol.cost, 1);
    }

    #[test]
    fn merging_two_singletons_without_edge_costs_zero() {
        let shape = Case1Shape {
            a_internal: false,
            b_internal: false,
        };
        let sol = case1(shape, &[], &all_cross_pairs(2));
        assert_eq!(sol.cost, 0);
        assert!(sol.edges().is_empty());
    }

    #[test]
    fn dense_four_cells_collapse_to_single_self_loop() {
        // A internal (cells A1, A2), B internal (cells B1, B2); everything connected:
        // all cross pairs and all self pairs require net 1 (self pairs constrained,
        // i.e. cells have ≥ 2 subnodes).  The optimum is one p-self-loop at M.
        let shape = Case1Shape {
            a_internal: true,
            b_internal: true,
        };
        let mut reqs = Vec::new();
        let mut constrained = Vec::new();
        for i in 0..4 {
            for j in i..4 {
                reqs.push((i, j, 1i8));
                constrained.push((i, j));
            }
        }
        let sol = case1(shape, &reqs, &constrained);
        assert_eq!(sol.cost, 1);
        assert_eq!(
            sol.edges(),
            &[AbstractEdge {
                a: panel::M,
                b: panel::M,
                weight: 1
            }]
        );
    }

    #[test]
    fn dense_minus_one_pair_uses_self_loop_plus_negative_edge() {
        // Same as above but cell pair (A1, B1) must be 0: best is p-loop at M plus an
        // n-edge (A1, B1): cost 2.
        let shape = Case1Shape {
            a_internal: true,
            b_internal: true,
        };
        let mut reqs = Vec::new();
        let mut constrained = Vec::new();
        for i in 0..4 {
            for j in i..4 {
                let v = if (i, j) == (0, 2) { 0 } else { 1 };
                reqs.push((i, j, v));
                constrained.push((i, j));
            }
        }
        let sol = case1(shape, &reqs, &constrained);
        assert_eq!(sol.cost, 2);
        assert!(sol.edges().contains(&AbstractEdge {
            a: panel::M,
            b: panel::M,
            weight: 1
        }));
        assert!(sol.edges().iter().any(|e| e.weight == -1));
    }

    #[test]
    fn vacuous_self_pairs_do_not_block_self_loop() {
        // Two singleton roots with an edge between them, merging: self pairs are
        // vacuous so the encoder may use either the (A,B) edge or an M self-loop; both
        // cost 1.
        let shape = Case1Shape {
            a_internal: false,
            b_internal: false,
        };
        let sol = case1(shape, &[(0, 1, 1)], &[(0, 1)]);
        assert_eq!(sol.cost, 1);
    }

    #[test]
    fn requirement_of_two_is_representable() {
        // Artificial: cross pair requires net 2 → needs two covering edges.
        let shape = Case1Shape {
            a_internal: false,
            b_internal: false,
        };
        let sol = case1(shape, &[(0, 1, 2)], &[(0, 1)]);
        assert_eq!(sol.cost, 2);
    }

    #[test]
    fn case2_consolidates_two_cross_edges_into_one() {
        // A and B are singleton roots, C is a singleton root adjacent to both:
        // requirements (A,C)=1, (B,C)=1.  Optimal: single edge (M, C).
        let problem = Case2Problem {
            shape: Case2Shape {
                a_internal: false,
                b_internal: false,
                c_internal: false,
            },
            required: [1, 1, 0, 0, 0, 0, 0, 0],
        };
        let sol = solve_case2(&problem);
        assert_eq!(sol.cost, 1);
        assert_eq!(
            sol.edges(),
            &[AbstractEdge {
                a: panel::M,
                b: panel::C,
                weight: 1
            }]
        );
    }

    #[test]
    fn case2_asymmetric_connection_keeps_single_edge() {
        // Only A connects to C: requirement (A,C)=1, (B,C)=0 → best cost 1 (keep (A,C)).
        let problem = Case2Problem {
            shape: Case2Shape {
                a_internal: false,
                b_internal: false,
                c_internal: false,
            },
            required: [1, 0, 0, 0, 0, 0, 0, 0],
        };
        let sol = solve_case2(&problem);
        assert_eq!(sol.cost, 1);
    }

    #[test]
    fn case2_with_internal_c_exploits_child_structure() {
        // C internal with cells c1, c2; A, B singleton. A and B both connect fully to
        // c1 but not to c2: requirements (A,c1)=1, (A,c2)=0, (B,c1)=1, (B,c2)=0.
        // Optimal: one edge (M, C1): cost 1.
        let problem = Case2Problem {
            shape: Case2Shape {
                a_internal: false,
                b_internal: false,
                c_internal: true,
            },
            required: [1, 0, 1, 0, 0, 0, 0, 0],
        };
        let sol = solve_case2(&problem);
        assert_eq!(sol.cost, 1);
        assert_eq!(
            sol.edges(),
            &[AbstractEdge {
                a: panel::M,
                b: panel::C1,
                weight: 1
            }]
        );
    }

    #[test]
    fn case2_full_yellow_panel_consolidates_children() {
        // A internal (cells A1, A2), B internal (cells B1, B2), C singleton; all four
        // yellow cells connect to C.  Optimal: one edge (M, C).
        let problem = Case2Problem {
            shape: Case2Shape {
                a_internal: true,
                b_internal: true,
                c_internal: false,
            },
            required: [1, 1, 1, 1, 0, 0, 0, 0],
        };
        let sol = solve_case2(&problem);
        assert_eq!(sol.cost, 1);
        assert_eq!(sol.edges()[0].a, panel::M);
        assert_eq!(sol.edges()[0].b, panel::C);
    }

    #[test]
    fn case2_three_of_four_cells_connected() {
        // A internal, B internal, C singleton; A1, A2, B1 connect to C, B2 does not.
        // Optimal: (M,C) + n-edge (B2,C) = 2, or (A,C) + (B1,C) = 2; cost must be 2.
        let problem = Case2Problem {
            shape: Case2Shape {
                a_internal: true,
                b_internal: true,
                c_internal: false,
            },
            required: [1, 1, 1, 0, 0, 0, 0, 0],
        };
        let sol = solve_case2(&problem);
        assert_eq!(sol.cost, 2);
    }

    #[test]
    fn solutions_reproduce_requirements_exactly() {
        // Property-style check on a batch of random-ish Case-1 problems: the returned
        // edges must reproduce the required net on every constrained pair.
        let shapes = [
            Case1Shape {
                a_internal: false,
                b_internal: false,
            },
            Case1Shape {
                a_internal: true,
                b_internal: false,
            },
            Case1Shape {
                a_internal: false,
                b_internal: true,
            },
            Case1Shape {
                a_internal: true,
                b_internal: true,
            },
        ];
        let mut rng_state = 0x12345678u64;
        let mut next = || {
            rng_state = rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng_state >> 33) as u32
        };
        for &shape in &shapes {
            let k = shape.num_cells();
            let np = shape.num_pairs();
            for _ in 0..200 {
                let mut required = [0i8; 10];
                let mut constrained = 0u16;
                for (p, r) in required.iter_mut().enumerate().take(np) {
                    if next() % 4 != 0 {
                        constrained |= 1 << p;
                        *r = (next() % 3) as i8 - 1;
                    }
                }
                let problem = Case1Problem {
                    shape,
                    required,
                    constrained,
                };
                let sol = solve_case1(&problem);
                // Re-derive the net coverage per pair from the returned edges.
                let mut net = vec![0i32; np];
                for e in sol.edges() {
                    let cov_a = case1_coverage(shape, e.a);
                    let cov_b = case1_coverage(shape, e.b);
                    let mut seen = std::collections::HashSet::new();
                    for &ci in &cov_a {
                        for &cj in &cov_b {
                            let idx = pair_index(ci.min(cj), ci.max(cj), k);
                            if seen.insert(idx) {
                                net[idx] += e.weight as i32;
                            }
                        }
                    }
                }
                for p in 0..np {
                    if constrained >> p & 1 == 1 {
                        assert_eq!(net[p], required[p] as i32, "shape {shape:?} pair {p}");
                    }
                }
            }
        }
    }

    #[test]
    fn case2_solutions_reproduce_requirements_exactly() {
        // Same property as the Case-1 test, but through the decomposition solver: the
        // returned edges must contribute exactly the required net to every yellow ×
        // orange cell pair.
        let shapes = [
            (false, false, false),
            (true, false, false),
            (false, true, true),
            (true, true, false),
            (true, true, true),
        ];
        let mut rng_state = 0xdeadbeefu64;
        let mut next = || {
            rng_state = rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng_state >> 33) as u32
        };
        for &(a_internal, b_internal, c_internal) in &shapes {
            let shape = Case2Shape {
                a_internal,
                b_internal,
                c_internal,
            };
            let yellow = shape.yellow_cells();
            let orange = shape.orange_cells();
            let np = shape.num_pairs();
            for _ in 0..200 {
                let mut required = [0i8; 8];
                for r in required.iter_mut().take(np) {
                    *r = (next() % 3) as i8 - 1;
                }
                let problem = Case2Problem { shape, required };
                let sol = solve_case2(&problem);
                // Recompute the net contribution per cell pair from the returned edges.
                let cell_index = |sup: u8, cells: &[u8]| -> Option<usize> {
                    cells.iter().position(|&c| c == sup)
                };
                let b_offset = if a_internal { 2 } else { 1 };
                let mut net = vec![0i32; np];
                for e in sol.edges() {
                    let (y, o) = if e.a < panel::C {
                        (e.a, e.b)
                    } else {
                        (e.b, e.a)
                    };
                    // Cells covered by the yellow endpoint.
                    let y_cov: Vec<usize> = match y {
                        panel::M => (0..yellow.len()).collect(),
                        panel::A if a_internal => vec![0, 1],
                        panel::B if b_internal => vec![b_offset, b_offset + 1],
                        other => vec![cell_index(other, &yellow).expect("yellow cell")],
                    };
                    // Cells covered by the orange endpoint.
                    let o_cov: Vec<usize> = match o {
                        panel::C if c_internal => vec![0, 1],
                        other => vec![cell_index(other, &orange).expect("orange cell")],
                    };
                    for &ci in &y_cov {
                        for &cj in &o_cov {
                            net[ci * orange.len() + cj] += e.weight as i32;
                        }
                    }
                }
                for pair in 0..np {
                    assert_eq!(
                        net[pair],
                        required[pair] as i32,
                        "shape {shape:?} pair {pair} edges {:?}",
                        sol.edges()
                    );
                }
            }
        }
    }

    #[test]
    fn memo_caches_and_counts() {
        let mut memo = EncoderMemo::new();
        let problem = Case1Problem {
            shape: Case1Shape {
                a_internal: false,
                b_internal: false,
            },
            required: {
                let mut r = [0i8; 10];
                r[pair_index(0, 1, 2)] = 1;
                r
            },
            constrained: 1 << pair_index(0, 1, 2),
        };
        let a = memo.case1(&problem);
        let b = memo.case1(&problem);
        assert_eq!(a, b);
        let (hits, misses) = memo.stats();
        assert_eq!(hits, 1);
        assert_eq!(misses, 1);
        assert!(!memo.is_empty());
    }

    #[test]
    fn disabled_memo_never_caches() {
        let mut memo = EncoderMemo::disabled();
        let problem = Case2Problem {
            shape: Case2Shape {
                a_internal: false,
                b_internal: false,
                c_internal: false,
            },
            required: [1, 1, 0, 0, 0, 0, 0, 0],
        };
        let _ = memo.case2(&problem);
        let _ = memo.case2(&problem);
        let (hits, misses) = memo.stats();
        assert_eq!(hits, 0);
        assert_eq!(misses, 2);
        assert_eq!(memo.len(), 0);
    }

    #[test]
    fn pair_index_is_a_bijection() {
        for k in 1..=4usize {
            let mut seen = std::collections::HashSet::new();
            for i in 0..k {
                for j in i..k {
                    assert!(seen.insert(pair_index(i, j, k)));
                }
            }
            assert_eq!(seen.len(), k * (k + 1) / 2);
            assert_eq!(*seen.iter().max().unwrap(), k * (k + 1) / 2 - 1);
        }
    }
}
