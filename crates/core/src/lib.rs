//! # slugger-core
//!
//! The hierarchical graph summarization model and the **SLUGGER** algorithm from
//! Lee, Ko, Shin, *SLUGGER: Lossless Hierarchical Summarization of Massive Graphs*
//! (ICDE 2022).
//!
//! The public entry point is [`Slugger`], configured through [`SluggerConfig`]:
//!
//! ```
//! use slugger_core::{Slugger, SluggerConfig};
//! use slugger_graph::gen::{caveman, CavemanConfig};
//!
//! let graph = caveman(&CavemanConfig { num_nodes: 200, ..CavemanConfig::default() });
//! let outcome = Slugger::new(SluggerConfig { iterations: 5, ..SluggerConfig::default() })
//!     .summarize(&graph);
//! assert!(outcome.summary.encoding_cost() <= graph.num_edges());
//! // The summary is lossless: decoding reproduces the input exactly.
//! let decoded = slugger_core::decode::decode_full(&outcome.summary);
//! assert_eq!(decoded.edge_set(), graph.edge_set());
//! ```
//!
//! Module map (mirroring Sect. III of the paper, plus the execution substrate):
//!
//! * [`model`] — the representation model `G = (S, P+, P−, H)` (Sect. II-B).
//! * [`candidates`] — min-hash candidate generation (Sect. III-B2); stage 1 of each
//!   pipeline iteration.
//! * [`encoder`] — constant-size local re-encoding with memoization (Sect. III-B3).
//! * [`engine`] — incremental root/cost bookkeeping, `Saving(A, B, G)` and merge
//!   application; doubles as the frozen iteration view the per-shard planning
//!   overlays read through.
//! * [`engine::apply`] — the **apply** reconciliation stage: replays per-shard merge
//!   plans on the authoritative engine with exact cost bookkeeping — serially, or
//!   across worker threads via conflict-partitioned batches with byte-identical
//!   output.
//! * [`engine::plan`] — the copy-on-write planning overlay shard workers fork per
//!   candidate set, backed by pooled scratch so steady-state planning never
//!   allocates.
//! * [`incremental`] — batch-incremental (streaming) re-summarization: maintains a
//!   summary under edge insertions/deletions by re-expanding and re-summarizing
//!   only the dirty region of each delta batch, pruning it incrementally
//!   (engine-hosted region pruning) and compacting the arena so memory tracks the
//!   live summary, not the stream length.
//! * [`merge`] — the merging step over one candidate set (Algorithm 2), in planning
//!   ([`merge::plan_candidate_set`]) and direct ([`merge::process_candidate_set`])
//!   form.
//! * [`pipeline`] — the stage-based sharded execution substrate (candidates → shard
//!   → merge → apply → prune): deterministic set-to-shard partitioning, per-set RNG
//!   streams seeded by `(seed, iteration, set_index)`, and the [`pipeline::Parallelism`]
//!   thread knob, which never changes results.  Shared with the SWeG baseline.
//! * [`prune`] — the three pruning substeps (Sect. III-B4, Algorithm 3); the final
//!   pipeline stage.  Generic over [`prune::PruneHost`], so the same substeps run
//!   on a bare summary (batch path) or through the live engine's bookkeeping
//!   (streaming path), globally ([`prune::prune_all`]) or region-restricted
//!   ([`prune::prune_region`]).
//! * [`slugger`] — the top-level driver (Algorithm 1) wiring the stages together.
//! * [`decode`] — full and partial decompression (Algorithm 4) and losslessness
//!   verification.
//! * [`metrics`] — output-size and hierarchy statistics used by the experiments.
//! * [`testsupport`] — the canonical-form comparison and the
//!   `parallelism × shards` lattice shared by the invariance test suites (and by
//!   downstream crates' tests); not part of the stable algorithmic surface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod candidates;
pub mod decode;
pub mod encoder;
pub mod engine;
pub mod incremental;
pub mod merge;
pub mod metrics;
pub mod model;
pub mod pipeline;
pub mod prune;
pub mod slugger;
pub mod snapshot;
pub mod storage;
pub mod testsupport;

pub use decode::{DecodeError, SummaryNeighborView};
pub use engine::MergeCtx;
pub use incremental::{BatchReport, IncrementalConfig, IncrementalSummarizer};
pub use metrics::SummaryMetrics;
pub use model::{EdgeSign, HierarchicalSummary, Supernode, SupernodeId};
pub use pipeline::Parallelism;
pub use slugger::{Slugger, SluggerConfig, SluggerOutcome, StageProfile};
pub use snapshot::{QueryEngine, SnapshotSlot, SummarySnapshot};

/// Convenience prelude.
pub mod prelude {
    pub use crate::decode::{decode_full, neighbors_of, try_neighbors_of, verify_lossless};
    pub use crate::incremental::{BatchReport, IncrementalConfig, IncrementalSummarizer};
    pub use crate::metrics::SummaryMetrics;
    pub use crate::model::{EdgeSign, HierarchicalSummary, SupernodeId};
    pub use crate::pipeline::Parallelism;
    pub use crate::slugger::{Slugger, SluggerConfig, SluggerOutcome, StageProfile};
    pub use crate::snapshot::{QueryEngine, SnapshotSlot, SummarySnapshot};
}
