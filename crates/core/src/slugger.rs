//! The SLUGGER driver (Algorithm 1): `T` iterations of candidate generation followed
//! by greedy merging, then pruning.
//!
//! Each iteration runs through the sharded pipeline of [`crate::pipeline`]
//! (candidates → shard → merge → apply): candidate sets are dealt across
//! [`SluggerConfig::shards`] worker shards, each set's merges are planned on a
//! copy-on-write overlay of the iteration's frozen engine, and the plans are
//! replayed on the authoritative engine in deterministic order.
//! [`SluggerConfig::parallelism`] picks how many threads execute the shards and
//! never changes the result.

use crate::candidates::{candidate_sets_with, CandidateConfig, CandidateScratch};
use crate::engine::apply::{apply_plans_with, ApplyProfile, ApplyWorkers, SetPlan};
use crate::engine::plan::{PlanScratch, PlanningEngine};
use crate::engine::{MergeCtx, MergeEngine};
use crate::merge::{merging_threshold, plan_candidate_set, MergeOptions};
use crate::metrics::SummaryMetrics;
use crate::model::{HierarchicalSummary, SupernodeId};
use crate::pipeline::{
    plan_shards_pooled, set_rng, Parallelism, PlannerPool, ShardWorker, DEFAULT_SHARDS,
};
use crate::prune::{prune_all, PruneReport};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use slugger_graph::Graph;

/// Configuration of a SLUGGER run.  The defaults reproduce the paper's experimental
/// setting (T = 20, candidate sets of at most 500 roots, at most 10 shingle splits,
/// unbounded hierarchy height, pruning enabled).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SluggerConfig {
    /// Number of candidate-generation + merging iterations `T` (paper default: 20).
    pub iterations: usize,
    /// Maximum candidate-set size (paper: 500).
    pub max_candidate_size: usize,
    /// Maximum shingle-based splits before random splitting (paper: 10).
    pub max_shingle_splits: usize,
    /// Optional upper bound `H_b` on hierarchy-tree height (Table V variant); `None`
    /// leaves the height unbounded as in the main algorithm.
    pub height_bound: Option<usize>,
    /// Number of pruning rounds (each round runs substeps 1 → 2 → 3); 0 disables
    /// pruning entirely.
    pub pruning_rounds: usize,
    /// Whether the local re-encoding memo is enabled (disable only to measure the
    /// effect of memoization).
    pub memoization: bool,
    /// Random seed controlling candidate grouping and pivot selection.
    pub seed: u64,
    /// Number of worker shards candidate sets are dealt across per iteration.  A pure
    /// scheduling/memo-locality knob: every candidate set is planned against the same
    /// frozen iteration view with its own RNG stream, so neither this nor
    /// [`SluggerConfig::parallelism`] ever changes the summary.
    #[serde(default = "default_shards")]
    pub shards: usize,
    /// How many OS threads execute the shards (and, above one, the
    /// conflict-partitioned parallel apply stage).  Pure throughput knob: for a
    /// fixed seed every setting produces the identical summary.
    #[serde(default)]
    pub parallelism: Parallelism,
}

/// Serde fallback for configs serialized before the pipeline knobs existed.  Only
/// referenced from the `#[serde(default = ...)]` attribute, which the vendored no-op
/// derive ignores — hence the `dead_code` allowance until real serde is wired in.
#[allow(dead_code)]
fn default_shards() -> usize {
    DEFAULT_SHARDS
}

impl Default for SluggerConfig {
    fn default() -> Self {
        SluggerConfig {
            iterations: 20,
            max_candidate_size: 500,
            max_shingle_splits: 10,
            height_bound: None,
            pruning_rounds: 2,
            memoization: true,
            seed: 0,
            shards: DEFAULT_SHARDS,
            parallelism: Parallelism::Sequential,
        }
    }
}

/// Per-iteration progress record.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IterationRecord {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Merging threshold θ(t) used.
    pub threshold: f64,
    /// Candidate sets processed.
    pub candidate_sets: usize,
    /// Candidate pairs evaluated.
    pub pairs_evaluated: usize,
    /// Merges performed.
    pub merges: usize,
    /// Encoding cost at the end of the iteration.
    pub cost: usize,
    /// Number of roots at the end of the iteration.
    pub roots: usize,
}

/// Wall-clock time spent in each pipeline stage, accumulated over all iterations.
///
/// `candidates` + `plan` + `apply` + `prune` cover the pipeline; anything else
/// (root collection, record keeping) is a sliver of `elapsed`.  The
/// `candidate_stage` bench binary reports these per run.  The streaming path
/// ([`crate::incremental`]) reuses the struct per batch and additionally fills
/// `localize` and `dissolve` (always zero for a batch [`Slugger`] run, which has
/// no dirty region to localize).
#[derive(Clone, Copy, Debug, Default)]
pub struct StageProfile {
    /// Candidate generation (min-hash shingle grouping; stage 1).
    pub candidates: std::time::Duration,
    /// Merge planning on the sharded substrate (stages 2–3).
    pub plan: std::time::Duration,
    /// Plan reconciliation on the authoritative engine (stage 4).
    pub apply: std::time::Duration,
    /// Pruning after the last iteration (stage 5).
    pub prune: std::time::Duration,
    /// Dirty-region localization (streaming step 2: affected roots, context
    /// expansion, frontier) — zero for batch runs.
    pub localize: std::time::Duration,
    /// Dirty-region dissolution and leaf-edge restoration (streaming step 3) —
    /// zero for batch runs.
    pub dissolve: std::time::Duration,
    /// Conflict batches executed by the parallel apply stage, summed over all
    /// iterations (0 when the serial replay ran; see `engine::apply`).
    pub apply_batches: usize,
    /// Plans that went through the conflict-partitioned parallel apply path,
    /// summed over all iterations.
    pub apply_batched_plans: usize,
}

/// Result of a SLUGGER run: the summary plus bookkeeping used by the experiments.
#[derive(Clone, Debug)]
pub struct SluggerOutcome {
    /// The hierarchical summary (already pruned when pruning is enabled).
    pub summary: HierarchicalSummary,
    /// Output metrics against the input graph.
    pub metrics: SummaryMetrics,
    /// Per-iteration progress.
    pub iterations: Vec<IterationRecord>,
    /// What pruning changed (all zeros when pruning is disabled).
    pub prune_report: PruneReport,
    /// Wall-clock duration of the whole run.
    pub elapsed: std::time::Duration,
    /// Per-stage wall-clock breakdown of `elapsed`.
    pub stages: StageProfile,
}

/// The SLUGGER algorithm (Algorithm 1 of the paper).
///
/// ```
/// use slugger_core::{Slugger, SluggerConfig};
/// use slugger_graph::gen::{caveman, CavemanConfig};
///
/// let graph = caveman(&CavemanConfig { num_nodes: 150, ..CavemanConfig::default() });
/// let outcome = Slugger::new(SluggerConfig {
///     iterations: 5,
///     seed: 42,
///     ..SluggerConfig::default()
/// })
/// .summarize(&graph);
/// // Lossless: decoding the summary reproduces the input graph exactly.
/// slugger_core::decode::verify_lossless(&outcome.summary, &graph).unwrap();
/// // Structured graphs compress below one output edge per input edge.
/// assert!(outcome.metrics.cost <= graph.num_edges());
/// ```
pub struct Slugger {
    config: SluggerConfig,
}

impl Slugger {
    /// Creates a runner with the given configuration.
    pub fn new(config: SluggerConfig) -> Self {
        Slugger { config }
    }

    /// Creates a runner with the paper's default configuration.
    pub fn with_defaults() -> Self {
        Slugger::new(SluggerConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &SluggerConfig {
        &self.config
    }

    /// Summarizes a graph: initializes the model to the input (every subedge a p-edge
    /// between singleton supernodes), runs `T` iterations of the sharded pipeline
    /// (candidates → shard → merge → apply), prunes, and returns the outcome.
    pub fn summarize(&self, graph: &Graph) -> SluggerOutcome {
        let start = std::time::Instant::now();
        let config = &self.config;
        let mut engine = MergeEngine::new(graph);
        let mut ctx = if config.memoization {
            MergeCtx::new()
        } else {
            MergeCtx::disabled()
        };
        let candidate_config = CandidateConfig {
            max_group_size: config.max_candidate_size,
            max_shingle_splits: config.max_shingle_splits,
        };
        let candidate_threads = config.parallelism.threads();
        let mut candidate_scratch = CandidateScratch::default();
        let mut stages = StageProfile::default();
        let mut iterations = Vec::with_capacity(config.iterations);
        // Planner and parallel-apply worker state persists across iterations so
        // encoder memos and overlay pools warm up once, not once per iteration
        // (SLUGGER's planner state never affects output — see
        // `SluggerShardWorker::reset`).
        let mut planner_pool: PlannerPool<SluggerPlanner> = PlannerPool::new();
        let mut apply_workers = ApplyWorkers::new();
        let mut apply_profile = ApplyProfile::default();

        for t in 1..=config.iterations {
            let threshold = merging_threshold(t, config.iterations);
            let roots = engine.roots();
            let iteration_seed = config
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(t as u64);
            let stage_start = std::time::Instant::now();
            let sets = candidate_sets_with(
                engine.summary(),
                graph,
                &roots,
                iteration_seed,
                &candidate_config,
                candidate_threads,
                &mut candidate_scratch,
            );
            stages.candidates += stage_start.elapsed();
            let options = MergeOptions {
                threshold,
                height_bound: config.height_bound,
            };
            // Merge stage: plan every candidate set against the frozen engine (on
            // copy-on-write overlays, sharded for scheduling)…
            let worker = SluggerShardWorker {
                view: &engine,
                options,
                memoization: config.memoization,
            };
            let stage_start = std::time::Instant::now();
            let plans = plan_shards_pooled(
                &worker,
                &sets,
                config.shards,
                config.parallelism,
                &|set_index| set_rng(config.seed, t, set_index),
                &mut planner_pool,
            );
            stages.plan += stage_start.elapsed();
            // …then reconcile the plans on the authoritative engine: serially in set
            // order for one thread, or through conflict-partitioned batches (with a
            // byte-identical result) when worker threads are available.
            let stage_start = std::time::Instant::now();
            let (stats, profile) = apply_plans_with(
                &mut engine,
                &mut ctx,
                &mut apply_workers,
                &plans,
                config.parallelism.threads(),
            );
            stages.apply += stage_start.elapsed();
            apply_profile.absorb(profile);
            planner_pool.recycle_plans(plans);
            iterations.push(IterationRecord {
                iteration: t,
                threshold,
                candidate_sets: sets.len(),
                pairs_evaluated: stats.evaluated,
                merges: stats.merged,
                cost: engine.summary().encoding_cost(),
                roots: engine.num_roots(),
            });
        }

        stages.apply_batches = apply_profile.batches;
        stages.apply_batched_plans = apply_profile.batched_plans;
        let mut summary = engine.into_summary();
        let stage_start = std::time::Instant::now();
        let prune_report = if config.pruning_rounds > 0 {
            prune_all(&mut summary, graph, config.pruning_rounds)
        } else {
            PruneReport::default()
        };
        stages.prune = stage_start.elapsed();
        let metrics = SummaryMetrics::compute(&summary, graph.num_edges());
        SluggerOutcome {
            summary,
            metrics,
            iterations,
            prune_report,
            elapsed: start.elapsed(),
            stages,
        }
    }
}

/// SLUGGER's shard worker: the frozen iteration view plus the merge options.
///
/// Forking is cheap — the per-shard state is a [`SluggerPlanner`]: a [`MergeCtx`]
/// (a private encoder memo — the memo only caches deterministic solver results, so
/// sharing or not sharing it never changes output — plus reusable evaluation
/// scratch) and a pooled [`PlanScratch`].  Each candidate set is then planned on a
/// copy-on-write [`PlanningEngine`] overlay over the frozen view built from that
/// scratch, whose construction cost is proportional to the set, not to the graph —
/// and which, once the pools are warm, allocates nothing per set.
pub(crate) struct SluggerShardWorker<'a> {
    pub(crate) view: &'a MergeEngine,
    pub(crate) options: MergeOptions,
    pub(crate) memoization: bool,
}

/// Per-shard planning state: evaluation context plus the pooled overlay scratch.
/// Shared with the incremental re-summarizer ([`crate::incremental`]), whose
/// persistent [`PlannerPool`] keeps these warm across delta batches.
pub(crate) struct SluggerPlanner {
    pub(crate) ctx: MergeCtx,
    pub(crate) overlay: PlanScratch,
}

impl PlannerPool<SluggerPlanner> {
    /// Returns the spent plans' merge vectors to the pooled planners
    /// (round-robin), so the next pass's sets pop them instead of allocating.
    /// Shared by the batch driver ([`Slugger::summarize`]) and the incremental
    /// re-summarizer so the pooling policy cannot drift between the two.
    pub(crate) fn recycle_plans(&mut self, plans: Vec<SetPlan>) {
        if self.is_empty() {
            return;
        }
        let mut planners: Vec<_> = self.iter_mut().collect();
        let n = planners.len();
        for (i, plan) in plans.into_iter().enumerate() {
            planners[i % n].ctx.recycle_merges(plan.merges);
        }
    }
}

impl ShardWorker for SluggerShardWorker<'_> {
    type Planner = SluggerPlanner;
    type Plan = SetPlan;

    fn fork(&self) -> SluggerPlanner {
        SluggerPlanner {
            ctx: if self.memoization {
                MergeCtx::new()
            } else {
                MergeCtx::disabled()
            },
            overlay: PlanScratch::new(),
        }
    }

    fn reset(&self, _planner: &mut SluggerPlanner) {
        // Deliberate no-op: the memo caches deterministic solver results and the
        // overlay scratch clears per set, so warmed planner state can never change
        // the output — keeping it is what makes steady-state planning
        // allocation-free across shards *and* iterations.
    }

    fn plan_set(
        &self,
        planner: &mut SluggerPlanner,
        set_index: usize,
        set: &[SupernodeId],
        rng: &mut StdRng,
    ) -> SetPlan {
        let SluggerPlanner { ctx, overlay } = planner;
        let mut overlay = PlanningEngine::new(self.view, set, overlay);
        let (merges, stats) = plan_candidate_set(&mut overlay, ctx, set, &self.options, rng);
        SetPlan {
            set_index,
            merges,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::verify_lossless;
    use slugger_graph::gen::{caveman, erdos_renyi, nested_sbm, CavemanConfig, NestedSbmConfig};

    fn quick_config(iterations: usize, seed: u64) -> SluggerConfig {
        SluggerConfig {
            iterations,
            max_candidate_size: 64,
            max_shingle_splits: 5,
            seed,
            ..SluggerConfig::default()
        }
    }

    #[test]
    fn summarize_is_lossless_on_structured_graph() {
        let graph = caveman(&CavemanConfig {
            num_nodes: 150,
            num_cliques: 20,
            min_clique: 4,
            max_clique: 8,
            rewire_probability: 0.02,
            seed: 1,
        });
        let outcome = Slugger::new(quick_config(5, 7)).summarize(&graph);
        verify_lossless(&outcome.summary, &graph).unwrap();
        outcome.summary.validate().unwrap();
        assert!(outcome.metrics.cost > 0);
        assert_eq!(outcome.iterations.len(), 5);
    }

    #[test]
    fn summarize_compresses_structured_graph() {
        let graph = caveman(&CavemanConfig {
            num_nodes: 300,
            num_cliques: 40,
            min_clique: 5,
            max_clique: 9,
            rewire_probability: 0.0,
            seed: 3,
        });
        let outcome = Slugger::new(quick_config(8, 1)).summarize(&graph);
        assert!(
            outcome.metrics.relative_size < 0.8,
            "expected compression on a clique-heavy graph, got {}",
            outcome.metrics.relative_size
        );
        verify_lossless(&outcome.summary, &graph).unwrap();
    }

    #[test]
    fn summarize_is_lossless_on_random_graph() {
        // Random graphs barely compress, but losslessness must still hold.
        let graph = erdos_renyi(120, 360, 5);
        let outcome = Slugger::new(quick_config(4, 2)).summarize(&graph);
        verify_lossless(&outcome.summary, &graph).unwrap();
    }

    #[test]
    fn more_iterations_never_hurt_much() {
        let graph = nested_sbm(&NestedSbmConfig {
            num_nodes: 240,
            levels: 2,
            branching: 4,
            base_probability: 0.004,
            level_boost: 18.0,
            seed: 9,
        });
        let short = Slugger::new(quick_config(1, 4)).summarize(&graph);
        let long = Slugger::new(quick_config(8, 4)).summarize(&graph);
        assert!(
            long.metrics.cost <= short.metrics.cost,
            "T=8 ({}) should not be worse than T=1 ({})",
            long.metrics.cost,
            short.metrics.cost
        );
        verify_lossless(&long.summary, &graph).unwrap();
    }

    #[test]
    fn height_bound_is_respected() {
        let graph = caveman(&CavemanConfig {
            num_nodes: 200,
            num_cliques: 30,
            ..CavemanConfig::default()
        });
        let config = SluggerConfig {
            height_bound: Some(2),
            pruning_rounds: 0,
            ..quick_config(6, 11)
        };
        let outcome = Slugger::new(config).summarize(&graph);
        for root in outcome.summary.roots().collect::<Vec<_>>() {
            assert!(outcome.summary.tree_height(root) <= 2);
        }
        verify_lossless(&outcome.summary, &graph).unwrap();
    }

    #[test]
    fn deterministic_given_seed() {
        let graph = caveman(&CavemanConfig {
            num_nodes: 120,
            ..CavemanConfig::default()
        });
        let a = Slugger::new(quick_config(4, 42)).summarize(&graph);
        let b = Slugger::new(quick_config(4, 42)).summarize(&graph);
        assert_eq!(a.metrics.cost, b.metrics.cost);
        assert_eq!(a.metrics.p_edges, b.metrics.p_edges);
        assert_eq!(a.metrics.h_edges, b.metrics.h_edges);
    }

    #[test]
    fn memoization_does_not_change_results() {
        let graph = caveman(&CavemanConfig {
            num_nodes: 100,
            ..CavemanConfig::default()
        });
        let with = Slugger::new(SluggerConfig {
            memoization: true,
            ..quick_config(3, 13)
        })
        .summarize(&graph);
        let without = Slugger::new(SluggerConfig {
            memoization: false,
            ..quick_config(3, 13)
        })
        .summarize(&graph);
        assert_eq!(with.metrics.cost, without.metrics.cost);
    }

    #[test]
    fn pruning_never_increases_cost() {
        let graph = caveman(&CavemanConfig {
            num_nodes: 160,
            ..CavemanConfig::default()
        });
        let unpruned = Slugger::new(SluggerConfig {
            pruning_rounds: 0,
            ..quick_config(5, 21)
        })
        .summarize(&graph);
        let pruned = Slugger::new(SluggerConfig {
            pruning_rounds: 2,
            ..quick_config(5, 21)
        })
        .summarize(&graph);
        assert!(pruned.metrics.cost <= unpruned.metrics.cost);
        verify_lossless(&pruned.summary, &graph).unwrap();
    }

    #[test]
    fn empty_and_tiny_graphs_are_handled() {
        let empty = Graph::empty(5);
        let outcome = Slugger::new(quick_config(2, 0)).summarize(&empty);
        assert_eq!(outcome.metrics.cost, 0);
        verify_lossless(&outcome.summary, &empty).unwrap();

        let single_edge = Graph::from_edges(2, vec![(0, 1)]);
        let outcome = Slugger::new(quick_config(2, 0)).summarize(&single_edge);
        verify_lossless(&outcome.summary, &single_edge).unwrap();
        assert!(outcome.metrics.cost <= 3);
    }
}
