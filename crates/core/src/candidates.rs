//! Candidate generation (Sect. III-B2): grouping root supernodes that are likely to be
//! merged profitably.
//!
//! Merging two roots at distance ≥ 3 always increases the encoding cost (Lemma 1), so
//! SLUGGER groups roots within distance 2 using **min-hash shingles**, exactly as SWeG
//! does: for a random permutation `h` of the subnodes, the shingle of a root `A` is the
//! minimum of `h(w)` over all subnodes `w` in the closed neighborhood of `A`'s members.
//! Two roots within distance 2 share a subnode in their closed neighborhoods and hence
//! collide with non-trivial probability; distant roots essentially never do.
//!
//! Groups larger than the configured cap are split further: first by re-hashing with
//! fresh permutations (at most [`CandidateConfig::max_shingle_splits`] times, 10 in the
//! paper), then randomly (the paper caps candidate sets at 500 roots).

use crate::model::{HierarchicalSummary, SupernodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use slugger_graph::hash::hash_node_with_seed;
use slugger_graph::hash::FxHashMap;
use slugger_graph::{Graph, NodeId};

/// Tuning knobs of the candidate-generation step.
#[derive(Clone, Copy, Debug)]
pub struct CandidateConfig {
    /// Maximum number of roots per candidate set (paper: 500).
    pub max_group_size: usize,
    /// Maximum number of shingle-based splitting rounds before falling back to random
    /// splitting (paper: 10).
    pub max_shingle_splits: usize,
}

impl Default for CandidateConfig {
    fn default() -> Self {
        CandidateConfig {
            max_group_size: 500,
            max_shingle_splits: 10,
        }
    }
}

/// Computes the min-hash shingle of every given root under the permutation derived
/// from `seed`.  The shingle of root `A` is
/// `min_{u ∈ A} min_{w ∈ N(u) ∪ {u}} h(w)`.
pub fn shingles(
    summary: &HierarchicalSummary,
    graph: &Graph,
    roots: &[SupernodeId],
    seed: u64,
) -> Vec<u64> {
    // Hash each subnode once, then fold over members and their neighborhoods.
    let n = graph.num_nodes();
    let mut node_hash: Vec<u64> = vec![0; n];
    for u in 0..n as NodeId {
        node_hash[u as usize] = hash_node_with_seed(u, seed);
    }
    roots
        .iter()
        .map(|&root| {
            let mut best = u64::MAX;
            for &u in summary.members(root) {
                best = best.min(node_hash[u as usize]);
                for &w in graph.neighbors(u) {
                    best = best.min(node_hash[w as usize]);
                }
            }
            best
        })
        .collect()
}

/// Generates candidate sets for one iteration: groups of roots (each of size ≥ 2 and
/// ≤ `config.max_group_size`) within which the merging step searches for pairs.
pub fn candidate_sets(
    summary: &HierarchicalSummary,
    graph: &Graph,
    roots: &[SupernodeId],
    seed: u64,
    config: &CandidateConfig,
) -> Vec<Vec<SupernodeId>> {
    let mut result = Vec::new();
    // Work queue of (group, split_round).
    let mut queue: Vec<(Vec<SupernodeId>, usize)> = vec![(roots.to_vec(), 0)];
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_cafe_f00d_d00d);
    while let Some((group, round)) = queue.pop() {
        if group.len() < 2 {
            continue;
        }
        if group.len() <= config.max_group_size && round > 0 {
            result.push(group);
            continue;
        }
        if round >= config.max_shingle_splits {
            // Random splitting into chunks of at most max_group_size.
            let mut shuffled = group;
            shuffled.shuffle(&mut rng);
            for chunk in shuffled.chunks(config.max_group_size) {
                if chunk.len() >= 2 {
                    result.push(chunk.to_vec());
                }
            }
            continue;
        }
        // Shingle-based split with a per-round permutation.
        let round_seed = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(round as u64 + 1);
        let sh = shingles(summary, graph, &group, round_seed);
        let mut buckets: FxHashMap<u64, Vec<SupernodeId>> = FxHashMap::default();
        for (&root, &s) in group.iter().zip(sh.iter()) {
            buckets.entry(s).or_default().push(root);
        }
        if buckets.len() == 1 && round > 0 {
            // Splitting made no progress (e.g. a dense clique); fall through to the
            // random splitter immediately to avoid useless rounds.
            queue.push((group, config.max_shingle_splits));
            continue;
        }
        for (_, bucket) in buckets {
            if bucket.len() >= 2 {
                queue.push((bucket, round + 1));
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use slugger_graph::gen::{caveman, CavemanConfig};

    fn identity_and_roots(graph: &Graph) -> (HierarchicalSummary, Vec<SupernodeId>) {
        let summary = HierarchicalSummary::identity(graph.num_nodes());
        let roots: Vec<SupernodeId> = summary.roots().collect();
        (summary, roots)
    }

    #[test]
    fn shingles_are_deterministic_and_seed_sensitive() {
        let g = Graph::from_edges(6, vec![(0, 1), (1, 2), (3, 4), (4, 5)]);
        let (s, roots) = identity_and_roots(&g);
        let a = shingles(&s, &g, &roots, 7);
        let b = shingles(&s, &g, &roots, 7);
        let c = shingles(&s, &g, &roots, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn adjacent_nodes_share_shingles() {
        // In a triangle all closed neighborhoods coincide, so all shingles are equal.
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2), (0, 2)]);
        let (s, roots) = identity_and_roots(&g);
        let sh = shingles(&s, &g, &roots, 3);
        assert_eq!(sh[0], sh[1]);
        assert_eq!(sh[1], sh[2]);
    }

    #[test]
    fn distant_components_end_up_in_distinct_groups() {
        // Two far-apart cliques: candidate sets must never mix them (their closed
        // neighborhoods are disjoint, so shingle collisions would require a hash
        // collision).
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5u32 {
                edges.push((u, v));
                edges.push((u + 5, v + 5));
            }
        }
        let g = Graph::from_edges(10, edges);
        let (s, roots) = identity_and_roots(&g);
        let sets = candidate_sets(&s, &g, &roots, 1, &CandidateConfig::default());
        for set in &sets {
            let in_first = set.iter().filter(|&&r| r < 5).count();
            assert!(in_first == 0 || in_first == set.len(), "mixed set {set:?}");
        }
    }

    #[test]
    fn groups_respect_size_cap() {
        let g = caveman(&CavemanConfig {
            num_nodes: 400,
            num_cliques: 50,
            ..CavemanConfig::default()
        });
        let (s, roots) = identity_and_roots(&g);
        let config = CandidateConfig {
            max_group_size: 16,
            max_shingle_splits: 4,
        };
        let sets = candidate_sets(&s, &g, &roots, 11, &config);
        assert!(!sets.is_empty());
        for set in &sets {
            assert!(set.len() >= 2);
            assert!(set.len() <= 16, "oversized candidate set: {}", set.len());
        }
    }

    #[test]
    fn different_seeds_vary_the_grouping() {
        let g = caveman(&CavemanConfig {
            num_nodes: 200,
            ..CavemanConfig::default()
        });
        let (s, roots) = identity_and_roots(&g);
        let config = CandidateConfig {
            max_group_size: 32,
            max_shingle_splits: 4,
        };
        let a = candidate_sets(&s, &g, &roots, 1, &config);
        let b = candidate_sets(&s, &g, &roots, 2, &config);
        // Not a strict requirement, but with overwhelming probability the groupings
        // differ between seeds (this is what lets SLUGGER explore more pairs over
        // iterations).
        assert_ne!(a, b);
    }

    #[test]
    fn isolated_roots_are_dropped() {
        let g = Graph::from_edges(4, vec![(0, 1)]);
        let (s, roots) = identity_and_roots(&g);
        let sets = candidate_sets(&s, &g, &roots, 5, &CandidateConfig::default());
        // Nodes 2 and 3 are isolated: they may appear in a set only alongside others,
        // and singleton sets must never be emitted.
        for set in &sets {
            assert!(set.len() >= 2);
        }
    }
}
