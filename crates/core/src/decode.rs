//! Decompression of a [`HierarchicalSummary`]: full reconstruction of the input graph,
//! on-the-fly neighbor retrieval (Algorithm 4 of the paper), and losslessness
//! verification used throughout the test-suite.

use crate::model::HierarchicalSummary;
use slugger_graph::graph::{Graph, NeighborAccess, NodeId};
use slugger_graph::hash::FxHashMap;
use slugger_graph::GraphBuilder;
use std::collections::{BTreeMap, BTreeSet};

/// Fully reconstructs the summarized graph.
///
/// Cost is proportional to the total number of subnode pairs covered by p/n-edges,
/// which for a well-compressed summary is close to `|E|`.
pub fn decode_full(summary: &HierarchicalSummary) -> Graph {
    let n = summary.num_subnodes();
    let mut weights: FxHashMap<(NodeId, NodeId), i32> = FxHashMap::default();
    for ((a, b), sign) in summary.pn_edges() {
        let w = sign.weight();
        let members_a = summary.members(a);
        let members_b = summary.members(b);
        if a == b {
            for (i, &u) in members_a.iter().enumerate() {
                for &v in &members_a[i + 1..] {
                    *weights.entry(key(u, v)).or_insert(0) += w;
                }
            }
        } else {
            for &u in members_a {
                for &v in members_b {
                    if u != v {
                        *weights.entry(key(u, v)).or_insert(0) += w;
                    }
                }
            }
        }
    }
    let mut builder = GraphBuilder::new(n);
    for ((u, v), w) in weights {
        if w > 0 {
            builder.add_edge(u, v);
        }
    }
    builder.build()
}

#[inline]
fn key(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

/// Why a query-path decode could not be answered.  The read path is the one
/// place ids arrive from outside the process, so callers get a typed error to
/// match on rather than a panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The queried id is not a subnode of this summary: it is at or above
    /// `num_subnodes`, i.e. it names an interior (possibly dead) arena slot or
    /// falls outside the arena entirely.
    NodeOutOfRange {
        /// The offending query id.
        node: NodeId,
        /// `num_subnodes` of the summary, for the error message.
        num_subnodes: usize,
    },
    /// The summary's own invariants are broken: a supernode's incidence set
    /// names a neighbor with no corresponding p/n-edge.  This indicates
    /// corruption, never a bad query.
    Inconsistent {
        /// Supernode whose incidence set is stale.
        supernode: NodeId,
        /// The incident id with no backing edge.
        other: NodeId,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::NodeOutOfRange { node, num_subnodes } => {
                write!(
                    f,
                    "node {node} out of range (summary has {num_subnodes} subnodes)"
                )
            }
            DecodeError::Inconsistent { supernode, other } => write!(
                f,
                "summary inconsistent: incidence of {supernode} names {other} but no edge exists"
            ),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Retrieves the neighbors of a single subnode by partial decompression
/// (Algorithm 4): walk the ancestor chain of `v`, accumulate ±1 per member of the
/// other endpoint of every incident p/n-edge, and keep subnodes with positive net.
///
/// Panics when `v` is not a subnode of the summary — use [`try_neighbors_of`]
/// for ids that come from outside the process.
pub fn neighbors_of(summary: &HierarchicalSummary, v: NodeId) -> Vec<NodeId> {
    try_neighbors_of(summary, v).unwrap_or_else(|e| panic!("neighbors_of({v}): {e}"))
}

/// Fallible [`neighbors_of`]: the same Algorithm 4 walk, but out-of-range ids
/// and broken summary invariants surface as a typed [`DecodeError`] instead of
/// a panic.  Never panics, for arbitrary `v`.
pub fn try_neighbors_of(
    summary: &HierarchicalSummary,
    v: NodeId,
) -> Result<Vec<NodeId>, DecodeError> {
    let leaf = summary.try_leaf_of(v).ok_or(DecodeError::NodeOutOfRange {
        node: v,
        num_subnodes: summary.num_subnodes(),
    })?;
    let mut count: FxHashMap<NodeId, i32> = FxHashMap::default();
    for ancestor in summary.ancestors_inclusive(leaf) {
        for other in summary.incident(ancestor) {
            let sign = summary
                .edge_sign(ancestor, other)
                .ok_or(DecodeError::Inconsistent {
                    supernode: ancestor,
                    other,
                })?;
            let w = sign.weight();
            for &u in summary.members(other) {
                *count.entry(u).or_insert(0) += w;
            }
            // A self-loop at `ancestor` covers pairs within it, which the loop above
            // already accounts for because `other == ancestor` in that case.
        }
    }
    let mut out: Vec<NodeId> = count
        .into_iter()
        .filter(|&(u, c)| u != v && c > 0)
        .map(|(u, _)| u)
        .collect();
    out.sort_unstable();
    Ok(out)
}

/// Verifies that a summary represents exactly the given graph.  Returns a description
/// of the first discrepancy found, if any.
pub fn verify_lossless(summary: &HierarchicalSummary, graph: &Graph) -> Result<(), String> {
    if summary.num_subnodes() != graph.num_nodes() {
        return Err(format!(
            "node count mismatch: summary {} vs graph {}",
            summary.num_subnodes(),
            graph.num_nodes()
        ));
    }
    let decoded = decode_full(summary);
    if decoded.num_edges() != graph.num_edges() {
        return Err(format!(
            "edge count mismatch: decoded {} vs graph {}",
            decoded.num_edges(),
            graph.num_edges()
        ));
    }
    for (u, v) in graph.edges() {
        if !decoded.has_edge(u, v) {
            return Err(format!("edge ({u}, {v}) missing from the decoded graph"));
        }
    }
    Ok(())
}

/// A view of a summary that implements [`NeighborAccess`], so the graph algorithms of
/// `slugger-algos` (BFS, PageRank, Dijkstra, …) can run directly on the compressed
/// representation through on-the-fly partial decompression (Sect. VIII-C).
///
/// The view is panic-free on arbitrary ids: an out-of-range `u` simply has no
/// neighbors (mirroring how a CSR [`Graph`] treats isolated trailing nodes),
/// routed through [`try_neighbors_of`].
pub struct SummaryNeighborView<'a> {
    summary: &'a HierarchicalSummary,
}

impl<'a> SummaryNeighborView<'a> {
    /// Wraps a summary.
    pub fn new(summary: &'a HierarchicalSummary) -> Self {
        SummaryNeighborView { summary }
    }

    /// The wrapped summary.
    pub fn summary(&self) -> &HierarchicalSummary {
        self.summary
    }
}

impl NeighborAccess for SummaryNeighborView<'_> {
    fn num_nodes(&self) -> usize {
        self.summary.num_subnodes()
    }

    fn for_each_neighbor(&self, u: NodeId, f: &mut dyn FnMut(NodeId)) {
        for v in self.neighbors_vec(u) {
            f(v);
        }
    }

    fn neighbors_vec(&self, u: NodeId) -> Vec<NodeId> {
        match try_neighbors_of(self.summary, u) {
            Ok(v) => v,
            // Out of range: no neighbors, mirroring a CSR graph's treatment of
            // ids beyond the adjacency it holds.
            Err(DecodeError::NodeOutOfRange { .. }) => Vec::new(),
            // Corruption is a programming error, not a query error — loud in
            // debug builds, empty (not a crash) when serving.
            Err(e @ DecodeError::Inconsistent { .. }) => {
                debug_assert!(false, "{e}");
                Vec::new()
            }
        }
    }
}

/// Iterates all edges of the summarized graph without materializing a [`Graph`]
/// (used by size accounting in the harness).
pub fn decoded_edge_count(summary: &HierarchicalSummary) -> usize {
    decode_full(summary).num_edges()
}

/// The **id-free canonical form** of a summary: alive supernodes keyed by their
/// member sets (unique — members strictly grow up the hierarchy and partition the
/// subnodes across trees), each mapped to its parent's member set, plus the
/// p/n-edges keyed by both endpoints' member sets.
///
/// Arena ids are scheduling artifacts: compaction, a storage round-trip, and
/// crash recovery all renumber them without changing the summary *as a model*.
/// Two summaries are interchangeable for every downstream consumer exactly when
/// their canonical forms are equal — this is the equality the invariance test
/// lattice pins across `parallelism × shards`, and the identity
/// [`crate::storage::durable`] recovery guarantees against an uninterrupted run.
pub type CanonicalForm = (
    usize,
    BTreeMap<Vec<NodeId>, Option<Vec<NodeId>>>,
    BTreeSet<(Vec<NodeId>, Vec<NodeId>, i32)>,
);

/// Computes the [`CanonicalForm`] of a summary.  `O(total members + edges)` with
/// sorting overhead — verification and test code, not a hot path.
pub fn canonical_form(summary: &HierarchicalSummary) -> CanonicalForm {
    let mut nodes: BTreeMap<Vec<NodeId>, Option<Vec<NodeId>>> = BTreeMap::new();
    for id in 0..summary.arena_len() as u32 {
        if !summary.is_alive(id) {
            continue;
        }
        let members = summary.members(id).to_vec();
        let parent = summary.parent(id).map(|p| summary.members(p).to_vec());
        let unique = nodes.insert(members, parent).is_none();
        debug_assert!(unique, "alive member sets must be unique");
    }
    let mut edges: BTreeSet<(Vec<NodeId>, Vec<NodeId>, i32)> = BTreeSet::new();
    for ((a, b), sign) in summary.pn_edges() {
        let ma = summary.members(a).to_vec();
        let mb = summary.members(b).to_vec();
        let (x, y) = if ma <= mb { (ma, mb) } else { (mb, ma) };
        edges.insert((x, y, sign.weight()));
    }
    (summary.num_subnodes(), nodes, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EdgeSign;

    /// Builds the running example of Fig. 2: input graph on 7 nodes where {0,1,2,3}
    /// all connect to 4 and 5 except that (2,5) and (3,5) are absent, plus edge (5,6)
    /// and a clique-ish core.  We hand-craft a hierarchical summary and check decoding.
    fn handcrafted_summary() -> (HierarchicalSummary, Vec<(NodeId, NodeId)>) {
        let mut s = HierarchicalSummary::identity(7);
        // Hierarchy: {0,1} and {2,3} merge, then the two merge into {0,1,2,3}.
        let m01 = s.merge_roots(0, 1);
        let m23 = s.merge_roots(2, 3);
        let m0123 = s.merge_roots(m01, m23);
        // Edges of the represented graph:
        //   all of {0,1,2,3} pairwise connected            -> p self-loop at m0123
        //   all of {0,1,2,3} connected to 4                 -> p-edge (m0123, 4)
        //   {0,1} connected to 5, {2,3} not                 -> p-edge (m01, 5)
        //   5 connected to 6                                -> p-edge (5, 6)
        s.set_edge(m0123, m0123, EdgeSign::Positive);
        s.set_edge(m0123, 4, EdgeSign::Positive);
        s.set_edge(m01, 5, EdgeSign::Positive);
        s.set_edge(5, 6, EdgeSign::Positive);
        let mut expected = vec![(5u32, 6u32), (0, 5), (1, 5)];
        for u in 0..4u32 {
            expected.push((u, 4));
            for v in (u + 1)..4u32 {
                expected.push((u, v));
            }
        }
        (s, expected)
    }

    #[test]
    fn decode_full_reproduces_handcrafted_graph() {
        let (s, expected) = handcrafted_summary();
        s.validate().unwrap();
        let decoded = decode_full(&s);
        let expected_graph = Graph::from_edges(7, expected);
        assert_eq!(decoded.edge_set(), expected_graph.edge_set());
        verify_lossless(&s, &expected_graph).unwrap();
    }

    #[test]
    fn negative_edges_subtract() {
        // p self-loop over {0,1,2} minus n-edge (0,1) => only (0,2) and (1,2) remain.
        let mut s = HierarchicalSummary::identity(3);
        let m01 = s.merge_roots(0, 1);
        let m = s.merge_roots(m01, 2);
        s.set_edge(m, m, EdgeSign::Positive);
        s.set_edge(0, 1, EdgeSign::Negative);
        let decoded = decode_full(&s);
        assert_eq!(decoded.num_edges(), 2);
        assert!(decoded.has_edge(0, 2));
        assert!(decoded.has_edge(1, 2));
        assert!(!decoded.has_edge(0, 1));
    }

    #[test]
    fn neighbors_of_matches_full_decode() {
        let (s, _) = handcrafted_summary();
        let decoded = decode_full(&s);
        for v in 0..7u32 {
            let from_partial = neighbors_of(&s, v);
            let from_full: Vec<NodeId> = decoded.neighbors(v).to_vec();
            assert_eq!(from_partial, from_full, "node {v}");
        }
    }

    #[test]
    fn neighbor_view_implements_neighbor_access() {
        let (s, _) = handcrafted_summary();
        let view = SummaryNeighborView::new(&s);
        assert_eq!(view.num_nodes(), 7);
        assert_eq!(view.degree_of(4), 4);
        let mut seen = Vec::new();
        view.for_each_neighbor(5, &mut |x| seen.push(x));
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 6]);
        assert_eq!(view.summary().num_subnodes(), 7);
    }

    #[test]
    fn verify_lossless_detects_mismatch() {
        let (s, expected) = handcrafted_summary();
        let mut wrong = expected.clone();
        wrong.push((4, 6));
        let wrong_graph = Graph::from_edges(7, wrong);
        assert!(verify_lossless(&s, &wrong_graph).is_err());
    }

    #[test]
    fn empty_summary_decodes_to_empty_graph() {
        let s = HierarchicalSummary::identity(5);
        let decoded = decode_full(&s);
        assert_eq!(decoded.num_nodes(), 5);
        assert_eq!(decoded.num_edges(), 0);
        assert_eq!(decoded_edge_count(&s), 0);
        assert!(neighbors_of(&s, 0).is_empty());
    }
}
