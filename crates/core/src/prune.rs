//! The pruning step (Sect. III-B4, Algorithm 3): removes supernodes that do not
//! contribute to a concise encoding, without changing the represented graph.
//!
//! Three substeps, each exposed individually so the Table IV experiment can measure
//! the state after each one:
//!
//! 1. [`prune_step1`] — drop internal/root supernodes with no incident p/n-edge,
//!    re-parenting their children (saves one h-edge per removal, or more for roots).
//! 2. [`prune_step2`] — drop a non-leaf root with exactly one incident (non-loop)
//!    p/n-edge by pushing that edge down to its children (saves at least one edge).
//! 3. [`prune_step3`] — for every adjacent root pair, compare the current encoding of
//!    the edges between the two trees against the *flat* (Navlakha-style) optimal
//!    encoding of the same subedges and keep the cheaper of the two.  This is the
//!    bridge to the non-hierarchical model, which is a special case of ours
//!    (Sect. II-B), and it also clears internal-node edges so further rounds of
//!    substeps 1–2 can prune more.
//!
//! # Hosts: bare summaries and the live engine
//!
//! Every substep is generic over a [`PruneHost`] — the mutation surface pruning
//! needs.  Two hosts exist:
//!
//! * a bare [`HierarchicalSummary`] (the batch path: [`crate::Slugger`] prunes its
//!   output once, after the merge iterations, when no engine bookkeeping is alive
//!   anymore);
//! * the live [`crate::engine::MergeEngine`] (the streaming path): its edge edits go
//!   through the engine's p/n-edge bookkeeping sink and its structural removals
//!   through [`crate::engine::MergeEngine::prune_supernode`], so every root's
//!   `Saving(A, B, G)` metadata (adjacency counts, tree sizes, heights) stays exact
//!   while the **maintained** summary is pruned in place.
//!
//! The same substep implementations run against both hosts, so the batch and the
//! streaming path can never disagree about what pruning means.
//!
//! # Region-restricted pruning
//!
//! [`prune_region`] re-runs the three substeps only over a set of *region* roots
//! and the root pairs they form with their summary-adjacent partners.  The
//! incremental re-summarizer ([`crate::incremental`]) calls it after every delta
//! batch with the batch's dirty roots plus their frontier, so the per-batch pruning
//! cost is proportional to the dirty region — not to the whole summary, which is
//! what a from-scratch [`prune_all`] on a snapshot would cost.
//!
//! The region substep 3 keeps its pair bookkeeping on dense arena-indexed scratch
//! arrays by default ([`PairIndex::Flat`]); the original hash-map bookkeeping
//! survives as [`PairIndex::Hash`] behind [`prune_region_with`], pinned
//! byte-identical so the two can never drift.
//!
//! All substeps are **content-deterministic**: supernodes are visited in sorted-id
//! order and each root pair's re-encoding depends only on that pair's edges, so the
//! result is a pure function of the model's content — never of hash-map layout.
//! This is what lets the streaming invariance tests pin byte-identical summaries
//! across `parallelism × shards` settings even with pruning enabled.

use crate::model::{EdgeSign, HierarchicalSummary, SupernodeId};
use slugger_graph::hash::{FxHashMap, FxHashSet};
use slugger_graph::{AdjacencyList, NodeId};

/// Summary of what a pruning pass changed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruneReport {
    /// Supernodes removed by substep 1.
    pub step1_removed: usize,
    /// Supernodes removed by substep 2.
    pub step2_removed: usize,
    /// Root pairs re-encoded flat by substep 3.
    pub step3_reencoded: usize,
}

impl PruneReport {
    /// Total number of structural changes.
    pub fn total_changes(&self) -> usize {
        self.step1_removed + self.step2_removed + self.step3_reencoded
    }

    /// Accumulates another report.
    pub fn absorb(&mut self, other: PruneReport) {
        self.step1_removed += other.step1_removed;
        self.step2_removed += other.step2_removed;
        self.step3_reencoded += other.step3_reencoded;
    }
}

/// The mutation surface the pruning substeps run against.
///
/// Implemented by the bare [`HierarchicalSummary`] (edits applied directly) and by
/// [`crate::engine::MergeEngine`] (edits routed through the engine's bookkeeping
/// sink so its per-root metadata stays exact — see the module docs).
pub trait PruneHost {
    /// Read access to the summary being pruned.
    fn summary(&self) -> &HierarchicalSummary;
    /// Removes the p/n-edge between two supernodes, if present.
    fn remove_edge(&mut self, a: SupernodeId, b: SupernodeId);
    /// Inserts (or overwrites) the p/n-edge between two supernodes.
    fn set_edge(&mut self, a: SupernodeId, b: SupernodeId, sign: EdgeSign);
    /// Removes a non-leaf supernode, re-parenting its children (or promoting them
    /// to roots).  The caller has already re-encoded the node's edges; hosts with
    /// extra bookkeeping re-attribute the tree's remaining edges themselves.
    fn prune_supernode(&mut self, id: SupernodeId);
}

impl PruneHost for HierarchicalSummary {
    fn summary(&self) -> &HierarchicalSummary {
        self
    }

    fn remove_edge(&mut self, a: SupernodeId, b: SupernodeId) {
        HierarchicalSummary::remove_edge(self, a, b);
    }

    fn set_edge(&mut self, a: SupernodeId, b: SupernodeId, sign: EdgeSign) {
        HierarchicalSummary::set_edge(self, a, b, sign);
    }

    fn prune_supernode(&mut self, id: SupernodeId) {
        HierarchicalSummary::prune_supernode(self, id);
    }
}

/// Substep 1: removes every alive non-leaf supernode with no incident p/n-edge.
/// Returns the number of supernodes removed.
pub fn prune_step1<H: PruneHost>(host: &mut H) -> usize {
    let mut removed = 0usize;
    // Pruning a node never makes another node newly edge-free (it has no edges to
    // move), so a single pass over the arena suffices.
    for id in 0..host.summary().arena_len() as SupernodeId {
        let summary = host.summary();
        if !summary.is_alive(id) || summary.supernode(id).is_leaf() {
            continue;
        }
        if summary.incident_count(id) == 0 {
            host.prune_supernode(id);
            removed += 1;
        }
    }
    removed
}

/// Substep 1 restricted to the trees of `region` roots.  When a *root* of the
/// region is removed, its promoted children are appended to `region` (they are new
/// region roots for the following substeps).  Returns the number removed.
fn prune_step1_region<H: PruneHost>(host: &mut H, region: &mut Vec<SupernodeId>) -> usize {
    let mut nodes: Vec<SupernodeId> = Vec::new();
    for &r in region.iter() {
        if host.summary().is_root(r) {
            nodes.extend(host.summary().tree_supernodes(r));
        }
    }
    // Sorted-id order: the exact visit order `prune_step1` uses, restricted.
    nodes.sort_unstable();
    nodes.dedup();
    let mut removed = 0usize;
    for id in nodes {
        let summary = host.summary();
        if !summary.is_alive(id) || summary.supernode(id).is_leaf() {
            continue;
        }
        if summary.incident_count(id) == 0 {
            if summary.is_root(id) {
                region.extend_from_slice(summary.children(id));
            }
            host.prune_supernode(id);
            removed += 1;
        }
    }
    removed
}

/// Substep 2: removes every alive non-leaf **root** whose only incident p/n-edge is a
/// single non-loop edge `(A, B)`, pushing that edge down to `A`'s children (flipping
/// against existing opposite-sign edges).  Returns the number of roots removed.
pub fn prune_step2<H: PruneHost>(host: &mut H) -> usize {
    let mut queue: Vec<SupernodeId> = host.summary().roots().collect();
    prune_step2_queue(host, &mut queue, None)
}

/// Substep 2 restricted to `region` roots; promoted children join `region`.
fn prune_step2_region<H: PruneHost>(host: &mut H, region: &mut Vec<SupernodeId>) -> usize {
    let mut queue: Vec<SupernodeId> = region.clone();
    prune_step2_queue(host, &mut queue, Some(region))
}

/// The substep-2 work loop over an explicit root queue (LIFO, so the global entry
/// processes roots in descending-id order — promoted children re-enter the queue
/// either way).  `region` (when given) collects promoted children so callers can
/// keep their region root set current.
fn prune_step2_queue<H: PruneHost>(
    host: &mut H,
    queue: &mut Vec<SupernodeId>,
    mut region: Option<&mut Vec<SupernodeId>>,
) -> usize {
    let mut removed = 0usize;
    while let Some(a) = queue.pop() {
        let summary = host.summary();
        if !summary.is_alive(a) || !summary.is_root(a) || summary.supernode(a).is_leaf() {
            continue;
        }
        if summary.incident_count(a) != 1 {
            continue;
        }
        let b = summary.incident(a).next().expect("one incident edge");
        if b == a {
            continue; // the single edge is a self-loop: not eligible
        }
        let sign = summary.edge_sign(a, b).expect("incident edge");
        let children: Vec<SupernodeId> = summary.children(a).to_vec();
        // Guard (see module docs of `encoder`): the push-down is net-preserving only
        // when no child already carries a same-sign edge to `b`.
        let conflict = children
            .iter()
            .any(|&c| summary.edge_sign(c, b) == Some(sign));
        if conflict {
            continue;
        }
        // Remove A (drops (A, B) and the |children| h-edges, making children roots).
        host.prune_supernode(a);
        removed += 1;
        for &c in &children {
            match host.summary().edge_sign(c, b) {
                // Opposite sign: +1 and −1 cancelled before, so simply drop it.
                Some(existing) if existing != sign => {
                    host.remove_edge(c, b);
                }
                Some(_) => unreachable!("conflict guard"),
                None => {
                    host.set_edge(c, b, sign);
                }
            }
            // Newly promoted roots may themselves become eligible.
            queue.push(c);
        }
        if let Some(region) = region.as_deref_mut() {
            region.extend_from_slice(&children);
        }
    }
    removed
}

/// Substep 3: for every root pair (including a root with itself) connected by at least
/// one p/n-edge between their trees, re-encode the subedges between the two member
/// sets with the flat-model optimum when that is strictly cheaper.  Returns the number
/// of pairs re-encoded.
///
/// `max_pair_product` guards against enumerating astronomically many subnode pairs for
/// two huge roots; pairs above the limit are skipped (they are never profitable to
/// flatten in practice).
pub fn prune_step3<H: PruneHost, G: AdjacencyList>(
    host: &mut H,
    graph: &G,
    max_pair_product: usize,
) -> usize {
    let summary = host.summary();
    // Root of every subnode (for classifying subedges by root pair).
    let mut root_of_subnode: Vec<SupernodeId> = vec![0; summary.num_subnodes()];
    let roots: Vec<SupernodeId> = summary.roots().collect();
    for &r in &roots {
        for &u in summary.members(r) {
            root_of_subnode[u as usize] = r;
        }
    }
    // Subedge counts per root pair.
    let mut subedge_count: FxHashMap<(SupernodeId, SupernodeId), usize> = FxHashMap::default();
    for u in 0..summary.num_subnodes() as NodeId {
        for &w in graph.neighbors(u) {
            if u < w {
                let key = pair_key(root_of_subnode[u as usize], root_of_subnode[w as usize]);
                *subedge_count.entry(key).or_insert(0) += 1;
            }
        }
    }
    // Current p/n-edges per root pair.
    let mut pn_edges: FxHashMap<(SupernodeId, SupernodeId), Vec<(SupernodeId, SupernodeId)>> =
        FxHashMap::default();
    for ((x, y), _) in summary.pn_edges() {
        let key = pair_key(summary.root_of(x), summary.root_of(y));
        pn_edges.entry(key).or_default().push((x, y));
    }

    let mut reencoded = 0usize;
    for ((root_a, root_b), edges) in pn_edges {
        let existing = subedge_count
            .get(&pair_key(root_a, root_b))
            .copied()
            .unwrap_or(0);
        if flatten_pair_if_cheaper(
            host,
            graph,
            root_a,
            root_b,
            &edges,
            existing,
            Some(&root_of_subnode),
            max_pair_product,
        ) {
            reencoded += 1;
        }
    }
    reencoded
}

/// Pair-bookkeeping strategy of the region-restricted substep 3 — see
/// [`prune_region_with`].
///
/// Both strategies are **observably identical** (same pairs, same visit order,
/// same re-encodings, byte-identical summaries — unit-pinned); they differ only
/// in constant factors.  [`PairIndex::Flat`] replaces every hash lookup of the
/// region path with dense arena-indexed scratch arrays, which is what keeps
/// hub-adjacent regions (many partners per root) from paying ~2x over the global
/// sweep's flat tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairIndex {
    /// Dense arena-indexed slot tables + pooled buckets (the default): a lazy
    /// leaf/supernode → root memo, a partner → slot array reset via a touched
    /// list, and per-slot edge buckets and subedge counters reused across roots.
    Flat,
    /// The original hash-map bookkeeping (`FxHashMap`/`FxHashSet` per root),
    /// kept as the reference implementation the pin test compares against.
    Hash,
}

/// Root of `x` through a lazy arena-indexed memo (`SupernodeId::MAX` = not yet
/// computed), stamping the whole parent chain on first touch.  Valid only while
/// tree structure is unchanged — substep 3 rewrites edges, never structure.
fn memo_root_of(
    summary: &HierarchicalSummary,
    memo: &mut [SupernodeId],
    chain: &mut Vec<SupernodeId>,
    x: SupernodeId,
) -> SupernodeId {
    let mut cur = x;
    chain.clear();
    loop {
        let m = memo[cur as usize];
        if m != SupernodeId::MAX {
            for &c in chain.iter() {
                memo[c as usize] = m;
            }
            return m;
        }
        chain.push(cur);
        match summary.parent(cur) {
            Some(p) => cur = p,
            None => {
                for &c in chain.iter() {
                    memo[c as usize] = cur;
                }
                return cur;
            }
        }
    }
}

/// The [`PairIndex::Flat`] implementation of the region-restricted substep 3:
/// pair-for-pair identical to [`prune_step3_region`] (same ascending root visit,
/// same per-root bucket collection order, same full-total subedge counts, same
/// smaller-root-first dedup of in-region pairs), with all bookkeeping on dense
/// arena-indexed scratch instead of hash maps.
///
/// The subedge totals are counted lazily at each root's turn rather than in one
/// up-front sweep; the graph never changes during the substep, so the totals are
/// the same — counting pair `(a, b)` fully from `a`'s member adjacency (`u < w`
/// within the pair itself) is exactly the split-rule total the hash path
/// pre-computes.
fn prune_step3_region_flat<H: PruneHost, G: AdjacencyList>(
    host: &mut H,
    graph: &G,
    region: &[SupernodeId],
    max_pair_product: usize,
) -> usize {
    let arena_len = host.summary().arena_len();
    let mut node_root: Vec<SupernodeId> = vec![SupernodeId::MAX; arena_len];
    let mut chain: Vec<SupernodeId> = Vec::new();
    // Dense partner index: arena-indexed slot table, reset between roots through
    // the touched list; buckets and counters are pooled per slot.
    let mut partner_slot: Vec<u32> = vec![u32::MAX; arena_len];
    let mut partners_touched: Vec<SupernodeId> = Vec::new();
    let mut partner_edges: Vec<Vec<(SupernodeId, SupernodeId)>> = Vec::new();
    let mut partner_subedges: Vec<usize> = Vec::new();
    let mut partners: Vec<SupernodeId> = Vec::new();
    let mut incident: Vec<SupernodeId> = Vec::new();
    let mut reencoded = 0usize;
    for &a in region {
        if !host.summary().is_root(a) {
            continue; // removed by an earlier substep of this pass
        }
        for &p in &partners_touched {
            partner_slot[p as usize] = u32::MAX;
        }
        partners_touched.clear();
        let summary = host.summary();
        // One scan over the tree's incident edges, bucketed by partner root —
        // the exact collection order of the hash path.
        for x in summary.tree_supernodes(a) {
            incident.clear();
            incident.extend(summary.incident(x));
            incident.sort_unstable();
            for &y in &incident {
                let partner = memo_root_of(summary, &mut node_root, &mut chain, y);
                // Intra-tree edges are seen from both endpoints; record them once
                // (self-loops appear once in the incidence set already).
                if partner == a && y < x {
                    continue;
                }
                let mut slot = partner_slot[partner as usize];
                if slot == u32::MAX {
                    slot = partners_touched.len() as u32;
                    partner_slot[partner as usize] = slot;
                    partners_touched.push(partner);
                    if partner_edges.len() <= slot as usize {
                        partner_edges.push(Vec::new());
                        partner_subedges.push(0);
                    }
                    partner_edges[slot as usize].clear();
                    partner_subedges[slot as usize] = 0;
                }
                partner_edges[slot as usize].push((x, y));
            }
        }
        if partners_touched.is_empty() {
            continue;
        }
        // Full subedge totals for every partner pair, in one sweep over the
        // member adjacency: each subedge once — from `a`'s side for cross pairs,
        // `u < w` within the pair itself.
        for &u in summary.members(a) {
            for &w in graph.neighbors(u) {
                let r = memo_root_of(summary, &mut node_root, &mut chain, w as SupernodeId);
                if r != a || u < w {
                    let slot = partner_slot[r as usize];
                    if slot != u32::MAX {
                        partner_subedges[slot as usize] += 1;
                    }
                }
            }
        }
        partners.clear();
        partners.extend_from_slice(&partners_touched);
        partners.sort_unstable();
        for &b in &partners {
            // An in-region pair is handled at its smaller root's (earlier) turn.
            if b < a && region.binary_search(&b).is_ok() {
                continue;
            }
            let slot = partner_slot[b as usize] as usize;
            let existing = partner_subedges[slot];
            if flatten_pair_if_cheaper(
                host,
                graph,
                a,
                b,
                &partner_edges[slot],
                existing,
                None,
                max_pair_product,
            ) {
                reencoded += 1;
            }
        }
    }
    reencoded
}

/// Substep 3 restricted to pairs with at least one root in `region`: each region
/// root is paired with every root its tree shares a p/n-edge with (its
/// summary-adjacent partners, and itself for intra-tree edges).
fn prune_step3_region<H: PruneHost, G: AdjacencyList>(
    host: &mut H,
    graph: &G,
    region: &[SupernodeId],
    max_pair_product: usize,
) -> usize {
    // Subedge counts for every pair a region root participates in, from ONE sweep
    // over the region's leaf adjacency (graph side — immutable during this
    // substep; substep 3 rewrites edges, never tree structure).  Counting
    // per pair on demand would re-scan a root's member adjacency once per
    // partner, which blows up on hub-adjacent regions.
    let region_set: FxHashSet<SupernodeId> = region.iter().copied().collect();
    let mut subedge_count: FxHashMap<(SupernodeId, SupernodeId), usize> = FxHashMap::default();
    {
        let summary = host.summary();
        for &a in region {
            if !summary.is_root(a) {
                continue;
            }
            for &u in summary.members(a) {
                for &w in graph.neighbors(u) {
                    let partner = summary.root_of(w as SupernodeId);
                    // Each subedge must count once: intra-pair when `u < w`,
                    // both-in-region pairs at the smaller root's sweep, and
                    // region-frontier pairs at the (only) region sweep.
                    let counted = if partner == a {
                        u < w
                    } else if region_set.contains(&partner) {
                        a < partner
                    } else {
                        true
                    };
                    if counted {
                        *subedge_count.entry(pair_key(a, partner)).or_insert(0) += 1;
                    }
                }
            }
        }
    }
    let mut reencoded = 0usize;
    let mut seen: FxHashSet<(SupernodeId, SupernodeId)> = FxHashSet::default();
    let mut incident: Vec<SupernodeId> = Vec::new();
    for &a in region {
        if !host.summary().is_root(a) {
            continue; // removed by an earlier substep of this pass
        }
        // One scan over the tree's incident edges, bucketed by partner root.
        let summary = host.summary();
        let mut by_partner: FxHashMap<SupernodeId, Vec<(SupernodeId, SupernodeId)>> =
            FxHashMap::default();
        for x in summary.tree_supernodes(a) {
            incident.clear();
            incident.extend(summary.incident(x));
            incident.sort_unstable();
            for &y in &incident {
                let partner = summary.root_of(y);
                // Intra-tree edges are seen from both endpoints; record them once
                // (self-loops appear once in the incidence set already).
                if partner == a && y < x {
                    continue;
                }
                by_partner.entry(partner).or_default().push((x, y));
            }
        }
        let mut partners: Vec<SupernodeId> = by_partner.keys().copied().collect();
        partners.sort_unstable();
        for b in partners {
            let key = pair_key(a, b);
            if !seen.insert(key) {
                continue;
            }
            let edges = &by_partner[&b];
            let existing = subedge_count.get(&key).copied().unwrap_or(0);
            if flatten_pair_if_cheaper(host, graph, a, b, edges, existing, None, max_pair_product) {
                reencoded += 1;
            }
        }
    }
    reencoded
}

/// The substep-3 decision for one root pair: given the pair's current p/n-edges and
/// the number of subedges between the two member sets, re-encode flat (sparse
/// p-edges, or superedge + n-edges) when strictly cheaper.  Shared by the global
/// and the region-restricted entry so the two can never diverge.
///
/// `root_of_subnode` is the global path's precomputed O(1) leaf → root table
/// (valid throughout substep 3, which never changes tree structure); the region
/// path passes `None` and subedge collection falls back to parent-chasing.
#[allow(clippy::too_many_arguments)]
fn flatten_pair_if_cheaper<H: PruneHost, G: AdjacencyList>(
    host: &mut H,
    graph: &G,
    root_a: SupernodeId,
    root_b: SupernodeId,
    edges: &[(SupernodeId, SupernodeId)],
    existing: usize,
    root_of_subnode: Option<&[SupernodeId]>,
    max_pair_product: usize,
) -> bool {
    let summary = host.summary();
    let size_a = summary.members(root_a).len();
    let size_b = summary.members(root_b).len();
    let total_pairs = if root_a == root_b {
        size_a * (size_a.saturating_sub(1)) / 2
    } else {
        size_a * size_b
    };
    if total_pairs == 0 || total_pairs > max_pair_product {
        return false;
    }
    let current_cost = edges.len();
    let sparse_cost = existing; // one p-edge per subedge
    let dense_cost = total_pairs - existing + 1; // superedge + one n-edge per non-edge
    let flat_cost = sparse_cost.min(dense_cost);
    if flat_cost >= current_cost {
        return false;
    }
    // Remove the current encoding of this pair ...
    for &(x, y) in edges {
        host.remove_edge(x, y);
    }
    // ... and re-encode flat.
    if sparse_cost <= dense_cost {
        let mut pairs = Vec::new();
        collect_subedges_between(
            host.summary(),
            graph,
            root_a,
            root_b,
            root_of_subnode,
            &mut pairs,
        );
        for (u, v) in pairs {
            host.set_edge(u, v, EdgeSign::Positive);
        }
    } else {
        host.set_edge(root_a, root_b, EdgeSign::Positive);
        let mut missing = Vec::new();
        collect_missing_pairs_between(host.summary(), graph, root_a, root_b, &mut missing);
        for (u, v) in missing {
            host.set_edge(u, v, EdgeSign::Negative);
        }
    }
    true
}

/// Collects the subedges of `graph` with one endpoint in each root's member set
/// (or both endpoints in the same set when `root_a == root_b`).  Uses the
/// precomputed leaf → root table when the caller has one (the global substep-3
/// path), otherwise chases parent pointers.
fn collect_subedges_between<G: AdjacencyList>(
    summary: &HierarchicalSummary,
    graph: &G,
    root_a: SupernodeId,
    root_b: SupernodeId,
    root_of_subnode: Option<&[SupernodeId]>,
    out: &mut Vec<(NodeId, NodeId)>,
) {
    let (iterate, other) = if summary.members(root_a).len() <= summary.members(root_b).len() {
        (root_a, root_b)
    } else {
        (root_b, root_a)
    };
    let root_of_leaf = |w: NodeId| match root_of_subnode {
        Some(table) => table[w as usize],
        None => summary.root_of(w as SupernodeId),
    };
    for &u in summary.members(iterate) {
        for &w in graph.neighbors(u) {
            if root_of_leaf(w) != other {
                continue;
            }
            if root_a == root_b {
                if u < w {
                    out.push((u, w));
                }
            } else {
                out.push((u, w));
            }
        }
    }
}

/// Collects the *non*-adjacent subnode pairs between the two roots' member sets.
fn collect_missing_pairs_between<G: AdjacencyList>(
    summary: &HierarchicalSummary,
    graph: &G,
    root_a: SupernodeId,
    root_b: SupernodeId,
    out: &mut Vec<(NodeId, NodeId)>,
) {
    if root_a == root_b {
        let members = summary.members(root_a);
        for (i, &u) in members.iter().enumerate() {
            for &v in &members[i + 1..] {
                if !graph.has_edge(u, v) {
                    out.push((u, v));
                }
            }
        }
    } else {
        for &u in summary.members(root_a) {
            for &v in summary.members(root_b) {
                if !graph.has_edge(u, v) {
                    out.push((u, v));
                }
            }
        }
    }
}

#[inline]
fn pair_key(a: SupernodeId, b: SupernodeId) -> (SupernodeId, SupernodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Runs the full pruning step: `rounds` passes of substeps 1 → 2 → 3 (the paper notes
/// the substeps "can be repeated a few times"), stopping early once a pass changes
/// nothing.
pub fn prune_all<H: PruneHost, G: AdjacencyList>(
    host: &mut H,
    graph: &G,
    rounds: usize,
) -> PruneReport {
    let mut report = PruneReport::default();
    for _ in 0..rounds {
        let pass = PruneReport {
            step1_removed: prune_step1(host),
            step2_removed: prune_step2(host),
            step3_reencoded: prune_step3(host, graph, DEFAULT_MAX_PAIR_PRODUCT),
        };
        let changed = pass.total_changes() > 0;
        report.absorb(pass);
        if !changed {
            break;
        }
    }
    report
}

/// Region-restricted pruning: `rounds` passes of substeps 1 → 2 → 3 over the trees
/// of `region` roots and the root pairs they form with their summary-adjacent
/// partners, stopping early once a pass changes nothing.
///
/// Work is proportional to the region's trees and their incident edges, never to
/// the whole summary — this is the per-batch pruning primitive of the streaming
/// engine (see the module docs).  Roots promoted by substeps 1–2 (children of a
/// removed region root) join the region for the remaining substeps and rounds.
/// Region ids that stop being roots are skipped, so the caller may pass a stale
/// superset.
pub fn prune_region<H: PruneHost, G: AdjacencyList>(
    host: &mut H,
    graph: &G,
    region: &[SupernodeId],
    rounds: usize,
    max_pair_product: usize,
) -> PruneReport {
    prune_region_with(
        host,
        graph,
        region,
        rounds,
        max_pair_product,
        PairIndex::Flat,
    )
}

/// [`prune_region`] with an explicit substep-3 pair-bookkeeping strategy.  The
/// two strategies produce byte-identical summaries (unit-pinned); [`PairIndex`]
/// only selects the bookkeeping's constant factors, which the `streaming` bench
/// compares per batch.
pub fn prune_region_with<H: PruneHost, G: AdjacencyList>(
    host: &mut H,
    graph: &G,
    region: &[SupernodeId],
    rounds: usize,
    max_pair_product: usize,
    pair_index: PairIndex,
) -> PruneReport {
    let mut region: Vec<SupernodeId> = region
        .iter()
        .copied()
        .filter(|&r| host.summary().is_root(r))
        .collect();
    region.sort_unstable();
    region.dedup();
    let mut report = PruneReport::default();
    for _ in 0..rounds {
        if region.is_empty() {
            break;
        }
        let step1_removed = prune_step1_region(host, &mut region);
        let step2_removed = prune_step2_region(host, &mut region);
        // Promoted children entered `region` unsorted; restore the deterministic
        // sorted visit order and drop stale ids before the pair stage.
        region.retain(|&r| host.summary().is_root(r));
        region.sort_unstable();
        region.dedup();
        let pass = PruneReport {
            step1_removed,
            step2_removed,
            step3_reencoded: match pair_index {
                PairIndex::Flat => prune_step3_region_flat(host, graph, &region, max_pair_product),
                PairIndex::Hash => prune_step3_region(host, graph, &region, max_pair_product),
            },
        };
        let changed = pass.total_changes() > 0;
        report.absorb(pass);
        if !changed {
            break;
        }
    }
    report
}

/// Default cap on `|A| · |B|` for substep 3 (see [`prune_step3`]).
pub const DEFAULT_MAX_PAIR_PRODUCT: usize = 4_000_000;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::verify_lossless;
    use crate::engine::MergeCtx;
    use crate::engine::MergeEngine;
    use slugger_graph::Graph;

    #[test]
    fn step1_removes_edge_free_internal_nodes() {
        let mut s = HierarchicalSummary::identity(4);
        let m01 = s.merge_roots(0, 1);
        let m = s.merge_roots(m01, 2);
        // Only the top supernode carries an edge; m01 is edge-free and prunable.
        s.set_edge(m, 3, EdgeSign::Positive);
        let cost_before = s.encoding_cost();
        let removed = prune_step1(&mut s);
        assert_eq!(removed, 1);
        assert!(!s.is_alive(m01));
        assert!(s.encoding_cost() < cost_before);
        s.validate().unwrap();
    }

    #[test]
    fn step1_keeps_nodes_with_edges() {
        let mut s = HierarchicalSummary::identity(3);
        let m = s.merge_roots(0, 1);
        s.set_edge(m, 2, EdgeSign::Positive);
        assert_eq!(prune_step1(&mut s), 0);
        assert!(s.is_alive(m));
    }

    #[test]
    fn step2_pushes_single_edge_down() {
        // Root m = {0, 1} whose only edge is (m, 2); removing m re-attaches the edge to
        // its children 0 and 1 (cost 2+1=3 -> 2).
        let mut s = HierarchicalSummary::identity(3);
        let m = s.merge_roots(0, 1);
        s.set_edge(m, 2, EdgeSign::Positive);
        let graph = Graph::from_edges(3, vec![(0, 2), (1, 2)]);
        verify_lossless(&s, &graph).unwrap();
        let before = s.encoding_cost();
        let removed = prune_step2(&mut s);
        assert_eq!(removed, 1);
        assert!(!s.is_alive(m));
        assert!(s.encoding_cost() < before);
        verify_lossless(&s, &graph).unwrap();
    }

    #[test]
    fn step2_cancels_opposite_child_edges() {
        // m = {0, 1}; edges: p (m, 2) and n (0, 2): node 0 is NOT adjacent to 2 but 1 is.
        let mut s = HierarchicalSummary::identity(3);
        let m = s.merge_roots(0, 1);
        s.set_edge(m, 2, EdgeSign::Positive);
        s.set_edge(0, 2, EdgeSign::Negative);
        let graph = Graph::from_edges(3, vec![(1, 2)]);
        verify_lossless(&s, &graph).unwrap();
        // m has one incident edge? No: (m,2) only — (0,2) is incident to the leaf 0.
        let removed = prune_step2(&mut s);
        assert_eq!(removed, 1);
        // After pushing down: the n-edge (0,2) cancels, leaving just p (1,2).
        assert_eq!(s.num_p_edges(), 1);
        assert_eq!(s.num_n_edges(), 0);
        verify_lossless(&s, &graph).unwrap();
    }

    #[test]
    fn step2_skips_roots_with_multiple_edges() {
        let mut s = HierarchicalSummary::identity(4);
        let m = s.merge_roots(0, 1);
        s.set_edge(m, 2, EdgeSign::Positive);
        s.set_edge(m, 3, EdgeSign::Positive);
        assert_eq!(prune_step2(&mut s), 0);
        assert!(s.is_alive(m));
    }

    #[test]
    fn step3_flattens_wasteful_encodings() {
        // Build a summary where the hierarchical encoding of a sparse connection is
        // wasteful: supernode {0,1} and {2,3} joined by a p-edge plus two n-edges,
        // even though only one subedge (0,2) exists.  Flat encoding costs 1.
        let graph = Graph::from_edges(4, vec![(0, 2)]);
        let mut s = HierarchicalSummary::identity(4);
        let a = s.merge_roots(0, 1);
        let b = s.merge_roots(2, 3);
        s.set_edge(a, b, EdgeSign::Positive);
        s.set_edge(0, 3, EdgeSign::Negative);
        s.set_edge(1, 2, EdgeSign::Negative);
        s.set_edge(1, 3, EdgeSign::Negative);
        verify_lossless(&s, &graph).unwrap();
        let before = s.num_p_edges() + s.num_n_edges();
        let changed = prune_step3(&mut s, &graph, DEFAULT_MAX_PAIR_PRODUCT);
        assert_eq!(changed, 1);
        let after = s.num_p_edges() + s.num_n_edges();
        assert!(after < before, "{after} !< {before}");
        assert_eq!(after, 1);
        verify_lossless(&s, &graph).unwrap();
    }

    #[test]
    fn step3_prefers_dense_superedge_encoding() {
        // Two supernodes {0,1}, {2,3} that are fully connected except (1,3): the dense
        // encoding (superedge + one n-edge) costs 2 and beats three leaf p-edges.
        let graph = Graph::from_edges(4, vec![(0, 2), (0, 3), (1, 2)]);
        // Current encoding: one leaf-level p-edge per subedge (the sparse optimum,
        // cost 3); the dense encoding (superedge + n-edge (1,3)) costs 2 and wins.
        let mut s = HierarchicalSummary::identity(4);
        let a = s.merge_roots(0, 1);
        let b = s.merge_roots(2, 3);
        s.set_edge(0, 2, EdgeSign::Positive);
        s.set_edge(0, 3, EdgeSign::Positive);
        s.set_edge(1, 2, EdgeSign::Positive);
        verify_lossless(&s, &graph).unwrap();
        let changed = prune_step3(&mut s, &graph, DEFAULT_MAX_PAIR_PRODUCT);
        // Sparse cost (3) == current cost (3): nothing to do; dense cost is 2 via
        // superedge + n-edge, which IS cheaper, so the pair must be re-encoded.
        assert_eq!(changed, 1);
        assert_eq!(s.num_p_edges() + s.num_n_edges(), 2);
        assert_eq!(s.edge_sign(a, b), Some(EdgeSign::Positive));
        verify_lossless(&s, &graph).unwrap();
    }

    #[test]
    fn full_pruning_preserves_losslessness_after_real_merges() {
        // Run real merges through the engine, then prune, and confirm the decoded
        // graph never changes.
        let graph = Graph::from_edges(
            8,
            vec![
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (1, 2),
                (1, 3),
                (1, 4),
                (1, 5),
                (6, 0),
                (7, 1),
                (6, 7),
            ],
        );
        let mut engine = MergeEngine::new(&graph);
        let mut ctx = MergeCtx::new();
        let m1 = engine.apply_merge(2, 3, &mut ctx);
        let m2 = engine.apply_merge(4, 5, &mut ctx);
        let _m3 = engine.apply_merge(m1, m2, &mut ctx);
        let mut summary = engine.into_summary();
        verify_lossless(&summary, &graph).unwrap();
        let report = prune_all(&mut summary, &graph, 3);
        assert!(report.total_changes() > 0 || summary.encoding_cost() <= graph.num_edges());
        verify_lossless(&summary, &graph).unwrap();
        summary.validate().unwrap();
    }

    #[test]
    fn engine_hosted_prune_matches_bare_summary_prune() {
        // The same substeps on the same state must produce the identical summary
        // whether the host is a bare summary or the live engine — and the engine's
        // bookkeeping must stay exact afterwards.
        let graph = Graph::from_edges(
            8,
            vec![
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (1, 2),
                (1, 3),
                (1, 4),
                (1, 5),
                (6, 0),
                (7, 1),
                (6, 7),
            ],
        );
        let mut engine = MergeEngine::new(&graph);
        let mut ctx = MergeCtx::new();
        let m1 = engine.apply_merge(2, 3, &mut ctx);
        let m2 = engine.apply_merge(4, 5, &mut ctx);
        let _m3 = engine.apply_merge(m1, m2, &mut ctx);
        let mut snapshot = engine.summary().clone();
        let report_summary = prune_all(&mut snapshot, &graph, 3);
        let report_engine = prune_all(&mut engine, &graph, 3);
        assert_eq!(report_summary, report_engine);
        engine.validate().unwrap();
        verify_lossless(engine.summary(), &graph).unwrap();
        // Byte-identical arenas and edges.
        assert_eq!(engine.summary().arena_len(), snapshot.arena_len());
        for id in 0..snapshot.arena_len() as SupernodeId {
            assert_eq!(engine.summary().parent(id), snapshot.parent(id));
            assert_eq!(engine.summary().children(id), snapshot.children(id));
            assert_eq!(engine.summary().members(id), snapshot.members(id));
            assert_eq!(engine.summary().is_alive(id), snapshot.is_alive(id));
        }
        let mut a: Vec<_> = engine.summary().pn_edges().collect();
        let mut b: Vec<_> = snapshot.pn_edges().collect();
        a.sort_unstable_by_key(|&(k, _)| k);
        b.sort_unstable_by_key(|&(k, _)| k);
        assert_eq!(a.len(), b.len());
        for ((ka, sa), (kb, sb)) in a.into_iter().zip(b) {
            assert_eq!(ka, kb);
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn region_prune_only_touches_the_region() {
        // Two independent wasteful encodings; pruning the region around one must
        // leave the other untouched.
        let graph = Graph::from_edges(8, vec![(0, 2), (4, 6)]);
        let mut s = HierarchicalSummary::identity(8);
        let a = s.merge_roots(0, 1);
        let b = s.merge_roots(2, 3);
        s.set_edge(a, b, EdgeSign::Positive);
        s.set_edge(0, 3, EdgeSign::Negative);
        s.set_edge(1, 2, EdgeSign::Negative);
        s.set_edge(1, 3, EdgeSign::Negative);
        let c = s.merge_roots(4, 5);
        let d = s.merge_roots(6, 7);
        s.set_edge(c, d, EdgeSign::Positive);
        s.set_edge(4, 7, EdgeSign::Negative);
        s.set_edge(5, 6, EdgeSign::Negative);
        s.set_edge(5, 7, EdgeSign::Negative);
        verify_lossless(&s, &graph).unwrap();
        let report = prune_region(&mut s, &graph, &[a], 3, DEFAULT_MAX_PAIR_PRODUCT);
        assert!(report.total_changes() > 0);
        verify_lossless(&s, &graph).unwrap();
        // The (c, d) pair kept its wasteful encoding: the region never reached it.
        assert_eq!(s.edge_sign(c, d), Some(EdgeSign::Positive));
        // A full prune afterwards cleans it up.
        let report = prune_region(&mut s, &graph, &[c, d], 3, DEFAULT_MAX_PAIR_PRODUCT);
        assert!(report.total_changes() > 0);
        assert_eq!(s.edge_sign(c, d), None);
        verify_lossless(&s, &graph).unwrap();
        s.validate().unwrap();
    }

    /// Byte-level comparison of two summaries (arena structure + p/n-edges).
    fn assert_summaries_identical(a: &HierarchicalSummary, b: &HierarchicalSummary) {
        assert_eq!(a.arena_len(), b.arena_len());
        for id in 0..a.arena_len() as SupernodeId {
            assert_eq!(a.parent(id), b.parent(id), "parent of {id}");
            assert_eq!(a.children(id), b.children(id), "children of {id}");
            assert_eq!(a.members(id), b.members(id), "members of {id}");
            assert_eq!(a.is_alive(id), b.is_alive(id), "alive of {id}");
        }
        let mut ea: Vec<_> = a.pn_edges().collect();
        let mut eb: Vec<_> = b.pn_edges().collect();
        ea.sort_unstable_by_key(|&(k, _)| k);
        eb.sort_unstable_by_key(|&(k, _)| k);
        assert_eq!(ea, eb);
    }

    #[test]
    fn flat_pair_index_is_byte_identical_to_the_hash_path() {
        use slugger_graph::gen::{caveman, CavemanConfig};
        let graph = caveman(&CavemanConfig {
            num_nodes: 120,
            num_cliques: 15,
            min_clique: 5,
            max_clique: 9,
            rewire_probability: 0.05,
            seed: 42,
        });
        let mut engine = MergeEngine::new(&graph);
        let mut ctx = MergeCtx::new();
        // Deterministic merges to pile up hierarchical (often wasteful) encodings.
        for i in 0..40u32 {
            let (a, b) = (3 * i % 120, (3 * i + 1) % 120);
            if engine.summary().is_root(a) && engine.summary().is_root(b) {
                engine.apply_merge(a, b, &mut ctx);
            }
        }
        let base = engine.summary().clone();
        let roots: Vec<SupernodeId> = base.roots().collect();
        // Full-region prune: both strategies, byte-identical outcomes.
        let mut flat = base.clone();
        let mut hash = base.clone();
        let report_flat = prune_region_with(
            &mut flat,
            &graph,
            &roots,
            3,
            DEFAULT_MAX_PAIR_PRODUCT,
            PairIndex::Flat,
        );
        let report_hash = prune_region_with(
            &mut hash,
            &graph,
            &roots,
            3,
            DEFAULT_MAX_PAIR_PRODUCT,
            PairIndex::Hash,
        );
        assert_eq!(report_flat, report_hash);
        assert!(
            report_flat.total_changes() > 0,
            "fixture must exercise pruning"
        );
        assert_summaries_identical(&flat, &hash);
        verify_lossless(&flat, &graph).unwrap();
        // A strict sub-region exercises the in-region vs frontier split of the
        // smaller-root-first dedup and the subedge counting rules.
        let sub: Vec<SupernodeId> = roots.iter().copied().step_by(3).collect();
        let mut flat = base.clone();
        let mut hash = base;
        let report_flat = prune_region_with(
            &mut flat,
            &graph,
            &sub,
            3,
            DEFAULT_MAX_PAIR_PRODUCT,
            PairIndex::Flat,
        );
        let report_hash = prune_region_with(
            &mut hash,
            &graph,
            &sub,
            3,
            DEFAULT_MAX_PAIR_PRODUCT,
            PairIndex::Hash,
        );
        assert_eq!(report_flat, report_hash);
        assert_summaries_identical(&flat, &hash);
        verify_lossless(&flat, &graph).unwrap();
    }

    #[test]
    fn region_prune_over_all_roots_equals_global_prune() {
        let graph = Graph::from_edges(
            8,
            vec![
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (1, 2),
                (1, 3),
                (1, 4),
                (1, 5),
                (6, 0),
                (7, 1),
                (6, 7),
            ],
        );
        let mut engine = MergeEngine::new(&graph);
        let mut ctx = MergeCtx::new();
        let m1 = engine.apply_merge(2, 3, &mut ctx);
        let m2 = engine.apply_merge(4, 5, &mut ctx);
        let _m3 = engine.apply_merge(m1, m2, &mut ctx);
        let mut global = engine.summary().clone();
        let mut regional = engine.summary().clone();
        let report_global = prune_all(&mut global, &graph, 3);
        let all_roots: Vec<SupernodeId> = regional.roots().collect();
        let report_regional = prune_region(
            &mut regional,
            &graph,
            &all_roots,
            3,
            DEFAULT_MAX_PAIR_PRODUCT,
        );
        assert_eq!(report_global, report_regional);
        assert_eq!(global.encoding_cost(), regional.encoding_cost());
        for id in 0..global.arena_len() as SupernodeId {
            assert_eq!(global.parent(id), regional.parent(id));
            assert_eq!(global.children(id), regional.children(id));
            assert_eq!(global.is_alive(id), regional.is_alive(id));
        }
        verify_lossless(&regional, &graph).unwrap();
    }
}
