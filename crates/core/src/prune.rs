//! The pruning step (Sect. III-B4, Algorithm 3): removes supernodes that do not
//! contribute to a concise encoding, without changing the represented graph.
//!
//! Three substeps, each exposed individually so the Table IV experiment can measure
//! the state after each one:
//!
//! 1. [`prune_step1`] — drop internal/root supernodes with no incident p/n-edge,
//!    re-parenting their children (saves one h-edge per removal, or more for roots).
//! 2. [`prune_step2`] — drop a non-leaf root with exactly one incident (non-loop)
//!    p/n-edge by pushing that edge down to its children (saves at least one edge).
//! 3. [`prune_step3`] — for every adjacent root pair, compare the current encoding of
//!    the edges between the two trees against the *flat* (Navlakha-style) optimal
//!    encoding of the same subedges and keep the cheaper of the two.  This is the
//!    bridge to the non-hierarchical model, which is a special case of ours
//!    (Sect. II-B), and it also clears internal-node edges so further rounds of
//!    substeps 1–2 can prune more.

use crate::model::{EdgeSign, HierarchicalSummary, SupernodeId};
use slugger_graph::hash::FxHashMap;
use slugger_graph::{Graph, NodeId};

/// Summary of what a pruning pass changed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruneReport {
    /// Supernodes removed by substep 1.
    pub step1_removed: usize,
    /// Supernodes removed by substep 2.
    pub step2_removed: usize,
    /// Root pairs re-encoded flat by substep 3.
    pub step3_reencoded: usize,
}

impl PruneReport {
    /// Total number of structural changes.
    pub fn total_changes(&self) -> usize {
        self.step1_removed + self.step2_removed + self.step3_reencoded
    }

    /// Accumulates another report.
    pub fn absorb(&mut self, other: PruneReport) {
        self.step1_removed += other.step1_removed;
        self.step2_removed += other.step2_removed;
        self.step3_reencoded += other.step3_reencoded;
    }
}

/// Substep 1: removes every alive non-leaf supernode with no incident p/n-edge.
/// Returns the number of supernodes removed.
pub fn prune_step1(summary: &mut HierarchicalSummary) -> usize {
    let mut removed = 0usize;
    // Pruning a node never makes another node newly edge-free (it has no edges to
    // move), so a single pass over the arena suffices.
    for id in 0..summary.arena_len() as SupernodeId {
        if !summary.is_alive(id) || summary.supernode(id).is_leaf() {
            continue;
        }
        if summary.incident_count(id) == 0 {
            summary.prune_supernode(id);
            removed += 1;
        }
    }
    removed
}

/// Substep 2: removes every alive non-leaf **root** whose only incident p/n-edge is a
/// single non-loop edge `(A, B)`, pushing that edge down to `A`'s children (flipping
/// against existing opposite-sign edges).  Returns the number of roots removed.
pub fn prune_step2(summary: &mut HierarchicalSummary) -> usize {
    let mut removed = 0usize;
    let mut queue: Vec<SupernodeId> = summary.roots().collect();
    while let Some(a) = queue.pop() {
        if !summary.is_alive(a) || !summary.is_root(a) || summary.supernode(a).is_leaf() {
            continue;
        }
        if summary.incident_count(a) != 1 {
            continue;
        }
        let b = summary.incident(a).next().expect("one incident edge");
        if b == a {
            continue; // the single edge is a self-loop: not eligible
        }
        let sign = summary.edge_sign(a, b).expect("incident edge");
        let children: Vec<SupernodeId> = summary.children(a).to_vec();
        // Guard (see module docs of `encoder`): the push-down is net-preserving only
        // when no child already carries a same-sign edge to `b`.
        let conflict = children
            .iter()
            .any(|&c| summary.edge_sign(c, b) == Some(sign));
        if conflict {
            continue;
        }
        // Remove A (drops (A, B) and the |children| h-edges, making children roots).
        summary.prune_supernode(a);
        removed += 1;
        for &c in &children {
            match summary.edge_sign(c, b) {
                // Opposite sign: +1 and −1 cancelled before, so simply drop it.
                Some(existing) if existing != sign => {
                    summary.remove_edge(c, b);
                }
                Some(_) => unreachable!("conflict guard"),
                None => {
                    summary.set_edge(c, b, sign);
                }
            }
            // Newly promoted roots may themselves become eligible.
            queue.push(c);
        }
    }
    removed
}

/// Substep 3: for every root pair (including a root with itself) connected by at least
/// one p/n-edge between their trees, re-encode the subedges between the two member
/// sets with the flat-model optimum when that is strictly cheaper.  Returns the number
/// of pairs re-encoded.
///
/// `max_pair_product` guards against enumerating astronomically many subnode pairs for
/// two huge roots; pairs above the limit are skipped (they are never profitable to
/// flatten in practice).
pub fn prune_step3(
    summary: &mut HierarchicalSummary,
    graph: &Graph,
    max_pair_product: usize,
) -> usize {
    // Root of every subnode (for classifying subedges by root pair).
    let mut root_of_subnode: Vec<SupernodeId> = vec![0; summary.num_subnodes()];
    let roots: Vec<SupernodeId> = summary.roots().collect();
    for &r in &roots {
        for &u in summary.members(r) {
            root_of_subnode[u as usize] = r;
        }
    }
    // Subedge counts per root pair.
    let mut subedge_count: FxHashMap<(SupernodeId, SupernodeId), usize> = FxHashMap::default();
    for (u, v) in graph.edges() {
        let key = pair_key(root_of_subnode[u as usize], root_of_subnode[v as usize]);
        *subedge_count.entry(key).or_insert(0) += 1;
    }
    // Current p/n-edges per root pair.
    let mut pn_edges: FxHashMap<(SupernodeId, SupernodeId), Vec<(SupernodeId, SupernodeId)>> =
        FxHashMap::default();
    for ((x, y), _) in summary.pn_edges() {
        let key = pair_key(summary.root_of(x), summary.root_of(y));
        pn_edges.entry(key).or_default().push((x, y));
    }

    let mut reencoded = 0usize;
    for ((root_a, root_b), edges) in pn_edges {
        let size_a = summary.members(root_a).len();
        let size_b = summary.members(root_b).len();
        let total_pairs = if root_a == root_b {
            size_a * (size_a.saturating_sub(1)) / 2
        } else {
            size_a * size_b
        };
        if total_pairs == 0 || total_pairs > max_pair_product {
            continue;
        }
        let existing = subedge_count
            .get(&pair_key(root_a, root_b))
            .copied()
            .unwrap_or(0);
        let current_cost = edges.len();
        let sparse_cost = existing; // one p-edge per subedge
        let dense_cost = total_pairs - existing + 1; // superedge + one n-edge per non-edge
        let flat_cost = sparse_cost.min(dense_cost);
        if flat_cost >= current_cost {
            continue;
        }
        // Remove the current encoding of this pair ...
        for (x, y) in edges {
            summary.remove_edge(x, y);
        }
        // ... and re-encode flat.
        if sparse_cost <= dense_cost {
            let mut pairs = Vec::new();
            collect_subedges_between(summary, graph, &root_of_subnode, root_a, root_b, &mut pairs);
            for (u, v) in pairs {
                summary.set_edge(u, v, EdgeSign::Positive);
            }
        } else {
            summary.set_edge(root_a, root_b, EdgeSign::Positive);
            let mut missing = Vec::new();
            collect_missing_pairs_between(summary, graph, root_a, root_b, &mut missing);
            for (u, v) in missing {
                summary.set_edge(u, v, EdgeSign::Negative);
            }
        }
        reencoded += 1;
    }
    reencoded
}

/// Collects the subedges of `graph` with one endpoint in each root's member set
/// (or both endpoints in the same set when `root_a == root_b`).
fn collect_subedges_between(
    summary: &HierarchicalSummary,
    graph: &Graph,
    root_of_subnode: &[SupernodeId],
    root_a: SupernodeId,
    root_b: SupernodeId,
    out: &mut Vec<(NodeId, NodeId)>,
) {
    let (iterate, other) = if summary.members(root_a).len() <= summary.members(root_b).len() {
        (root_a, root_b)
    } else {
        (root_b, root_a)
    };
    for &u in summary.members(iterate) {
        for &w in graph.neighbors(u) {
            if root_of_subnode[w as usize] != other {
                continue;
            }
            if root_a == root_b {
                if u < w {
                    out.push((u, w));
                }
            } else {
                out.push((u, w));
            }
        }
    }
}

/// Collects the *non*-adjacent subnode pairs between the two roots' member sets.
fn collect_missing_pairs_between(
    summary: &HierarchicalSummary,
    graph: &Graph,
    root_a: SupernodeId,
    root_b: SupernodeId,
    out: &mut Vec<(NodeId, NodeId)>,
) {
    if root_a == root_b {
        let members = summary.members(root_a);
        for (i, &u) in members.iter().enumerate() {
            for &v in &members[i + 1..] {
                if !graph.has_edge(u, v) {
                    out.push((u, v));
                }
            }
        }
    } else {
        for &u in summary.members(root_a) {
            for &v in summary.members(root_b) {
                if !graph.has_edge(u, v) {
                    out.push((u, v));
                }
            }
        }
    }
}

#[inline]
fn pair_key(a: SupernodeId, b: SupernodeId) -> (SupernodeId, SupernodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Runs the full pruning step: `rounds` passes of substeps 1 → 2 → 3 (the paper notes
/// the substeps "can be repeated a few times"), stopping early once a pass changes
/// nothing.
pub fn prune_all(summary: &mut HierarchicalSummary, graph: &Graph, rounds: usize) -> PruneReport {
    let mut report = PruneReport::default();
    for _ in 0..rounds {
        let pass = PruneReport {
            step1_removed: prune_step1(summary),
            step2_removed: prune_step2(summary),
            step3_reencoded: prune_step3(summary, graph, DEFAULT_MAX_PAIR_PRODUCT),
        };
        let changed = pass.total_changes() > 0;
        report.absorb(pass);
        if !changed {
            break;
        }
    }
    report
}

/// Default cap on `|A| · |B|` for substep 3 (see [`prune_step3`]).
pub const DEFAULT_MAX_PAIR_PRODUCT: usize = 4_000_000;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::verify_lossless;
    use crate::engine::MergeCtx;
    use crate::engine::MergeEngine;

    #[test]
    fn step1_removes_edge_free_internal_nodes() {
        let mut s = HierarchicalSummary::identity(4);
        let m01 = s.merge_roots(0, 1);
        let m = s.merge_roots(m01, 2);
        // Only the top supernode carries an edge; m01 is edge-free and prunable.
        s.set_edge(m, 3, EdgeSign::Positive);
        let cost_before = s.encoding_cost();
        let removed = prune_step1(&mut s);
        assert_eq!(removed, 1);
        assert!(!s.is_alive(m01));
        assert!(s.encoding_cost() < cost_before);
        s.validate().unwrap();
    }

    #[test]
    fn step1_keeps_nodes_with_edges() {
        let mut s = HierarchicalSummary::identity(3);
        let m = s.merge_roots(0, 1);
        s.set_edge(m, 2, EdgeSign::Positive);
        assert_eq!(prune_step1(&mut s), 0);
        assert!(s.is_alive(m));
    }

    #[test]
    fn step2_pushes_single_edge_down() {
        // Root m = {0, 1} whose only edge is (m, 2); removing m re-attaches the edge to
        // its children 0 and 1 (cost 2+1=3 -> 2).
        let mut s = HierarchicalSummary::identity(3);
        let m = s.merge_roots(0, 1);
        s.set_edge(m, 2, EdgeSign::Positive);
        let graph = Graph::from_edges(3, vec![(0, 2), (1, 2)]);
        verify_lossless(&s, &graph).unwrap();
        let before = s.encoding_cost();
        let removed = prune_step2(&mut s);
        assert_eq!(removed, 1);
        assert!(!s.is_alive(m));
        assert!(s.encoding_cost() < before);
        verify_lossless(&s, &graph).unwrap();
    }

    #[test]
    fn step2_cancels_opposite_child_edges() {
        // m = {0, 1}; edges: p (m, 2) and n (0, 2): node 0 is NOT adjacent to 2 but 1 is.
        let mut s = HierarchicalSummary::identity(3);
        let m = s.merge_roots(0, 1);
        s.set_edge(m, 2, EdgeSign::Positive);
        s.set_edge(0, 2, EdgeSign::Negative);
        let graph = Graph::from_edges(3, vec![(1, 2)]);
        verify_lossless(&s, &graph).unwrap();
        // m has one incident edge? No: (m,2) only — (0,2) is incident to the leaf 0.
        let removed = prune_step2(&mut s);
        assert_eq!(removed, 1);
        // After pushing down: the n-edge (0,2) cancels, leaving just p (1,2).
        assert_eq!(s.num_p_edges(), 1);
        assert_eq!(s.num_n_edges(), 0);
        verify_lossless(&s, &graph).unwrap();
    }

    #[test]
    fn step2_skips_roots_with_multiple_edges() {
        let mut s = HierarchicalSummary::identity(4);
        let m = s.merge_roots(0, 1);
        s.set_edge(m, 2, EdgeSign::Positive);
        s.set_edge(m, 3, EdgeSign::Positive);
        assert_eq!(prune_step2(&mut s), 0);
        assert!(s.is_alive(m));
    }

    #[test]
    fn step3_flattens_wasteful_encodings() {
        // Build a summary where the hierarchical encoding of a sparse connection is
        // wasteful: supernode {0,1} and {2,3} joined by a p-edge plus two n-edges,
        // even though only one subedge (0,2) exists.  Flat encoding costs 1.
        let graph = Graph::from_edges(4, vec![(0, 2)]);
        let mut s = HierarchicalSummary::identity(4);
        let a = s.merge_roots(0, 1);
        let b = s.merge_roots(2, 3);
        s.set_edge(a, b, EdgeSign::Positive);
        s.set_edge(0, 3, EdgeSign::Negative);
        s.set_edge(1, 2, EdgeSign::Negative);
        s.set_edge(1, 3, EdgeSign::Negative);
        verify_lossless(&s, &graph).unwrap();
        let before = s.num_p_edges() + s.num_n_edges();
        let changed = prune_step3(&mut s, &graph, DEFAULT_MAX_PAIR_PRODUCT);
        assert_eq!(changed, 1);
        let after = s.num_p_edges() + s.num_n_edges();
        assert!(after < before, "{after} !< {before}");
        assert_eq!(after, 1);
        verify_lossless(&s, &graph).unwrap();
    }

    #[test]
    fn step3_prefers_dense_superedge_encoding() {
        // Two supernodes {0,1}, {2,3} that are fully connected except (1,3): the dense
        // encoding (superedge + one n-edge) costs 2 and beats three leaf p-edges.
        let graph = Graph::from_edges(4, vec![(0, 2), (0, 3), (1, 2)]);
        // Current encoding: one leaf-level p-edge per subedge (the sparse optimum,
        // cost 3); the dense encoding (superedge + n-edge (1,3)) costs 2 and wins.
        let mut s = HierarchicalSummary::identity(4);
        let a = s.merge_roots(0, 1);
        let b = s.merge_roots(2, 3);
        s.set_edge(0, 2, EdgeSign::Positive);
        s.set_edge(0, 3, EdgeSign::Positive);
        s.set_edge(1, 2, EdgeSign::Positive);
        verify_lossless(&s, &graph).unwrap();
        let changed = prune_step3(&mut s, &graph, DEFAULT_MAX_PAIR_PRODUCT);
        // Sparse cost (3) == current cost (3): nothing to do; dense cost is 2 via
        // superedge + n-edge, which IS cheaper, so the pair must be re-encoded.
        assert_eq!(changed, 1);
        assert_eq!(s.num_p_edges() + s.num_n_edges(), 2);
        assert_eq!(s.edge_sign(a, b), Some(EdgeSign::Positive));
        verify_lossless(&s, &graph).unwrap();
    }

    #[test]
    fn full_pruning_preserves_losslessness_after_real_merges() {
        // Run real merges through the engine, then prune, and confirm the decoded
        // graph never changes.
        let graph = Graph::from_edges(
            8,
            vec![
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (1, 2),
                (1, 3),
                (1, 4),
                (1, 5),
                (6, 0),
                (7, 1),
                (6, 7),
            ],
        );
        let mut engine = MergeEngine::new(&graph);
        let mut ctx = MergeCtx::new();
        let m1 = engine.apply_merge(2, 3, &mut ctx);
        let m2 = engine.apply_merge(4, 5, &mut ctx);
        let _m3 = engine.apply_merge(m1, m2, &mut ctx);
        let mut summary = engine.into_summary();
        verify_lossless(&summary, &graph).unwrap();
        let report = prune_all(&mut summary, &graph, 3);
        assert!(report.total_changes() > 0 || summary.encoding_cost() <= graph.num_edges());
        verify_lossless(&summary, &graph).unwrap();
        summary.validate().unwrap();
    }
}
