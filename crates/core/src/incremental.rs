//! Batch-incremental (streaming) re-summarization: maintain a
//! [`HierarchicalSummary`] under a fully dynamic edge stream, re-running the
//! pipeline only over the **dirty region** of each delta batch.
//!
//! SLUGGER summarizes a static graph; [`IncrementalSummarizer`] keeps that summary
//! (and the [`MergeEngine`] bookkeeping around it) alive across
//! [`GraphDelta`] batches of edge insertions and deletions, so a small delta costs
//! work proportional to the touched region instead of `O(|V| + |E|)` per update —
//! the hierarchical counterpart of the MoSSo baseline's online maintenance
//! (`slugger_baselines::mosso`), but batch-oriented and built on the exact sharded
//! pipeline of [`crate::pipeline`].
//!
//! # The dirty-region contract
//!
//! A batch [`IncrementalSummarizer::resummarize`] proceeds in four steps:
//!
//! 1. **Apply** the delta to the maintained [`DynamicGraph`] (deletions first,
//!    then insertions, each idempotently).
//! 2. **Localize**: the *affected* roots are the current summary roots containing
//!    an endpoint of any applied operation.  The **dirty set** is the affected
//!    roots plus their summary-adjacent roots on the frozen pre-batch view whose
//!    supernode holds at most [`IncrementalConfig::adjacent_cap`] subnodes — the
//!    same touched-∪-adjacent footprint the parallel apply stage uses for conflict
//!    partitioning ([`crate::engine::apply::plan_footprint`]).  Affected roots are
//!    always dirty; the cap only bounds how much *context* is re-opened around
//!    them.
//! 3. **Re-expand**: with [`IncrementalConfig::partial_dissolution`] (the
//!    default), each affected root is dissolved **subtree-granularly**
//!    ([`MergeEngine::dissolve_partial`]): only the ancestor spine of its touched
//!    leaves is killed, the maximal intact sibling subtrees survive as split-out
//!    roots with the tree's edges re-attached exactly, and context roots stay
//!    whole — so dissolution cost tracks `|delta|`, not the region.  The touched
//!    leaves then get back exact leaf-level p-edges for every current-graph edge
//!    incident to them (their coverage is exactly zero after the split).  With
//!    the knob off, every dirty root is dissolved whole
//!    ([`MergeEngine::dissolve_root`]) and the entire region re-expands, as in
//!    earlier revisions.  Either way the summary is again a lossless encoding of
//!    the *post-delta* graph after this step, with everything outside the dirty
//!    region untouched — see ARCHITECTURE.md's subtree-detach lifecycle section
//!    for why exactly the spine's encodings (and nothing else) are invalidated.
//! 4. **Re-summarize**: [`IncrementalConfig::iterations`] passes of the standard
//!    candidates → shard → merge → apply pipeline run with the candidate-root list
//!    **restricted to the region's roots** (the dissolved leaves, then their merge
//!    products).  Planner state ([`PlannerPool`]) and apply workers
//!    ([`ApplyWorkers`]) persist across batches, so encoder memos and overlay
//!    pools warm up once per stream, not once per batch.
//!
//! Steps 3–4 only ever *preserve* the represented graph, so after **any** sequence
//! of deltas the maintained summary decodes to exactly the current graph — the
//! lossless invariant the streaming tests pin after every batch.
//!
//! # Determinism
//!
//! A stream run is a pure function of `(initial state, delta sequence, seed)`:
//! dirty sets are computed in sorted order, dissolution removes edges in sorted
//! order, and the pipeline stages inherit the output-invariance of
//! [`crate::pipeline`] — neither [`IncrementalConfig::parallelism`] nor
//! [`IncrementalConfig::shards`] ever changes the summary (pinned by
//! `crates/core/tests/incremental_invariance.rs`).  Merge-planning RNG streams are
//! indexed by a monotone *epoch* counter (total pipeline iterations so far), so no
//! decision stream is ever reused across batches; shingle seeds are deliberately
//! **batch-stable** ([`pass_shingle_seed`]) — pass `t` of every batch hashes with
//! the same seed, which is what lets the persistent candidate index
//! ([`IncrementalConfig::candidate_index`]) reuse clean roots' signatures across
//! batches instead of re-shingling the unchanged world.
//!
//! # Pruning and compaction
//!
//! The maintained summary is pruned **incrementally**: after each batch's pipeline
//! passes, the three pruning substeps of [`crate::prune`] re-run over the dirty
//! region and its summary-adjacent frontier only ([`crate::prune::prune_region`]),
//! hosted *by the engine* — edge edits go through the engine's bookkeeping sink and
//! structural removals through [`MergeEngine::prune_supernode`], so the
//! `Saving(A, B, G)` metadata stays exact and no snapshot is ever cloned.  The
//! per-report pruning cost is therefore proportional to the dirty region, not to
//! the summary ([`IncrementalConfig::prune_rounds`]; 0 restores the old
//! maintain-unpruned behavior, with [`IncrementalSummarizer::pruned_summary`]
//! still available for snapshot-pruned costs).
//!
//! Dissolution and pruning leave dead arena slots behind; once they exceed
//! [`IncrementalConfig::compact_dead_ratio`] of the arena, the summary is
//! compacted ([`HierarchicalSummary::compact`]) and the engine rebuilt around the
//! renumbered ids, so steady-state memory is proportional to the **live** summary,
//! not to the stream length.  The remap preserves id order, hence compaction never
//! changes subsequent batch outputs (in id-free canonical form) — pinned by
//! `tests/incremental_prune_compact.rs`.
//!
//! ```
//! use slugger_core::incremental::{IncrementalConfig, IncrementalSummarizer};
//! use slugger_graph::stream::GraphDelta;
//! use slugger_graph::Graph;
//!
//! let graph = Graph::from_edges(6, vec![(0, 1), (1, 2), (3, 4)]);
//! let mut inc = IncrementalSummarizer::from_graph(&graph, IncrementalConfig::default());
//! let delta = GraphDelta {
//!     deletions: vec![(3, 4)],
//!     insertions: vec![(2, 3), (4, 5)],
//! };
//! inc.resummarize(&delta);
//! inc.verify_lossless().unwrap();
//! ```

use crate::candidates::{
    candidate_sets_indexed, candidate_sets_with, CandidateConfig, CandidateIndex, CandidateScratch,
};
use crate::engine::apply::{apply_plans_with, ApplyWorkers};
use crate::engine::{MergeCtx, MergeEngine};
use crate::merge::{merging_threshold, MergeOptions};
use crate::model::{HierarchicalSummary, SupernodeId};
use crate::pipeline::{plan_shards_pooled, set_rng, Parallelism, PlannerPool, DEFAULT_SHARDS};
use crate::prune::{prune_all, prune_region, PruneReport, DEFAULT_MAX_PAIR_PRODUCT};
use crate::slugger::{SluggerPlanner, SluggerShardWorker};
use serde::{Deserialize, Serialize};
use slugger_graph::stream::{DynamicGraph, GraphDelta};
use slugger_graph::{Graph, NodeId};

/// Configuration of the incremental re-summarizer.  The pipeline knobs mirror
/// [`crate::SluggerConfig`]; `iterations` counts merge passes **per batch** and is
/// deliberately small (the dirty region is small), and `adjacent_cap` bounds the
/// dirty-region expansion (step 2 of the module docs).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct IncrementalConfig {
    /// Candidate-generation + merging passes per delta batch.
    pub iterations: usize,
    /// Maximum candidate-set size (paper: 500).
    pub max_candidate_size: usize,
    /// Maximum shingle-based splits before random splitting (paper: 10).
    pub max_shingle_splits: usize,
    /// Optional upper bound on hierarchy-tree height, as in [`crate::SluggerConfig`].
    pub height_bound: Option<usize>,
    /// Whether the local re-encoding memo is enabled.
    pub memoization: bool,
    /// A summary-adjacent root joins the dirty set only while its supernode holds
    /// at most this many subnodes (affected roots always join).  `0` disables the
    /// adjacency expansion entirely; large values re-open more context around each
    /// delta at proportionally higher per-batch cost.
    pub adjacent_cap: usize,
    /// When `true` (the default), affected roots are dissolved
    /// **subtree-granularly** ([`MergeEngine::dissolve_partial`]): only the
    /// ancestor spines of the touched leaves are killed, intact sibling subtrees
    /// survive as split-out roots, and context (summary-adjacent) roots stay
    /// intact while still joining the region as merge candidates — per-batch
    /// dissolution cost tracks `|delta|`, not the region.  `false` restores the
    /// whole-tree dissolution of every dirty root.  Both paths keep the summary
    /// lossless after every batch (pinned by `tests/partial_dissolution.rs`).
    pub partial_dissolution: bool,
    /// Pruning rounds run over the dirty region (and its summary-adjacent
    /// frontier) after each batch's pipeline passes, hosted by the engine so the
    /// maintained summary stays pruned with exact metadata.  `0` keeps the
    /// maintained summary unpruned (the pre-incremental-pruning behavior).
    pub prune_rounds: usize,
    /// Arena compaction triggers at the end of a batch once dead slots exceed
    /// this fraction of the arena (`0.5` = compact when half the slots are dead,
    /// bounding resident memory at `live / (1 - ratio)`).  `0.0` disables
    /// compaction; the arena then grows with the stream.
    pub compact_dead_ratio: f64,
    /// Keep a persistent batch-to-batch [`CandidateIndex`] (the default): each
    /// pipeline pass re-hashes only the roots retired since their signatures
    /// were cached and splices the cached majority back in pre-sorted, so the
    /// candidate stage's cost tracks the **dirty** root count instead of the
    /// whole region.  Output is byte-identical with the index on or off (pinned
    /// by `tests/candidate_index.rs`); `false` keeps the index-free path
    /// reachable as the pinned reference in benches.
    pub candidate_index: bool,
    /// Periodic self-check: every N batches, run [`MergeEngine::validate`]
    /// (bookkeeping vs a from-scratch rebuild) plus
    /// [`HierarchicalSummary::validate`] and **panic** on any inconsistency —
    /// a corrupted maintained summary must never silently keep streaming.  `0`
    /// (the default) disables the check; it costs `O(arena + edges)` per run,
    /// so it is meant for soak tests and canary deployments, not every batch of
    /// a hot stream.  The `streaming` bench wires it to `--validate-every`.
    pub validate_every: usize,
    /// Random seed of the per-batch pipeline runs.
    pub seed: u64,
    /// Worker shards per pipeline pass (pure scheduling, never changes output).
    pub shards: usize,
    /// Worker threads (pure throughput, never changes output).
    pub parallelism: Parallelism,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        IncrementalConfig {
            iterations: 3,
            max_candidate_size: 500,
            max_shingle_splits: 10,
            height_bound: None,
            memoization: true,
            adjacent_cap: 32,
            partial_dissolution: true,
            prune_rounds: 2,
            compact_dead_ratio: 0.5,
            candidate_index: true,
            validate_every: 0,
            seed: 0,
            shards: DEFAULT_SHARDS,
            parallelism: Parallelism::Sequential,
        }
    }
}

/// What one [`IncrementalSummarizer::resummarize`] batch did.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchReport {
    /// 1-based batch number within this summarizer's stream.
    pub batch: usize,
    /// Edge deletions actually applied (absent edges are no-ops).
    pub deleted: usize,
    /// Edge insertions actually applied (present edges are no-ops).
    pub inserted: usize,
    /// Roots dissolved (affected plus capped summary-adjacent expansion).
    pub dirty_roots: usize,
    /// Internal supernodes killed by the dissolution.
    pub dissolved_supernodes: usize,
    /// Subnodes re-expanded into singleton roots.  With
    /// [`IncrementalConfig::partial_dissolution`] this is only the touched
    /// leaves (plus whole-tree fallbacks); without it, the entire region.
    pub dissolved_subnodes: usize,
    /// Subnodes held by the dirty roots before dissolution — the denominator of
    /// the `dissolved_subnodes / region_subnodes` ratio the streaming bench
    /// reports (1.0 under whole-tree dissolution; the smaller, the more of the
    /// region partial dissolution kept intact).
    pub region_subnodes: usize,
    /// Exact leaf-level p-edges restored for the region.
    pub restored_edges: usize,
    /// Roots whose shingle signatures the candidate stage had to (re-)hash this
    /// batch, summed over the pipeline passes — with the candidate index on,
    /// these are the roots retired since their signatures were cached; with it
    /// off, every root of every pass.
    pub reshingled_roots: usize,
    /// Roots whose cached shingle signatures the candidate index served without
    /// re-hashing, summed over the pipeline passes (0 with the index off).
    pub cached_roots: usize,
    /// Candidate pairs evaluated by the per-batch pipeline passes.
    pub pairs_evaluated: usize,
    /// Merges performed by the per-batch pipeline passes.
    pub merges: usize,
    /// What the post-batch region prune changed (all zeros when
    /// [`IncrementalConfig::prune_rounds`] is 0).
    pub prune: PruneReport,
    /// Wall-clock duration of the post-batch region prune alone.  Bounded by the
    /// dirty region's size, not by the summary — the `streaming` bench reports it
    /// per batch.
    pub prune_elapsed: std::time::Duration,
    /// Dead arena slots reclaimed by compaction at the end of this batch (0 when
    /// the dead-slot ratio stayed below the threshold).
    pub compacted_slots: usize,
    /// Arena length (allocated supernode slots, dead included) after the batch.
    pub arena_len: usize,
    /// Dead arena slots remaining after the batch.
    pub dead_slots: usize,
    /// Encoding cost of the maintained summary after the batch (pruned when
    /// [`IncrementalConfig::prune_rounds`] > 0).
    pub cost: usize,
    /// Wall-clock cost of publishing the post-batch epoch snapshot (clone +
    /// validate + slot swap) — zero when no [`crate::snapshot::SnapshotSlot`]
    /// is attached.  Included in `elapsed`: publication is part of the batch
    /// from the write loop's point of view, and the `query_serving` bench
    /// reports it so the read path's cost to the writer stays honest.
    pub publish_elapsed: std::time::Duration,
    /// Wall-clock duration of the whole batch.
    pub elapsed: std::time::Duration,
    /// Per-stage wall-clock breakdown of `elapsed`: the pipeline stages
    /// accumulated over the batch's passes, plus the streaming-only `localize`
    /// and `dissolve` stages (`stages.prune` mirrors `prune_elapsed`).
    pub stages: crate::slugger::StageProfile,
}

/// The shingle seed of per-batch pipeline pass `t` (1-based, batch-local).
///
/// Deliberately **batch-stable**: pass `t` of every batch hashes with the same
/// seed, which is what makes signatures cacheable across batches at all — a
/// clean root's pass-`t` signature this batch *is* its pass-`t` signature last
/// batch.  Bounded memory falls out too: the whole stream only ever touches
/// `iterations` distinct seeds (times the per-pass split rounds).  Re-using
/// shingle seeds across batches costs nothing statistically — shingles only
/// bucket structurally similar roots, and the merge-planning RNG
/// ([`crate::pipeline::set_rng`]) stays indexed by the monotone epoch, so no
/// *decision* stream is ever reused.  Batch-local `t` also keeps recovery
/// deterministic: a resumed stream re-derives the same seeds without any
/// persisted counter.
pub fn pass_shingle_seed(seed: u64, t: usize) -> u64 {
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(t as u64)
}

/// The batch-incremental re-summarization engine (see the module docs).
///
/// ```
/// use slugger_core::incremental::{IncrementalConfig, IncrementalSummarizer};
/// use slugger_graph::stream::GraphDelta;
/// use slugger_graph::Graph;
///
/// let graph = Graph::from_edges(6, vec![(0, 1), (1, 2), (3, 4)]);
/// let mut inc = IncrementalSummarizer::from_graph(&graph, IncrementalConfig::default());
/// let report = inc.resummarize(&GraphDelta {
///     deletions: vec![(3, 4)],
///     insertions: vec![(2, 3), (4, 5)],
/// });
/// // The maintained summary is pruned incrementally and decodes to the current
/// // graph after every batch; the report carries the per-batch accounting.
/// assert_eq!((report.deleted, report.inserted), (1, 2));
/// inc.verify_lossless().unwrap();
/// assert_eq!(inc.summary().encoding_cost(), report.cost);
/// ```
pub struct IncrementalSummarizer {
    config: IncrementalConfig,
    engine: MergeEngine,
    graph: DynamicGraph,
    /// Monotone pipeline-pass counter across all batches: the RNG stream index, so
    /// no `(seed, iteration, set)` stream is ever reused between batches.
    epoch: usize,
    batches: usize,
    /// Persistent pipeline state, warm across batches.
    planner_pool: PlannerPool<SluggerPlanner>,
    apply_workers: ApplyWorkers,
    ctx: MergeCtx,
    candidate_scratch: CandidateScratch,
    /// Persistent batch-to-batch shingle cache ([`IncrementalConfig::candidate_index`]).
    /// Never persisted: recovery rebuilds it cold (an empty cache just recomputes,
    /// so recovery identity is untouched).
    index: CandidateIndex,
    /// Per-subnode dirty flag, cleared after every batch (allocated once).
    dirty_mark: Vec<bool>,
    /// Reused buffer of the leaf-level p-edges each batch restores.
    restore_buf: Vec<(SupernodeId, SupernodeId)>,
    /// Publication point for epoch snapshots of the maintained summary
    /// ([`IncrementalSummarizer::attach_snapshots`]); `None` keeps the batch
    /// loop free of any read-path cost.
    snapshots: Option<crate::snapshot::SnapshotSlot>,
}

impl IncrementalSummarizer {
    /// Starts a stream from an existing summary known (by the caller) to be a
    /// lossless encoding of `graph` — typically [`crate::Slugger`] output on the
    /// initial snapshot, or a summary reloaded through
    /// [`crate::storage::read_summary`] between sessions.
    ///
    /// Only the node counts are checked here (verifying losslessness costs
    /// `O(|E|)`; call [`IncrementalSummarizer::verify_lossless`] when in doubt).
    pub fn from_summary(
        summary: HierarchicalSummary,
        graph: &Graph,
        config: IncrementalConfig,
    ) -> Result<Self, String> {
        if summary.num_subnodes() != graph.num_nodes() {
            return Err(format!(
                "summary covers {} subnodes but the graph has {} nodes",
                summary.num_subnodes(),
                graph.num_nodes()
            ));
        }
        let num_subnodes = summary.num_subnodes();
        let mut engine = MergeEngine::from_summary(summary);
        if config.candidate_index {
            engine.enable_index_log();
        }
        Ok(IncrementalSummarizer {
            ctx: if config.memoization {
                MergeCtx::new()
            } else {
                MergeCtx::disabled()
            },
            config,
            engine,
            graph: DynamicGraph::from_graph(graph),
            epoch: 0,
            batches: 0,
            planner_pool: PlannerPool::new(),
            apply_workers: ApplyWorkers::new(),
            candidate_scratch: CandidateScratch::default(),
            index: CandidateIndex::new(),
            dirty_mark: vec![false; num_subnodes],
            restore_buf: Vec::new(),
            snapshots: None,
        })
    }

    /// Resumes a stream from persisted state: like
    /// [`IncrementalSummarizer::from_summary`], but additionally restores the
    /// deterministic sequencing counters — the pipeline-pass `epoch` (the RNG
    /// stream index) and the processed-batch count — so the resumed stream draws
    /// the **same** RNG streams an uninterrupted run would have drawn.  This is
    /// the recovery entry point of [`crate::storage::durable`]: a checkpoint
    /// stores exactly `(summary, epoch, batches)`, and replaying the delta WAL
    /// through [`IncrementalSummarizer::resummarize`] afterwards reproduces the
    /// uninterrupted run's summary in id-free canonical form.
    pub fn resume(
        summary: HierarchicalSummary,
        graph: &Graph,
        config: IncrementalConfig,
        epoch: usize,
        batches: usize,
    ) -> Result<Self, String> {
        let mut inc = Self::from_summary(summary, graph, config)?;
        inc.epoch = epoch;
        inc.batches = batches;
        Ok(inc)
    }

    /// Starts a stream from the trivial (identity) summary of `graph`: every
    /// subedge a p-edge between singleton supernodes.  Structure then builds up as
    /// batches touch the graph; use [`IncrementalSummarizer::bootstrap`] to start
    /// from a full SLUGGER run instead.
    pub fn from_graph(graph: &Graph, config: IncrementalConfig) -> Self {
        let mut engine = MergeEngine::new(graph);
        if config.candidate_index {
            engine.enable_index_log();
        }
        IncrementalSummarizer {
            ctx: if config.memoization {
                MergeCtx::new()
            } else {
                MergeCtx::disabled()
            },
            config,
            engine,
            graph: DynamicGraph::from_graph(graph),
            epoch: 0,
            batches: 0,
            planner_pool: PlannerPool::new(),
            apply_workers: ApplyWorkers::new(),
            candidate_scratch: CandidateScratch::default(),
            index: CandidateIndex::new(),
            dirty_mark: vec![false; graph.num_nodes()],
            restore_buf: Vec::new(),
            snapshots: None,
        }
    }

    /// Runs a full SLUGGER pass over `graph` (with `slugger`'s configuration) and
    /// adopts the resulting summary as the stream's starting point.
    pub fn bootstrap(graph: &Graph, slugger: &crate::Slugger, config: IncrementalConfig) -> Self {
        let outcome = slugger.summarize(graph);
        Self::from_summary(outcome.summary, graph, config)
            .expect("a summarize outcome always matches its input graph")
    }

    /// The active configuration.
    pub fn config(&self) -> &IncrementalConfig {
        &self.config
    }

    /// The maintained summary — incrementally pruned when
    /// [`IncrementalConfig::prune_rounds`] > 0.  Decodes to exactly the current
    /// graph after every batch.
    pub fn summary(&self) -> &HierarchicalSummary {
        self.engine.summary()
    }

    /// The maintained current graph.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Number of delta batches processed so far.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// The monotone pipeline-pass counter (the RNG stream index).  Together with
    /// [`IncrementalSummarizer::batches`] this is the deterministic-resume state
    /// a durability checkpoint must persist — see
    /// [`IncrementalSummarizer::resume`].
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// A **globally** pruned snapshot of the maintained summary (a clone run
    /// through [`prune_all`]).  With incremental pruning enabled the maintained
    /// summary is already region-pruned, so this mostly confirms there is little
    /// left to prune; with [`IncrementalConfig::prune_rounds`] = 0 it is the only
    /// way to report pruned costs.  Returns the snapshot and what pruning changed.
    pub fn pruned_summary(&self, rounds: usize) -> (HierarchicalSummary, PruneReport) {
        let mut snapshot = self.engine.summary().clone();
        let graph = self.graph.to_graph();
        let report = prune_all(&mut snapshot, &graph, rounds);
        (snapshot, report)
    }

    /// Verifies the lossless invariant: the maintained summary must decode to
    /// exactly the current graph.  `O(|V| + |E|)` — meant for tests and debugging,
    /// not the per-batch hot path.
    pub fn verify_lossless(&self) -> Result<(), String> {
        crate::decode::verify_lossless(self.engine.summary(), &self.graph.to_graph())
    }

    /// Exhaustive consistency check of the engine's incremental bookkeeping
    /// (union-find, root metadata, summary invariants) against a from-scratch
    /// rebuild — see [`MergeEngine::validate`].  `O(arena + edges)`; tests and
    /// debugging only.
    pub fn validate(&self) -> Result<(), String> {
        self.engine.validate()
    }

    /// Ingests one delta batch: applies it to the current graph, re-expands the
    /// dirty region, and re-summarizes that region through the sharded pipeline.
    /// See the module docs for the four-step contract.
    pub fn resummarize(&mut self, delta: &GraphDelta) -> BatchReport {
        let start = std::time::Instant::now();
        self.batches += 1;
        let mut report = BatchReport {
            batch: self.batches,
            ..BatchReport::default()
        };

        // Step 1: apply the delta (deletions first), remembering the endpoints of
        // every operation that actually changed the graph.
        let mut touched: Vec<NodeId> = Vec::new();
        for &(u, v) in &delta.deletions {
            if self.graph.remove_edge(u, v) {
                report.deleted += 1;
                touched.push(u);
                touched.push(v);
            }
        }
        for &(u, v) in &delta.insertions {
            if self.graph.insert_edge(u, v) {
                report.inserted += 1;
                touched.push(u);
                touched.push(v);
            }
        }
        if touched.is_empty() {
            report.cost = self.engine.summary().encoding_cost();
            report.arena_len = self.engine.summary().arena_len();
            report.dead_slots = self.engine.summary().num_dead_slots();
            self.maybe_self_check();
            report.publish_elapsed = self.publish_or_die();
            report.elapsed = start.elapsed();
            return report;
        }

        // Step 2: localize.  Affected roots, then the capped summary-adjacent
        // expansion — everything in sorted order so the batch is a pure function
        // of the engine's *content* (hash-map iteration orders are not).
        let localize_start = std::time::Instant::now();
        let mut affected: Vec<SupernodeId> =
            touched.iter().map(|&u| self.engine.root_of(u)).collect();
        affected.sort_unstable();
        affected.dedup();
        let mut dirty = affected.clone();
        if self.config.adjacent_cap > 0 {
            let mut adjacent: Vec<SupernodeId> = Vec::new();
            for &r in &affected {
                adjacent.extend(self.engine.adjacent_roots(r));
            }
            adjacent.sort_unstable();
            adjacent.dedup();
            let summary = self.engine.summary();
            dirty.extend(
                adjacent
                    .into_iter()
                    .filter(|&r| summary.members(r).len() <= self.config.adjacent_cap),
            );
            dirty.sort_unstable();
            dirty.dedup();
        }
        report.dirty_roots = dirty.len();

        // Roots adjacent to the dirty set that stay intact: dissolving the region
        // moves every edge between their trees and the region down to leaf level
        // (their own internal/root-level edges included), so they are exactly the
        // **frontier** the post-batch prune must revisit alongside the region.
        let mut frontier: Vec<SupernodeId> = Vec::new();
        if self.config.prune_rounds > 0 {
            for &r in &dirty {
                frontier.extend(self.engine.adjacent_roots(r));
            }
            frontier.sort_unstable();
            frontier.dedup();
            frontier.retain(|r| dirty.binary_search(r).is_err());
        }
        report.stages.localize = localize_start.elapsed();
        for &r in &dirty {
            report.region_subnodes += self.engine.summary().members(r).len();
        }

        // Step 3: re-expand.  Subtree-granular by default: each affected root
        // dissolves only the ancestor spine of its touched leaves
        // ([`MergeEngine::dissolve_partial`]), intact sibling subtrees survive as
        // split-out roots, and context roots stay whole — all of them join the
        // region as merge candidates.  Then restore exact leaf-level p-edges for
        // the current graph's edges incident to the re-expanded leaves (their
        // coverage is exactly zero after dissolution, partial or not).
        let dissolve_start = std::time::Instant::now();
        let mut leaves: Vec<NodeId> = Vec::new();
        let mut region_roots: Vec<SupernodeId> = Vec::new();
        if self.config.partial_dissolution {
            // Touched leaves grouped by affected root, both in ascending order.
            let mut by_root: Vec<(SupernodeId, NodeId)> = touched
                .iter()
                .map(|&u| (self.engine.root_of(u), u))
                .collect();
            by_root.sort_unstable();
            by_root.dedup();
            let mut i = 0;
            while i < by_root.len() {
                let r = by_root[i].0;
                let mut j = i;
                while j < by_root.len() && by_root[j].0 == r {
                    j += 1;
                }
                let touched_leaves: Vec<SupernodeId> =
                    by_root[i..j].iter().map(|&(_, u)| u).collect();
                let part = self.engine.dissolve_partial(r, &touched_leaves);
                report.dissolved_supernodes += part.killed;
                leaves.extend(part.restore_leaves.iter().copied());
                region_roots.extend(part.new_roots);
                i = j;
            }
            // Intact context roots join the region as merge candidates.
            region_roots.extend(
                dirty
                    .iter()
                    .copied()
                    .filter(|r| affected.binary_search(r).is_err()),
            );
            region_roots.sort_unstable();
            region_roots.dedup();
        } else {
            for &r in &dirty {
                leaves.extend_from_slice(self.engine.summary().members(r));
                let (_, killed) = self.engine.dissolve_root(r);
                report.dissolved_supernodes += killed;
            }
            region_roots = leaves.iter().map(|&u| u as SupernodeId).collect();
            region_roots.sort_unstable();
        }
        leaves.sort_unstable();
        report.dissolved_subnodes = leaves.len();
        for &u in &leaves {
            self.dirty_mark[u as usize] = true;
        }
        self.restore_buf.clear();
        for &u in &leaves {
            for &w in self.graph.neighbors(u) {
                // Dirty-dirty pairs are seen from both sides; restore them once.
                if !self.dirty_mark[w as usize] || u < w {
                    self.restore_buf.push((u, w));
                }
            }
        }
        report.restored_edges = self.restore_buf.len();
        let restore_buf = std::mem::take(&mut self.restore_buf);
        self.engine.restore_leaf_edges(&restore_buf);
        self.restore_buf = restore_buf;
        report.stages.dissolve = dissolve_start.elapsed();

        // Step 4: re-summarize the region.  `active` tracks the region's current
        // roots across passes: surviving roots keep their (ascending) order and
        // merge products are appended in ascending arena order.
        let mut active: Vec<SupernodeId> = region_roots;
        let candidate_config = CandidateConfig {
            max_group_size: self.config.max_candidate_size,
            max_shingle_splits: self.config.max_shingle_splits,
        };
        let threads = self.config.parallelism.threads();
        for t in 1..=self.config.iterations {
            if active.len() < 2 {
                break;
            }
            self.epoch += 1;
            let threshold = merging_threshold(t, self.config.iterations);
            // Batch-stable shingle seed (see [`pass_shingle_seed`]): the same for
            // pass `t` of every batch, so cached signatures stay comparable —
            // and identical whether the index is on or off.
            let pass_seed = pass_shingle_seed(self.config.seed, t);
            let candidates_start = std::time::Instant::now();
            let sets = if self.config.candidate_index {
                // Apply every structural event since the last pass to the index,
                // then hash only what those events invalidated.
                self.engine.flush_retired(&mut self.index);
                let sets = candidate_sets_indexed(
                    self.engine.summary(),
                    &self.graph,
                    &active,
                    pass_seed,
                    &candidate_config,
                    threads,
                    &mut self.candidate_scratch,
                    &mut self.index,
                );
                let (reshingled, cached) = self.index.take_batch_stats();
                report.reshingled_roots += reshingled;
                report.cached_roots += cached;
                sets
            } else {
                report.reshingled_roots += active.len();
                candidate_sets_with(
                    self.engine.summary(),
                    &self.graph,
                    &active,
                    pass_seed,
                    &candidate_config,
                    threads,
                    &mut self.candidate_scratch,
                )
            };
            report.stages.candidates += candidates_start.elapsed();
            let worker = SluggerShardWorker {
                view: &self.engine,
                options: MergeOptions {
                    threshold,
                    height_bound: self.config.height_bound,
                },
                memoization: self.config.memoization,
            };
            let seed = self.config.seed;
            let epoch = self.epoch;
            let plan_start = std::time::Instant::now();
            let plans = plan_shards_pooled(
                &worker,
                &sets,
                self.config.shards,
                self.config.parallelism,
                &|set_index| set_rng(seed, epoch, set_index),
                &mut self.planner_pool,
            );
            report.stages.plan += plan_start.elapsed();
            let arena_before = self.engine.summary().arena_len() as SupernodeId;
            let apply_start = std::time::Instant::now();
            let (stats, _) = apply_plans_with(
                &mut self.engine,
                &mut self.ctx,
                &mut self.apply_workers,
                &plans,
                threads,
            );
            report.stages.apply += apply_start.elapsed();
            report.pairs_evaluated += stats.evaluated;
            report.merges += stats.merged;
            // Return spent merge vectors to the persistent planners, so
            // steady-state batches pop instead of allocating.
            self.planner_pool.recycle_plans(plans);
            let summary = self.engine.summary();
            active.retain(|&r| summary.is_root(r));
            active.extend(
                (arena_before..summary.arena_len() as SupernodeId)
                    .filter(|&id| summary.is_root(id)),
            );
        }

        for &u in &leaves {
            self.dirty_mark[u as usize] = false;
        }

        // Step 5: engine-hosted pruning of the region plus its frontier (exact
        // metadata, cost proportional to the dirty region), then arena compaction
        // once dead slots outweigh the configured ratio.
        let prune_start = std::time::Instant::now();
        if self.config.prune_rounds > 0 {
            let mut region = active;
            region.extend(frontier);
            report.prune = prune_region(
                &mut self.engine,
                &self.graph,
                &region,
                self.config.prune_rounds,
                DEFAULT_MAX_PAIR_PRODUCT,
            );
        }
        report.prune_elapsed = prune_start.elapsed();
        report.stages.prune = report.prune_elapsed;
        report.compacted_slots = self.maybe_compact();

        let summary = self.engine.summary();
        report.arena_len = summary.arena_len();
        report.dead_slots = summary.num_dead_slots();
        report.cost = summary.encoding_cost();
        self.maybe_self_check();
        report.publish_elapsed = self.publish_or_die();
        report.elapsed = start.elapsed();
        report
    }

    /// In-batch publication: a summary that fails validation at publish time is
    /// corruption, and a stream that kept serving (or silently stopped
    /// publishing) would hand readers wrong answers — same policy as
    /// [`IncrementalSummarizer::maybe_self_check`].
    fn publish_or_die(&self) -> std::time::Duration {
        self.publish_snapshot().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs the periodic self-check when [`IncrementalConfig::validate_every`]
    /// says this batch is due: full engine bookkeeping validation plus model
    /// invariants.  Panics on any inconsistency — a stream that keeps going on a
    /// corrupted summary would silently persist wrong state.
    fn maybe_self_check(&self) {
        let every = self.config.validate_every;
        if every == 0 || !self.batches.is_multiple_of(every) {
            return;
        }
        self.engine
            .validate()
            .unwrap_or_else(|e| panic!("self-check failed after batch {}: {e}", self.batches));
        self.engine
            .summary()
            .validate()
            .unwrap_or_else(|e| panic!("self-check failed after batch {}: {e}", self.batches));
    }

    /// Compacts when dead slots exceed `compact_dead_ratio` of the arena;
    /// returns the number of slots reclaimed (0 when below the threshold or
    /// compaction is disabled).
    fn maybe_compact(&mut self) -> usize {
        let ratio = self.config.compact_dead_ratio;
        if ratio <= 0.0 {
            return 0;
        }
        let summary = self.engine.summary();
        let dead = summary.num_dead_slots();
        if (dead as f64) <= ratio * summary.arena_len() as f64 {
            return 0;
        }
        self.compact_engine()
    }

    /// Compacts the engine and keeps the candidate index aligned: the
    /// order-preserving [`crate::model::CompactionMap`] renumbers the cached
    /// entries in place (sorted runs stay sorted), so compaction never costs the
    /// index its warm state — pinned by `tests/candidate_index.rs`.  Buffered
    /// retirements are remapped inside [`MergeEngine::compact_mapped`].
    fn compact_engine(&mut self) -> usize {
        match self.engine.compact_mapped() {
            Some(map) => {
                self.index.remap(&map);
                map.reclaimed()
            }
            None => 0,
        }
    }

    /// Runs the pruning substeps over **all** current roots, hosted by the engine
    /// (the maintained summary is pruned in place with exact metadata, exactly as
    /// the per-batch region prune does — just unrestricted).  Useful before
    /// persisting a summary through [`crate::storage`].
    pub fn prune_now(&mut self, rounds: usize) -> PruneReport {
        let roots = self.engine.roots();
        prune_region(
            &mut self.engine,
            &self.graph,
            &roots,
            rounds,
            DEFAULT_MAX_PAIR_PRODUCT,
        )
    }

    /// Forces arena compaction regardless of the dead-slot ratio; returns the
    /// number of slots reclaimed.  Compaction renumbers supernode ids
    /// order-preservingly and never changes the id-free canonical form or any
    /// subsequent batch's output.
    pub fn compact_now(&mut self) -> usize {
        self.compact_engine()
    }

    /// Attaches a [`crate::snapshot::SnapshotSlot`] and immediately publishes
    /// the current state, so readers have a snapshot before the next batch.
    /// From here on every [`IncrementalSummarizer::resummarize`] call ends by
    /// publishing a fresh epoch snapshot (see [`crate::snapshot`] for the
    /// publish → pin → retire lifecycle).  Fails — without attaching — when
    /// the current summary does not validate.
    pub fn attach_snapshots(&mut self, slot: crate::snapshot::SnapshotSlot) -> Result<(), String> {
        self.snapshots = Some(slot);
        match self.publish_snapshot() {
            Ok(_) => Ok(()),
            Err(e) => {
                self.snapshots = None;
                Err(e)
            }
        }
    }

    /// Detaches the snapshot slot, if any: already-published snapshots stay
    /// pinnable, but no further epochs are published.
    pub fn detach_snapshots(&mut self) -> Option<crate::snapshot::SnapshotSlot> {
        self.snapshots.take()
    }

    /// Publishes an epoch snapshot of the current state to the attached slot
    /// right now — the hook for maintenance points outside the batch loop
    /// ([`IncrementalSummarizer::prune_now`] / `compact_now`, recovery).  A
    /// no-op `Ok` when no slot is attached.
    pub fn publish_snapshot_now(&mut self) -> Result<(), String> {
        self.publish_snapshot().map(|_| ())
    }

    /// Clone + validate + publish to the attached slot; returns the time it
    /// took (zero when no slot is attached).
    fn publish_snapshot(&self) -> Result<std::time::Duration, String> {
        let Some(slot) = &self.snapshots else {
            return Ok(std::time::Duration::ZERO);
        };
        let start = std::time::Instant::now();
        let snapshot = crate::snapshot::SummarySnapshot::new(
            self.engine.summary().clone(),
            self.epoch,
            self.batches,
        )
        .map_err(|e| format!("snapshot publication after batch {}: {e}", self.batches))?;
        slot.publish(snapshot);
        Ok(start.elapsed())
    }

    /// Read access to the persistent candidate index — its cached-entry count
    /// and per-batch hit statistics drive the streaming bench's effectiveness
    /// columns and the invalidation-soundness tests.
    pub fn candidate_index(&self) -> &CandidateIndex {
        &self.index
    }

    /// Invalidation-soundness oracle hook (`tests/candidate_index.rs`): computes
    /// the candidate sets a pass-`t` run over **all** current roots would see
    /// through the persistent index — pending invalidations flushed first, the
    /// live index warmed exactly as a real pass would warm it.  The result must
    /// be byte-identical to [`crate::candidates::reference::candidate_sets`] on
    /// the same view with [`pass_shingle_seed`]`(seed, t)`; warming the index
    /// here never changes any subsequent batch's output (only its speed).
    pub fn probe_candidate_sets(&mut self, t: usize) -> Vec<Vec<SupernodeId>> {
        self.engine.flush_retired(&mut self.index);
        let roots: Vec<SupernodeId> = self.engine.summary().roots().collect();
        let candidate_config = CandidateConfig {
            max_group_size: self.config.max_candidate_size,
            max_shingle_splits: self.config.max_shingle_splits,
        };
        candidate_sets_indexed(
            self.engine.summary(),
            &self.graph,
            &roots,
            pass_shingle_seed(self.config.seed, t),
            &candidate_config,
            self.config.parallelism.threads(),
            &mut self.candidate_scratch,
            &mut self.index,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode_full;
    use crate::{Slugger, SluggerConfig};
    use slugger_graph::gen::{caveman, CavemanConfig};
    use slugger_graph::stream::{stream_batches, StreamConfig};

    fn test_graph(seed: u64) -> Graph {
        caveman(&CavemanConfig {
            num_nodes: 200,
            num_cliques: 25,
            min_clique: 5,
            max_clique: 9,
            rewire_probability: 0.02,
            seed,
        })
    }

    fn quick_slugger(seed: u64) -> Slugger {
        Slugger::new(SluggerConfig {
            iterations: 5,
            max_candidate_size: 64,
            max_shingle_splits: 5,
            seed,
            ..SluggerConfig::default()
        })
    }

    #[test]
    fn stream_of_batches_stays_lossless() {
        let target = test_graph(3);
        let (initial, batches) = stream_batches(
            &target,
            &StreamConfig {
                initial_fraction: 0.75,
                num_batches: 5,
                churn: 0.3,
                seed: 9,
            },
        );
        let mut inc = IncrementalSummarizer::bootstrap(
            &initial,
            &quick_slugger(1),
            IncrementalConfig {
                seed: 11,
                ..IncrementalConfig::default()
            },
        );
        inc.verify_lossless().unwrap();
        for (i, delta) in batches.iter().enumerate() {
            let report = inc.resummarize(delta);
            assert_eq!(report.batch, i + 1);
            assert!(report.dirty_roots > 0);
            inc.summary().validate().unwrap();
            inc.verify_lossless()
                .unwrap_or_else(|e| panic!("batch {i}: {e}"));
        }
        // The stream converged to the target graph, and so did the summary.
        assert_eq!(
            decode_full(inc.summary()).edge_set(),
            target.edge_set(),
            "final summary must decode to the target graph"
        );
        assert_eq!(inc.batches(), 5);
    }

    #[test]
    fn deletion_only_batches_are_handled() {
        let graph = test_graph(5);
        let mut inc = IncrementalSummarizer::bootstrap(
            &graph,
            &quick_slugger(2),
            IncrementalConfig::default(),
        );
        let victims: Vec<(u32, u32)> = graph.edges().take(17).collect();
        let report = inc.resummarize(&GraphDelta {
            deletions: victims.clone(),
            insertions: Vec::new(),
        });
        assert_eq!(report.deleted, victims.len());
        assert_eq!(report.inserted, 0);
        inc.verify_lossless().unwrap();
        assert_eq!(inc.graph().num_edges(), graph.num_edges() - victims.len());
    }

    #[test]
    fn empty_and_no_op_deltas_change_nothing() {
        let graph = test_graph(7);
        let mut inc = IncrementalSummarizer::bootstrap(
            &graph,
            &quick_slugger(3),
            IncrementalConfig::default(),
        );
        let cost = inc.summary().encoding_cost();
        let report = inc.resummarize(&GraphDelta::new());
        assert_eq!(report.dirty_roots, 0);
        assert_eq!(report.cost, cost);
        // Deleting an absent edge and re-inserting a present one are both no-ops.
        let (u, v) = graph.edges().next().unwrap();
        let report = inc.resummarize(&GraphDelta {
            deletions: vec![(198, 199)],
            insertions: vec![(u, v)],
        });
        assert_eq!((report.deleted, report.inserted), (0, 0));
        assert_eq!(report.cost, cost);
        inc.verify_lossless().unwrap();
    }

    #[test]
    fn incremental_keeps_compressing_the_touched_region() {
        // Stream in a brand-new clique: the re-summarizer must compress it rather
        // than leaving it at the trivial leaf-edge encoding.
        let base = test_graph(11);
        let mut inc = IncrementalSummarizer::bootstrap(
            &base,
            &quick_slugger(4),
            IncrementalConfig::default(),
        );
        let members: Vec<u32> = (0..14).map(|i| i * 13 % 200).collect();
        let mut insertions = Vec::new();
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                if !base.has_edge(a, b) && a != b {
                    insertions.push((a, b));
                }
            }
        }
        let trivial_extra = insertions.len();
        let (pruned_before, _) = inc.pruned_summary(2);
        let before = pruned_before.encoding_cost();
        let report = inc.resummarize(&GraphDelta::from_insertions(insertions));
        assert!(report.merges > 0, "a dense clique must trigger merges");
        inc.verify_lossless().unwrap();
        // The maintained summary is unpruned, so compare pruned snapshots: the new
        // clique must come out clearly cheaper than one p-edge per inserted edge.
        let (pruned_after, _) = inc.pruned_summary(2);
        let after = pruned_after.encoding_cost();
        assert!(
            after < before + trivial_extra,
            "expected compression of the new clique: {before} -> {after} \
             (trivial would be {})",
            before + trivial_extra
        );
    }

    #[test]
    fn from_graph_starts_from_the_identity_encoding() {
        let graph = Graph::from_edges(4, vec![(0, 1), (2, 3)]);
        let mut inc = IncrementalSummarizer::from_graph(&graph, IncrementalConfig::default());
        assert_eq!(inc.summary().encoding_cost(), 2);
        inc.verify_lossless().unwrap();
        inc.resummarize(&GraphDelta::from_insertions([(1, 2)]));
        inc.verify_lossless().unwrap();
        assert_eq!(inc.graph().num_edges(), 3);
    }

    #[test]
    fn from_summary_rejects_mismatched_node_counts() {
        let summary = HierarchicalSummary::identity(3);
        let graph = Graph::empty(4);
        assert!(
            IncrementalSummarizer::from_summary(summary, &graph, IncrementalConfig::default())
                .is_err()
        );
    }

    #[test]
    fn pruned_snapshot_is_lossless_and_never_more_expensive() {
        let target = test_graph(13);
        let (initial, batches) = stream_batches(&target, &StreamConfig::default());
        let mut inc = IncrementalSummarizer::bootstrap(
            &initial,
            &quick_slugger(5),
            IncrementalConfig::default(),
        );
        for delta in &batches {
            inc.resummarize(delta);
        }
        let (pruned, _report) = inc.pruned_summary(2);
        assert!(pruned.encoding_cost() <= inc.summary().encoding_cost());
        crate::decode::verify_lossless(&pruned, &target).unwrap();
        // The maintained state is untouched by the snapshot.
        inc.verify_lossless().unwrap();
    }

    #[test]
    fn adjacent_cap_zero_disables_context_expansion() {
        let graph = test_graph(17);
        let mut narrow = IncrementalSummarizer::bootstrap(
            &graph,
            &quick_slugger(6),
            IncrementalConfig {
                adjacent_cap: 32,
                ..IncrementalConfig::default()
            },
        );
        let mut wide = IncrementalSummarizer::bootstrap(
            &graph,
            &quick_slugger(6),
            IncrementalConfig {
                adjacent_cap: usize::MAX,
                ..IncrementalConfig::default()
            },
        );
        let delta = GraphDelta::from_insertions([(0, 100), (50, 150)]);
        let narrow_report = narrow.resummarize(&delta);
        let wide_report = wide.resummarize(&delta);
        assert!(narrow_report.dirty_roots <= wide_report.dirty_roots);
        narrow.verify_lossless().unwrap();
        wide.verify_lossless().unwrap();
    }
}
