//! Epoch snapshots of the maintained summary, and the query front-end over
//! them — the read/write split behind summary-native query serving.
//!
//! # Lifecycle: publish → pin → retire
//!
//! The write side ([`crate::incremental::IncrementalSummarizer`]) owns the
//! mutable summary and, when a [`SnapshotSlot`] is attached, **publishes** a
//! fresh [`SummarySnapshot`] at the end of every batch: a validated clone of
//! the summary tagged with the batch epoch.  Readers **pin** the latest
//! snapshot by cloning its `Arc` out of the slot — from then on they hold a
//! self-contained, immutable view that no later batch, prune, compaction or
//! recovery can mutate.  A snapshot **retires** when the slot moves on to a
//! newer epoch and the last reader drops its `Arc` — plain reference-counted
//! reclamation, no epoch bookkeeping on the write side.
//!
//! Publication cost is one `clone` + [`HierarchicalSummary::validate`] of the
//! live summary — `O(summary)`, not `O(graph)` — and a pointer swap under a
//! momentary mutex.  Readers never hold that mutex across a query, so the
//! batch loop is never blocked by a slow reader and vice versa.
//!
//! # Compaction and recovery
//!
//! Arena compaction ([`HierarchicalSummary::compact`]) renumbers supernode
//! slots of the **live** summary; a pinned snapshot owns its clone, so its
//! internal ids — and therefore its answers — are untouched.  Leaf ids (the
//! only ids queries speak) are never renumbered by compaction in the first
//! place, so answers agree across the compaction boundary wherever both
//! epochs represent the same graph.  Durable recovery rebuilds the summarizer
//! to canonical identity; the first snapshot published after recovery answers
//! exactly like the corresponding uninterrupted epoch
//! (`crates/core/tests/query_snapshot.rs` pins all of this).
//!
//! # Query engine
//!
//! [`QueryEngine`] answers neighbor / degree / BFS / PageRank queries against
//! one pinned snapshot through a fallible, panic-free API ([`DecodeError`] —
//! arbitrary ids are a query error, never a crash).  It carries a small
//! bounded cache of decoded neighbor lists for hot subnodes (partial
//! decompression re-walks an ancestor chain per lookup; the cache makes
//! repeated hits on hot supernodes' members cheap).  The cache is invalidated
//! wholesale whenever the engine re-pins onto a different snapshot, so a
//! cached answer can never leak across epochs; hit/miss counters expose the
//! hit rate.

use crate::decode::{try_neighbors_of, DecodeError};
use crate::model::HierarchicalSummary;
use slugger_algos::PageRankConfig;
use slugger_graph::graph::{NeighborAccess, NodeId};
use slugger_graph::hash::{FxHashMap, FxHashSet};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

/// An immutable, validated view of the summary pinned to a batch epoch.
///
/// Snapshots are self-contained (they own a clone of the summary), `Send +
/// Sync`, and shared by `Arc` — see the module docs for the lifecycle.
/// Queries go through [`QueryEngine`] or the [`NeighborAccess`] impl.
#[derive(Clone, Debug)]
pub struct SummarySnapshot {
    summary: HierarchicalSummary,
    epoch: usize,
    batch: usize,
}

impl SummarySnapshot {
    /// Validates `summary` and freezes it as the snapshot of `(epoch, batch)`.
    /// Fails (with the validation report) instead of publishing a corrupt
    /// view — a snapshot that exists is always internally consistent.
    pub fn new(summary: HierarchicalSummary, epoch: usize, batch: usize) -> Result<Self, String> {
        summary.validate()?;
        Ok(SummarySnapshot {
            summary,
            epoch,
            batch,
        })
    }

    /// The frozen summary itself (e.g. for `decode_full` oracles).
    pub fn summary(&self) -> &HierarchicalSummary {
        &self.summary
    }

    /// Pipeline-pass epoch of the summarizer at publication time.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Number of batches ingested when this snapshot was published.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Number of subnodes — valid query ids are `0..num_subnodes()`.
    pub fn num_subnodes(&self) -> usize {
        self.summary.num_subnodes()
    }

    /// Sorted neighbors of `v` by partial decompression (Algorithm 4), or a
    /// typed error for ids that are not subnodes of this snapshot.
    pub fn try_neighbors(&self, v: NodeId) -> Result<Vec<NodeId>, DecodeError> {
        try_neighbors_of(&self.summary, v)
    }

    /// Degree of `v`, or a typed error for out-of-range ids.
    pub fn try_degree(&self, v: NodeId) -> Result<usize, DecodeError> {
        self.try_neighbors(v).map(|n| n.len())
    }
}

impl NeighborAccess for SummarySnapshot {
    fn num_nodes(&self) -> usize {
        self.summary.num_subnodes()
    }

    fn for_each_neighbor(&self, u: NodeId, f: &mut dyn FnMut(NodeId)) {
        for v in self.neighbors_vec(u) {
            f(v);
        }
    }

    fn neighbors_vec(&self, u: NodeId) -> Vec<NodeId> {
        // Same panic-free contract as `decode::SummaryNeighborView`: ids the
        // snapshot does not cover have no neighbors.
        self.try_neighbors(u).unwrap_or_default()
    }
}

/// The publication point between one writer and any number of readers: a
/// shared, cloneable slot holding the latest [`SummarySnapshot`].
///
/// The writer calls [`SnapshotSlot::publish`]; readers call
/// [`SnapshotSlot::latest`] to pin.  Both are a pointer swap / clone under a
/// momentary mutex — neither side ever holds the lock while decoding or
/// summarizing, so readers never block the batch loop.
#[derive(Clone, Debug, Default)]
pub struct SnapshotSlot {
    inner: Arc<Mutex<Option<Arc<SummarySnapshot>>>>,
}

impl SnapshotSlot {
    /// An empty slot (no snapshot published yet).
    pub fn new() -> Self {
        SnapshotSlot::default()
    }

    /// Publishes `snapshot`, replacing the previous one (which retires once
    /// its last pinned reader drops it).  Returns the published `Arc` so the
    /// writer can keep a pin of its own.
    pub fn publish(&self, snapshot: SummarySnapshot) -> Arc<SummarySnapshot> {
        let snapshot = Arc::new(snapshot);
        *self.lock() = Some(Arc::clone(&snapshot));
        snapshot
    }

    /// Pins the latest published snapshot, or `None` when nothing has been
    /// published yet.
    pub fn latest(&self) -> Option<Arc<SummarySnapshot>> {
        self.lock().clone()
    }

    /// `(epoch, batch)` of the latest published snapshot, without pinning it.
    pub fn latest_epoch(&self) -> Option<(usize, usize)> {
        self.lock().as_ref().map(|s| (s.epoch, s.batch))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Option<Arc<SummarySnapshot>>> {
        // A poisoned slot only means some other reader panicked mid-swap of a
        // pointer — the Option is always structurally valid, so recover it
        // rather than propagating the panic into every reader.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Default capacity of the [`QueryEngine`] neighbor-list cache.
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// Per-reader query front-end over one pinned [`SummarySnapshot`].
///
/// Not shared between threads: each query worker owns its engine (and its
/// cache) and re-pins via [`QueryEngine::pin_latest`] at whatever cadence its
/// freshness requirement dictates.  All entry points are panic-free for
/// arbitrary input ids — errors surface as [`DecodeError`].
#[derive(Debug)]
pub struct QueryEngine {
    snapshot: Arc<SummarySnapshot>,
    cache: FxHashMap<NodeId, Vec<NodeId>>,
    order: VecDeque<NodeId>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl QueryEngine {
    /// An engine pinned to `snapshot` with the default cache capacity.
    pub fn new(snapshot: Arc<SummarySnapshot>) -> Self {
        QueryEngine::with_cache_capacity(snapshot, DEFAULT_CACHE_CAPACITY)
    }

    /// An engine pinned to `snapshot` caching at most `capacity` decoded
    /// neighbor lists (FIFO eviction; a minimum of 1 is enforced).
    pub fn with_cache_capacity(snapshot: Arc<SummarySnapshot>, capacity: usize) -> Self {
        QueryEngine {
            snapshot,
            cache: FxHashMap::default(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// The pinned snapshot.
    pub fn snapshot(&self) -> &Arc<SummarySnapshot> {
        &self.snapshot
    }

    /// `(epoch, batch)` of the pinned snapshot.
    pub fn epoch(&self) -> (usize, usize) {
        (self.snapshot.epoch, self.snapshot.batch)
    }

    /// Re-pins the engine onto `snapshot`.  Pinning a different snapshot
    /// clears the cache (epoch invalidation — a cached answer never outlives
    /// the view it was decoded from); re-pinning the same snapshot keeps it.
    pub fn pin(&mut self, snapshot: Arc<SummarySnapshot>) {
        if !Arc::ptr_eq(&self.snapshot, &snapshot) {
            self.cache.clear();
            self.order.clear();
            self.snapshot = snapshot;
        }
    }

    /// Pins the latest snapshot from `slot`, if one is published.  Returns
    /// `true` when the engine is now on the slot's latest snapshot, `false`
    /// when the slot was empty (the current pin is kept).
    pub fn pin_latest(&mut self, slot: &SnapshotSlot) -> bool {
        match slot.latest() {
            Some(snapshot) => {
                self.pin(snapshot);
                true
            }
            None => false,
        }
    }

    /// Sorted neighbors of `v`, cached.  The returned slice borrows the
    /// engine's cache and is valid until the next `&mut self` call.
    pub fn neighbors(&mut self, v: NodeId) -> Result<&[NodeId], DecodeError> {
        if self.cache.contains_key(&v) {
            self.hits += 1;
        } else {
            let list = self.snapshot.try_neighbors(v)?;
            if self.cache.len() >= self.capacity {
                if let Some(evicted) = self.order.pop_front() {
                    self.cache.remove(&evicted);
                }
            }
            self.cache.insert(v, list);
            self.order.push_back(v);
            self.misses += 1;
        }
        Ok(self.cache[&v].as_slice())
    }

    /// Degree of `v`, through the same cache as [`QueryEngine::neighbors`].
    pub fn degree(&mut self, v: NodeId) -> Result<usize, DecodeError> {
        self.neighbors(v).map(|n| n.len())
    }

    /// Depth-bounded BFS from `source`: the sorted set of nodes within
    /// `max_depth` hops (including `source`).  Frontier expansion goes through
    /// the neighbor cache, so hub-heavy workloads re-use hot decodes.
    pub fn bfs_within(
        &mut self,
        source: NodeId,
        max_depth: usize,
    ) -> Result<Vec<NodeId>, DecodeError> {
        self.check_in_range(source)?;
        let mut reached: Vec<NodeId> = vec![source];
        let mut seen: FxHashSet<NodeId> = FxHashSet::default();
        seen.insert(source);
        let mut frontier: VecDeque<(NodeId, usize)> = VecDeque::new();
        frontier.push_back((source, 0));
        while let Some((u, depth)) = frontier.pop_front() {
            if depth == max_depth {
                continue;
            }
            let next = self.neighbors(u)?.to_vec();
            for v in next {
                if seen.insert(v) {
                    reached.push(v);
                    frontier.push_back((v, depth + 1));
                }
            }
        }
        reached.sort_unstable();
        Ok(reached)
    }

    /// Full single-source BFS over the snapshot (uncached — every node is
    /// visited at most once, so caching would only churn the hot set).
    pub fn bfs_distances(&mut self, source: NodeId) -> Result<Vec<Option<usize>>, DecodeError> {
        self.check_in_range(source)?;
        Ok(slugger_algos::bfs_distances(&*self.snapshot, source))
    }

    /// PageRank over the snapshot (uncached global sweep).  Infallible: the
    /// computation has no per-query id input.
    pub fn pagerank(&self, config: &PageRankConfig) -> Vec<f64> {
        slugger_algos::pagerank(&*self.snapshot, config)
    }

    /// Cumulative cache hits over the engine's lifetime.  Counters survive
    /// re-pins (only the cached entries are invalidated), so a serving loop
    /// can report a meaningful long-run hit rate.
    pub fn cache_hits(&self) -> u64 {
        self.hits
    }

    /// Cumulative cache misses (each miss is one Algorithm 4 decode).
    pub fn cache_misses(&self) -> u64 {
        self.misses
    }

    /// `hits / (hits + misses)`, or 0 before the first lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Entries currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Configured cache capacity.
    pub fn cache_capacity(&self) -> usize {
        self.capacity
    }

    fn check_in_range(&self, v: NodeId) -> Result<(), DecodeError> {
        if (v as usize) < self.snapshot.num_subnodes() {
            Ok(())
        } else {
            Err(DecodeError::NodeOutOfRange {
                node: v,
                num_subnodes: self.snapshot.num_subnodes(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode_full;
    use crate::model::EdgeSign;

    fn sample_summary() -> HierarchicalSummary {
        let mut s = HierarchicalSummary::identity(6);
        let m01 = s.merge_roots(0, 1);
        s.set_edge(m01, m01, EdgeSign::Positive);
        s.set_edge(m01, 2, EdgeSign::Positive);
        s.set_edge(2, 3, EdgeSign::Positive);
        s.set_edge(4, 5, EdgeSign::Positive);
        s
    }

    #[test]
    fn snapshot_answers_match_decode_full() {
        let snap = SummarySnapshot::new(sample_summary(), 3, 1).unwrap();
        assert_eq!(snap.epoch(), 3);
        assert_eq!(snap.batch(), 1);
        let oracle = decode_full(snap.summary());
        let mut engine = QueryEngine::new(Arc::new(snap));
        for v in 0..6u32 {
            assert_eq!(
                engine.neighbors(v).unwrap(),
                oracle.neighbors(v),
                "node {v}"
            );
            assert_eq!(engine.degree(v).unwrap(), oracle.neighbors(v).len());
        }
        // Second sweep hits the cache only.
        let misses = engine.cache_misses();
        for v in 0..6u32 {
            engine.neighbors(v).unwrap();
        }
        assert_eq!(engine.cache_misses(), misses);
        assert!(engine.hit_rate() > 0.0);
    }

    #[test]
    fn out_of_range_ids_error_everywhere() {
        let snap = Arc::new(SummarySnapshot::new(sample_summary(), 0, 0).unwrap());
        let mut engine = QueryEngine::new(Arc::clone(&snap));
        for v in [6u32, 7, 1 << 20, u32::MAX] {
            assert!(matches!(
                engine.neighbors(v),
                Err(DecodeError::NodeOutOfRange { .. })
            ));
            assert!(engine.degree(v).is_err());
            assert!(engine.bfs_distances(v).is_err());
            assert!(engine.bfs_within(v, 2).is_err());
            // The NeighborAccess view maps the same ids to "no neighbors".
            assert!(snap.neighbors_vec(v).is_empty());
        }
    }

    #[test]
    fn slot_publish_pin_retire() {
        let slot = SnapshotSlot::new();
        assert!(slot.latest().is_none());
        let first = slot.publish(SummarySnapshot::new(sample_summary(), 1, 1).unwrap());
        assert_eq!(slot.latest_epoch(), Some((1, 1)));
        let pinned = slot.latest().unwrap();
        assert!(Arc::ptr_eq(&first, &pinned));
        // Publishing a new epoch retires the old one for new readers, but the
        // existing pin keeps answering from its own view.
        let mut engine = QueryEngine::new(pinned);
        let before = engine.neighbors(0).unwrap().to_vec();
        slot.publish(SummarySnapshot::new(HierarchicalSummary::identity(6), 2, 2).unwrap());
        assert_eq!(engine.neighbors(0).unwrap(), before.as_slice());
        // Re-pinning moves to the new epoch and invalidates the cache.
        assert!(engine.pin_latest(&slot));
        assert_eq!(engine.epoch(), (2, 2));
        assert_eq!(engine.cache_len(), 0);
        assert!(engine.neighbors(0).unwrap().is_empty());
    }

    #[test]
    fn cache_eviction_is_bounded() {
        let snap = Arc::new(SummarySnapshot::new(sample_summary(), 0, 0).unwrap());
        let mut engine = QueryEngine::with_cache_capacity(snap, 2);
        for v in 0..6u32 {
            engine.neighbors(v).unwrap();
        }
        assert_eq!(engine.cache_len(), 2);
        assert_eq!(engine.cache_capacity(), 2);
    }

    #[test]
    fn bfs_within_matches_oracle_reachability() {
        let snap = Arc::new(SummarySnapshot::new(sample_summary(), 0, 0).unwrap());
        let mut engine = QueryEngine::new(Arc::clone(&snap));
        // 0 -1- {1,2} -2- 3; {4,5} unreachable.
        assert_eq!(engine.bfs_within(0, 0).unwrap(), vec![0]);
        assert_eq!(engine.bfs_within(0, 1).unwrap(), vec![0, 1, 2]);
        assert_eq!(engine.bfs_within(0, 2).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(engine.bfs_within(0, 9).unwrap(), vec![0, 1, 2, 3]);
        let dist = engine.bfs_distances(0).unwrap();
        assert_eq!(dist[3], Some(2));
        assert_eq!(dist[4], None);
        let pr = engine.pagerank(&PageRankConfig::default());
        assert_eq!(pr.len(), 6);
    }

    #[test]
    fn corrupt_summaries_are_refused_at_publish() {
        let mut s = sample_summary();
        // Kill a slot that still carries an edge: validate must reject it.
        s.kill_slot_for_tests(3);
        assert!(SummarySnapshot::new(s, 0, 0).is_err());
    }
}
