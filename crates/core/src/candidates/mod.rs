//! Candidate generation (Sect. III-B2): grouping root supernodes that are likely to be
//! merged profitably.
//!
//! Merging two roots at distance ≥ 3 always increases the encoding cost (Lemma 1), so
//! SLUGGER groups roots within distance 2 using **min-hash shingles**, exactly as SWeG
//! does: for a random permutation `h` of the subnodes, the shingle of a root `A` is the
//! minimum of `h(w)` over all subnodes `w` in the closed neighborhood of `A`'s members.
//! Two roots within distance 2 share a subnode in their closed neighborhoods and hence
//! collide with non-trivial probability; distant roots essentially never do.
//!
//! Groups larger than the configured cap are split further: first by re-hashing with
//! fresh permutations (at most [`CandidateConfig::max_shingle_splits`] times, 10 in the
//! paper), then randomly (the paper caps candidate sets at 500 roots).
//!
//! # Hot-path design
//!
//! This stage runs once per iteration over every root and used to dominate late
//! iterations, so it is engineered around three ideas:
//!
//! * **Lazy per-node hashing.**  The permutation `h(w) = splitmix64(w ^ splitmix64(seed))`
//!   is a pure function, so instead of materialising a `Vec<u64>` of hashes for *all*
//!   `|V|` subnodes on every [`shingles`] call (O(|V|) work and memory traffic even for
//!   a ten-root group), small groups hash each touched node inline during the fold,
//!   with the seed mix hoisted once per round.  Only near-full groups — where the
//!   lookups amortize the build — go through a per-seed hash table kept in the
//!   reusable [`CandidateScratch`] (see `TABLE_FOLD_FACTOR`); both modes compute
//!   the identical permutation.
//! * **Sort-based bucketing.**  Splitting a group by shingle value sorts a reusable
//!   `(shingle, root)` buffer (allocation-free unstable sort; root ids are unique, so
//!   the order is total) and walks the equal-shingle runs, instead of filling a fresh
//!   hash map of `Vec`s per round.  Buckets therefore come out in ascending shingle
//!   order with roots ascending inside — deterministic by construction, independent
//!   of any hash map's internal layout — and small buckets are emitted as candidate
//!   sets immediately instead of round-tripping through the work queue.
//! * **Parallel shingle fold.**  For large groups (the first split of every iteration
//!   touches all roots) the fold is dealt in contiguous chunks across the `rayon`
//!   substrate already used by [`crate::pipeline`].  The fold is a pure map, so the
//!   chunking — and hence the thread count — never changes the grouping; byte-identical
//!   output for a fixed seed is pinned by `tests/candidate_determinism.rs` against the
//!   straightforward [`mod@reference`] implementation.

use crate::model::{HierarchicalSummary, SupernodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use slugger_graph::hash::splitmix64;
use slugger_graph::{AdjacencyList, Graph};

pub mod index;

pub use index::{candidate_sets_indexed, CandidateIndex, IndexSink};

/// Tuning knobs of the candidate-generation step.
#[derive(Clone, Copy, Debug)]
pub struct CandidateConfig {
    /// Maximum number of roots per candidate set (paper: 500).
    pub max_group_size: usize,
    /// Maximum number of shingle-based splitting rounds before falling back to random
    /// splitting (paper: 10).
    pub max_shingle_splits: usize,
}

impl Default for CandidateConfig {
    fn default() -> Self {
        CandidateConfig {
            max_group_size: 500,
            max_shingle_splits: 10,
        }
    }
}

/// Minimum group size for which the shingle fold is dealt across worker threads.
/// Below this the per-thread spawn cost of the `rayon` substrate outweighs the fold.
/// Public so multi-core hosts can sweep it from the bench crate (see ROADMAP); the
/// cutoff never affects the grouping, only wall-clock time.
pub const PARALLEL_SHINGLE_THRESHOLD: usize = 8_192;

/// A group whose size times this factor reaches `|V|` folds through a per-round hash
/// *table* instead of hashing lazily: for near-full root sets (the first split of an
/// iteration) the O(|V|) table build amortizes over the many lookups, while for the
/// small re-split groups — the common case, where the old per-call rebuild was pure
/// waste — lazy hashing touches only the group's own neighborhood.  Both modes
/// compute the identical permutation, so the cutoff never affects the grouping.
const TABLE_FOLD_FACTOR: usize = 4;

/// Reusable buffers of [`candidate_sets_with`], so the split rounds of an iteration
/// (and consecutive iterations sharing the scratch) perform no per-round allocations
/// beyond the emitted candidate sets themselves.
#[derive(Default)]
pub struct CandidateScratch {
    /// `(shingle, root)` pairs of the group currently being split.
    keyed: Vec<(u64, SupernodeId)>,
    /// Per-node hash table for table-mode folds, valid for `node_hash_seed`.
    node_hash: Vec<u64>,
    /// The round seed `node_hash` is currently filled for.
    node_hash_seed: Option<u64>,
}

/// The min-hash shingle of one root under the hoisted seed mix:
/// `min_{u ∈ A} min_{w ∈ N(u) ∪ {u}} splitmix64(w ^ seed_mix)`.
#[inline]
fn root_shingle<G: AdjacencyList>(
    summary: &HierarchicalSummary,
    graph: &G,
    root: SupernodeId,
    seed_mix: u64,
) -> u64 {
    let mut best = u64::MAX;
    for &u in summary.members(root) {
        best = best.min(splitmix64(u as u64 ^ seed_mix));
        for &w in graph.neighbors(u) {
            best = best.min(splitmix64(w as u64 ^ seed_mix));
        }
    }
    best
}

/// Computes the min-hash shingle of every given root under the permutation derived
/// from `seed`.  The shingle of root `A` is
/// `min_{u ∈ A} min_{w ∈ N(u) ∪ {u}} h(w)` with `h(w) = hash_node_with_seed(w, seed)`.
pub fn shingles<G: AdjacencyList>(
    summary: &HierarchicalSummary,
    graph: &G,
    roots: &[SupernodeId],
    seed: u64,
) -> Vec<u64> {
    let seed_mix = splitmix64(seed);
    roots
        .iter()
        .map(|&root| root_shingle(summary, graph, root, seed_mix))
        .collect()
}

/// The min-hash shingle of one root by table lookup (table mode).
#[inline]
fn root_shingle_table<G: AdjacencyList>(
    summary: &HierarchicalSummary,
    graph: &G,
    root: SupernodeId,
    node_hash: &[u64],
) -> u64 {
    let mut best = u64::MAX;
    for &u in summary.members(root) {
        best = best.min(node_hash[u as usize]);
        for &w in graph.neighbors(u) {
            best = best.min(node_hash[w as usize]);
        }
    }
    best
}

/// Fills `scratch.keyed` with the `(shingle, root)` pair of every root in `group`,
/// folding in parallel when the group is large enough and more than one thread is
/// allowed.  Large groups go through a (reused, per-seed) node-hash table, small ones
/// hash lazily; the fold is a pure map either way, so neither the chunking nor the
/// table cutoff ever affects the values.
pub(crate) fn fill_keyed<G: AdjacencyList + Sync>(
    summary: &HierarchicalSummary,
    graph: &G,
    group: &[SupernodeId],
    seed: u64,
    threads: usize,
    scratch: &mut CandidateScratch,
) {
    let seed_mix = splitmix64(seed);
    let n = graph.num_nodes();
    let table = group.len().saturating_mul(TABLE_FOLD_FACTOR) >= n;
    // The cached table is valid only for this (seed, |V|) combination — a scratch
    // may be reused across graphs, and round seeds repeat across calls.
    if table && (scratch.node_hash_seed != Some(seed) || scratch.node_hash.len() != n) {
        scratch.node_hash.clear();
        scratch
            .node_hash
            .extend((0..n as u64).map(|u| splitmix64(u ^ seed_mix)));
        scratch.node_hash_seed = Some(seed);
    }
    let node_hash = &scratch.node_hash[..];
    let shingle_of = |root: SupernodeId| -> u64 {
        if table {
            root_shingle_table(summary, graph, root, node_hash)
        } else {
            root_shingle(summary, graph, root, seed_mix)
        }
    };
    let keyed = &mut scratch.keyed;
    keyed.clear();
    if threads <= 1 || group.len() < PARALLEL_SHINGLE_THRESHOLD {
        keyed.extend(group.iter().map(|&root| (shingle_of(root), root)));
        return;
    }
    keyed.resize(group.len(), (0, 0));
    let chunk = group.len().div_ceil(threads);
    rayon::scope(|scope| {
        for (roots, out) in group.chunks(chunk).zip(keyed.chunks_mut(chunk)) {
            let shingle_of = &shingle_of;
            scope.spawn(move || {
                for (slot, &root) in out.iter_mut().zip(roots.iter()) {
                    *slot = (shingle_of(root), root);
                }
            });
        }
    });
}

/// Randomly splits a group into chunks of at most `max_group_size`, dropping
/// singleton leftovers (the terminal splitter once shingle rounds are exhausted).
pub(crate) fn random_split(
    group: Vec<SupernodeId>,
    max_group_size: usize,
    rng: &mut StdRng,
    result: &mut Vec<Vec<SupernodeId>>,
) {
    let mut shuffled = group;
    shuffled.shuffle(rng);
    for chunk in shuffled.chunks(max_group_size) {
        if chunk.len() >= 2 {
            result.push(chunk.to_vec());
        }
    }
}

/// Generates candidate sets for one iteration: groups of roots (each of size ≥ 2 and
/// ≤ `config.max_group_size`) within which the merging step searches for pairs.
///
/// Equivalent to [`candidate_sets_with`] on a single thread with throwaway scratch.
pub fn candidate_sets<G: AdjacencyList + Sync>(
    summary: &HierarchicalSummary,
    graph: &G,
    roots: &[SupernodeId],
    seed: u64,
    config: &CandidateConfig,
) -> Vec<Vec<SupernodeId>> {
    let mut scratch = CandidateScratch::default();
    candidate_sets_with(summary, graph, roots, seed, config, 1, &mut scratch)
}

/// [`candidate_sets`] with explicit worker-thread count and reusable scratch.
///
/// `threads` is a pure throughput knob (the shingle fold is a pure map dealt in
/// contiguous chunks), so every thread count produces the identical grouping.
pub fn candidate_sets_with<G: AdjacencyList + Sync>(
    summary: &HierarchicalSummary,
    graph: &G,
    roots: &[SupernodeId],
    seed: u64,
    config: &CandidateConfig,
    threads: usize,
    scratch: &mut CandidateScratch,
) -> Vec<Vec<SupernodeId>> {
    let mut result = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_cafe_f00d_d00d);
    // Work queue of (group, split_round); every queued group needs splitting (it is
    // the initial round-0 group or exceeds the size cap).
    let mut queue: Vec<(Vec<SupernodeId>, usize)> = Vec::new();
    if roots.len() >= 2 {
        queue.push((roots.to_vec(), 0));
    }
    while let Some((group, round)) = queue.pop() {
        if round >= config.max_shingle_splits {
            random_split(group, config.max_group_size, &mut rng, &mut result);
            continue;
        }
        // Shingle-based split with a per-round permutation.
        let round_seed = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(round as u64 + 1);
        fill_keyed(summary, graph, &group, round_seed, threads, scratch);
        // Buckets are the equal-shingle runs after sorting.  The whole-pair unstable
        // sort is allocation-free and fully deterministic (root ids are unique):
        // buckets come out in ascending shingle order, roots ascending within each.
        scratch.keyed.sort_unstable();
        if scratch.keyed.last().map(|&(s, _)| s) == scratch.keyed.first().map(|&(s, _)| s)
            && round > 0
        {
            // Splitting made no progress (e.g. a dense clique); split randomly right
            // away instead of re-enqueueing through the remaining shingle rounds.
            random_split(group, config.max_group_size, &mut rng, &mut result);
            continue;
        }
        let keyed = &scratch.keyed[..];
        let mut start = 0;
        while start < keyed.len() {
            let shingle = keyed[start].0;
            let mut end = start + 1;
            while end < keyed.len() && keyed[end].0 == shingle {
                end += 1;
            }
            let len = end - start;
            if len >= 2 {
                let bucket: Vec<SupernodeId> = keyed[start..end].iter().map(|&(_, r)| r).collect();
                if len <= config.max_group_size {
                    // Already small enough: emit directly instead of re-enqueueing
                    // (the old round trip re-checked — and at round 0 re-split —
                    // buckets that were already done).
                    result.push(bucket);
                } else {
                    queue.push((bucket, round + 1));
                }
            }
            start = end;
        }
    }
    result
}

/// Straightforward reference implementation of the candidate stage, kept as the
/// oracle for the optimized hot path.
///
/// Identical algorithm and identical output to [`candidate_sets_with`] for every
/// seed, but written the obvious way: every shingle pass materialises the full
/// per-node hash table over all `|V|` subnodes (O(|V|) per call) and runs on one
/// thread with fresh allocations.  `tests/candidate_determinism.rs` pins the
/// byte-for-byte equivalence; the `candidate_stage` bench quantifies the speedup.
pub mod reference {
    use super::*;
    use slugger_graph::hash::hash_node_with_seed;
    use slugger_graph::NodeId;

    /// Reference [`super::shingles`]: hash *every* subnode up front, then fold.
    pub fn shingles(
        summary: &HierarchicalSummary,
        graph: &Graph,
        roots: &[SupernodeId],
        seed: u64,
    ) -> Vec<u64> {
        let n = graph.num_nodes();
        let mut node_hash: Vec<u64> = vec![0; n];
        for u in 0..n as NodeId {
            node_hash[u as usize] = hash_node_with_seed(u, seed);
        }
        roots
            .iter()
            .map(|&root| {
                let mut best = u64::MAX;
                for &u in summary.members(root) {
                    best = best.min(node_hash[u as usize]);
                    for &w in graph.neighbors(u) {
                        best = best.min(node_hash[w as usize]);
                    }
                }
                best
            })
            .collect()
    }

    /// Reference [`super::candidate_sets`]: same control flow, naive data handling.
    pub fn candidate_sets(
        summary: &HierarchicalSummary,
        graph: &Graph,
        roots: &[SupernodeId],
        seed: u64,
        config: &CandidateConfig,
    ) -> Vec<Vec<SupernodeId>> {
        let mut result = Vec::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_cafe_f00d_d00d);
        let mut queue: Vec<(Vec<SupernodeId>, usize)> = Vec::new();
        if roots.len() >= 2 {
            queue.push((roots.to_vec(), 0));
        }
        while let Some((group, round)) = queue.pop() {
            if round >= config.max_shingle_splits {
                random_split(group, config.max_group_size, &mut rng, &mut result);
                continue;
            }
            let round_seed = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(round as u64 + 1);
            let sh = shingles(summary, graph, &group, round_seed);
            let mut keyed: Vec<(u64, SupernodeId)> =
                sh.into_iter().zip(group.iter().copied()).collect();
            keyed.sort_unstable();
            if keyed.first().map(|&(s, _)| s) == keyed.last().map(|&(s, _)| s) && round > 0 {
                random_split(group, config.max_group_size, &mut rng, &mut result);
                continue;
            }
            let mut start = 0;
            while start < keyed.len() {
                let shingle = keyed[start].0;
                let mut end = start + 1;
                while end < keyed.len() && keyed[end].0 == shingle {
                    end += 1;
                }
                let len = end - start;
                if len >= 2 {
                    let bucket: Vec<SupernodeId> =
                        keyed[start..end].iter().map(|&(_, r)| r).collect();
                    if len <= config.max_group_size {
                        result.push(bucket);
                    } else {
                        queue.push((bucket, round + 1));
                    }
                }
                start = end;
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slugger_graph::gen::{caveman, CavemanConfig};

    fn identity_and_roots(graph: &Graph) -> (HierarchicalSummary, Vec<SupernodeId>) {
        let summary = HierarchicalSummary::identity(graph.num_nodes());
        let roots: Vec<SupernodeId> = summary.roots().collect();
        (summary, roots)
    }

    #[test]
    fn shingles_are_deterministic_and_seed_sensitive() {
        let g = Graph::from_edges(6, vec![(0, 1), (1, 2), (3, 4), (4, 5)]);
        let (s, roots) = identity_and_roots(&g);
        let a = shingles(&s, &g, &roots, 7);
        let b = shingles(&s, &g, &roots, 7);
        let c = shingles(&s, &g, &roots, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn lazy_shingles_match_the_reference_table() {
        let g = caveman(&CavemanConfig {
            num_nodes: 120,
            ..CavemanConfig::default()
        });
        let (s, roots) = identity_and_roots(&g);
        for seed in [0u64, 1, 42, u64::MAX] {
            assert_eq!(
                shingles(&s, &g, &roots, seed),
                reference::shingles(&s, &g, &roots, seed),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn adjacent_nodes_share_shingles() {
        // In a triangle all closed neighborhoods coincide, so all shingles are equal.
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2), (0, 2)]);
        let (s, roots) = identity_and_roots(&g);
        let sh = shingles(&s, &g, &roots, 3);
        assert_eq!(sh[0], sh[1]);
        assert_eq!(sh[1], sh[2]);
    }

    #[test]
    fn distant_components_end_up_in_distinct_groups() {
        // Two far-apart cliques: candidate sets must never mix them (their closed
        // neighborhoods are disjoint, so shingle collisions would require a hash
        // collision).
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5u32 {
                edges.push((u, v));
                edges.push((u + 5, v + 5));
            }
        }
        let g = Graph::from_edges(10, edges);
        let (s, roots) = identity_and_roots(&g);
        let sets = candidate_sets(&s, &g, &roots, 1, &CandidateConfig::default());
        for set in &sets {
            let in_first = set.iter().filter(|&&r| r < 5).count();
            assert!(in_first == 0 || in_first == set.len(), "mixed set {set:?}");
        }
    }

    #[test]
    fn groups_respect_size_cap() {
        let g = caveman(&CavemanConfig {
            num_nodes: 400,
            num_cliques: 50,
            ..CavemanConfig::default()
        });
        let (s, roots) = identity_and_roots(&g);
        let config = CandidateConfig {
            max_group_size: 16,
            max_shingle_splits: 4,
        };
        let sets = candidate_sets(&s, &g, &roots, 11, &config);
        assert!(!sets.is_empty());
        for set in &sets {
            assert!(set.len() >= 2);
            assert!(set.len() <= 16, "oversized candidate set: {}", set.len());
        }
    }

    #[test]
    fn different_seeds_vary_the_grouping() {
        let g = caveman(&CavemanConfig {
            num_nodes: 200,
            ..CavemanConfig::default()
        });
        let (s, roots) = identity_and_roots(&g);
        let config = CandidateConfig {
            max_group_size: 32,
            max_shingle_splits: 4,
        };
        let a = candidate_sets(&s, &g, &roots, 1, &config);
        let b = candidate_sets(&s, &g, &roots, 2, &config);
        // Not a strict requirement, but with overwhelming probability the groupings
        // differ between seeds (this is what lets SLUGGER explore more pairs over
        // iterations).
        assert_ne!(a, b);
    }

    #[test]
    fn isolated_roots_are_dropped() {
        let g = Graph::from_edges(4, vec![(0, 1)]);
        let (s, roots) = identity_and_roots(&g);
        let sets = candidate_sets(&s, &g, &roots, 5, &CandidateConfig::default());
        // Nodes 2 and 3 are isolated: they may appear in a set only alongside others,
        // and singleton sets must never be emitted.
        for set in &sets {
            assert!(set.len() >= 2);
        }
    }

    #[test]
    fn thread_count_never_changes_the_grouping() {
        let g = caveman(&CavemanConfig {
            num_nodes: 300,
            num_cliques: 30,
            ..CavemanConfig::default()
        });
        let (s, roots) = identity_and_roots(&g);
        let config = CandidateConfig {
            max_group_size: 24,
            max_shingle_splits: 4,
        };
        let baseline = candidate_sets(&s, &g, &roots, 13, &config);
        for threads in [2usize, 4, 8] {
            let mut scratch = CandidateScratch::default();
            let sets = candidate_sets_with(&s, &g, &roots, 13, &config, threads, &mut scratch);
            assert_eq!(sets, baseline, "grouping changed at {threads} threads");
        }
    }

    #[test]
    fn scratch_reuse_never_changes_the_grouping() {
        let g = caveman(&CavemanConfig {
            num_nodes: 250,
            ..CavemanConfig::default()
        });
        let (s, roots) = identity_and_roots(&g);
        let config = CandidateConfig {
            max_group_size: 20,
            max_shingle_splits: 3,
        };
        let mut scratch = CandidateScratch::default();
        for seed in 0..6u64 {
            let reused = candidate_sets_with(&s, &g, &roots, seed, &config, 1, &mut scratch);
            let fresh = candidate_sets(&s, &g, &roots, seed, &config);
            assert_eq!(reused, fresh, "seed {seed}");
        }
    }

    #[test]
    fn scratch_survives_switching_graphs() {
        // The node-hash table cache is keyed by (seed, |V|): reusing one scratch
        // across graphs of different sizes — with colliding round seeds — must
        // neither panic nor change the grouping (regression: the cache used to be
        // validated by seed alone and indexed out of bounds on the larger graph).
        let small = caveman(&CavemanConfig {
            num_nodes: 100,
            ..CavemanConfig::default()
        });
        let large = caveman(&CavemanConfig {
            num_nodes: 4000,
            num_cliques: 400,
            ..CavemanConfig::default()
        });
        let config = CandidateConfig::default();
        let mut scratch = CandidateScratch::default();
        for (graph, other) in [(&small, &large), (&large, &small), (&small, &large)] {
            for g in [graph, other] {
                let (s, roots) = identity_and_roots(g);
                let reused = candidate_sets_with(&s, g, &roots, 5, &config, 1, &mut scratch);
                assert_eq!(reused, candidate_sets(&s, g, &roots, 5, &config));
            }
        }
    }

    #[test]
    fn matches_reference_implementation() {
        let g = caveman(&CavemanConfig {
            num_nodes: 350,
            num_cliques: 35,
            ..CavemanConfig::default()
        });
        let (s, roots) = identity_and_roots(&g);
        for (cap, splits) in [(500usize, 10usize), (16, 4), (8, 0), (12, 1)] {
            let config = CandidateConfig {
                max_group_size: cap,
                max_shingle_splits: splits,
            };
            for seed in [0u64, 3, 99] {
                assert_eq!(
                    candidate_sets(&s, &g, &roots, seed, &config),
                    reference::candidate_sets(&s, &g, &roots, seed, &config),
                    "cap {cap} splits {splits} seed {seed}"
                );
            }
        }
    }
}
