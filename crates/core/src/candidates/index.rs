//! Persistent batch-to-batch candidate index: cached min-hash shingles keyed by
//! structural generation, so the incremental re-summarizer stops re-shingling
//! the unchanged world every batch.
//!
//! # Why a cache is possible at all
//!
//! A root's shingle under a fixed permutation seed depends on exactly two
//! inputs: the root's member (leaf) set, and the **current-graph** neighborhood
//! of each member.  Neither input changes unless (a) a delta touches an edge
//! incident to a member — in which case the root is *affected* and the
//! incremental step always dissolves it — or (b) a structural event rewrites
//! the root itself (merge, dissolution, split, root-level prune, compaction).
//! The incremental pipeline's shingle seeds are **batch-stable** (a pure
//! function of the configured seed and the within-batch pass index, see
//! [`crate::incremental::pass_shingle_seed`]), so a shingle computed in batch
//! `n` is byte-identical to what batch `n + k` would recompute — as long as no
//! invalidating event hit the root in between.
//!
//! # Invalidation protocol
//!
//! The index keeps a **generation counter per supernode id**.  Every cached
//! entry records the generation it was computed at; an entry is valid only
//! while the generations still match.  [`MergeEngine`](crate::engine::MergeEngine)
//! records every root retirement in an internal log (enabled only when an
//! index is attached, so the batch pipeline pays nothing) and the owner flushes
//! it into the index through the [`IndexSink`] trait — the same threading
//! pattern as the engine's p/n-edge bookkeeping sink.  The emitting events:
//!
//! * `commit_merge(a, b → m)` retires `a` and `b` (`m` is a fresh id, never
//!   cached);
//! * `dissolve_root`/`dissolve_partial`/`detach_subtree`/`split_root` retire
//!   the dissolved root plus every re-expanded leaf and promoted survivor
//!   (belt-and-braces: the promoted ids could not hold a *valid* entry, but a
//!   generation bump is one array write);
//! * `prune_supernode` on a **root** retires the root and its child trees;
//!   pruning an **internal** node deliberately emits nothing — the root's
//!   member set (and hence its shingle) is unchanged, which is precisely the
//!   case the cache is designed to survive;
//! * `compact` does **not** invalidate: the id-order-preserving
//!   [`CompactionMap`] is applied to the index ([`CandidateIndex::remap`]), so
//!   cached signatures survive arena compaction (pinned by
//!   `tests/candidate_index.rs`).
//!
//! On durable recovery the index is rebuilt **cold** (an empty cache merely
//! recomputes every shingle), so recovery identity holds trivially — see
//! `crate::storage::durable`.
//!
//! # Splice-aware bucketing
//!
//! Cached runs are stored pre-sorted by `(shingle, root)` — exactly the order
//! [`candidate_sets_with`](super::candidate_sets_with) produces by sorting.
//! A batch's fill therefore only sorts the freshly hashed (dirty) roots and
//! **merges** that run with the cached run's valid in-group entries, instead
//! of re-sorting the whole region: the full sort of the index-free path
//! becomes a 2-way splice whose cost tracks the dirty set.  The output is
//! byte-identical to the index-free path by construction (two sorted sequences
//! over disjoint root sets merge to the same total order the full sort
//! reaches), and `tests/candidate_index.rs` pins it against
//! [`super::reference`] through random delta/prune/compact/recovery
//! interleavings.

use super::{fill_keyed, random_split, CandidateConfig, CandidateScratch};
use crate::model::{CompactionMap, HierarchicalSummary, SupernodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use slugger_graph::hash::FxHashMap;
use slugger_graph::AdjacencyList;

/// Receiver of structural invalidation events, threaded through the engine the
/// same way [`crate::engine`]'s p/n-edge bookkeeping sink is.  Implemented by
/// [`CandidateIndex`] (generation bump); the engine buffers events internally
/// and flushes them through `MergeEngine::flush_retired`.
pub trait IndexSink {
    /// `root` stopped being a root (merged away, dissolved, split, pruned) or
    /// was re-promoted with different content: any cached signature for it is
    /// stale from now on.
    fn retire_root(&mut self, root: SupernodeId);
}

/// One cached signature: the shingle of `root` under some round seed, computed
/// at generation `gen` (valid while the index's generation for `root` still
/// equals `gen`).
#[derive(Clone, Copy, Debug)]
struct IndexEntry {
    shingle: u64,
    root: SupernodeId,
    gen: u32,
}

/// The persistent batch-to-batch candidate index (see the module docs).
///
/// Owned by `crate::incremental::IncrementalSummarizer` across batches, like
/// the planner pool and apply workers.  Memory is bounded by the number of
/// distinct round seeds (batch-stable: the per-batch pass count, not the
/// stream length) times the live roots ever cached; compaction remaps entries
/// in place and stale entries are dropped on the next fill of their run.
#[derive(Clone, Default)]
pub struct CandidateIndex {
    /// Structural generation per supernode id; bumped by [`IndexSink::retire_root`].
    gen: Vec<u32>,
    /// Per-round-seed cached runs, each sorted by `(shingle, root)`.
    runs: FxHashMap<u64, Vec<IndexEntry>>,
    /// Roots re-hashed since the last [`CandidateIndex::take_batch_stats`].
    reshingled: usize,
    /// Cache hits served since the last [`CandidateIndex::take_batch_stats`].
    cached: usize,
    /// Current stamp of the membership/coverage marks below.
    stamp: u32,
    /// Group-membership mark per supernode id (valid while equal to `stamp`).
    group_stamp: Vec<u32>,
    /// Cache-hit coverage mark per supernode id (valid while equal to `stamp`).
    covered_stamp: Vec<u32>,
    /// Valid in-group cached entries of the current fill (sorted).
    hits: Vec<(u64, SupernodeId)>,
    /// Roots of the current fill that need fresh hashing.
    fresh: Vec<SupernodeId>,
    /// Merge buffer: cached hits spliced with the fresh run (sorted).
    merged: Vec<(u64, SupernodeId)>,
}

impl IndexSink for CandidateIndex {
    fn retire_root(&mut self, root: SupernodeId) {
        // Ids beyond the vector were never cached; nothing to invalidate.
        if let Some(g) = self.gen.get_mut(root as usize) {
            *g = g.wrapping_add(1);
        }
    }
}

impl CandidateIndex {
    /// A fresh, empty index (every lookup misses until the first fill).
    pub fn new() -> Self {
        CandidateIndex::default()
    }

    /// Drops every cached signature but keeps the allocations (and the
    /// generation history, so retired ids can never resurrect stale entries).
    pub fn clear(&mut self) {
        for run in self.runs.values_mut() {
            run.clear();
        }
    }

    /// Number of cached entries across all runs (tests/debugging).
    pub fn num_entries(&self) -> usize {
        self.runs.values().map(|r| r.len()).sum()
    }

    /// Takes and resets the per-batch effectiveness counters:
    /// `(reshingled, cached)` — roots hashed fresh vs served from the cache
    /// since the last call.
    pub fn take_batch_stats(&mut self) -> (usize, usize) {
        let out = (self.reshingled, self.cached);
        self.reshingled = 0;
        self.cached = 0;
        out
    }

    /// Applies an id-order-preserving arena compaction to the index: every
    /// entry's root id is remapped (dead ids dropped) and the generation vector
    /// is renumbered.  Because the remap preserves id order, every run stays
    /// sorted by `(shingle, root)` without re-sorting — cached signatures
    /// survive compaction.
    pub fn remap(&mut self, map: &CompactionMap) {
        let gen = &self.gen;
        for run in self.runs.values_mut() {
            run.retain_mut(|e| {
                if gen.get(e.root as usize) != Some(&e.gen) {
                    return false; // stale anyway; drop instead of remapping
                }
                match map.remap(e.root) {
                    Some(new) => {
                        e.root = new;
                        true
                    }
                    None => false,
                }
            });
        }
        // Order-preserving remap: live old ids keep their relative order, so
        // pushing their generations in old-id order indexes them by new id.
        let mut new_gen = Vec::with_capacity(self.gen.len());
        for (old, &g) in self.gen.iter().enumerate() {
            if map.remap(old as SupernodeId).is_some() {
                new_gen.push(g);
            }
        }
        self.gen = new_gen;
    }

    /// Grows the per-id vectors to cover `max_id`.
    fn ensure_capacity(&mut self, max_id: SupernodeId) {
        let need = max_id as usize + 1;
        if self.gen.len() < need {
            self.gen.resize(need, 0);
            self.group_stamp.resize(need, 0);
            self.covered_stamp.resize(need, 0);
        }
    }

    /// Advances the stamp, resetting the mark vectors on (theoretical) wrap.
    fn next_stamp(&mut self) -> u32 {
        if self.stamp == u32::MAX {
            self.group_stamp.fill(0);
            self.covered_stamp.fill(0);
            self.stamp = 0;
        }
        self.stamp += 1;
        self.stamp
    }

    /// The cache-aware counterpart of [`fill_keyed`] + sort: leaves
    /// `scratch.keyed` holding the sorted `(shingle, root)` pairs of `group`
    /// under `seed`, hashing only the roots without a valid cached entry and
    /// splicing the rest out of the cached run.  Updates the run in place
    /// (valid out-of-group entries are retained, stale ones dropped).
    fn fill_keyed_cached<G: AdjacencyList + Sync>(
        &mut self,
        summary: &HierarchicalSummary,
        graph: &G,
        group: &[SupernodeId],
        seed: u64,
        threads: usize,
        scratch: &mut CandidateScratch,
    ) {
        let max_id = group.iter().copied().max().unwrap_or(0);
        self.ensure_capacity(max_id);
        let stamp = self.next_stamp();
        let CandidateIndex {
            gen,
            runs,
            reshingled,
            cached,
            group_stamp,
            covered_stamp,
            hits,
            fresh,
            merged,
            ..
        } = self;
        for &r in group {
            group_stamp[r as usize] = stamp;
        }
        // Valid in-group cached entries, in run order (sorted by construction).
        hits.clear();
        if let Some(run) = runs.get(&seed) {
            for e in run {
                let i = e.root as usize;
                if group_stamp[i] == stamp && gen[i] == e.gen {
                    hits.push((e.shingle, e.root));
                    covered_stamp[i] = stamp;
                }
            }
        }
        // Hash the uncovered (dirty or never-seen) roots fresh, then sort just
        // that run — the splice below replaces the full-region re-sort.
        fresh.clear();
        fresh.extend(
            group
                .iter()
                .copied()
                .filter(|&r| covered_stamp[r as usize] != stamp),
        );
        fill_keyed(summary, graph, fresh, seed, threads, scratch);
        scratch.keyed.sort_unstable();
        *reshingled += fresh.len();
        *cached += hits.len();
        // Splice: cached hits + fresh run, both sorted, disjoint root sets.
        merged.clear();
        merged.reserve(hits.len() + scratch.keyed.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < hits.len() && j < scratch.keyed.len() {
            if hits[i] <= scratch.keyed[j] {
                merged.push(hits[i]);
                i += 1;
            } else {
                merged.push(scratch.keyed[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&hits[i..]);
        merged.extend_from_slice(&scratch.keyed[j..]);
        debug_assert!(merged.windows(2).all(|w| w[0] < w[1]));
        // Refresh the run: valid out-of-group entries (context roots cached in
        // an earlier batch that sat this one out keep their signatures) spliced
        // with the group's entries at their current generations.
        let old_run = runs.remove(&seed).unwrap_or_default();
        let mut new_run = Vec::with_capacity(old_run.len() + merged.len());
        let mut keep = old_run.iter().filter(|e| {
            let i = e.root as usize;
            group_stamp[i] != stamp && gen[i] == e.gen
        });
        let mut next_keep = keep.next();
        let mut m = 0usize;
        while m < merged.len() || next_keep.is_some() {
            let take_keep = match (next_keep, merged.get(m)) {
                (Some(k), Some(&(sh, r))) => (k.shingle, k.root) <= (sh, r),
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_keep {
                new_run.push(*next_keep.unwrap());
                next_keep = keep.next();
            } else {
                let (shingle, root) = merged[m];
                new_run.push(IndexEntry {
                    shingle,
                    root,
                    gen: gen[root as usize],
                });
                m += 1;
            }
        }
        runs.insert(seed, new_run);
        std::mem::swap(&mut scratch.keyed, merged);
    }
}

/// [`super::candidate_sets_with`] backed by a persistent [`CandidateIndex`]:
/// identical control flow and **byte-identical output** for the same inputs,
/// but the initial (round-0) shingle fill of the call hashes only the roots the
/// index cannot serve and splices the cached runs into the sort-based
/// bucketing.  Deeper re-split rounds hash fresh exactly like the index-free
/// path — they only ever see oversized buckets, which are bounded by the group
/// cap and rare after the first split.
///
/// The caller owns the invalidation contract: every root whose member set or
/// member neighborhoods changed since its entry was cached must have been
/// retired through [`IndexSink::retire_root`] (see the module docs for the
/// event inventory).  `tests/candidate_index.rs` pins the equivalence with
/// [`super::reference::candidate_sets`] under random interleavings.
#[allow(clippy::too_many_arguments)]
pub fn candidate_sets_indexed<G: AdjacencyList + Sync>(
    summary: &HierarchicalSummary,
    graph: &G,
    roots: &[SupernodeId],
    seed: u64,
    config: &CandidateConfig,
    threads: usize,
    scratch: &mut CandidateScratch,
    index: &mut CandidateIndex,
) -> Vec<Vec<SupernodeId>> {
    let mut result = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_cafe_f00d_d00d);
    let mut queue: Vec<(Vec<SupernodeId>, usize)> = Vec::new();
    if roots.len() >= 2 {
        queue.push((roots.to_vec(), 0));
    }
    while let Some((group, round)) = queue.pop() {
        if round >= config.max_shingle_splits {
            random_split(group, config.max_group_size, &mut rng, &mut result);
            continue;
        }
        let round_seed = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(round as u64 + 1);
        if round == 0 {
            // The full-region fill — the dominant cost — goes through the cache.
            index.fill_keyed_cached(summary, graph, &group, round_seed, threads, scratch);
        } else {
            fill_keyed(summary, graph, &group, round_seed, threads, scratch);
            scratch.keyed.sort_unstable();
        }
        if scratch.keyed.last().map(|&(s, _)| s) == scratch.keyed.first().map(|&(s, _)| s)
            && round > 0
        {
            random_split(group, config.max_group_size, &mut rng, &mut result);
            continue;
        }
        let keyed = &scratch.keyed[..];
        let mut start = 0;
        while start < keyed.len() {
            let shingle = keyed[start].0;
            let mut end = start + 1;
            while end < keyed.len() && keyed[end].0 == shingle {
                end += 1;
            }
            let len = end - start;
            if len >= 2 {
                let bucket: Vec<SupernodeId> = keyed[start..end].iter().map(|&(_, r)| r).collect();
                if len <= config.max_group_size {
                    result.push(bucket);
                } else {
                    queue.push((bucket, round + 1));
                }
            }
            start = end;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::candidate_sets_with;
    use slugger_graph::gen::{caveman, CavemanConfig};
    use slugger_graph::Graph;

    fn setup(num_nodes: usize) -> (HierarchicalSummary, Vec<SupernodeId>, Graph) {
        let g = caveman(&CavemanConfig {
            num_nodes,
            num_cliques: (num_nodes / 8).max(4),
            ..CavemanConfig::default()
        });
        let summary = HierarchicalSummary::identity(g.num_nodes());
        let roots: Vec<SupernodeId> = summary.roots().collect();
        (summary, roots, g)
    }

    #[test]
    fn cold_index_matches_the_index_free_path() {
        let (summary, roots, g) = setup(240);
        let config = CandidateConfig {
            max_group_size: 24,
            max_shingle_splits: 4,
        };
        for seed in [0u64, 7, 99] {
            let mut scratch = CandidateScratch::default();
            let mut index = CandidateIndex::new();
            let indexed = candidate_sets_indexed(
                &summary,
                &g,
                &roots,
                seed,
                &config,
                1,
                &mut scratch,
                &mut index,
            );
            let mut scratch2 = CandidateScratch::default();
            let plain = candidate_sets_with(&summary, &g, &roots, seed, &config, 1, &mut scratch2);
            assert_eq!(indexed, plain, "seed {seed}");
            assert!(index.num_entries() > 0, "round-0 run must be cached");
        }
    }

    #[test]
    fn warm_index_serves_hits_and_stays_identical() {
        let (summary, roots, g) = setup(300);
        let config = CandidateConfig::default();
        let mut scratch = CandidateScratch::default();
        let mut index = CandidateIndex::new();
        let first = candidate_sets_indexed(
            &summary,
            &g,
            &roots,
            5,
            &config,
            1,
            &mut scratch,
            &mut index,
        );
        let (reshingled, cached) = index.take_batch_stats();
        assert_eq!(reshingled, roots.len());
        assert_eq!(cached, 0);
        // Nothing changed: the second call must be all hits, same output.
        let second = candidate_sets_indexed(
            &summary,
            &g,
            &roots,
            5,
            &config,
            1,
            &mut scratch,
            &mut index,
        );
        assert_eq!(first, second);
        let (reshingled, cached) = index.take_batch_stats();
        assert_eq!(reshingled, 0);
        assert_eq!(cached, roots.len());
    }

    #[test]
    fn retirement_forces_a_rehash_of_only_the_retired_roots() {
        let (summary, roots, g) = setup(300);
        let config = CandidateConfig::default();
        let mut scratch = CandidateScratch::default();
        let mut index = CandidateIndex::new();
        candidate_sets_indexed(
            &summary,
            &g,
            &roots,
            5,
            &config,
            1,
            &mut scratch,
            &mut index,
        );
        index.take_batch_stats();
        for &r in &roots[..10] {
            index.retire_root(r);
        }
        let sets = candidate_sets_indexed(
            &summary,
            &g,
            &roots,
            5,
            &config,
            1,
            &mut scratch,
            &mut index,
        );
        let (reshingled, cached) = index.take_batch_stats();
        assert_eq!(reshingled, 10);
        assert_eq!(cached, roots.len() - 10);
        let mut scratch2 = CandidateScratch::default();
        let plain = candidate_sets_with(&summary, &g, &roots, 5, &config, 1, &mut scratch2);
        assert_eq!(sets, plain);
    }

    #[test]
    fn out_of_group_entries_survive_a_smaller_fill() {
        // A fill over a subset must not evict the cached signatures of roots
        // that sat the round out: the follow-up full fill still hits on them.
        let (summary, roots, g) = setup(280);
        let config = CandidateConfig::default();
        let mut scratch = CandidateScratch::default();
        let mut index = CandidateIndex::new();
        candidate_sets_indexed(
            &summary,
            &g,
            &roots,
            3,
            &config,
            1,
            &mut scratch,
            &mut index,
        );
        index.take_batch_stats();
        let subset: Vec<SupernodeId> = roots.iter().copied().step_by(2).collect();
        candidate_sets_indexed(
            &summary,
            &g,
            &subset,
            3,
            &config,
            1,
            &mut scratch,
            &mut index,
        );
        index.take_batch_stats();
        candidate_sets_indexed(
            &summary,
            &g,
            &roots,
            3,
            &config,
            1,
            &mut scratch,
            &mut index,
        );
        let (reshingled, cached) = index.take_batch_stats();
        assert_eq!(reshingled, 0, "full-set entries must have survived");
        assert_eq!(cached, roots.len());
    }
}
