//! The hierarchical graph summarization model `G = (S, P+, P−, H)` (Sect. II-B).
//!
//! A [`HierarchicalSummary`] stores
//!
//! * a forest of **supernodes** (`S` and the h-edges `H` as parent/children links) in
//!   an arena indexed by [`SupernodeId`]; the first `|V|` entries are the singleton
//!   leaf supernodes `{0}, {1}, …`;
//! * **p-edges** (`P+`) and **n-edges** (`P−`) between supernodes, stored once per
//!   unordered pair in a hash map plus per-supernode incidence sets.
//!
//! The represented graph has an edge `(u, v)` iff the number of p-edges between
//! supernodes containing `u` and `v` respectively exceeds the number of such n-edges
//! (the paper's interpretation rule).  [`crate::decode`] implements full and partial
//! decompression on top of this structure.

use serde::{Deserialize, Serialize};
use slugger_graph::hash::{FxHashMap, FxHashSet};
use slugger_graph::NodeId;

/// Identifier of a supernode within a [`HierarchicalSummary`] arena.
pub type SupernodeId = u32;

/// Sign of a correction/superedge: `+1` for a p-edge, `-1` for an n-edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeSign {
    /// Positive edge: "all pairs of subnodes between the two supernodes are adjacent".
    Positive,
    /// Negative edge: "no pair of subnodes between the two supernodes is adjacent".
    Negative,
}

impl EdgeSign {
    /// Numeric weight used by the interpretation rule.
    #[inline]
    pub fn weight(self) -> i32 {
        match self {
            EdgeSign::Positive => 1,
            EdgeSign::Negative => -1,
        }
    }

    /// Builds a sign from a non-zero weight.
    #[inline]
    pub fn from_weight(w: i32) -> Option<EdgeSign> {
        match w {
            1 => Some(EdgeSign::Positive),
            -1 => Some(EdgeSign::Negative),
            _ => None,
        }
    }
}

/// One supernode of the hierarchy forest.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Supernode {
    /// Parent in the hierarchy forest (`None` for roots).
    pub parent: Option<SupernodeId>,
    /// Direct children (empty for leaves). During the merging phase every internal
    /// supernode has exactly two children; pruning may later rewire to higher arity.
    pub children: Vec<SupernodeId>,
    /// Subnodes contained in this supernode, sorted ascending.
    pub members: Vec<NodeId>,
    /// Whether the supernode is still part of the model (pruning clears this).
    pub alive: bool,
}

impl Supernode {
    /// Whether this supernode is a singleton leaf.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Number of subnodes contained.
    pub fn size(&self) -> usize {
        self.members.len()
    }
}

/// Canonical unordered key of a supernode pair (allows self-loops).
#[inline]
pub fn edge_key(a: SupernodeId, b: SupernodeId) -> (SupernodeId, SupernodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The hierarchical graph summarization model.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct HierarchicalSummary {
    /// Number of subnodes `|V|` of the summarized graph.
    num_subnodes: usize,
    /// Supernode arena. Indices `0..num_subnodes` are the singleton leaves.
    supernodes: Vec<Supernode>,
    /// p/n-edges keyed by canonical unordered supernode pair.
    edges: FxHashMap<(SupernodeId, SupernodeId), EdgeSign>,
    /// For each supernode, the set of supernodes it shares a p/n-edge with
    /// (includes itself when a self-loop exists).
    incidence: Vec<FxHashSet<SupernodeId>>,
    /// Number of p-edges currently stored.
    num_p_edges: usize,
    /// Number of n-edges currently stored.
    num_n_edges: usize,
}

impl HierarchicalSummary {
    /// Creates the identity summary of a graph with `num_subnodes` nodes: one singleton
    /// supernode per subnode and no edges.  `slugger-core`'s driver then adds one
    /// p-edge per subedge (Algorithm 1, lines 1–4).
    pub fn identity(num_subnodes: usize) -> Self {
        let supernodes = (0..num_subnodes)
            .map(|u| Supernode {
                parent: None,
                children: Vec::new(),
                members: vec![u as NodeId],
                alive: true,
            })
            .collect();
        HierarchicalSummary {
            num_subnodes,
            supernodes,
            edges: FxHashMap::default(),
            incidence: vec![FxHashSet::default(); num_subnodes],
            num_p_edges: 0,
            num_n_edges: 0,
        }
    }

    /// Number of subnodes of the summarized graph.
    pub fn num_subnodes(&self) -> usize {
        self.num_subnodes
    }

    /// Number of supernodes ever allocated (including pruned ones).
    pub fn arena_len(&self) -> usize {
        self.supernodes.len()
    }

    /// Number of supernodes currently alive.
    pub fn num_supernodes(&self) -> usize {
        self.supernodes.iter().filter(|s| s.alive).count()
    }

    /// Access to a supernode by id.
    #[inline]
    pub fn supernode(&self, id: SupernodeId) -> &Supernode {
        &self.supernodes[id as usize]
    }

    /// The leaf supernode of a subnode (by construction, ids coincide).
    ///
    /// `subnode` must be a valid subnode id (`< num_subnodes`); use
    /// [`HierarchicalSummary::try_leaf_of`] when the id comes from outside the
    /// process.  In release builds an out-of-range id flows through unchecked
    /// and panics later as an arena index error.
    #[inline]
    pub fn leaf_of(&self, subnode: NodeId) -> SupernodeId {
        debug_assert!((subnode as usize) < self.num_subnodes);
        subnode as SupernodeId
    }

    /// Fallible [`HierarchicalSummary::leaf_of`]: `None` when `subnode` is not
    /// a subnode of this summary.  Leaf slots (`0..num_subnodes`) are alive in
    /// every valid summary, so a `Some` id is always safe to walk — ids at or
    /// above `num_subnodes` would name interior (possibly dead) arena slots or
    /// fall outside the arena entirely.
    #[inline]
    pub fn try_leaf_of(&self, subnode: NodeId) -> Option<SupernodeId> {
        ((subnode as usize) < self.num_subnodes).then_some(subnode as SupernodeId)
    }

    /// Parent of a supernode, if any.
    #[inline]
    pub fn parent(&self, id: SupernodeId) -> Option<SupernodeId> {
        self.supernodes[id as usize].parent
    }

    /// Direct children of a supernode.
    #[inline]
    pub fn children(&self, id: SupernodeId) -> &[SupernodeId] {
        &self.supernodes[id as usize].children
    }

    /// Sorted member subnodes of a supernode.
    #[inline]
    pub fn members(&self, id: SupernodeId) -> &[NodeId] {
        &self.supernodes[id as usize].members
    }

    /// Whether the supernode is alive (not pruned).
    #[inline]
    pub fn is_alive(&self, id: SupernodeId) -> bool {
        self.supernodes[id as usize].alive
    }

    /// Whether the supernode is a root (alive and parentless).
    #[inline]
    pub fn is_root(&self, id: SupernodeId) -> bool {
        let s = &self.supernodes[id as usize];
        s.alive && s.parent.is_none()
    }

    /// Iterator over all alive root supernodes.
    pub fn roots(&self) -> impl Iterator<Item = SupernodeId> + '_ {
        self.supernodes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive && s.parent.is_none())
            .map(|(i, _)| i as SupernodeId)
    }

    /// The root of the hierarchy tree containing `id` (climbs parent pointers).
    pub fn root_of(&self, id: SupernodeId) -> SupernodeId {
        let mut cur = id;
        while let Some(p) = self.supernodes[cur as usize].parent {
            cur = p;
        }
        cur
    }

    /// Ancestor chain of a supernode, starting at the supernode itself and ending at
    /// its root.
    pub fn ancestors_inclusive(&self, id: SupernodeId) -> Vec<SupernodeId> {
        let mut out = vec![id];
        let mut cur = id;
        while let Some(p) = self.supernodes[cur as usize].parent {
            out.push(p);
            cur = p;
        }
        out
    }

    /// All supernodes in the tree rooted at `root` (preorder).
    pub fn tree_supernodes(&self, root: SupernodeId) -> Vec<SupernodeId> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(x) = stack.pop() {
            out.push(x);
            stack.extend_from_slice(&self.supernodes[x as usize].children);
        }
        out
    }

    /// Allocates a fresh internal supernode with the given children, whose members are
    /// the union of the children's members.  The children must currently be roots.
    /// Returns the new supernode's id.
    pub fn merge_roots(&mut self, a: SupernodeId, b: SupernodeId) -> SupernodeId {
        let id = self.supernodes.len() as SupernodeId;
        self.merge_roots_at(a, b, id)
    }

    /// [`HierarchicalSummary::merge_roots`] writing the merged supernode into a
    /// *caller-chosen* arena slot `id`.
    ///
    /// The conflict-partitioned parallel apply stage ([`crate::engine::apply`])
    /// commits independent merge batches out of set-index order but must end up with
    /// the *identical* arena the serial ascending-set-index replay would build, so
    /// every merge's slot is precomputed and forced here.  Slots between the current
    /// arena end and `id` are filled with dead placeholders; each of them is
    /// overwritten by exactly one later commit of the same apply stage, so the arena
    /// is dense again (and every placeholder alive) by the time any iterator runs.
    pub fn merge_roots_at(
        &mut self,
        a: SupernodeId,
        b: SupernodeId,
        id: SupernodeId,
    ) -> SupernodeId {
        assert!(
            self.is_root(a) && self.is_root(b),
            "merge_roots requires two roots"
        );
        assert_ne!(a, b, "cannot merge a root with itself");
        let idx = id as usize;
        if idx >= self.supernodes.len() {
            self.supernodes.resize_with(idx + 1, || Supernode {
                parent: None,
                children: Vec::new(),
                members: Vec::new(),
                alive: false,
            });
            self.incidence.resize_with(idx + 1, FxHashSet::default);
        }
        debug_assert!(
            !self.supernodes[idx].alive,
            "forced arena slot {id} is already occupied"
        );
        let members = merge_sorted(
            &self.supernodes[a as usize].members,
            &self.supernodes[b as usize].members,
        );
        self.supernodes[idx] = Supernode {
            parent: None,
            children: vec![a, b],
            members,
            alive: true,
        };
        self.supernodes[a as usize].parent = Some(id);
        self.supernodes[b as usize].parent = Some(id);
        id
    }

    /// Allocates a fresh internal supernode adopting an arbitrary number of current
    /// roots as its children (the general-arity counterpart of
    /// [`HierarchicalSummary::merge_roots`], used when reconstructing a pruned
    /// hierarchy from storage).  Returns the new supernode's id.
    pub fn create_supernode_with_children(&mut self, children: &[SupernodeId]) -> SupernodeId {
        assert!(
            children.len() >= 2,
            "a supernode needs at least two children"
        );
        for &c in children {
            assert!(self.is_root(c), "child {c} must currently be a root");
        }
        let id = self.supernodes.len() as SupernodeId;
        let mut members: Vec<NodeId> = Vec::new();
        for &c in children {
            members.extend_from_slice(&self.supernodes[c as usize].members);
        }
        members.sort_unstable();
        self.supernodes.push(Supernode {
            parent: None,
            children: children.to_vec(),
            members,
            alive: true,
        });
        self.incidence.push(FxHashSet::default());
        for &c in children {
            self.supernodes[c as usize].parent = Some(id);
        }
        id
    }

    /// Number of p-edges `|P+|`.
    pub fn num_p_edges(&self) -> usize {
        self.num_p_edges
    }

    /// Number of n-edges `|P−|`.
    pub fn num_n_edges(&self) -> usize {
        self.num_n_edges
    }

    /// Number of h-edges `|H|`: every alive non-root supernode contributes exactly one
    /// (the edge from its parent).
    pub fn num_h_edges(&self) -> usize {
        self.supernodes
            .iter()
            .filter(|s| s.alive && s.parent.is_some())
            .count()
    }

    /// The encoding cost `Cost(G) = |P+| + |P−| + |H|` (Eq. 1).
    pub fn encoding_cost(&self) -> usize {
        self.num_p_edges + self.num_n_edges + self.num_h_edges()
    }

    /// Sign of the p/n-edge between two supernodes, if present.
    #[inline]
    pub fn edge_sign(&self, a: SupernodeId, b: SupernodeId) -> Option<EdgeSign> {
        self.edges.get(&edge_key(a, b)).copied()
    }

    /// Signed weight (+1 p-edge, −1 n-edge, 0 none) between two supernodes.
    #[inline]
    pub fn edge_weight(&self, a: SupernodeId, b: SupernodeId) -> i32 {
        self.edge_sign(a, b).map_or(0, EdgeSign::weight)
    }

    /// Supernodes incident to `id` through a p/n-edge (including `id` itself when a
    /// self-loop exists).
    pub fn incident(&self, id: SupernodeId) -> impl Iterator<Item = SupernodeId> + '_ {
        self.incidence[id as usize].iter().copied()
    }

    /// Number of p/n-edges incident to `id` (self-loop counts once).
    pub fn incident_count(&self, id: SupernodeId) -> usize {
        self.incidence[id as usize].len()
    }

    /// Iterator over all p/n-edges as `((a, b), sign)` with `a <= b`.
    pub fn pn_edges(&self) -> impl Iterator<Item = ((SupernodeId, SupernodeId), EdgeSign)> + '_ {
        self.edges.iter().map(|(&k, &s)| (k, s))
    }

    /// Inserts or replaces the p/n-edge between `a` and `b`.  Returns the previous sign.
    pub fn set_edge(&mut self, a: SupernodeId, b: SupernodeId, sign: EdgeSign) -> Option<EdgeSign> {
        debug_assert!(self.supernodes[a as usize].alive && self.supernodes[b as usize].alive);
        let key = edge_key(a, b);
        let prev = self.edges.insert(key, sign);
        match prev {
            Some(EdgeSign::Positive) => self.num_p_edges -= 1,
            Some(EdgeSign::Negative) => self.num_n_edges -= 1,
            None => {
                self.incidence[a as usize].insert(b);
                self.incidence[b as usize].insert(a);
            }
        }
        match sign {
            EdgeSign::Positive => self.num_p_edges += 1,
            EdgeSign::Negative => self.num_n_edges += 1,
        }
        prev
    }

    /// Removes the p/n-edge between `a` and `b`, if present. Returns the removed sign.
    pub fn remove_edge(&mut self, a: SupernodeId, b: SupernodeId) -> Option<EdgeSign> {
        let key = edge_key(a, b);
        let prev = self.edges.remove(&key);
        if let Some(sign) = prev {
            match sign {
                EdgeSign::Positive => self.num_p_edges -= 1,
                EdgeSign::Negative => self.num_n_edges -= 1,
            }
            self.incidence[a as usize].remove(&b);
            self.incidence[b as usize].remove(&a);
        }
        prev
    }

    /// Removes a supernode from the model: detaches it from its parent, re-parents its
    /// children to the removed node's parent (or makes them roots), and drops all
    /// incident p/n-edges.  Callers (the pruning step) are responsible for having
    /// re-encoded those edges first so that the represented graph does not change.
    ///
    /// Leaves (singleton supernodes) cannot be pruned — they carry the identity of the
    /// subnodes.
    pub fn prune_supernode(&mut self, id: SupernodeId) {
        assert!(
            !self.supernodes[id as usize].is_leaf(),
            "singleton leaf supernodes cannot be pruned"
        );
        assert!(
            self.supernodes[id as usize].alive,
            "supernode already pruned"
        );
        // Drop incident p/n-edges.
        let incident: Vec<SupernodeId> = self.incidence[id as usize].iter().copied().collect();
        for other in incident {
            self.remove_edge(id, other);
        }
        let parent = self.supernodes[id as usize].parent;
        let children = std::mem::take(&mut self.supernodes[id as usize].children);
        for &c in &children {
            self.supernodes[c as usize].parent = parent;
        }
        if let Some(p) = parent {
            let plist = &mut self.supernodes[p as usize].children;
            plist.retain(|&x| x != id);
            plist.extend_from_slice(&children);
        }
        self.supernodes[id as usize].alive = false;
        self.supernodes[id as usize].parent = None;
        self.supernodes[id as usize].members.clear();
        self.supernodes[id as usize].members.shrink_to_fit();
    }

    /// Structurally dissolves the tree rooted at `root` back into singleton leaves:
    /// every internal supernode of the tree is killed (children/members cleared,
    /// marked dead) and every leaf becomes a parentless root again.  Returns the ids
    /// of **all** supernodes that belonged to the tree (leaves and killed internal
    /// nodes alike), in the deterministic preorder of
    /// [`HierarchicalSummary::tree_supernodes`].
    ///
    /// The caller must have removed every p/n-edge incident to the tree's supernodes
    /// first (the incremental engine routes those removals through its bookkeeping
    /// sink); a dead supernode with edges would corrupt the model.  Used by the
    /// dirty-region re-expansion of `slugger_core::incremental`.
    pub fn dissolve_tree(&mut self, root: SupernodeId) -> Vec<SupernodeId> {
        assert!(self.is_root(root), "only a root tree can be dissolved");
        let nodes = self.tree_supernodes(root);
        for &x in &nodes {
            debug_assert!(
                self.incidence[x as usize].is_empty(),
                "supernode {x} still carries p/n-edges; remove them before dissolving"
            );
            let s = &mut self.supernodes[x as usize];
            s.parent = None;
            if !s.children.is_empty() {
                s.children.clear();
                s.members.clear();
                s.members.shrink_to_fit();
                s.alive = false;
            }
        }
        nodes
    }

    /// Structurally splits the tree rooted at `root` along an upward-closed
    /// `kill` set of its **internal** supernodes: every kill node is killed
    /// (children/members cleared, marked dead) and every alive child of a kill
    /// node that is not itself killed becomes a parentless root.  Returns the
    /// promoted roots in ascending id order.
    ///
    /// This is the subtree-granular counterpart of
    /// [`HierarchicalSummary::dissolve_tree`]: a delta that touches a few leaves
    /// only needs their ancestor *spine* killed, and every intact sibling
    /// subtree survives as its own root.  `kill` must be sorted ascending,
    /// contain `root`, and be upward-closed within the tree (the parent of every
    /// non-root kill node is itself killed) — otherwise a killed node would keep
    /// an alive parent, corrupting the forest.
    ///
    /// As with [`HierarchicalSummary::dissolve_tree`], the caller must have
    /// removed every p/n-edge incident to the killed nodes first (the
    /// incremental engine routes those removals — and the exact re-attachment of
    /// the surviving structure's edges — through its bookkeeping sink; see
    /// `MergeEngine::dissolve_partial`).
    pub fn detach_and_kill(&mut self, root: SupernodeId, kill: &[SupernodeId]) -> Vec<SupernodeId> {
        assert!(self.is_root(root), "only a root tree can be split");
        debug_assert!(kill.windows(2).all(|w| w[0] < w[1]), "kill must be sorted");
        debug_assert!(
            kill.binary_search(&root).is_ok(),
            "the kill set must contain the root"
        );
        let mut promoted: Vec<SupernodeId> = Vec::new();
        for &d in kill {
            debug_assert!(
                !self.supernodes[d as usize].is_leaf(),
                "kill set may only contain internal nodes"
            );
            debug_assert!(
                self.supernodes[d as usize]
                    .parent
                    .is_none_or(|p| kill.binary_search(&p).is_ok()),
                "kill set must be upward-closed"
            );
            let children = std::mem::take(&mut self.supernodes[d as usize].children);
            for &c in &children {
                if kill.binary_search(&c).is_err() {
                    self.supernodes[c as usize].parent = None;
                    promoted.push(c);
                }
            }
            debug_assert!(
                self.incidence[d as usize].is_empty(),
                "supernode {d} still carries p/n-edges; remove them before splitting"
            );
            let s = &mut self.supernodes[d as usize];
            s.parent = None;
            s.members.clear();
            s.members.shrink_to_fit();
            s.alive = false;
        }
        promoted.sort_unstable();
        promoted
    }

    /// Number of dead arena slots (pruned or dissolved supernodes whose ids are
    /// still allocated).  Long delta streams accumulate these; compare against
    /// [`HierarchicalSummary::arena_len`] to decide when to
    /// [`HierarchicalSummary::compact`].
    pub fn num_dead_slots(&self) -> usize {
        self.supernodes.iter().filter(|s| !s.alive).count()
    }

    /// Compacts the arena: drops every dead slot and renumbers the surviving
    /// supernodes **order-preservingly** (alive ids keep their relative order;
    /// leaves `0..num_subnodes` are always alive and therefore keep their exact
    /// ids).  Edges, incidence sets and parent/child links are rewritten to the
    /// new ids; the id-free canonical form of the model is untouched.
    ///
    /// Because the remap preserves id order, every downstream consumer that only
    /// depends on the *relative* order of supernode ids (candidate bucketing,
    /// pivot selection, root iteration, storage's children-before-parents
    /// invariant) behaves identically on the compacted summary — which is what
    /// lets the incremental engine compact mid-stream without changing subsequent
    /// outputs.
    ///
    /// Must not be called while forced-slot placeholders from a parallel apply
    /// stage are pending ([`HierarchicalSummary::merge_roots_at`]): a placeholder
    /// is a dead slot that is *about* to be written, and compaction would reclaim
    /// it.  The engine only compacts between batches, when the arena is fully
    /// committed.
    ///
    /// Returns the old-id → new-id [`CompactionMap`].
    pub fn compact(&mut self) -> CompactionMap {
        let arena = self.supernodes.len();
        let mut mapping: Vec<Option<SupernodeId>> = vec![None; arena];
        let mut next = 0u32;
        for (id, s) in self.supernodes.iter().enumerate() {
            if s.alive {
                mapping[id] = Some(next);
                next += 1;
            }
        }
        let live = next as usize;
        if live == arena {
            return CompactionMap {
                mapping,
                reclaimed: 0,
            };
        }
        let remap = |id: SupernodeId| -> SupernodeId {
            mapping[id as usize].expect("live supernode references a dead slot")
        };
        let old_nodes = std::mem::take(&mut self.supernodes);
        self.supernodes = Vec::with_capacity(live);
        for s in old_nodes.into_iter() {
            if !s.alive {
                continue;
            }
            self.supernodes.push(Supernode {
                parent: s.parent.map(remap),
                children: s.children.iter().map(|&c| remap(c)).collect(),
                members: s.members,
                alive: true,
            });
        }
        let old_edges = std::mem::take(&mut self.edges);
        self.incidence = vec![FxHashSet::default(); live];
        for ((a, b), sign) in old_edges {
            let (na, nb) = (remap(a), remap(b));
            self.edges.insert(edge_key(na, nb), sign);
            self.incidence[na as usize].insert(nb);
            self.incidence[nb as usize].insert(na);
        }
        CompactionMap {
            mapping,
            reclaimed: arena - live,
        }
    }

    /// Height of the hierarchy tree rooted at `root` (a lone leaf has height 0).
    pub fn tree_height(&self, root: SupernodeId) -> usize {
        let mut max_h = 0usize;
        let mut stack = vec![(root, 0usize)];
        while let Some((x, h)) = stack.pop() {
            max_h = max_h.max(h);
            for &c in &self.supernodes[x as usize].children {
                stack.push((c, h + 1));
            }
        }
        max_h
    }

    /// Depth of every leaf supernode (indexed by subnode id): the number of h-edges on
    /// the path from the leaf to its root.
    pub fn leaf_depths(&self) -> Vec<usize> {
        let mut depths = vec![0usize; self.num_subnodes];
        for (u, depth) in depths.iter_mut().enumerate() {
            let mut d = 0usize;
            let mut cur = u as SupernodeId;
            while let Some(p) = self.supernodes[cur as usize].parent {
                d += 1;
                cur = p;
            }
            *depth = d;
        }
        depths
    }

    /// Internal consistency check used by tests: parent/child symmetry, member unions,
    /// incidence/edge agreement, edge counters.
    pub fn validate(&self) -> Result<(), String> {
        let mut p = 0usize;
        let mut n = 0usize;
        for (&(a, b), &sign) in &self.edges {
            if !self.supernodes[a as usize].alive || !self.supernodes[b as usize].alive {
                return Err(format!("edge ({a},{b}) touches a pruned supernode"));
            }
            if !self.incidence[a as usize].contains(&b) || !self.incidence[b as usize].contains(&a)
            {
                return Err(format!("edge ({a},{b}) missing from incidence sets"));
            }
            match sign {
                EdgeSign::Positive => p += 1,
                EdgeSign::Negative => n += 1,
            }
        }
        if p != self.num_p_edges || n != self.num_n_edges {
            return Err("edge counters out of sync".into());
        }
        for (i, s) in self.supernodes.iter().enumerate() {
            if !s.alive {
                continue;
            }
            let id = i as SupernodeId;
            if let Some(par) = s.parent {
                if !self.supernodes[par as usize].children.contains(&id) {
                    return Err(format!("supernode {id} not listed among parent's children"));
                }
                if !self.supernodes[par as usize].alive {
                    return Err(format!("supernode {id} has pruned parent"));
                }
            }
            for &c in &s.children {
                if self.supernodes[c as usize].parent != Some(id) {
                    return Err(format!("child {c} of {id} has wrong parent pointer"));
                }
            }
            if !s.children.is_empty() {
                let mut union: Vec<NodeId> = Vec::new();
                for &c in &s.children {
                    union.extend_from_slice(&self.supernodes[c as usize].members);
                }
                union.sort_unstable();
                if union != s.members {
                    return Err(format!("members of {id} are not the union of its children"));
                }
            }
            for &other in &self.incidence[i] {
                if !self.edges.contains_key(&edge_key(id, other)) {
                    return Err(format!(
                        "incidence of {id} references missing edge to {other}"
                    ));
                }
            }
        }
        // Every subnode must belong to exactly one root's member set.
        let mut covered = vec![0usize; self.num_subnodes];
        for r in self.roots() {
            for &u in &self.supernodes[r as usize].members {
                covered[u as usize] += 1;
            }
        }
        if covered.iter().any(|&c| c != 1) {
            return Err("subnodes are not partitioned by the roots".into());
        }
        Ok(())
    }

    /// Test-only invariant breaker: marks a slot dead without detaching its
    /// edges, so tests can exercise the `validate()`-rejection paths that no
    /// public mutator can reach.
    #[cfg(test)]
    pub(crate) fn kill_slot_for_tests(&mut self, id: SupernodeId) {
        self.supernodes[id as usize].alive = false;
    }
}

/// The old-id → new-id mapping produced by [`HierarchicalSummary::compact`].
///
/// Holders of pre-compaction supernode ids (the merge engine's union-find, a
/// caller's root list) translate them through [`CompactionMap::remap`]; dead
/// slots map to `None`.
#[derive(Clone, Debug)]
pub struct CompactionMap {
    mapping: Vec<Option<SupernodeId>>,
    reclaimed: usize,
}

impl CompactionMap {
    /// New id of an old supernode id, or `None` if the slot was dead (reclaimed).
    pub fn remap(&self, old: SupernodeId) -> Option<SupernodeId> {
        self.mapping.get(old as usize).copied().flatten()
    }

    /// Number of dead arena slots reclaimed (0 means the arena was already dense
    /// and nothing moved).
    pub fn reclaimed(&self) -> usize {
        self.reclaimed
    }
}

/// Merges two sorted, disjoint member lists.
fn merge_sorted(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_summary_has_singletons() {
        let s = HierarchicalSummary::identity(4);
        assert_eq!(s.num_subnodes(), 4);
        assert_eq!(s.num_supernodes(), 4);
        assert_eq!(s.num_h_edges(), 0);
        assert_eq!(s.encoding_cost(), 0);
        for u in 0..4u32 {
            assert!(s.is_root(u));
            assert_eq!(s.members(u), &[u]);
            assert!(s.supernode(u).is_leaf());
        }
        s.validate().unwrap();
    }

    #[test]
    fn set_and_remove_edges_maintain_counts() {
        let mut s = HierarchicalSummary::identity(3);
        assert_eq!(s.set_edge(0, 1, EdgeSign::Positive), None);
        assert_eq!(s.set_edge(1, 2, EdgeSign::Negative), None);
        assert_eq!(s.set_edge(0, 0, EdgeSign::Positive), None); // self-loop
        assert_eq!(s.num_p_edges(), 2);
        assert_eq!(s.num_n_edges(), 1);
        assert_eq!(s.encoding_cost(), 3);
        // Replacing flips the counters.
        assert_eq!(
            s.set_edge(1, 0, EdgeSign::Negative),
            Some(EdgeSign::Positive)
        );
        assert_eq!(s.num_p_edges(), 1);
        assert_eq!(s.num_n_edges(), 2);
        assert_eq!(s.remove_edge(0, 1), Some(EdgeSign::Negative));
        assert_eq!(s.remove_edge(0, 1), None);
        assert_eq!(s.num_n_edges(), 1);
        s.validate().unwrap();
    }

    #[test]
    fn merge_roots_builds_hierarchy() {
        let mut s = HierarchicalSummary::identity(4);
        let m = s.merge_roots(0, 1);
        assert_eq!(s.members(m), &[0, 1]);
        assert_eq!(s.parent(0), Some(m));
        assert_eq!(s.parent(1), Some(m));
        assert!(s.is_root(m));
        assert!(!s.is_root(0));
        assert_eq!(s.num_h_edges(), 2);
        let m2 = s.merge_roots(m, 2);
        assert_eq!(s.members(m2), &[0, 1, 2]);
        assert_eq!(s.tree_height(m2), 2);
        assert_eq!(s.root_of(0), m2);
        assert_eq!(s.root_of(3), 3);
        assert_eq!(s.leaf_depths(), vec![2, 2, 1, 0]);
        s.validate().unwrap();
    }

    #[test]
    fn merge_roots_at_fills_gaps_with_dead_placeholders() {
        let mut s = HierarchicalSummary::identity(6);
        // Forced commit out of allocation order: slot 8 first, then the gap slots.
        let late = s.merge_roots_at(0, 1, 8);
        assert_eq!(late, 8);
        assert!(s.is_root(8));
        assert_eq!(s.members(8), &[0, 1]);
        for gap in 6..8u32 {
            assert!(
                !s.is_alive(gap),
                "gap slot {gap} must be a dead placeholder"
            );
        }
        assert_eq!(s.num_h_edges(), 2, "placeholders contribute no h-edges");
        let early = s.merge_roots_at(2, 3, 6);
        let mid = s.merge_roots_at(4, 5, 7);
        assert_eq!((early, mid), (6, 7));
        // Arena dense and consistent again once every slot is committed.
        assert_eq!(s.arena_len(), 9);
        s.validate().unwrap();
        // The same sequence committed in ascending order yields the same arena.
        let mut ordered = HierarchicalSummary::identity(6);
        ordered.merge_roots_at(2, 3, 6);
        ordered.merge_roots_at(4, 5, 7);
        ordered.merge_roots_at(0, 1, 8);
        for id in 0..9u32 {
            assert_eq!(s.parent(id), ordered.parent(id));
            assert_eq!(s.children(id), ordered.children(id));
            assert_eq!(s.members(id), ordered.members(id));
        }
    }

    #[test]
    #[should_panic(expected = "two roots")]
    fn merge_requires_roots() {
        let mut s = HierarchicalSummary::identity(3);
        let _m = s.merge_roots(0, 1);
        let _ = s.merge_roots(0, 2); // 0 is no longer a root
    }

    #[test]
    fn prune_reparents_children() {
        let mut s = HierarchicalSummary::identity(4);
        let m = s.merge_roots(0, 1);
        let m2 = s.merge_roots(m, 2);
        s.set_edge(m, 3, EdgeSign::Positive);
        // Prune the middle supernode m: its children (0, 1) move up under m2, and the
        // incident edge disappears.
        s.prune_supernode(m);
        assert!(!s.is_alive(m));
        assert_eq!(s.parent(0), Some(m2));
        assert_eq!(s.parent(1), Some(m2));
        assert_eq!(s.num_p_edges(), 0);
        let mut kids = s.children(m2).to_vec();
        kids.sort_unstable();
        assert_eq!(kids, vec![0, 1, 2]);
        assert_eq!(s.num_h_edges(), 3);
        s.validate().unwrap();
    }

    #[test]
    fn prune_root_promotes_children_to_roots() {
        let mut s = HierarchicalSummary::identity(2);
        let m = s.merge_roots(0, 1);
        s.prune_supernode(m);
        assert!(s.is_root(0));
        assert!(s.is_root(1));
        assert_eq!(s.num_h_edges(), 0);
        s.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "singleton leaf")]
    fn cannot_prune_leaf() {
        let mut s = HierarchicalSummary::identity(2);
        s.prune_supernode(0);
    }

    #[test]
    fn ancestors_and_tree_listing() {
        let mut s = HierarchicalSummary::identity(4);
        let m = s.merge_roots(0, 1);
        let m2 = s.merge_roots(m, 2);
        assert_eq!(s.ancestors_inclusive(0), vec![0, m, m2]);
        let mut tree = s.tree_supernodes(m2);
        tree.sort_unstable();
        assert_eq!(tree, vec![0, 1, 2, m, m2]);
    }

    #[test]
    fn create_supernode_with_many_children() {
        let mut s = HierarchicalSummary::identity(4);
        let m = s.create_supernode_with_children(&[0, 1, 2]);
        assert_eq!(s.members(m), &[0, 1, 2]);
        assert_eq!(s.children(m), &[0, 1, 2]);
        assert_eq!(s.num_h_edges(), 3);
        assert!(s.is_root(m));
        assert!(s.is_root(3));
        s.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "at least two children")]
    fn create_supernode_rejects_single_child() {
        let mut s = HierarchicalSummary::identity(2);
        let _ = s.create_supernode_with_children(&[0]);
    }

    #[test]
    fn dissolve_tree_restores_singleton_roots() {
        let mut s = HierarchicalSummary::identity(5);
        let m01 = s.merge_roots(0, 1);
        let m = s.merge_roots(m01, 2);
        s.set_edge(3, 4, EdgeSign::Positive);
        let nodes = s.dissolve_tree(m);
        let mut sorted = nodes.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, m01, m]);
        for leaf in 0..3u32 {
            assert!(s.is_root(leaf), "leaf {leaf} must be a root again");
            assert_eq!(s.members(leaf), &[leaf]);
        }
        assert!(!s.is_alive(m01));
        assert!(!s.is_alive(m));
        assert_eq!(s.num_h_edges(), 0);
        // The untouched edge (3, 4) survives.
        assert_eq!(s.edge_sign(3, 4), Some(EdgeSign::Positive));
        s.validate().unwrap();
    }

    #[test]
    fn dissolve_tree_of_a_lone_leaf_is_a_no_op() {
        let mut s = HierarchicalSummary::identity(2);
        let nodes = s.dissolve_tree(0);
        assert_eq!(nodes, vec![0]);
        assert!(s.is_root(0));
        s.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "only a root")]
    fn dissolve_tree_rejects_non_roots() {
        let mut s = HierarchicalSummary::identity(2);
        let _m = s.merge_roots(0, 1);
        let _ = s.dissolve_tree(0);
    }

    #[test]
    fn detach_and_kill_splits_the_spine_only() {
        // ((0,1),(2,3)) under a top root; killing the top + left spine promotes
        // leaves 0, 1 and the intact right subtree {2,3}.
        let mut s = HierarchicalSummary::identity(4);
        let left = s.merge_roots(0, 1);
        let right = s.merge_roots(2, 3);
        let top = s.merge_roots(left, right);
        let mut kill = vec![top, left];
        kill.sort_unstable();
        let promoted = s.detach_and_kill(top, &kill);
        assert_eq!(promoted, vec![0, 1, right]);
        for r in [0u32, 1, right] {
            assert!(s.is_root(r), "{r} must be a root");
        }
        assert!(!s.is_alive(top) && !s.is_alive(left));
        // The intact subtree keeps its structure.
        assert_eq!(s.children(right), &[2, 3]);
        assert_eq!(s.members(right), &[2, 3]);
        assert_eq!(s.parent(2), Some(right));
        s.validate().unwrap();
    }

    #[test]
    fn detach_and_kill_of_every_internal_node_matches_dissolve() {
        let mut s = HierarchicalSummary::identity(3);
        let m01 = s.merge_roots(0, 1);
        let m = s.merge_roots(m01, 2);
        let mut kill = vec![m, m01];
        kill.sort_unstable();
        let promoted = s.detach_and_kill(m, &kill);
        assert_eq!(promoted, vec![0, 1, 2]);
        assert_eq!(s.num_h_edges(), 0);
        s.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "only a root")]
    fn detach_and_kill_rejects_non_roots() {
        let mut s = HierarchicalSummary::identity(3);
        let m = s.merge_roots(0, 1);
        let top = s.merge_roots(m, 2);
        let _ = s.detach_and_kill(m, &[m, top]);
    }

    #[test]
    fn compact_reclaims_dead_slots_order_preservingly() {
        let mut s = HierarchicalSummary::identity(6);
        let m01 = s.merge_roots(0, 1); // id 6
        let m23 = s.merge_roots(2, 3); // id 7
        let top = s.merge_roots(m01, m23); // id 8
        s.set_edge(top, 4, EdgeSign::Positive);
        s.set_edge(0, 5, EdgeSign::Negative);
        s.set_edge(m23, m23, EdgeSign::Positive);
        // Kill m01 (edge-free internal node): one dead slot.
        s.prune_supernode(m01);
        assert_eq!(s.num_dead_slots(), 1);
        let cost_before = s.encoding_cost();
        let map = s.compact();
        assert_eq!(map.reclaimed(), 1);
        assert_eq!(map.remap(m01), None);
        // Survivors keep their relative order: m23 slides into m01's slot.
        assert_eq!(map.remap(m23), Some(6));
        assert_eq!(map.remap(top), Some(7));
        for leaf in 0..6u32 {
            assert_eq!(map.remap(leaf), Some(leaf), "leaves never move");
        }
        assert_eq!(s.arena_len(), 8);
        assert_eq!(s.num_dead_slots(), 0);
        assert_eq!(s.encoding_cost(), cost_before);
        assert_eq!(s.edge_sign(7, 4), Some(EdgeSign::Positive));
        assert_eq!(s.edge_sign(6, 6), Some(EdgeSign::Positive));
        assert_eq!(s.edge_sign(0, 5), Some(EdgeSign::Negative));
        assert_eq!(s.parent(6), Some(7));
        let mut kids = s.children(7).to_vec();
        kids.sort_unstable();
        assert_eq!(kids, vec![0, 1, 6]);
        s.validate().unwrap();
    }

    #[test]
    fn compact_on_dense_arena_is_a_no_op() {
        let mut s = HierarchicalSummary::identity(4);
        let m = s.merge_roots(0, 1);
        s.set_edge(m, 2, EdgeSign::Positive);
        let map = s.compact();
        assert_eq!(map.reclaimed(), 0);
        assert_eq!(map.remap(m), Some(m));
        assert_eq!(s.arena_len(), 5);
        s.validate().unwrap();
    }

    #[test]
    fn edge_weight_and_sign_roundtrip() {
        assert_eq!(EdgeSign::from_weight(1), Some(EdgeSign::Positive));
        assert_eq!(EdgeSign::from_weight(-1), Some(EdgeSign::Negative));
        assert_eq!(EdgeSign::from_weight(0), None);
        assert_eq!(EdgeSign::Positive.weight(), 1);
        assert_eq!(EdgeSign::Negative.weight(), -1);
    }

    #[test]
    fn merge_sorted_members() {
        assert_eq!(
            merge_sorted(&[1, 4, 9], &[2, 3, 10]),
            vec![1, 2, 3, 4, 9, 10]
        );
        assert_eq!(merge_sorted(&[], &[5]), vec![5]);
    }
}
