//! The read-side of the merge engine, factored out as a trait so the same
//! `Saving(A, B, G)` machinery (panel extraction, Case-1/Case-2 problem building,
//! merge evaluation) runs against two backings:
//!
//! * the authoritative [`MergeEngine`](super::MergeEngine) itself, and
//! * the copy-on-write [`PlanningEngine`](super::plan::PlanningEngine) overlay that
//!   shard workers use to plan merges against a frozen iteration view.
//!
//! Keeping the problem builders generic (rather than duplicated) is what guarantees
//! planning and application agree on the encoding semantics.
//!
//! The machinery operates on **pruned** summaries natively: hierarchies re-entering
//! the engine via `MergeEngine::from_summary` — and, since the streaming engine
//! prunes its maintained summary in place after every batch, the live hierarchy
//! itself — carry roots of arbitrary arity and edges at any tree level.
//! [`side_panel`] models every non-binary side as a single opaque cell, which is
//! always sound (see its docs), so merge evaluation and application need no
//! special cases for pruned shapes.
//!
//! # Allocation discipline
//!
//! Merge evaluation is the innermost loop of the pipeline — every candidate pair of
//! every set of every iteration builds a Case-1 problem plus one Case-2 problem per
//! common adjacent root — so the problem builders are engineered to perform **no heap
//! allocation per evaluation**:
//!
//! * panels are constant-size, so cells, panel supernodes and old panel edges live in
//!   inline arrays ([`InlineVec`]); a panel has at most 6 supernodes, hence at most
//!   21 old edges;
//! * per-supernode cell coverage is a `u16` bitmask over the (≤ 4) cell indices
//!   instead of a `Vec<usize>` per panel supernode;
//! * the only unbounded intermediate — the common adjacent roots of the two sides —
//!   is written into a reusable buffer owned by the per-worker
//!   [`MergeCtx`](super::MergeCtx) scratch, as are the Case-2 records a merge
//!   application accumulates.

use super::{Case2Record, MergeCtx, MergeEvaluation, ResolvedMerge};
use crate::encoder::{
    pair_index, panel, Case1Problem, Case1Shape, Case2Problem, Case2Shape, EncoderMemo,
};
use crate::model::SupernodeId;

/// Read-only cost/topology queries the merge machinery needs.
///
/// All queries refer to the *current* state of the implementor — for the planning
/// overlay that is "frozen view + this set's own merges".
pub(crate) trait MergeView {
    /// Whether `id` is currently a root.
    fn is_root(&self, id: SupernodeId) -> bool;
    /// Direct children of a supernode (empty for leaves; exactly two during the
    /// merging phase).
    fn children_of(&self, id: SupernodeId) -> &[SupernodeId];
    /// Number of subnodes contained in the supernode.
    fn node_size(&self, id: SupernodeId) -> usize;
    /// Parent of a supernode, if any.
    fn parent_of(&self, id: SupernodeId) -> Option<SupernodeId>;
    /// Signed p/n-edge weight between two supernodes (0 = no edge).
    fn edge_weight(&self, x: SupernodeId, y: SupernodeId) -> i32;
    /// `Cost_A(G) = Cost^H_A + Cost^P_A` (Eq. 6) for a root.
    fn root_cost(&self, root: SupernodeId) -> usize;
    /// Height of the tree rooted at `root`.
    fn root_height(&self, root: SupernodeId) -> usize;
    /// Number of p/n-edges between two distinct roots (`Cost^P_{A,B}`).
    fn edges_between_roots(&self, a: SupernodeId, b: SupernodeId) -> usize;
    /// Fills `out` with the roots adjacent (through p/n-edges) to both `a`'s and
    /// `b`'s trees, clearing it first.  Buffer-filling (rather than returning a
    /// `Vec`) so the hot path can reuse one allocation across evaluations.
    fn common_adjacent_roots_into(
        &self,
        a: SupernodeId,
        b: SupernodeId,
        out: &mut Vec<SupernodeId>,
    );
}

/// A fixed-capacity inline vector for the constant-size panel data of the hot path
/// (a `SmallVec` stand-in within the offline dependency whitelist — panels are
/// bounded, so there is no heap spill path).
#[derive(Clone, Copy, Debug)]
pub(crate) struct InlineVec<T: Copy + Default, const N: usize> {
    len: usize,
    items: [T; N],
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// An empty buffer.
    pub(crate) fn new() -> Self {
        InlineVec {
            len: 0,
            items: [T::default(); N],
        }
    }

    /// Appends an element; panics if the fixed capacity is exceeded (the panel
    /// bounds make that unreachable from the merge engine).
    #[inline]
    pub(crate) fn push(&mut self, value: T) {
        assert!(self.len < N, "inline buffer overflow");
        self.items[self.len] = value;
        self.len += 1;
    }

    /// Number of elements.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The elements as a slice.
    #[inline]
    pub(crate) fn as_slice(&self) -> &[T] {
        &self.items[..self.len]
    }
}

/// Old p/n-edges of a panel: at most `6 * 7 / 2 = 21` unordered pairs (with
/// self-loops) among the ≤ 6 panel supernodes.
pub(crate) type PanelEdges = InlineVec<(SupernodeId, SupernodeId), 21>;

/// Panel supernodes of one side: the root plus its direct children when the root
/// is **binary**.  Returns (shape_internal, [root, child1, child2]) with unused
/// slots `None`.
///
/// Sides with any other arity enter the panel as a single opaque cell (the root
/// itself).  Leaves have no children to expand; roots with **three or more**
/// children exist when the engine adopts a pruned hierarchy
/// ([`super::MergeEngine::from_summary`], the incremental path) — expanding only
/// two of them would let a solved `C`-level edge cover the dropped children's
/// subnodes and silently change the represented graph.  Opaque is always sound:
/// edges strictly below an opaque side are never enumerated as panel edges, so
/// they stay in place with their coverage intact, and every panel edge touching
/// the side covers exactly the whole tree — the cell it models.
pub(crate) fn side_panel<V: MergeView + ?Sized>(
    view: &V,
    root: SupernodeId,
) -> (bool, [Option<SupernodeId>; 3]) {
    let children = view.children_of(root);
    if children.len() == 2 {
        (true, [Some(root), Some(children[0]), Some(children[1])])
    } else {
        (false, [Some(root), None, None])
    }
}

/// Maps an abstract panel index to the concrete supernode id for a merge of `a`
/// and `b` (with `m` the merged supernode) and an optional orange root `c`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn concrete(
    abstract_id: u8,
    m: SupernodeId,
    a: SupernodeId,
    b: SupernodeId,
    a_kids: &[Option<SupernodeId>; 3],
    b_kids: &[Option<SupernodeId>; 3],
    c: Option<SupernodeId>,
    c_kids: &[Option<SupernodeId>; 3],
) -> SupernodeId {
    match abstract_id {
        panel::M => m,
        panel::A => a,
        panel::B => b,
        panel::A1 => a_kids[1].expect("A1 requested for leaf A"),
        panel::A2 => a_kids[2].expect("A2 requested for leaf A"),
        panel::B1 => b_kids[1].expect("B1 requested for leaf B"),
        panel::B2 => b_kids[2].expect("B2 requested for leaf B"),
        panel::C => c.expect("C requested without orange panel"),
        panel::C1 => c_kids[1].expect("C1 requested for leaf C"),
        panel::C2 => c_kids[2].expect("C2 requested for leaf C"),
        other => unreachable!("unknown abstract panel id {other}"),
    }
}

/// Bitmask (over indices into `cells`) of the cells covered by a concrete panel
/// supernode: the cells it equals or is an ancestor of.  Cells number at most 4, so
/// a `u16` is ample.
#[inline]
fn cell_coverage_mask<V: MergeView + ?Sized>(
    view: &V,
    sup: SupernodeId,
    cells: &[SupernodeId],
) -> u16 {
    let mut mask = 0u16;
    for (idx, &cell) in cells.iter().enumerate() {
        if cell == sup || view.parent_of(cell) == Some(sup) {
            mask |= 1 << idx;
        }
    }
    mask
}

/// The cells of one merged side in `cells()` order: the two children when internal,
/// the root itself otherwise.
#[inline]
fn push_side_cells(
    internal: bool,
    root: SupernodeId,
    kids: &[Option<SupernodeId>; 3],
    cells: &mut InlineVec<SupernodeId, 4>,
) {
    if internal {
        cells.push(kids[1].expect("internal side has children"));
        cells.push(kids[2].expect("internal side has children"));
    } else {
        cells.push(root);
    }
}

/// The panel supernodes of both merged sides, in `a_kids`-then-`b_kids` order.
#[inline]
fn yellow_panel_supers(
    a_kids: &[Option<SupernodeId>; 3],
    b_kids: &[Option<SupernodeId>; 3],
) -> InlineVec<SupernodeId, 6> {
    let mut supers = InlineVec::new();
    for s in a_kids.iter().chain(b_kids.iter()).flatten() {
        supers.push(*s);
    }
    supers
}

/// Builds the Case-1 problem for merging roots `a` and `b`: the cell-pair
/// requirements induced by the existing panel edges, plus the list of those edges.
pub(crate) fn case1_problem<V: MergeView + ?Sized>(
    view: &V,
    a: SupernodeId,
    b: SupernodeId,
) -> (Case1Problem, PanelEdges) {
    let (a_internal, a_kids) = side_panel(view, a);
    let (b_internal, b_kids) = side_panel(view, b);
    let shape = Case1Shape {
        a_internal,
        b_internal,
    };
    // Concrete supernode of each cell, in the shape's canonical A-then-B order.
    let mut cell_concrete: InlineVec<SupernodeId, 4> = InlineVec::new();
    push_side_cells(a_internal, a, &a_kids, &mut cell_concrete);
    push_side_cells(b_internal, b, &b_kids, &mut cell_concrete);
    let cells = cell_concrete.as_slice();
    let k = cells.len();
    let mut constrained = 0u16;
    for (i, &cell) in cells.iter().enumerate() {
        for j in i..k {
            let vacuous = i == j && view.node_size(cell) < 2;
            if !vacuous {
                constrained |= 1 << pair_index(i, j, k);
            }
        }
    }
    // Existing panel edges: all p/n-edges among the panel supernodes of both sides.
    let panel_supers = yellow_panel_supers(&a_kids, &b_kids);
    let supers = panel_supers.as_slice();
    let mut coverage = [0u16; 6];
    for (slot, &s) in coverage.iter_mut().zip(supers.iter()) {
        *slot = cell_coverage_mask(view, s, cells);
    }
    let mut required = [0i8; 10];
    let mut old_edges = PanelEdges::new();
    for (i, &x) in supers.iter().enumerate() {
        for (j, &y) in supers.iter().enumerate().skip(i) {
            let w = view.edge_weight(x, y);
            if w == 0 {
                continue;
            }
            old_edges.push((x, y));
            // A panel edge covers the product of its endpoints' cell coverages;
            // each unordered cell pair counts once (`seen` mask over pair indices).
            let mut seen = 0u16;
            let mut mi = coverage[i];
            while mi != 0 {
                let ci = mi.trailing_zeros() as usize;
                mi &= mi - 1;
                let mut mj = coverage[j];
                while mj != 0 {
                    let cj = mj.trailing_zeros() as usize;
                    mj &= mj - 1;
                    let idx = pair_index(ci.min(cj), ci.max(cj), k);
                    if seen & (1 << idx) == 0 {
                        seen |= 1 << idx;
                        required[idx] = (required[idx] as i32 + w) as i8;
                    }
                }
            }
        }
    }
    (
        Case1Problem {
            shape,
            required,
            constrained,
        },
        old_edges,
    )
}

/// The pair-invariant (yellow) half of a Case-2 problem: everything about the
/// about-to-be-merged `A`/`B` side that does not depend on the orange root `C`.
/// A merge evaluation builds this **once** and reuses it across every common
/// adjacent root — on hub-heavy regions the commons loop dominates the merge
/// planner, and the yellow side is identical for all of them.
pub(crate) struct Case2Yellow {
    a_internal: bool,
    b_internal: bool,
    yellow_supers: InlineVec<SupernodeId, 6>,
    yellow_cov: [u16; 6],
}

/// Builds the yellow half for merging roots `a` and `b` (see [`Case2Yellow`]).
pub(crate) fn case2_yellow<V: MergeView + ?Sized>(
    view: &V,
    a: SupernodeId,
    b: SupernodeId,
) -> Case2Yellow {
    let (a_internal, a_kids) = side_panel(view, a);
    let (b_internal, b_kids) = side_panel(view, b);
    let mut yellow_cells: InlineVec<SupernodeId, 4> = InlineVec::new();
    push_side_cells(a_internal, a, &a_kids, &mut yellow_cells);
    push_side_cells(b_internal, b, &b_kids, &mut yellow_cells);
    let yellow_supers = yellow_panel_supers(&a_kids, &b_kids);
    let mut yellow_cov = [0u16; 6];
    for (slot, &s) in yellow_cov.iter_mut().zip(yellow_supers.as_slice().iter()) {
        *slot = cell_coverage_mask(view, s, yellow_cells.as_slice());
    }
    Case2Yellow {
        a_internal,
        b_internal,
        yellow_supers,
        yellow_cov,
    }
}

/// Builds the Case-2 problem between the (about to be merged) roots behind
/// `yellow` and the adjacent root `c`.
pub(crate) fn case2_problem<V: MergeView + ?Sized>(
    view: &V,
    yellow: &Case2Yellow,
    c: SupernodeId,
) -> (Case2Problem, PanelEdges) {
    let (c_internal, c_kids) = side_panel(view, c);
    let shape = Case2Shape {
        a_internal: yellow.a_internal,
        b_internal: yellow.b_internal,
        c_internal,
    };
    let mut orange_cells: InlineVec<SupernodeId, 4> = InlineVec::new();
    push_side_cells(c_internal, c, &c_kids, &mut orange_cells);
    let kc = orange_cells.len();
    let yellow_supers = &yellow.yellow_supers;
    let yellow_cov = &yellow.yellow_cov;
    let mut orange_supers: InlineVec<SupernodeId, 3> = InlineVec::new();
    for s in c_kids.iter().flatten() {
        orange_supers.push(*s);
    }
    let mut orange_cov = [0u16; 3];
    for (slot, &s) in orange_cov.iter_mut().zip(orange_supers.as_slice().iter()) {
        *slot = cell_coverage_mask(view, s, orange_cells.as_slice());
    }
    let mut required = [0i8; 8];
    let mut old_edges = PanelEdges::new();
    for (i, &x) in yellow_supers.as_slice().iter().enumerate() {
        for (j, &y) in orange_supers.as_slice().iter().enumerate() {
            let w = view.edge_weight(x, y);
            if w == 0 {
                continue;
            }
            old_edges.push((x, y));
            let mut mi = yellow_cov[i];
            while mi != 0 {
                let ci = mi.trailing_zeros() as usize;
                mi &= mi - 1;
                let mut mj = orange_cov[j];
                while mj != 0 {
                    let cj = mj.trailing_zeros() as usize;
                    mj &= mj - 1;
                    let idx = ci * kc + cj;
                    required[idx] = (required[idx] as i32 + w) as i8;
                }
            }
        }
    }
    (Case2Problem { shape, required }, old_edges)
}

/// Resolves one merge of roots `a` and `b` (which will become supernode `m`) against
/// the *pre-merge* state of any [`MergeView`]: solves the Case-1 panel, gathers the
/// Case-2 re-encodings of every common adjacent root (appended to `case2`; the
/// returned record carries the `(start, len)` range), and snapshots everything a
/// later application needs (panel children, old edges, cross-edge count).
///
/// This is the read-only, expensive half of a merge application.  Both the
/// authoritative [`MergeEngine`](super::MergeEngine) and the planning/replay overlay
/// ([`super::plan::PlanningEngine`]) apply merges by resolving here first and then
/// replaying the resolution onto their own state, which is what keeps the planning,
/// serial-apply and parallel-apply paths byte-identical.
pub(crate) fn resolve_merge_into<V: MergeView + ?Sized>(
    view: &V,
    a: SupernodeId,
    b: SupernodeId,
    m: SupernodeId,
    memo: &mut EncoderMemo,
    commons: &mut Vec<SupernodeId>,
    case2: &mut Vec<Case2Record>,
) -> ResolvedMerge {
    let (_, a_kids) = side_panel(view, a);
    let (_, b_kids) = side_panel(view, b);
    let cross_ab = view.edges_between_roots(a, b) as u32;
    let (problem1, old1) = case1_problem(view, a, b);
    let sol1 = memo.case1(&problem1);
    view.common_adjacent_roots_into(a, b, commons);
    let case2_start = case2.len();
    let yellow = case2_yellow(view, a, b);
    for &c in commons.iter() {
        let (problem2, old2) = case2_problem(view, &yellow, c);
        let sol2 = memo.case2(&problem2);
        let (_, c_kids) = side_panel(view, c);
        case2.push(Case2Record {
            c,
            sol: sol2,
            old: old2,
            c_kids,
        });
    }
    ResolvedMerge {
        a,
        b,
        m,
        cross_ab,
        a_kids,
        b_kids,
        sol1,
        old1,
        case2_start,
        case2_len: case2.len() - case2_start,
    }
}

/// The p/n-edge mutation surface a resolved merge is replayed onto — implemented by
/// the authoritative [`MergeEngine`](super::MergeEngine) and by the planning overlay
/// ([`super::plan::PlanningEngine`]), each updating its own root metadata alongside.
pub(crate) trait PnEdgeSink {
    /// Removes the p/n-edge between two supernodes (no-op when absent).
    fn remove_pn_edge(&mut self, x: SupernodeId, y: SupernodeId);
    /// Adds (or rewrites) the p/n-edge between two supernodes with weight `±1`.
    fn add_pn_edge(&mut self, x: SupernodeId, y: SupernodeId, weight: i8);
}

/// Replays a resolved merge's Case-1/Case-2 edge re-encodings onto `sink`: drop the
/// old panel edges, add the solved ones (mapped from abstract panel ids to concrete
/// supernodes).
///
/// Shared by [`MergeEngine::commit_merge`](super::MergeEngine) and the overlay's
/// replay so the two can never drift apart — the parallel apply stage's
/// byte-identity contract rests on both paths applying the exact same edges.
pub(crate) fn replay_reencodings<S: PnEdgeSink + ?Sized>(
    sink: &mut S,
    rm: &ResolvedMerge,
    case2: &[Case2Record],
) {
    let (a, b, m) = (rm.a, rm.b, rm.m);
    let (a_kids, b_kids) = (&rm.a_kids, &rm.b_kids);
    // Case-1: drop old panel edges, add the solved ones.
    for &(x, y) in rm.old1.as_slice() {
        sink.remove_pn_edge(x, y);
    }
    let none_kids = [None, None, None];
    for e in rm.sol1.edges() {
        let x = concrete(e.a, m, a, b, a_kids, b_kids, None, &none_kids);
        let y = concrete(e.b, m, a, b, a_kids, b_kids, None, &none_kids);
        sink.add_pn_edge(x, y, e.weight);
    }
    // Case-2 re-encodings, one per common adjacent root.
    for rec in case2 {
        for &(x, y) in rec.old.as_slice() {
            sink.remove_pn_edge(x, y);
        }
        for e in rec.sol.edges() {
            let x = concrete(e.a, m, a, b, a_kids, b_kids, Some(rec.c), &rec.c_kids);
            let y = concrete(e.b, m, a, b, a_kids, b_kids, Some(rec.c), &rec.c_kids);
            sink.add_pn_edge(x, y, e.weight);
        }
    }
}

/// Fills `out` with the keys present in both adjacency maps, excluding the merged
/// roots themselves — the Case-2 partner set.  Probes the larger map with the
/// smaller one's keys; shared by the engine's and the overlay's
/// [`MergeView::common_adjacent_roots_into`] so the partner rule lives in one place.
pub(crate) fn common_adjacent_roots_from_maps(
    adj_a: &slugger_graph::hash::FxHashMap<SupernodeId, u32>,
    adj_b: &slugger_graph::hash::FxHashMap<SupernodeId, u32>,
    a: SupernodeId,
    b: SupernodeId,
    out: &mut Vec<SupernodeId>,
) {
    out.clear();
    let (small, large) = if adj_a.len() <= adj_b.len() {
        (adj_a, adj_b)
    } else {
        (adj_b, adj_a)
    };
    out.extend(
        small
            .keys()
            .copied()
            .filter(|&r| r != a && r != b && large.contains_key(&r)),
    );
}

/// Evaluates `Saving(A, B, G)` (Eq. 8) against any [`MergeView`] without mutating it.
pub(crate) fn evaluate_merge<V: MergeView + ?Sized>(
    view: &V,
    a: SupernodeId,
    b: SupernodeId,
    ctx: &mut MergeCtx,
) -> MergeEvaluation {
    debug_assert!(view.is_root(a) && view.is_root(b) && a != b);
    let MergeCtx { memo, scratch } = ctx;
    let cost_a = view.root_cost(a);
    let cost_b = view.root_cost(b);
    let cross = view.edges_between_roots(a, b);
    let cost_before = cost_a + cost_b - cross;

    // Case 1.
    let (problem1, old1) = case1_problem(view, a, b);
    let sol1 = memo.case1(&problem1);
    let mut delta = sol1.cost as i64 - old1.len() as i64;

    // Case 2, only for roots adjacent to both sides: for roots adjacent to exactly
    // one side the existing encoding remains optimal within the panel, so the
    // re-encoding is skipped both here and during application (keeping the two paths
    // consistent is what makes the evaluation exact).
    view.common_adjacent_roots_into(a, b, &mut scratch.commons);
    if !scratch.commons.is_empty() {
        let yellow = case2_yellow(view, a, b);
        for &c in scratch.commons.iter() {
            let (problem2, old2) = case2_problem(view, &yellow, c);
            let sol2 = memo.case2(&problem2);
            delta += sol2.cost as i64 - old2.len() as i64;
        }
    }

    // +2 hierarchy edges for attaching A and B below the new root.
    let cost_after = (cost_before as i64 + 2 + delta).max(0) as usize;
    let saving = if cost_before == 0 {
        f64::NEG_INFINITY
    } else {
        1.0 - cost_after as f64 / cost_before as f64
    };
    MergeEvaluation {
        saving,
        cost_before,
        cost_after,
    }
}
