//! The read-side of the merge engine, factored out as a trait so the same
//! `Saving(A, B, G)` machinery (panel extraction, Case-1/Case-2 problem building,
//! merge evaluation) runs against two backings:
//!
//! * the authoritative [`MergeEngine`](super::MergeEngine) itself, and
//! * the copy-on-write [`PlanningEngine`](super::plan::PlanningEngine) overlay that
//!   shard workers use to plan merges against a frozen iteration view.
//!
//! Keeping the problem builders generic (rather than duplicated) is what guarantees
//! planning and application agree on the encoding semantics.

use super::MergeEvaluation;
use crate::encoder::{
    pair_index, panel, Case1Problem, Case1Shape, Case2Problem, Case2Shape, EncoderMemo,
};
use crate::model::SupernodeId;

/// Read-only cost/topology queries the merge machinery needs.
///
/// All queries refer to the *current* state of the implementor — for the planning
/// overlay that is "frozen view + this set's own merges".
pub(crate) trait MergeView {
    /// Whether `id` is currently a root.
    fn is_root(&self, id: SupernodeId) -> bool;
    /// Direct children of a supernode (empty for leaves; exactly two during the
    /// merging phase).
    fn children_of(&self, id: SupernodeId) -> &[SupernodeId];
    /// Number of subnodes contained in the supernode.
    fn node_size(&self, id: SupernodeId) -> usize;
    /// Parent of a supernode, if any.
    fn parent_of(&self, id: SupernodeId) -> Option<SupernodeId>;
    /// Signed p/n-edge weight between two supernodes (0 = no edge).
    fn edge_weight(&self, x: SupernodeId, y: SupernodeId) -> i32;
    /// `Cost_A(G) = Cost^H_A + Cost^P_A` (Eq. 6) for a root.
    fn root_cost(&self, root: SupernodeId) -> usize;
    /// Height of the tree rooted at `root`.
    fn root_height(&self, root: SupernodeId) -> usize;
    /// Number of p/n-edges between two distinct roots (`Cost^P_{A,B}`).
    fn edges_between_roots(&self, a: SupernodeId, b: SupernodeId) -> usize;
    /// Roots adjacent (through p/n-edges) to both `a`'s and `b`'s trees.
    fn common_adjacent_roots(&self, a: SupernodeId, b: SupernodeId) -> Vec<SupernodeId>;
}

/// Panel supernodes of one side: the root plus its direct children when internal.
/// Returns (shape_internal, [root, child1, child2]) with unused slots `None`.
pub(crate) fn side_panel<V: MergeView + ?Sized>(
    view: &V,
    root: SupernodeId,
) -> (bool, [Option<SupernodeId>; 3]) {
    let children = view.children_of(root);
    if children.is_empty() {
        (false, [Some(root), None, None])
    } else {
        debug_assert_eq!(children.len(), 2, "merging phase trees are binary");
        (true, [Some(root), Some(children[0]), Some(children[1])])
    }
}

/// Maps an abstract panel index to the concrete supernode id for a merge of `a`
/// and `b` (with `m` the merged supernode) and an optional orange root `c`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn concrete(
    abstract_id: u8,
    m: SupernodeId,
    a: SupernodeId,
    b: SupernodeId,
    a_kids: &[Option<SupernodeId>; 3],
    b_kids: &[Option<SupernodeId>; 3],
    c: Option<SupernodeId>,
    c_kids: &[Option<SupernodeId>; 3],
) -> SupernodeId {
    match abstract_id {
        panel::M => m,
        panel::A => a,
        panel::B => b,
        panel::A1 => a_kids[1].expect("A1 requested for leaf A"),
        panel::A2 => a_kids[2].expect("A2 requested for leaf A"),
        panel::B1 => b_kids[1].expect("B1 requested for leaf B"),
        panel::B2 => b_kids[2].expect("B2 requested for leaf B"),
        panel::C => c.expect("C requested without orange panel"),
        panel::C1 => c_kids[1].expect("C1 requested for leaf C"),
        panel::C2 => c_kids[2].expect("C2 requested for leaf C"),
        other => unreachable!("unknown abstract panel id {other}"),
    }
}

/// Cells (by index into `cell_concrete`) covered by a concrete panel supernode:
/// the cells it equals or is an ancestor of.
fn panel_cell_coverage<V: MergeView + ?Sized>(
    view: &V,
    sup: SupernodeId,
    cell_concrete: &[SupernodeId],
) -> Vec<usize> {
    let mut out = Vec::new();
    for (idx, &cell) in cell_concrete.iter().enumerate() {
        if cell == sup || view.parent_of(cell) == Some(sup) {
            out.push(idx);
        }
    }
    out
}

/// Builds the Case-1 problem for merging roots `a` and `b`: the cell-pair
/// requirements induced by the existing panel edges, plus the list of those edges.
pub(crate) fn case1_problem<V: MergeView + ?Sized>(
    view: &V,
    a: SupernodeId,
    b: SupernodeId,
) -> (Case1Problem, Vec<(SupernodeId, SupernodeId)>) {
    let (a_internal, a_kids) = side_panel(view, a);
    let (b_internal, b_kids) = side_panel(view, b);
    let shape = Case1Shape {
        a_internal,
        b_internal,
    };
    let cells = shape.cells();
    let k = cells.len();
    // Concrete supernode of each cell and its size.
    let cell_concrete: Vec<SupernodeId> = cells
        .iter()
        .map(|&cell| match cell {
            panel::A => a,
            panel::B => b,
            panel::A1 => a_kids[1].unwrap(),
            panel::A2 => a_kids[2].unwrap(),
            panel::B1 => b_kids[1].unwrap(),
            panel::B2 => b_kids[2].unwrap(),
            _ => unreachable!(),
        })
        .collect();
    let mut constrained = 0u16;
    for (i, &cell) in cell_concrete.iter().enumerate() {
        for j in i..k {
            let vacuous = i == j && view.node_size(cell) < 2;
            if !vacuous {
                constrained |= 1 << pair_index(i, j, k);
            }
        }
    }
    // Existing panel edges: all p/n-edges among the panel supernodes of both sides.
    let panel_supers: Vec<SupernodeId> = a_kids
        .iter()
        .chain(b_kids.iter())
        .flatten()
        .copied()
        .collect();
    let coverage: Vec<Vec<usize>> = panel_supers
        .iter()
        .map(|&s| panel_cell_coverage(view, s, &cell_concrete))
        .collect();
    let mut required = [0i8; 10];
    let mut old_edges = Vec::new();
    for (i, &x) in panel_supers.iter().enumerate() {
        for (j, &y) in panel_supers.iter().enumerate().skip(i) {
            let w = view.edge_weight(x, y);
            if w == 0 {
                continue;
            }
            old_edges.push((x, y));
            let mut seen = [false; 10];
            for &ci in &coverage[i] {
                for &cj in &coverage[j] {
                    let idx = pair_index(ci.min(cj), ci.max(cj), k);
                    if !seen[idx] {
                        seen[idx] = true;
                        required[idx] = (required[idx] as i32 + w) as i8;
                    }
                }
            }
        }
    }
    (
        Case1Problem {
            shape,
            required,
            constrained,
        },
        old_edges,
    )
}

/// Builds the Case-2 problem between the (about to be merged) roots `a`, `b` and
/// the adjacent root `c`.
pub(crate) fn case2_problem<V: MergeView + ?Sized>(
    view: &V,
    a: SupernodeId,
    b: SupernodeId,
    c: SupernodeId,
) -> (Case2Problem, Vec<(SupernodeId, SupernodeId)>) {
    let (a_internal, a_kids) = side_panel(view, a);
    let (b_internal, b_kids) = side_panel(view, b);
    let (c_internal, c_kids) = side_panel(view, c);
    let shape = Case2Shape {
        a_internal,
        b_internal,
        c_internal,
    };
    let yellow_cells_abs = shape.yellow_cells();
    let orange_cells_abs = shape.orange_cells();
    let kc = orange_cells_abs.len();
    let yellow_cells: Vec<SupernodeId> = yellow_cells_abs
        .iter()
        .map(|&cell| match cell {
            panel::A => a,
            panel::B => b,
            panel::A1 => a_kids[1].unwrap(),
            panel::A2 => a_kids[2].unwrap(),
            panel::B1 => b_kids[1].unwrap(),
            panel::B2 => b_kids[2].unwrap(),
            _ => unreachable!(),
        })
        .collect();
    let orange_cells: Vec<SupernodeId> = orange_cells_abs
        .iter()
        .map(|&cell| match cell {
            panel::C => c,
            panel::C1 => c_kids[1].unwrap(),
            panel::C2 => c_kids[2].unwrap(),
            _ => unreachable!(),
        })
        .collect();
    let yellow_supers: Vec<SupernodeId> = a_kids
        .iter()
        .chain(b_kids.iter())
        .flatten()
        .copied()
        .collect();
    let orange_supers: Vec<SupernodeId> = c_kids.iter().flatten().copied().collect();
    let yellow_cov: Vec<Vec<usize>> = yellow_supers
        .iter()
        .map(|&s| panel_cell_coverage(view, s, &yellow_cells))
        .collect();
    let orange_cov: Vec<Vec<usize>> = orange_supers
        .iter()
        .map(|&s| panel_cell_coverage(view, s, &orange_cells))
        .collect();
    let mut required = [0i8; 8];
    let mut old_edges = Vec::new();
    for (i, &x) in yellow_supers.iter().enumerate() {
        for (j, &y) in orange_supers.iter().enumerate() {
            let w = view.edge_weight(x, y);
            if w == 0 {
                continue;
            }
            old_edges.push((x, y));
            for &ci in &yellow_cov[i] {
                for &cj in &orange_cov[j] {
                    let idx = ci * kc + cj;
                    required[idx] = (required[idx] as i32 + w) as i8;
                }
            }
        }
    }
    (Case2Problem { shape, required }, old_edges)
}

/// Evaluates `Saving(A, B, G)` (Eq. 8) against any [`MergeView`] without mutating it.
pub(crate) fn evaluate_merge<V: MergeView + ?Sized>(
    view: &V,
    a: SupernodeId,
    b: SupernodeId,
    memo: &mut EncoderMemo,
) -> MergeEvaluation {
    debug_assert!(view.is_root(a) && view.is_root(b) && a != b);
    let cost_a = view.root_cost(a);
    let cost_b = view.root_cost(b);
    let cross = view.edges_between_roots(a, b);
    let cost_before = cost_a + cost_b - cross;

    // Case 1.
    let (problem1, old1) = case1_problem(view, a, b);
    let sol1 = memo.case1(&problem1);
    let mut delta = sol1.cost as i64 - old1.len() as i64;

    // Case 2, only for roots adjacent to both sides: for roots adjacent to exactly
    // one side the existing encoding remains optimal within the panel, so the
    // re-encoding is skipped both here and during application (keeping the two paths
    // consistent is what makes the evaluation exact).
    for c in view.common_adjacent_roots(a, b) {
        let (problem2, old2) = case2_problem(view, a, b, c);
        let sol2 = memo.case2(&problem2);
        delta += sol2.cost as i64 - old2.len() as i64;
    }

    // +2 hierarchy edges for attaching A and B below the new root.
    let cost_after = (cost_before as i64 + 2 + delta).max(0) as usize;
    let saving = if cost_before == 0 {
        f64::NEG_INFINITY
    } else {
        1.0 - cost_after as f64 / cost_before as f64
    };
    MergeEvaluation {
        saving,
        cost_before,
        cost_after,
    }
}
