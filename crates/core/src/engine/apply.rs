//! The **apply** (reconciliation) stage of the sharded merge pipeline.
//!
//! Shard workers plan merges speculatively on copy-on-write overlays of the frozen
//! iteration view ([`super::plan::PlanningEngine`]); this module replays those plans
//! against the one authoritative engine.  Replaying goes through the same
//! resolve-then-commit machinery as [`MergeEngine::apply_merge`], i.e. the full
//! Case-1/Case-2 panel re-encoding of Sect. III-B3, so the p/n/h-edge bookkeeping of
//! `Saving(A, B, G)` stays exact on the authoritative state no matter how the
//! planning work was sharded.
//!
//! # Disjointness invariant
//!
//! Correctness rests on the candidate sets being **disjoint**: a plan only ever
//! merges roots drawn from its own candidate set (or supernodes created by its own
//! earlier merges), and no other set names those roots.  Merges applied for other
//! sets can therefore re-encode *edges* incident to this set's trees, but can never
//! merge the trees themselves away — every planned operand is still a root when its
//! turn comes, which [`apply_set_plan`] asserts.
//!
//! # Conflict-partitioned parallel replay
//!
//! Serial replay processes plans in ascending set-index order; that order *is* the
//! pipeline's deterministic reconciliation contract.  [`apply_plans_with`] reproduces
//! it byte-identically on multiple worker threads by exploiting how narrow a plan's
//! actual state footprint is:
//!
//! * Applying a plan only ever **reads and writes** state belonging to the roots its
//!   merges touch and to the roots adjacent to those (panel children, cross edges,
//!   adjacency metadata of Case-2 partners).  Its *touched-or-adjacent* root set on
//!   the frozen iteration view — the **footprint**, computed by [`plan_footprint`]
//!   from the buffers the plans already carry — therefore over-approximates
//!   everything it can interact with: merges never create adjacency between roots
//!   that were not already adjacent, so the frozen footprint stays an upper bound
//!   throughout the stage.
//! * Two plans **conflict** iff their footprints intersect.  [`conflict_batches`]
//!   layers the plans greedily in ascending set-index order: a plan's batch is one
//!   past the highest batch of any earlier conflicting plan.  This yields batches
//!   whose plans are pairwise independent *and* preserves the serial order between
//!   every conflicting pair (`i < j` conflicting ⟹ `batch(i) < batch(j)`).
//! * Each batch is then **resolved in parallel** — every plan replays on a
//!   [`PlanningEngine`] overlay over the authoritative engine, producing the solved
//!   panel re-encodings — and **committed serially** in ascending set-index order.
//!   Supernode ids are precomputed from the serial order (plan `p`'s merges occupy
//!   the arena slots `start(p)..start(p) + |merges(p)|` where `start` is the prefix
//!   sum over ascending set index), so committing batches out of set-index order
//!   still builds the identical arena: [`crate::model::HierarchicalSummary::merge_roots_at`]
//!   writes each merge into its forced slot.
//!
//! Since batch resolution only reads state no same-batch plan writes (disjoint
//! footprints) and every conflicting earlier plan is already committed (batch
//! layering), each resolution sees exactly the state the serial replay would have
//! seen — and the commit path is literally the serial code.  The summary is
//! therefore **byte-identical** to the serial replay for every `parallelism` /
//! `shards` setting, pinned by `crates/core/tests/apply_invariance.rs` and the
//! conflict-batch property test.

use super::plan::{PlanScratch, PlanningEngine};
use super::{Case2Record, MergeCtx, MergeEngine, ResolvedMerge};
use crate::merge::MergeStats;
use crate::model::SupernodeId;
use crate::pipeline::partition_sets;
use slugger_graph::hash::FxHashMap;

/// One operand of a planned merge.
///
/// Supernode ids allocated by a forked engine during planning need not match the ids
/// the authoritative engine will allocate, so plans refer to merge *products*
/// positionally instead of by id.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeRef {
    /// A root that already existed when the iteration started (stable id).
    Root(SupernodeId),
    /// The product of the `i`-th earlier merge of the same set plan.
    Planned(usize),
}

/// One planned merge: both operands must resolve to current roots at apply time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannedMerge {
    /// First operand (`A` in the paper's notation).
    pub a: MergeRef,
    /// Second operand (`B`).
    pub b: MergeRef,
}

/// The merges planned for one candidate set, in the order they must be applied.
#[derive(Clone, Debug)]
pub struct SetPlan {
    /// Index of the candidate set within the iteration (also the RNG stream index).
    pub set_index: usize,
    /// Ordered merges.
    pub merges: Vec<PlannedMerge>,
    /// Planning statistics (pairs evaluated, merges planned).
    pub stats: MergeStats,
}

/// Minimum number of merges in a conflict batch before its resolution is dealt
/// across worker threads; smaller batches resolve inline on the calling thread
/// (the fork-join round trip would dominate).  Pure scheduling: never affects the
/// output.
const SPAWN_THRESHOLD: usize = 16;

/// Counters of one [`apply_plans_with`] invocation's conflict partitioning.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ApplyProfile {
    /// Conflict batches executed (0 when the serial path ran).
    pub batches: usize,
    /// Plans that went through the conflict-partitioned parallel path.
    pub batched_plans: usize,
}

impl ApplyProfile {
    /// Accumulates another invocation's counters.
    pub fn absorb(&mut self, other: ApplyProfile) {
        self.batches += other.batches;
        self.batched_plans += other.batched_plans;
    }
}

/// Reusable worker state of the parallel apply stage.
///
/// Create one per run (alongside the driver's [`MergeCtx`]) and pass it to every
/// [`apply_plans_with`] call: the workers' encoder memos and overlay pools then
/// persist across iterations instead of being rebuilt cold each time.  Workers are
/// forked lazily — a run whose batches all resolve inline materializes one.
#[derive(Default)]
pub struct ApplyWorkers {
    workers: Vec<ApplyWorker>,
}

impl ApplyWorkers {
    /// An empty pool; workers are forked on first use.
    pub fn new() -> Self {
        ApplyWorkers::default()
    }

    /// At least `count` workers, forked to match `ctx`'s memoization setting.
    fn ensure(&mut self, count: usize, ctx: &MergeCtx) -> &mut [ApplyWorker] {
        while self.workers.len() < count {
            self.workers.push(ApplyWorker {
                ctx: ctx.fork_like(),
                scratch: PlanScratch::new(),
                tracked: Vec::new(),
            });
        }
        &mut self.workers[..count]
    }
}

/// Replays one set plan on the authoritative engine.  The ids of the created
/// supernodes are left in the context's pooled `created` buffer (in plan order), so
/// replaying allocates nothing per plan.
pub fn apply_set_plan(engine: &mut MergeEngine, ctx: &mut MergeCtx, plan: &SetPlan) {
    let mut created = std::mem::take(&mut ctx.scratch.created);
    created.clear();
    for merge in &plan.merges {
        let a = resolve(&created, merge.a);
        let b = resolve(&created, merge.b);
        debug_assert!(
            engine.summary().is_root(a) && engine.summary().is_root(b),
            "planned operands must still be roots (candidate sets are disjoint)"
        );
        created.push(engine.apply_merge(a, b, ctx));
    }
    ctx.scratch.created = created;
}

/// Replays every set plan in ascending `set_index` order (the deterministic
/// reconciliation order of the pipeline) and returns the aggregated statistics.
pub fn apply_plans(engine: &mut MergeEngine, ctx: &mut MergeCtx, plans: &[SetPlan]) -> MergeStats {
    debug_assert!(
        plans.windows(2).all(|w| w[0].set_index <= w[1].set_index),
        "plans must arrive in set order"
    );
    let mut stats = MergeStats::default();
    for plan in plans {
        stats.absorb(plan.stats);
        apply_set_plan(engine, ctx, plan);
    }
    stats
}

/// Replays every set plan with up to `threads` worker threads via conflict
/// partitioning (see the module docs), falling back to the serial
/// [`apply_plans`] for `threads <= 1`.
///
/// The resulting engine state is byte-identical to the serial replay for every
/// thread count.
pub fn apply_plans_with(
    engine: &mut MergeEngine,
    ctx: &mut MergeCtx,
    workers: &mut ApplyWorkers,
    plans: &[SetPlan],
    threads: usize,
) -> (MergeStats, ApplyProfile) {
    if threads <= 1 || plans.len() <= 1 {
        return (apply_plans(engine, ctx, plans), ApplyProfile::default());
    }
    debug_assert!(
        plans.windows(2).all(|w| w[0].set_index <= w[1].set_index),
        "plans must arrive in set order"
    );
    let mut stats = MergeStats::default();
    for plan in plans {
        stats.absorb(plan.stats);
    }

    // The arena slot of every merge, fixed by the *serial* replay order: plan `p`'s
    // merges occupy `starts[p]..starts[p] + |merges(p)|` no matter when `p` commits.
    let mut starts: Vec<usize> = Vec::with_capacity(plans.len());
    let mut next = engine.summary().arena_len();
    for plan in plans {
        starts.push(next);
        next += plan.merges.len();
    }

    let batch_of = conflict_batches(engine, plans);
    let num_batches = batch_of.iter().copied().max().map_or(0, |b| b + 1);
    let mut batches: Vec<Vec<usize>> = vec![Vec::new(); num_batches];
    for (i, &b) in batch_of.iter().enumerate() {
        if !plans[i].merges.is_empty() {
            batches[b].push(i);
        }
    }
    batches.retain(|batch| !batch.is_empty());
    let profile = ApplyProfile {
        batches: batches.len(),
        batched_plans: batches.iter().map(|b| b.len()).sum(),
    };

    for batch in &batches {
        // Tiny batches are not worth a fork-join round trip (the substrate spawns
        // OS threads per scope); resolve them inline.  Pure scheduling — resolution
        // is deterministic no matter where it runs.
        let batch_merges: usize = batch.iter().map(|&i| plans[i].merges.len()).sum();
        if batch.len() == 1 || batch_merges < SPAWN_THRESHOLD {
            let worker = &mut workers.ensure(1, ctx)[0];
            for &i in batch {
                let resolved = resolve_plan(engine, &plans[i], starts[i], worker);
                commit_plan(engine, &resolved);
            }
            continue;
        }
        // Parallel resolve: deal the batch's plans across workers by
        // longest-processing-time over their merge counts, resolve every plan
        // against the batch-start engine state…
        let costs: Vec<u64> = batch
            .iter()
            .map(|&i| plans[i].merges.len() as u64)
            .collect();
        let workers_used = threads.min(batch.len());
        let assignment = partition_sets(&costs, workers_used);
        let mut resolved: Vec<Option<ResolvedPlan>> = Vec::with_capacity(batch.len());
        resolved.resize_with(batch.len(), || None);
        let frozen: &MergeEngine = engine;
        let starts: &[usize] = &starts;
        let batch: &[usize] = batch;
        let produced: Vec<Vec<(usize, ResolvedPlan)>> = rayon::scope(|scope| {
            let handles: Vec<_> = workers
                .ensure(workers_used, ctx)
                .iter_mut()
                .zip(assignment.shards().iter())
                .filter(|(_, shard)| !shard.is_empty())
                .map(|(worker, shard)| {
                    scope.spawn(move || {
                        shard
                            .iter()
                            .map(|&pos| {
                                let i = batch[pos];
                                (pos, resolve_plan(frozen, &plans[i], starts[i], worker))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });
        for (pos, plan) in produced.into_iter().flatten() {
            resolved[pos] = Some(plan);
        }
        // …then commit serially in ascending set-index order.
        for plan in resolved {
            commit_plan(engine, &plan.expect("every batched plan is resolved"));
        }
    }
    (stats, profile)
}

/// Fills `out` with the sorted, deduplicated **footprint** of a plan on the frozen
/// engine: every root its merges touch plus every root adjacent to those.  Two plans
/// whose footprints are disjoint cannot read or write any common state while being
/// applied (see the module docs).
pub fn plan_footprint(engine: &MergeEngine, plan: &SetPlan, out: &mut Vec<SupernodeId>) {
    out.clear();
    for merge in &plan.merges {
        for operand in [merge.a, merge.b] {
            if let MergeRef::Root(root) = operand {
                out.push(root);
                if let Some(meta) = engine.root_meta(root) {
                    out.extend(meta.adjacency.keys().copied());
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
}

/// Assigns every plan to a conflict batch (returned per plan, in input order).
///
/// Plans are layered greedily in ascending set-index order: a plan's batch is one
/// past the highest batch of any earlier plan whose [`plan_footprint`] intersects
/// its own.  Within a batch no two plans share a touched-or-adjacent root, and every
/// conflicting pair is committed in serial order because the earlier plan's batch is
/// strictly smaller.
pub fn conflict_batches(engine: &MergeEngine, plans: &[SetPlan]) -> Vec<usize> {
    let mut batch_of = Vec::with_capacity(plans.len());
    let mut last_batch: FxHashMap<SupernodeId, usize> = FxHashMap::default();
    let mut footprint: Vec<SupernodeId> = Vec::new();
    for plan in plans {
        plan_footprint(engine, plan, &mut footprint);
        let mut batch = 0usize;
        for r in &footprint {
            if let Some(&b) = last_batch.get(r) {
                batch = batch.max(b + 1);
            }
        }
        for &r in &footprint {
            last_batch.insert(r, batch);
        }
        batch_of.push(batch);
    }
    batch_of
}

/// Per-worker state of the parallel resolve phase.
struct ApplyWorker {
    ctx: MergeCtx,
    scratch: PlanScratch,
    /// Reused buffer for the roots a plan's merges touch.
    tracked: Vec<SupernodeId>,
}

/// One plan's recorded resolution: every merge solved against the exact state the
/// serial replay would have seen, with concrete (forced) supernode ids, ready to be
/// committed verbatim.
struct ResolvedPlan {
    merges: Vec<ResolvedMerge>,
    case2: Vec<Case2Record>,
}

/// Resolves a plan's merges on a replay overlay whose local ids start at the plan's
/// precomputed arena slot.
fn resolve_plan(
    engine: &MergeEngine,
    plan: &SetPlan,
    start: usize,
    worker: &mut ApplyWorker,
) -> ResolvedPlan {
    worker.tracked.clear();
    for merge in &plan.merges {
        for operand in [merge.a, merge.b] {
            if let MergeRef::Root(root) = operand {
                worker.tracked.push(root);
            }
        }
    }
    worker.tracked.sort_unstable();
    worker.tracked.dedup();
    let mut overlay =
        PlanningEngine::for_replay(engine, &worker.tracked, start, &mut worker.scratch);
    let mut merges = Vec::with_capacity(plan.merges.len());
    let mut case2 = Vec::new();
    for merge in &plan.merges {
        let a = forced_ref(start, merge.a);
        let b = forced_ref(start, merge.b);
        merges.push(overlay.replay_merge_recorded(a, b, &mut worker.ctx, &mut case2));
    }
    ResolvedPlan { merges, case2 }
}

/// Commits a resolved plan's merges onto the authoritative engine.
fn commit_plan(engine: &mut MergeEngine, plan: &ResolvedPlan) {
    for rm in &plan.merges {
        debug_assert!(
            engine.summary().is_root(rm.a) && engine.summary().is_root(rm.b),
            "resolved operands must still be roots (candidate sets are disjoint)"
        );
        engine.commit_merge(rm, &plan.case2);
    }
}

/// The concrete id of a merge operand under forced ids: the `i`-th planned product
/// of a plan starting at slot `start` is exactly `start + i`.
#[inline]
fn forced_ref(start: usize, r: MergeRef) -> SupernodeId {
    match r {
        MergeRef::Root(id) => id,
        MergeRef::Planned(i) => (start + i) as SupernodeId,
    }
}

fn resolve(created: &[SupernodeId], r: MergeRef) -> SupernodeId {
    match r {
        MergeRef::Root(id) => id,
        MergeRef::Planned(i) => created[i],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode_full;
    use slugger_graph::Graph;

    fn double_star() -> Graph {
        // Two hubs (0, 1), five twin spokes (2..7) attached to both.
        let mut edges = vec![(0, 1)];
        for s in 2..7u32 {
            edges.push((0, s));
            edges.push((1, s));
        }
        Graph::from_edges(7, edges)
    }

    #[test]
    fn replayed_plan_matches_direct_merging() {
        let g = double_star();
        // Direct: merge 2+3, then (2∪3)+4.
        let mut direct = MergeEngine::new(&g);
        let mut ctx = MergeCtx::new();
        let m = direct.apply_merge(2, 3, &mut ctx);
        direct.apply_merge(m, 4, &mut ctx);

        // Replayed from a plan with positional references.
        let mut replayed = MergeEngine::new(&g);
        let plan = SetPlan {
            set_index: 0,
            merges: vec![
                PlannedMerge {
                    a: MergeRef::Root(2),
                    b: MergeRef::Root(3),
                },
                PlannedMerge {
                    a: MergeRef::Planned(0),
                    b: MergeRef::Root(4),
                },
            ],
            stats: MergeStats::default(),
        };
        apply_set_plan(&mut replayed, &mut ctx, &plan);
        let created = ctx.scratch.created.clone();
        assert_eq!(created.len(), 2);
        assert_eq!(
            direct.summary().encoding_cost(),
            replayed.summary().encoding_cost()
        );
        assert_eq!(replayed.summary().members(created[1]), &[2, 3, 4]);
        replayed.summary().validate().unwrap();
    }

    #[test]
    fn plans_over_disjoint_sets_apply_in_any_shard_interleaving() {
        let g = double_star();
        let mut ctx = MergeCtx::new();
        let plan_a = SetPlan {
            set_index: 0,
            merges: vec![PlannedMerge {
                a: MergeRef::Root(2),
                b: MergeRef::Root(3),
            }],
            stats: MergeStats::default(),
        };
        let plan_b = SetPlan {
            set_index: 1,
            merges: vec![PlannedMerge {
                a: MergeRef::Root(4),
                b: MergeRef::Root(5),
            }],
            stats: MergeStats::default(),
        };
        let mut engine = MergeEngine::new(&g);
        let stats = apply_plans(&mut engine, &mut ctx, &[plan_a, plan_b]);
        assert_eq!(stats.merged, 0, "stats come from planning, not replay");
        assert_eq!(engine.num_roots(), 5); // 7 roots - 2 merges
        engine.summary().validate().unwrap();
    }

    #[test]
    fn conflict_batches_order_conflicting_plans() {
        let g = double_star();
        let engine = MergeEngine::new(&g);
        let plan = |set_index: usize, a: u32, b: u32| SetPlan {
            set_index,
            merges: vec![PlannedMerge {
                a: MergeRef::Root(a),
                b: MergeRef::Root(b),
            }],
            stats: MergeStats::default(),
        };
        // Every spoke is adjacent to both hubs, so all three plans share the hubs in
        // their footprints and must land in strictly increasing batches.
        let plans = [plan(0, 2, 3), plan(1, 4, 5), plan(2, 6, 2)];
        let batches = conflict_batches(&engine, &plans);
        assert_eq!(batches, vec![0, 1, 2]);

        // Two cliques with no adjacency between them: independent plans share batch 0.
        let g2 = Graph::from_edges(6, vec![(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let engine2 = MergeEngine::new(&g2);
        let plans2 = [plan(0, 0, 1), plan(1, 3, 4)];
        assert_eq!(conflict_batches(&engine2, &plans2), vec![0, 0]);
    }

    #[test]
    fn parallel_apply_is_byte_identical_to_serial() {
        // Four disjoint triangles chained pairwise: plans 0/1 conflict through the
        // bridge edges, plans 2/3 are independent of them.
        let mut edges = Vec::new();
        for t in 0..4u32 {
            let base = t * 3;
            edges.push((base, base + 1));
            edges.push((base + 1, base + 2));
            edges.push((base, base + 2));
        }
        edges.push((2, 3)); // bridge between triangles 0 and 1
        let g = Graph::from_edges(12, edges);
        let plan = |set_index: usize, a: u32, b: u32, c: u32| SetPlan {
            set_index,
            merges: vec![
                PlannedMerge {
                    a: MergeRef::Root(a),
                    b: MergeRef::Root(b),
                },
                PlannedMerge {
                    a: MergeRef::Planned(0),
                    b: MergeRef::Root(c),
                },
            ],
            stats: MergeStats::default(),
        };
        let plans = [
            plan(0, 0, 1, 2),
            plan(1, 3, 4, 5),
            plan(2, 6, 7, 8),
            plan(3, 9, 10, 11),
        ];
        let mut serial = MergeEngine::new(&g);
        let mut ctx = MergeCtx::new();
        apply_plans(&mut serial, &mut ctx, &plans);
        for threads in [2usize, 3, 8] {
            let mut parallel = MergeEngine::new(&g);
            let mut pctx = MergeCtx::new();
            let mut workers = ApplyWorkers::new();
            let (_, profile) =
                apply_plans_with(&mut parallel, &mut pctx, &mut workers, &plans, threads);
            assert!(profile.batches >= 2, "bridged plans must be layered");
            assert_eq!(profile.batched_plans, 4);
            assert_eq!(
                serial.summary().encoding_cost(),
                parallel.summary().encoding_cost()
            );
            assert_eq!(serial.roots(), parallel.roots());
            assert_eq!(
                decode_full(serial.summary()).edge_set(),
                decode_full(parallel.summary()).edge_set()
            );
            for id in 0..serial.summary().arena_len() as SupernodeId {
                assert_eq!(
                    serial.summary().parent(id),
                    parallel.summary().parent(id),
                    "parent of {id} diverged"
                );
                assert_eq!(
                    serial.summary().children(id),
                    parallel.summary().children(id)
                );
                assert_eq!(serial.summary().members(id), parallel.summary().members(id));
            }
            parallel.summary().validate().unwrap();
        }
    }
}
