//! The **apply** (reconciliation) stage of the sharded merge pipeline.
//!
//! Shard workers plan merges speculatively on copy-on-write overlays of the frozen
//! iteration view ([`super::plan::PlanningEngine`]); this module replays those plans
//! against the one authoritative engine.  Replaying goes through [`MergeEngine::apply_merge`], i.e.
//! the full Case-1/Case-2 panel re-encoding of Sect. III-B3, so the p/n/h-edge
//! bookkeeping of `Saving(A, B, G)` stays exact on the authoritative state no matter
//! how the planning work was sharded.
//!
//! Correctness rests on the candidate sets being **disjoint**: a plan only ever
//! merges roots drawn from its own candidate set (or supernodes created by its own
//! earlier merges), and no other set names those roots.  Merges applied for other
//! sets can therefore re-encode *edges* incident to this set's trees, but can never
//! merge the trees themselves away — every planned operand is still a root when its
//! turn comes, which [`apply_set_plan`] asserts.

use super::{MergeCtx, MergeEngine};
use crate::merge::MergeStats;
use crate::model::SupernodeId;

/// One operand of a planned merge.
///
/// Supernode ids allocated by a forked engine during planning need not match the ids
/// the authoritative engine will allocate, so plans refer to merge *products*
/// positionally instead of by id.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeRef {
    /// A root that already existed when the iteration started (stable id).
    Root(SupernodeId),
    /// The product of the `i`-th earlier merge of the same set plan.
    Planned(usize),
}

/// One planned merge: both operands must resolve to current roots at apply time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannedMerge {
    /// First operand (`A` in the paper's notation).
    pub a: MergeRef,
    /// Second operand (`B`).
    pub b: MergeRef,
}

/// The merges planned for one candidate set, in the order they must be applied.
#[derive(Clone, Debug)]
pub struct SetPlan {
    /// Index of the candidate set within the iteration (also the RNG stream index).
    pub set_index: usize,
    /// Ordered merges.
    pub merges: Vec<PlannedMerge>,
    /// Planning statistics (pairs evaluated, merges planned).
    pub stats: MergeStats,
}

/// Replays one set plan on the authoritative engine.  Returns the ids of the created
/// supernodes, in plan order.
pub fn apply_set_plan(
    engine: &mut MergeEngine,
    ctx: &mut MergeCtx,
    plan: &SetPlan,
) -> Vec<SupernodeId> {
    let mut created: Vec<SupernodeId> = Vec::with_capacity(plan.merges.len());
    for merge in &plan.merges {
        let a = resolve(&created, merge.a);
        let b = resolve(&created, merge.b);
        debug_assert!(
            engine.summary().is_root(a) && engine.summary().is_root(b),
            "planned operands must still be roots (candidate sets are disjoint)"
        );
        created.push(engine.apply_merge(a, b, ctx));
    }
    created
}

/// Replays every set plan in ascending `set_index` order (the deterministic
/// reconciliation order of the pipeline) and returns the aggregated statistics.
pub fn apply_plans(engine: &mut MergeEngine, ctx: &mut MergeCtx, plans: &[SetPlan]) -> MergeStats {
    debug_assert!(
        plans.windows(2).all(|w| w[0].set_index <= w[1].set_index),
        "plans must arrive in set order"
    );
    let mut stats = MergeStats::default();
    for plan in plans {
        stats.absorb(plan.stats);
        apply_set_plan(engine, ctx, plan);
    }
    stats
}

fn resolve(created: &[SupernodeId], r: MergeRef) -> SupernodeId {
    match r {
        MergeRef::Root(id) => id,
        MergeRef::Planned(i) => created[i],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slugger_graph::Graph;

    fn double_star() -> Graph {
        // Two hubs (0, 1), five twin spokes (2..7) attached to both.
        let mut edges = vec![(0, 1)];
        for s in 2..7u32 {
            edges.push((0, s));
            edges.push((1, s));
        }
        Graph::from_edges(7, edges)
    }

    #[test]
    fn replayed_plan_matches_direct_merging() {
        let g = double_star();
        // Direct: merge 2+3, then (2∪3)+4.
        let mut direct = MergeEngine::new(&g);
        let mut ctx = MergeCtx::new();
        let m = direct.apply_merge(2, 3, &mut ctx);
        direct.apply_merge(m, 4, &mut ctx);

        // Replayed from a plan with positional references.
        let mut replayed = MergeEngine::new(&g);
        let plan = SetPlan {
            set_index: 0,
            merges: vec![
                PlannedMerge {
                    a: MergeRef::Root(2),
                    b: MergeRef::Root(3),
                },
                PlannedMerge {
                    a: MergeRef::Planned(0),
                    b: MergeRef::Root(4),
                },
            ],
            stats: MergeStats::default(),
        };
        let created = apply_set_plan(&mut replayed, &mut ctx, &plan);
        assert_eq!(created.len(), 2);
        assert_eq!(
            direct.summary().encoding_cost(),
            replayed.summary().encoding_cost()
        );
        assert_eq!(replayed.summary().members(created[1]), &[2, 3, 4]);
        replayed.summary().validate().unwrap();
    }

    #[test]
    fn plans_over_disjoint_sets_apply_in_any_shard_interleaving() {
        let g = double_star();
        let mut ctx = MergeCtx::new();
        let plan_a = SetPlan {
            set_index: 0,
            merges: vec![PlannedMerge {
                a: MergeRef::Root(2),
                b: MergeRef::Root(3),
            }],
            stats: MergeStats::default(),
        };
        let plan_b = SetPlan {
            set_index: 1,
            merges: vec![PlannedMerge {
                a: MergeRef::Root(4),
                b: MergeRef::Root(5),
            }],
            stats: MergeStats::default(),
        };
        let mut engine = MergeEngine::new(&g);
        let stats = apply_plans(&mut engine, &mut ctx, &[plan_a, plan_b]);
        assert_eq!(stats.merged, 0, "stats come from planning, not replay");
        assert_eq!(engine.num_roots(), 5); // 7 roots - 2 merges
        engine.summary().validate().unwrap();
    }
}
