//! The merge engine: incremental bookkeeping around a [`HierarchicalSummary`] that the
//! merging step (Algorithm 2) needs — which supernode is the current root of each
//! tree, which roots are adjacent through p/n-edges, per-root costs — plus the two
//! operations at the heart of SLUGGER: evaluating `Saving(A, B, G)` (Eq. 8) and
//! actually merging two roots while re-encoding their panel (Sect. III-B3).
//!
//! In the sharded pipeline ([`crate::pipeline`]) the engine is split into two roles:
//!
//! * the **immutable cost/topology view** — the engine as it stood when the
//!   iteration's candidate sets were generated, shared as `&MergeEngine` by every
//!   shard and queried through the `view` trait;
//! * the **per-shard mutable state** — a copy-on-write [`plan::PlanningEngine`]
//!   overlay on which a shard speculatively plans each candidate set's merges,
//!   touching memory proportional to the set instead of deep-copying the engine.
//!
//! The plans are then replayed against the authoritative engine by the [`apply`]
//! reconciliation layer, which re-runs the exact `Saving(A, B, G)` re-encoding
//! machinery of [`MergeEngine::apply_merge`], so the final cost bookkeeping is exact
//! regardless of how planning was sharded.
//!
//! Every evaluation/application runs against a per-worker [`MergeCtx`]: the encoder
//! memo plus reusable scratch buffers, so the hot path performs no per-evaluation
//! heap allocation (see `view`'s module docs for the allocation discipline).

pub mod apply;
pub mod plan;
pub(crate) mod view;

use crate::encoder::{EncoderMemo, PanelSolution};
use crate::model::{EdgeSign, HierarchicalSummary, SupernodeId};
use slugger_graph::hash::FxHashMap;
use slugger_graph::Graph;
use view::{MergeView, PanelEdges, PnEdgeSink};

/// Per-worker mutable context of the merge machinery: the panel re-encoding memo
/// plus reusable scratch buffers.
///
/// One context per shard worker (forked by [`crate::pipeline::ShardWorker::fork`])
/// or per driver; reusing it across evaluations is what keeps the inner loop
/// allocation-free.  The scratch contents are transient per call and never carry
/// state between evaluations — pinned by the scratch-reuse property test in
/// `tests/candidate_determinism.rs`.
#[derive(Default)]
pub struct MergeCtx {
    /// The memoized Case-1/Case-2 panel solver.
    pub memo: EncoderMemo,
    /// Reusable buffers for the problem builders (transient per call).
    pub(crate) scratch: EvalScratch,
}

impl MergeCtx {
    /// A context with an enabled memo.
    pub fn new() -> Self {
        MergeCtx {
            memo: EncoderMemo::new(),
            scratch: EvalScratch::default(),
        }
    }

    /// A context whose memo re-solves every panel (for the memoization ablation).
    pub fn disabled() -> Self {
        MergeCtx {
            memo: EncoderMemo::disabled(),
            scratch: EvalScratch::default(),
        }
    }

    /// Wraps an existing memo (e.g. one shared across runs) with fresh scratch.
    pub fn from_memo(memo: EncoderMemo) -> Self {
        MergeCtx {
            memo,
            scratch: EvalScratch::default(),
        }
    }

    /// A fresh context with the same memoization setting as `self` (used to fork
    /// per-worker contexts for the parallel apply stage).
    pub fn fork_like(&self) -> Self {
        if self.memo.enabled {
            MergeCtx::new()
        } else {
            MergeCtx::disabled()
        }
    }

    /// Returns a spent `SetPlan::merges` vector to the pool, so the next
    /// [`crate::merge::plan_candidate_set`] call on this context reuses its
    /// allocation instead of allocating a fresh one.  The pool is capped; excess
    /// vectors are simply dropped.
    pub fn recycle_merges(&mut self, merges: Vec<apply::PlannedMerge>) {
        const MERGE_POOL_CAP: usize = 256;
        if self.scratch.merge_pool.len() < MERGE_POOL_CAP {
            self.scratch.merge_pool.push(merges);
        }
    }
}

/// One Case-2 re-encoding gathered while planning a merge application: the common
/// adjacent root, its solved panel, the old cross edges and the root's children.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Case2Record {
    pub(crate) c: SupernodeId,
    pub(crate) sol: PanelSolution,
    pub(crate) old: PanelEdges,
    pub(crate) c_kids: [Option<SupernodeId>; 3],
}

/// A fully resolved merge: everything [`MergeEngine::commit_merge`] (or the overlay's
/// replay) needs to apply the merge of roots `a` and `b` into supernode `m` without
/// re-reading any pre-merge state.
///
/// Produced by [`view::resolve_merge_into`] against the pre-merge state; the Case-2
/// records live in a caller-owned buffer, referenced by `(case2_start, case2_len)`.
/// Resolution is the expensive half of a merge (panel building + solving), which is
/// what the parallel apply stage fans out across workers; committing a resolution is
/// cheap and stays serial.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ResolvedMerge {
    pub(crate) a: SupernodeId,
    pub(crate) b: SupernodeId,
    /// The id the merged supernode gets (precomputed for forced-slot commits).
    pub(crate) m: SupernodeId,
    /// Pre-merge p/n-edge count between the two trees.
    pub(crate) cross_ab: u32,
    pub(crate) a_kids: [Option<SupernodeId>; 3],
    pub(crate) b_kids: [Option<SupernodeId>; 3],
    pub(crate) sol1: PanelSolution,
    pub(crate) old1: PanelEdges,
    pub(crate) case2_start: usize,
    pub(crate) case2_len: usize,
}

/// Reusable buffers of one [`MergeCtx`] (see [`view`]'s allocation discipline).
#[derive(Default)]
pub(crate) struct EvalScratch {
    /// Roots adjacent to both sides of the evaluated pair.
    pub(crate) commons: Vec<SupernodeId>,
    /// Case-2 records accumulated while applying one merge.
    pub(crate) case2: Vec<Case2Record>,
    /// Supernode ids created while replaying one set plan
    /// ([`apply::apply_set_plan`]), pooled so replay allocates nothing per plan.
    pub(crate) created: Vec<SupernodeId>,
    /// Pooled pivot queue of [`crate::merge::plan_candidate_set`].
    pub(crate) plan_queue: Vec<SupernodeId>,
    /// Pooled planned-product index of [`crate::merge::plan_candidate_set`].
    pub(crate) planned_ids: FxHashMap<SupernodeId, usize>,
    /// Recycled `SetPlan::merges` vectors: planning pops one instead of allocating,
    /// and consumers may push spent vectors back.
    pub(crate) merge_pool: Vec<Vec<apply::PlannedMerge>>,
}

/// Per-root metadata maintained incrementally by the engine (and, copy-on-write, by
/// the planning overlay in [`plan`]).
#[derive(Clone, Debug, Default)]
pub(crate) struct RootMeta {
    /// Number of supernodes in the tree (so `h-edges = tree_size − 1`).
    pub(crate) tree_size: usize,
    /// Height of the tree (a lone leaf has height 0).
    pub(crate) height: usize,
    /// For each adjacent root (including the root itself for intra-tree edges), the
    /// number of p/n-edges between the two trees.
    pub(crate) adjacency: FxHashMap<SupernodeId, u32>,
    /// Total number of p/n-edges incident to the tree (the sum of `adjacency`'s values,
    /// cached so `Cost^P_A` is O(1) — evaluating savings against high-degree roots
    /// would otherwise re-sum a large map for every candidate pair).
    pub(crate) pn_count: usize,
}

impl RootMeta {
    pub(crate) fn h_edges(&self) -> usize {
        self.tree_size.saturating_sub(1)
    }

    /// Cost^P_A(G): number of p/n-edges incident to the tree (intra-tree edges counted
    /// once).
    pub(crate) fn pn_incident(&self) -> usize {
        debug_assert_eq!(
            self.pn_count,
            self.adjacency.values().map(|&c| c as usize).sum::<usize>()
        );
        self.pn_count
    }
}

/// The mutable planning surface Algorithm 2 needs, implemented both by the
/// authoritative [`MergeEngine`] (plan-and-apply in place) and by the per-shard
/// copy-on-write overlay ([`plan::PlanningEngine`]).
pub trait MergeState {
    /// Whether `id` is currently a root.
    fn is_root(&self, id: SupernodeId) -> bool;
    /// Height of the tree rooted at `root`.
    fn root_height(&self, root: SupernodeId) -> usize;
    /// Evaluates `Saving(A, B, G)` (Eq. 8) without mutating the state.
    fn evaluate_merge(&self, a: SupernodeId, b: SupernodeId, ctx: &mut MergeCtx)
        -> MergeEvaluation;
    /// Merges roots `a` and `b`, applying the panel re-encodings; returns the merged
    /// root's id.
    fn apply_merge(&mut self, a: SupernodeId, b: SupernodeId, ctx: &mut MergeCtx) -> SupernodeId;
}

impl MergeState for MergeEngine {
    fn is_root(&self, id: SupernodeId) -> bool {
        self.summary().is_root(id)
    }

    fn root_height(&self, root: SupernodeId) -> usize {
        MergeEngine::root_height(self, root)
    }

    fn evaluate_merge(
        &self,
        a: SupernodeId,
        b: SupernodeId,
        ctx: &mut MergeCtx,
    ) -> MergeEvaluation {
        MergeEngine::evaluate_merge(self, a, b, ctx)
    }

    fn apply_merge(&mut self, a: SupernodeId, b: SupernodeId, ctx: &mut MergeCtx) -> SupernodeId {
        MergeEngine::apply_merge(self, a, b, ctx)
    }
}

/// Outcome of evaluating a candidate merge.
#[derive(Clone, Debug)]
pub struct MergeEvaluation {
    /// `Saving(A, B, G)` as defined by Eq. 8 (may be negative).
    pub saving: f64,
    /// Encoding cost attributed to the pair before the merge (Eq. 8's denominator).
    pub cost_before: usize,
    /// Encoding cost of the merged root after the merge (Eq. 8's numerator).
    pub cost_after: usize,
}

/// Outcome of [`MergeEngine::dissolve_partial`].
///
/// Invariants: every id in `restore_leaves` is an edge-free singleton root whose
/// current-graph edges the caller must restore through
/// [`MergeEngine::restore_leaf_edge`]; `new_roots` are ALL the roots split out of
/// the dissolved tree (ascending) — the intact surviving subtrees plus the
/// re-expanded leaves, so `restore_leaves ⊆ new_roots` and on the whole-tree
/// path the two are equal.
#[derive(Clone, Debug)]
pub struct PartialDissolution {
    /// Leaves whose coverage was zeroed and whose edges need restoring.
    pub restore_leaves: Vec<SupernodeId>,
    /// Roots now heading the split-out surviving structure (ascending).
    pub new_roots: Vec<SupernodeId>,
    /// Supernodes killed (the ancestor spine, or the whole tree's internals on
    /// the fallback path).
    pub killed: usize,
    /// Whether the exact subtree split was unrepresentable and the whole tree
    /// was dissolved instead.
    pub fell_back: bool,
}

/// The merge engine. Owns the evolving [`HierarchicalSummary`] plus the root-level
/// indices; borrows the input graph only for initialization (the merging phase itself
/// works purely on the summary).
pub struct MergeEngine {
    summary: HierarchicalSummary,
    /// Union-find over supernode ids; the representative of a set is mapped to the
    /// current root supernode of that tree through `set_root`.
    dsu_parent: Vec<SupernodeId>,
    set_root: FxHashMap<SupernodeId, SupernodeId>,
    roots: FxHashMap<SupernodeId, RootMeta>,
    /// Root retirements buffered for a candidate index (see
    /// [`crate::candidates::IndexSink`]): every structural event that can change
    /// a root's shingle signature — merge, dissolution, split, root-level prune
    /// — records the ids it retired or re-promoted here.  Disabled (and empty)
    /// unless [`MergeEngine::enable_index_log`] was called, so the batch
    /// pipeline pays nothing; the owner drains it through
    /// [`MergeEngine::flush_retired`].
    retired: Vec<SupernodeId>,
    log_retired: bool,
}

impl MergeEngine {
    /// Initializes the engine with the identity summary of `graph`: every subnode is a
    /// singleton root and every subedge becomes a p-edge between the two singletons
    /// (Algorithm 1, lines 1–4).
    pub fn new(graph: &Graph) -> Self {
        let n = graph.num_nodes();
        let mut summary = HierarchicalSummary::identity(n);
        let mut roots: FxHashMap<SupernodeId, RootMeta> = FxHashMap::default();
        for u in 0..n as SupernodeId {
            roots.insert(
                u,
                RootMeta {
                    tree_size: 1,
                    height: 0,
                    adjacency: FxHashMap::default(),
                    pn_count: 0,
                },
            );
        }
        for (u, v) in graph.edges() {
            summary.set_edge(u, v, EdgeSign::Positive);
            let meta_u = roots.get_mut(&u).unwrap();
            *meta_u.adjacency.entry(v).or_insert(0) += 1;
            meta_u.pn_count += 1;
            let meta_v = roots.get_mut(&v).unwrap();
            *meta_v.adjacency.entry(u).or_insert(0) += 1;
            meta_v.pn_count += 1;
        }
        let dsu_parent = (0..n as SupernodeId).collect();
        let set_root = (0..n as SupernodeId).map(|u| (u, u)).collect();
        MergeEngine {
            summary,
            dsu_parent,
            set_root,
            roots,
            retired: Vec::new(),
            log_retired: false,
        }
    }

    /// Rebuilds an engine around an **existing** summary — one produced by a
    /// previous run (possibly pruned) or reloaded through [`crate::storage`]:
    /// reconstructs the union-find, the root set and every root's metadata from the
    /// summary's structure and p/n-edges.  O(arena + |P⁺| + |P⁻|), paid once; the
    /// incremental re-summarizer ([`crate::incremental`]) then maintains the engine
    /// across delta batches so per-batch work stays proportional to the dirty
    /// region.
    ///
    /// The summary is adopted as-is: the caller is responsible for it being a
    /// lossless encoding of whatever graph the follow-up merges should preserve.
    pub fn from_summary(summary: HierarchicalSummary) -> Self {
        let arena = summary.arena_len();
        let mut dsu_parent: Vec<SupernodeId> = (0..arena as SupernodeId).collect();
        for id in 0..arena as SupernodeId {
            if let Some(p) = summary.parent(id) {
                dsu_parent[id as usize] = p;
            }
        }
        let root_ids: Vec<SupernodeId> = summary.roots().collect();
        let mut set_root: FxHashMap<SupernodeId, SupernodeId> = FxHashMap::default();
        let mut roots: FxHashMap<SupernodeId, RootMeta> = FxHashMap::default();
        for &r in &root_ids {
            set_root.insert(r, r);
            roots.insert(
                r,
                RootMeta {
                    tree_size: summary.tree_supernodes(r).len(),
                    height: summary.tree_height(r),
                    adjacency: FxHashMap::default(),
                    pn_count: 0,
                },
            );
        }
        for ((x, y), _sign) in summary.pn_edges() {
            let rx = summary.root_of(x);
            let ry = summary.root_of(y);
            let meta_x = roots.get_mut(&rx).expect("edge endpoint's root");
            *meta_x.adjacency.entry(ry).or_insert(0) += 1;
            meta_x.pn_count += 1;
            if rx != ry {
                let meta_y = roots.get_mut(&ry).expect("edge endpoint's root");
                *meta_y.adjacency.entry(rx).or_insert(0) += 1;
                meta_y.pn_count += 1;
            }
        }
        MergeEngine {
            summary,
            dsu_parent,
            set_root,
            roots,
            retired: Vec::new(),
            log_retired: false,
        }
    }

    /// Turns on the retirement log: from now on every structural event that can
    /// change a root's shingle signature pushes the retired/re-promoted ids into
    /// an internal buffer, drained by [`MergeEngine::flush_retired`].  Idempotent;
    /// survives [`MergeEngine::compact`].
    pub fn enable_index_log(&mut self) {
        self.log_retired = true;
    }

    #[inline]
    fn log_retire(&mut self, id: SupernodeId) {
        if self.log_retired {
            self.retired.push(id);
        }
    }

    /// Drains the buffered retirements into `sink` (typically a
    /// [`crate::candidates::CandidateIndex`]).  No-op when the log is disabled
    /// or empty.
    pub fn flush_retired(&mut self, sink: &mut impl crate::candidates::IndexSink) {
        for id in self.retired.drain(..) {
            sink.retire_root(id);
        }
    }

    /// Dissolves the tree of `root` back into singleton-leaf roots: removes every
    /// p/n-edge incident to the tree through the bookkeeping sink (so neighbor
    /// roots' metadata stays exact), resets the union-find entries of the dissolved
    /// region, and gives every leaf a fresh edge-free `RootMeta`.  Returns
    /// `(leaves, killed_internal_supernodes)`.
    ///
    /// This is the dirty-region **re-expansion** primitive of
    /// [`crate::incremental`]: after dissolving, the caller restores exact
    /// leaf-level p-edges for the current graph's edges incident to the region,
    /// which re-establishes losslessness with the region fully expanded.
    pub fn dissolve_root(&mut self, root: SupernodeId) -> (usize, usize) {
        debug_assert!(
            self.roots.contains_key(&root),
            "dissolve requires a current root"
        );
        let tree = self.summary.tree_supernodes(root);
        // Drop every incident p/n-edge in deterministic (sorted) order: incidence
        // sets iterate in hash-layout order, which legitimately differs between the
        // serial and the parallel apply path's insertion histories.
        let mut incident: Vec<SupernodeId> = Vec::new();
        for &x in &tree {
            incident.clear();
            incident.extend(self.summary.incident(x));
            incident.sort_unstable();
            for &other in &incident {
                self.remove_pn_edge(x, other);
            }
        }
        // Root bookkeeping of the dissolved tree, then the structural dissolution.
        let rep = self.find(root);
        self.set_root.remove(&rep);
        self.roots.remove(&root);
        self.log_retire(root);
        let nodes = self.summary.dissolve_tree(root);
        let num_subnodes = self.summary.num_subnodes();
        let mut leaves = 0usize;
        for &x in &nodes {
            self.dsu_parent[x as usize] = x;
            if (x as usize) < num_subnodes {
                self.log_retire(x);
                self.set_root.insert(x, x);
                self.roots.insert(
                    x,
                    RootMeta {
                        tree_size: 1,
                        height: 0,
                        adjacency: FxHashMap::default(),
                        pn_count: 0,
                    },
                );
                leaves += 1;
            }
        }
        (leaves, nodes.len() - leaves)
    }

    /// Restores one exact leaf-level p-edge (the dirty-region re-encoding of a
    /// current-graph edge) through the bookkeeping sink.  The pair must currently
    /// be uncovered — which holds by construction after [`MergeEngine::dissolve_root`]
    /// removed every edge incident to the dirty trees.
    pub fn restore_leaf_edge(&mut self, u: SupernodeId, v: SupernodeId) {
        debug_assert_eq!(self.summary.edge_weight(u, v), 0);
        self.add_pn_edge(u, v, 1);
    }

    /// Batched [`MergeEngine::restore_leaf_edge`]: identical per-edge bookkeeping
    /// effects in identical order (so every hash-map insertion history — and hence
    /// any layout-order iteration downstream — matches the one-at-a-time loop
    /// exactly), with the root resolution hoisted out of the per-edge path.
    ///
    /// Each pair's first endpoint must be a freshly-promoted singleton leaf root
    /// (as dissolution produces), so its root is itself; and since restoration
    /// only **adds** edges — no structural event can occur mid-batch — every
    /// second endpoint's root is stable and is resolved once per distinct
    /// endpoint instead of once per edge.
    pub fn restore_leaf_edges(&mut self, edges: &[(SupernodeId, SupernodeId)]) {
        let mut root_memo: FxHashMap<SupernodeId, SupernodeId> = FxHashMap::default();
        for &(u, v) in edges {
            debug_assert_eq!(self.summary.edge_weight(u, v), 0);
            debug_assert_eq!(self.root_of(u), u, "u must be a singleton leaf root");
            let prev = self.summary.set_edge(u, v, EdgeSign::Positive);
            debug_assert!(prev.is_none(), "restored pair must be uncovered");
            let rv = *root_memo.entry(v).or_insert_with(|| self.root_of(v));
            let meta_u = self.roots.get_mut(&u).expect("root");
            *meta_u.adjacency.entry(rv).or_insert(0) += 1;
            meta_u.pn_count += 1;
            if u != rv {
                let meta_v = self.roots.get_mut(&rv).expect("root");
                *meta_v.adjacency.entry(u).or_insert(0) += 1;
                meta_v.pn_count += 1;
            }
        }
    }

    /// Subtree-granular dissolution: re-expands only the `affected` leaves of
    /// `root`'s tree, killing their ancestor **spine** and promoting every intact
    /// sibling subtree to a root of its own — with exact `Saving(A, B, G)`
    /// bookkeeping, exactly like [`MergeEngine::dissolve_root`] but proportional
    /// to the delta, not the region.
    ///
    /// See [`PartialDissolution`] for the outcome contract.
    ///
    /// `affected` must be a sorted, deduplicated, non-empty set of singleton-leaf
    /// supernode ids belonging to `root`'s tree.  After the call, every affected
    /// leaf is an edge-free singleton root (the caller restores its current-graph
    /// edges through [`MergeEngine::restore_leaf_edge`], as after a full
    /// dissolution), while every pair *not* involving an affected leaf keeps its
    /// exact net coverage: the surviving structure's edges are re-attached onto
    /// the maximal intact subtrees through the bookkeeping sink.
    ///
    /// Falls back to whole-tree dissolution (and says so in the returned
    /// [`PartialDissolution::fell_back`]) when the exact subtree split is not
    /// representable — an expanded pair would need a net weight outside ±1
    /// (nested/stacked coverage) or the expansion would cost more than the
    /// whole-tree path it is supposed to undercut.
    pub fn dissolve_partial(
        &mut self,
        root: SupernodeId,
        affected: &[SupernodeId],
    ) -> PartialDissolution {
        debug_assert!(
            self.roots.contains_key(&root),
            "dissolve requires a current root"
        );
        debug_assert!(!affected.is_empty());
        debug_assert!(affected.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(affected.iter().all(
            |&u| (u as usize) < self.summary.num_subnodes() && self.summary.root_of(u) == root
        ));
        let members = self.summary.members(root);
        // A lone-leaf root, or a delta touching every member, has no intact
        // structure to preserve: the whole-tree path IS the minimal one.
        if members.len() <= affected.len() {
            return self.dissolve_whole(root);
        }
        // The kill set is the union of the affected leaves' proper ancestor
        // chains — upward-closed by construction, always containing `root`.
        let mut kill_set: slugger_graph::hash::FxHashSet<SupernodeId> =
            slugger_graph::hash::FxHashSet::default();
        for &u in affected {
            let mut cur = self.summary.parent(u);
            while let Some(p) = cur {
                if !kill_set.insert(p) {
                    break;
                }
                cur = self.summary.parent(p);
            }
        }
        let mut kill: Vec<SupernodeId> = kill_set.into_iter().collect();
        kill.sort_unstable();
        match self.split_root(root, &kill, affected) {
            Some(new_roots) => PartialDissolution {
                restore_leaves: affected.to_vec(),
                new_roots,
                killed: kill.len(),
                fell_back: false,
            },
            None => self.dissolve_whole(root),
        }
    }

    /// The whole-tree path of [`MergeEngine::dissolve_partial`], packaged as a
    /// [`PartialDissolution`] (every member becomes a restore leaf).
    fn dissolve_whole(&mut self, root: SupernodeId) -> PartialDissolution {
        let members: Vec<SupernodeId> = self.summary.members(root).to_vec();
        let (_, killed) = self.dissolve_root(root);
        PartialDissolution {
            new_roots: members.clone(),
            restore_leaves: members,
            killed,
            fell_back: true,
        }
    }

    /// Detaches the subtree rooted at `s` from its tree: kills `s`'s proper
    /// ancestors (the spine up to the root) and promotes `s` and every intact
    /// sibling subtree to roots, re-attaching the tree's edges exactly.  Returns
    /// the promoted roots (ascending; `s` among them), or `None` when the exact
    /// split is not representable (see [`MergeEngine::dissolve_partial`] — the
    /// caller then falls back to [`MergeEngine::dissolve_root`]).
    ///
    /// This is the primitive [`crate::incremental`]'s localization drives:
    /// detaching invalidates only the panel encodings of the killed ancestors, so
    /// only they are re-expanded and only the promoted roots re-enter planning.
    pub fn detach_subtree(&mut self, s: SupernodeId) -> Option<Vec<SupernodeId>> {
        assert!(self.summary.is_alive(s), "cannot detach a dead supernode");
        if self.summary.is_root(s) {
            return Some(vec![s]);
        }
        let mut kill: Vec<SupernodeId> = Vec::new();
        let mut cur = self.summary.parent(s);
        let mut root = s;
        while let Some(p) = cur {
            kill.push(p);
            root = p;
            cur = self.summary.parent(p);
        }
        kill.sort_unstable();
        self.split_root(root, &kill, &[])
    }

    /// Shared split machinery of [`MergeEngine::dissolve_partial`] and
    /// [`MergeEngine::detach_subtree`]: plans the exact re-attachment of every
    /// edge incident to `root`'s tree under the kill/drop decomposition, and
    /// commits it through the same remove-all / split / re-add template as the
    /// root case of [`MergeEngine::prune_supernode`].  Returns the promoted
    /// roots, or `None` (state untouched) when the plan is unrepresentable.
    ///
    /// `kill` is the sorted, upward-closed spine of internal nodes to kill;
    /// `drop_leaves` the sorted affected leaves whose coverage is zeroed (their
    /// edges are dropped, not re-attached — the caller restores them at leaf
    /// level afterwards).
    ///
    /// Every other endpoint is **expanded**: a killed endpoint is replaced by its
    /// *frontier* — the maximal surviving (non-kill, non-drop) nodes of its
    /// subtree — which partitions exactly the members the decode rule iterates,
    /// so each expanded pair's accumulated weight reproduces the pair's net
    /// coverage precisely (nested endpoints fold to a doubled self-loop weight,
    /// which is unrepresentable and triggers the fallback).
    fn split_root(
        &mut self,
        root: SupernodeId,
        kill: &[SupernodeId],
        drop_leaves: &[SupernodeId],
    ) -> Option<Vec<SupernodeId>> {
        let summary = &self.summary;
        let tree = summary.tree_supernodes(root);
        let mut tree_sorted = tree.clone();
        tree_sorted.sort_unstable();
        // Frontier of every kill node, children-before-parents: a killed child
        // contributes its own frontier, a dropped leaf contributes nothing, and
        // any other child is itself a maximal survivor.
        let mut frontier: FxHashMap<SupernodeId, Vec<SupernodeId>> = FxHashMap::default();
        let mut stack: Vec<(SupernodeId, bool)> = vec![(root, false)];
        while let Some((d, expanded)) = stack.pop() {
            if expanded {
                let mut f: Vec<SupernodeId> = Vec::new();
                for &c in summary.children(d) {
                    if kill.binary_search(&c).is_ok() {
                        f.extend_from_slice(&frontier[&c]);
                    } else if drop_leaves.binary_search(&c).is_err() {
                        f.push(c);
                    }
                }
                frontier.insert(d, f);
            } else {
                stack.push((d, true));
                for &c in summary.children(d) {
                    if kill.binary_search(&c).is_ok() {
                        stack.push((c, false));
                    }
                }
            }
        }
        // Every edge incident to the tree, deduplicated (intra-tree edges appear
        // in both endpoints' incidence; keep the visit from the smaller id).
        let mut saved: Vec<(SupernodeId, SupernodeId, EdgeSign)> = Vec::new();
        let mut buf: Vec<SupernodeId> = Vec::new();
        for &x in &tree {
            buf.clear();
            buf.extend(summary.incident(x));
            buf.sort_unstable();
            for &y in &buf {
                if y < x && tree_sorted.binary_search(&y).is_ok() {
                    continue;
                }
                saved.push((x, y, summary.edge_sign(x, y).expect("incident edge")));
            }
        }
        // Accumulate the expanded edges.  The budget keeps the expansion from
        // ever exceeding the whole-tree cost it is meant to undercut (a root
        // self-loop over a wide frontier expands quadratically).
        let budget = 16 * (saved.len() + tree.len()) + 64;
        let mut ops = 0usize;
        let mut final_weights: FxHashMap<(SupernodeId, SupernodeId), i32> = FxHashMap::default();
        for &(x, y, sign) in &saved {
            let w = sign.weight();
            if x == y {
                // A self-loop covers each unordered member pair once; over the
                // frontier partition that is one edge per frontier pair plus a
                // self-loop per multi-member survivor (singleton survivors cover
                // zero pairs).  Surviving/dropped self-loops keep/lose it whole.
                if kill.binary_search(&x).is_ok() {
                    let f = &frontier[&x];
                    ops += f.len() * (f.len() + 1) / 2;
                    if ops > budget {
                        return None;
                    }
                    for (i, &fi) in f.iter().enumerate() {
                        if summary.members(fi).len() > 1 {
                            *final_weights.entry((fi, fi)).or_insert(0) += w;
                        }
                        for &fj in &f[i + 1..] {
                            *final_weights
                                .entry(crate::model::edge_key(fi, fj))
                                .or_insert(0) += w;
                        }
                    }
                } else if drop_leaves.binary_search(&x).is_err() {
                    *final_weights.entry((x, x)).or_insert(0) += w;
                }
                continue;
            }
            let xbuf = [x];
            let ybuf = [y];
            let ex: &[SupernodeId] = if kill.binary_search(&x).is_ok() {
                &frontier[&x]
            } else if drop_leaves.binary_search(&x).is_ok() {
                &[]
            } else {
                &xbuf
            };
            let ey: &[SupernodeId] = if kill.binary_search(&y).is_ok() {
                &frontier[&y]
            } else if drop_leaves.binary_search(&y).is_ok() {
                &[]
            } else {
                &ybuf
            };
            ops += ex.len() * ey.len();
            if ops > budget {
                return None;
            }
            for &fx in ex {
                for &fy in ey {
                    if fx == fy {
                        // Nested endpoints: the decode rule iterates the shared
                        // members from both orientations, doubling the weight.
                        *final_weights.entry((fx, fx)).or_insert(0) += 2 * w;
                    } else {
                        *final_weights
                            .entry(crate::model::edge_key(fx, fy))
                            .or_insert(0) += w;
                    }
                }
            }
        }
        let mut re_add: Vec<((SupernodeId, SupernodeId), i32)> = Vec::new();
        for (&key, &w) in &final_weights {
            match w {
                0 => {}
                -1 | 1 => re_add.push((key, w)),
                _ => return None, // not representable as a single p/n-edge
            }
        }
        re_add.sort_unstable();
        // Commit: remove everything incident to the tree through the sink, split
        // the structure, rebuild the union-find + root metadata per survivor, and
        // re-add the planned edges — the prune_supernode root-split template.
        for &(x, y, _) in &saved {
            self.remove_pn_edge(x, y);
        }
        let rep = self.find(root);
        self.set_root.remove(&rep);
        self.roots.remove(&root);
        self.log_retire(root);
        for &d in drop_leaves {
            self.log_retire(d);
        }
        let promoted = self.summary.detach_and_kill(root, kill);
        for &d in kill {
            self.dsu_parent[d as usize] = d;
        }
        for &c in &promoted {
            self.log_retire(c);
            let subtree = self.summary.tree_supernodes(c);
            for &x in &subtree {
                self.dsu_parent[x as usize] = c;
            }
            self.set_root.insert(c, c);
            self.roots.insert(
                c,
                RootMeta {
                    tree_size: subtree.len(),
                    height: self.summary.tree_height(c),
                    adjacency: FxHashMap::default(),
                    pn_count: 0,
                },
            );
        }
        for &((a, b), w) in &re_add {
            self.add_pn_edge(a, b, w as i8);
        }
        Some(promoted)
    }

    /// Removes a non-leaf supernode from the maintained summary with **exact**
    /// engine bookkeeping — the structural half of engine-hosted pruning (the
    /// [`crate::prune::PruneHost`] impl routes the substeps' edge edits through the
    /// p/n-edge sink and their structural removals through here).
    ///
    /// The node's own incident edges are dropped through the sink first.  Removing
    /// an **internal** node keeps the containing root's identity (its tree just
    /// shrinks); removing a **root** splits its tree into one tree per child, so
    /// the union-find, the root set and every re-attributed edge's adjacency
    /// metadata are rebuilt for the split region — cost proportional to the tree
    /// and its incident edges, never to the whole summary.
    pub fn prune_supernode(&mut self, id: SupernodeId) {
        // Drop the node's own p/n-edges through the sink, in sorted order (the
        // incidence set iterates in layout order, which is not content-determined).
        let mut incident: Vec<SupernodeId> = self.summary.incident(id).collect();
        incident.sort_unstable();
        for other in incident {
            self.remove_pn_edge(id, other);
        }
        let root = self.root_of(id);
        if root != id {
            // Internal node: the containing root keeps its identity; the tree
            // shrinks by one and may get shallower.  The dead node's union-find
            // entry keeps chaining into the tree, which stays correct.  No index
            // retirement: the root's member set and the graph's adjacency are
            // untouched, so its shingle signature is provably unchanged.
            self.summary.prune_supernode(id);
            let meta = self.roots.get_mut(&root).expect("containing root");
            meta.tree_size -= 1;
            meta.height = self.summary.tree_height(root);
            return;
        }
        // Root removal: the tree splits into one tree per child.  Re-attributing
        // the descendants' edges pair by pair would have to split adjacency maps;
        // instead drop every edge incident to the tree through the sink, perform
        // the split, and re-add them — the summary content is untouched (the same
        // (x, y, sign) triples come back) while every neighbor's metadata is
        // re-derived exactly.
        let children = self.summary.children(id).to_vec();
        let tree = self.summary.tree_supernodes(id);
        let mut edges: Vec<(SupernodeId, SupernodeId, EdgeSign)> = Vec::new();
        let mut buf: Vec<SupernodeId> = Vec::new();
        for &x in &tree {
            buf.clear();
            buf.extend(self.summary.incident(x));
            buf.sort_unstable();
            for &y in &buf {
                let sign = self.summary.edge_sign(x, y).expect("incident edge");
                edges.push((x, y, sign));
                self.remove_pn_edge(x, y);
            }
        }
        let rep = self.find(id);
        self.set_root.remove(&rep);
        self.roots.remove(&id);
        self.log_retire(id);
        self.summary.prune_supernode(id);
        self.dsu_parent[id as usize] = id;
        for &c in &children {
            self.log_retire(c);
            let subtree = self.summary.tree_supernodes(c);
            for &x in &subtree {
                self.dsu_parent[x as usize] = c;
            }
            self.set_root.insert(c, c);
            self.roots.insert(
                c,
                RootMeta {
                    tree_size: subtree.len(),
                    height: self.summary.tree_height(c),
                    adjacency: FxHashMap::default(),
                    pn_count: 0,
                },
            );
        }
        for (x, y, sign) in edges {
            self.add_pn_edge(x, y, sign.weight() as i8);
        }
    }

    /// Compacts the summary's arena ([`HierarchicalSummary::compact`]) and rebuilds
    /// the engine's union-find, root set and adjacency metadata for the renumbered
    /// ids.  Returns the number of dead slots reclaimed (0 = arena already dense,
    /// nothing changed).
    ///
    /// The remap preserves id order, so candidate bucketing, pivot selection and
    /// every other id-*order*-dependent tie-break behave identically afterwards:
    /// compaction never changes subsequent outputs (in id-free canonical form) —
    /// pinned by `tests/incremental_prune_compact.rs`.  Must only be called between
    /// pipeline passes (no outstanding plans or forced arena slots).
    pub fn compact(&mut self) -> usize {
        self.compact_mapped().map_or(0, |map| map.reclaimed())
    }

    /// [`MergeEngine::compact`] returning the [`crate::model::CompactionMap`] itself (`None` =
    /// arena already dense, nothing changed) so a candidate index can renumber
    /// its cached entries instead of dropping them.  The retirement log's
    /// enablement (and any undrained retirements, remapped) survives the rebuild.
    pub fn compact_mapped(&mut self) -> Option<crate::model::CompactionMap> {
        if self.summary.num_dead_slots() == 0 {
            return None;
        }
        let log_retired = self.log_retired;
        let retired = std::mem::take(&mut self.retired);
        let mut summary = std::mem::take(&mut self.summary);
        let map = summary.compact();
        *self = MergeEngine::from_summary(summary);
        self.log_retired = log_retired;
        self.retired = retired;
        self.retired.retain_mut(|id| match map.remap(*id) {
            Some(new) => {
                *id = new;
                true
            }
            None => false,
        });
        Some(map)
    }

    /// Exhaustive consistency check of the engine's incremental bookkeeping
    /// against a from-scratch rebuild — `O(arena + edges)`, meant for tests.
    ///
    /// Verifies the summary itself ([`HierarchicalSummary::validate`]), that the
    /// union-find resolves every alive supernode to its summary root, and that the
    /// root set and every root's metadata (tree size, height, adjacency counts)
    /// equal what [`MergeEngine::from_summary`] derives from the summary alone.
    pub fn validate(&self) -> Result<(), String> {
        self.summary.validate()?;
        for id in 0..self.summary.arena_len() as SupernodeId {
            if !self.summary.is_alive(id) {
                continue;
            }
            let expected = self.summary.root_of(id);
            let got = self.root_of_frozen(id);
            if got != expected {
                return Err(format!(
                    "union-find resolves {id} to {got}, summary says {expected}"
                ));
            }
        }
        let rebuilt = MergeEngine::from_summary(self.summary.clone());
        if self.roots() != rebuilt.roots() {
            return Err(format!(
                "root set {:?} != rebuilt {:?}",
                self.roots(),
                rebuilt.roots()
            ));
        }
        for r in self.roots() {
            let live = &self.roots[&r];
            let fresh = &rebuilt.roots[&r];
            if live.tree_size != fresh.tree_size {
                return Err(format!(
                    "root {r}: tree_size {} != rebuilt {}",
                    live.tree_size, fresh.tree_size
                ));
            }
            if live.height != fresh.height {
                return Err(format!(
                    "root {r}: height {} != rebuilt {}",
                    live.height, fresh.height
                ));
            }
            if live.pn_count != fresh.pn_count {
                return Err(format!(
                    "root {r}: pn_count {} != rebuilt {}",
                    live.pn_count, fresh.pn_count
                ));
            }
            let canon = |m: &FxHashMap<SupernodeId, u32>| {
                let mut v: Vec<(SupernodeId, u32)> = m.iter().map(|(&k, &c)| (k, c)).collect();
                v.sort_unstable();
                v
            };
            if canon(&live.adjacency) != canon(&fresh.adjacency) {
                return Err(format!(
                    "root {r}: adjacency {:?} != rebuilt {:?}",
                    canon(&live.adjacency),
                    canon(&fresh.adjacency)
                ));
            }
        }
        Ok(())
    }

    /// Read access to the evolving summary.
    pub fn summary(&self) -> &HierarchicalSummary {
        &self.summary
    }

    /// Consumes the engine and returns the summary.
    pub fn into_summary(self) -> HierarchicalSummary {
        self.summary
    }

    /// Current root supernodes, in ascending id order.
    ///
    /// Sorted so the iteration's root list is a pure function of the engine's
    /// *content*: the underlying hash map's iteration order depends on its
    /// insertion/removal history, which differs between the serial and the
    /// conflict-partitioned parallel apply path (they commit the same merges in
    /// different orders) — and the candidate stage preserves the input order of
    /// groups it never splits, so an unsorted list would leak the commit schedule
    /// into the output.
    pub fn roots(&self) -> Vec<SupernodeId> {
        let mut roots: Vec<SupernodeId> = self.roots.keys().copied().collect();
        roots.sort_unstable();
        roots
    }

    /// Number of current roots.
    pub fn num_roots(&self) -> usize {
        self.roots.len()
    }

    /// Height of the tree rooted at `root`.
    pub fn root_height(&self, root: SupernodeId) -> usize {
        self.roots[&root].height
    }

    /// Current root of the tree containing supernode `id` (with path compression).
    pub fn root_of(&mut self, id: SupernodeId) -> SupernodeId {
        let rep = self.find(id);
        self.set_root[&rep]
    }

    fn find(&mut self, mut x: SupernodeId) -> SupernodeId {
        while self.dsu_parent[x as usize] != x {
            let grand = self.dsu_parent[self.dsu_parent[x as usize] as usize];
            self.dsu_parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Roots adjacent to `root` through at least one p/n-edge (excluding itself).
    pub fn adjacent_roots(&self, root: SupernodeId) -> Vec<SupernodeId> {
        self.roots[&root]
            .adjacency
            .keys()
            .copied()
            .filter(|&r| r != root)
            .collect()
    }

    /// Encoding cost attributed to root `A`: `Cost_A(G) = Cost^H_A + Cost^P_A` (Eq. 6).
    pub fn root_cost(&self, root: SupernodeId) -> usize {
        let meta = &self.roots[&root];
        meta.h_edges() + meta.pn_incident()
    }

    /// Number of p/n-edges between the trees of two distinct roots (`Cost^P_{A,B}`).
    pub fn edges_between_roots(&self, a: SupernodeId, b: SupernodeId) -> usize {
        self.roots[&a].adjacency.get(&b).copied().unwrap_or(0) as usize
    }

    // ------------------------------------------------------------------
    // Saving evaluation and merge application
    // ------------------------------------------------------------------

    /// Evaluates `Saving(A, B, G)` (Eq. 8) without mutating the model.
    pub fn evaluate_merge(
        &self,
        a: SupernodeId,
        b: SupernodeId,
        ctx: &mut MergeCtx,
    ) -> MergeEvaluation {
        debug_assert!(self.roots.contains_key(&a) && self.roots.contains_key(&b) && a != b);
        view::evaluate_merge(self, a, b, ctx)
    }

    /// Roots adjacent (through p/n-edges) to both `a`'s and `b`'s trees.
    pub fn common_adjacent_roots(&self, a: SupernodeId, b: SupernodeId) -> Vec<SupernodeId> {
        let mut out = Vec::new();
        MergeView::common_adjacent_roots_into(self, a, b, &mut out);
        out
    }

    /// Merges roots `a` and `b`, applying the Case-1 and Case-2 re-encodings, and
    /// returns the id of the new root supernode.
    ///
    /// Split into `view::resolve_merge_into` (the expensive read-only half) and
    /// `MergeEngine::commit_merge` (the cheap mutation half) so the parallel apply
    /// stage can resolve merges on worker threads and commit them serially through
    /// the identical code path.
    pub fn apply_merge(
        &mut self,
        a: SupernodeId,
        b: SupernodeId,
        ctx: &mut MergeCtx,
    ) -> SupernodeId {
        debug_assert!(self.roots.contains_key(&a) && self.roots.contains_key(&b) && a != b);
        let MergeCtx { memo, scratch } = ctx;
        let EvalScratch { commons, case2, .. } = scratch;
        case2.clear();
        let m = self.summary.arena_len() as SupernodeId;
        let resolved = view::resolve_merge_into(self, a, b, m, memo, commons, case2);
        self.commit_merge(&resolved, case2);
        m
    }

    /// Applies a [`ResolvedMerge`] to the authoritative state: structural merge into
    /// the (possibly forced) arena slot `rm.m`, union-find and root-metadata
    /// bookkeeping, and the pre-solved Case-1/Case-2 edge re-encodings.
    ///
    /// `case2` is the buffer `rm.case2_start/len` indexes into.
    pub(crate) fn commit_merge(&mut self, rm: &ResolvedMerge, case2: &[Case2Record]) {
        let (a, b, m) = (rm.a, rm.b, rm.m);
        debug_assert!(self.roots.contains_key(&a) && self.roots.contains_key(&b) && a != b);
        self.log_retire(a);
        self.log_retire(b);
        let cross_ab = rm.cross_ab;
        let case2 = &case2[rm.case2_start..rm.case2_start + rm.case2_len];

        // Structural merge into the chosen slot.
        self.summary.merge_roots_at(a, b, m);

        // Union-find bookkeeping.  Forced slots can lie beyond the current vector
        // end; intermediate entries are initialized to themselves and overwritten
        // when their own commit arrives.
        if self.dsu_parent.len() <= m as usize {
            let mut next = self.dsu_parent.len() as SupernodeId;
            self.dsu_parent.resize_with(m as usize + 1, || {
                let id = next;
                next += 1;
                id
            });
        }
        self.dsu_parent[m as usize] = m;
        let rep_a = self.find(a);
        let rep_b = self.find(b);
        self.dsu_parent[rep_a as usize] = m;
        self.dsu_parent[rep_b as usize] = m;
        self.set_root.remove(&rep_a);
        self.set_root.remove(&rep_b);
        self.set_root.insert(m, m);

        // Root metadata: merge adjacency maps of a and b into m.
        let meta_a = self.roots.remove(&a).expect("root a");
        let meta_b = self.roots.remove(&b).expect("root b");
        let mut adjacency: FxHashMap<SupernodeId, u32> = FxHashMap::default();
        for (other, count) in meta_a.adjacency.into_iter().chain(meta_b.adjacency) {
            let key = if other == a || other == b { m } else { other };
            *adjacency.entry(key).or_insert(0) += count;
        }
        // Edges between tree(a) and tree(b) appeared in both maps while intra-tree
        // edges appeared once, so the folded self entry currently equals
        // intra(a) + intra(b) + 2·cross; the true intra(m) subtracts one cross count.
        if cross_ab > 0 {
            let self_count = adjacency
                .get_mut(&m)
                .expect("cross edges imply a self entry");
            *self_count -= cross_ab;
        }
        let pn_count = adjacency.values().map(|&c| c as usize).sum();
        let meta_m = RootMeta {
            tree_size: meta_a.tree_size + meta_b.tree_size + 1,
            height: meta_a.height.max(meta_b.height) + 1,
            adjacency,
            pn_count,
        };
        self.roots.insert(m, meta_m);
        // Every neighbor root must relabel its adjacency keys a/b -> m.
        let neighbor_roots: Vec<SupernodeId> = self.roots[&m]
            .adjacency
            .keys()
            .copied()
            .filter(|&r| r != m)
            .collect();
        for r in neighbor_roots {
            let meta = self.roots.get_mut(&r).expect("adjacent root");
            let mut moved = 0u32;
            if let Some(c) = meta.adjacency.remove(&a) {
                moved += c;
            }
            if let Some(c) = meta.adjacency.remove(&b) {
                moved += c;
            }
            if moved > 0 {
                *meta.adjacency.entry(m).or_insert(0) += moved;
            }
        }

        // Apply the Case-1/Case-2 re-encodings (shared with the overlay's replay).
        view::replay_reencodings(self, rm, case2);
    }
}

impl view::PnEdgeSink for MergeEngine {
    /// Adds a p/n-edge between two supernodes, updating root adjacency counts.
    fn add_pn_edge(&mut self, x: SupernodeId, y: SupernodeId, weight: i8) {
        let sign = EdgeSign::from_weight(weight as i32).expect("weight must be ±1");
        let prev = self.summary.set_edge(x, y, sign);
        if prev.is_none() {
            let rx = self.root_of(x);
            let ry = self.root_of(y);
            let meta_x = self.roots.get_mut(&rx).expect("root");
            *meta_x.adjacency.entry(ry).or_insert(0) += 1;
            meta_x.pn_count += 1;
            if rx != ry {
                let meta_y = self.roots.get_mut(&ry).expect("root");
                *meta_y.adjacency.entry(rx).or_insert(0) += 1;
                meta_y.pn_count += 1;
            }
        }
    }

    /// Removes a p/n-edge between two supernodes, updating root adjacency counts.
    fn remove_pn_edge(&mut self, x: SupernodeId, y: SupernodeId) {
        if self.summary.remove_edge(x, y).is_some() {
            let rx = self.root_of(x);
            let ry = self.root_of(y);
            Self::decrement(&mut self.roots, rx, ry);
            if rx != ry {
                Self::decrement(&mut self.roots, ry, rx);
            }
        }
    }
}

/// Engine-hosted pruning: the substeps of [`crate::prune`] mutate the maintained
/// summary through the engine's bookkeeping (edge edits through the p/n-edge sink,
/// structural removals through [`MergeEngine::prune_supernode`]), so the union-find,
/// root set and `Saving(A, B, G)` metadata stay exact while the summary is pruned
/// in place — no snapshot, no rebuild.
impl crate::prune::PruneHost for MergeEngine {
    fn summary(&self) -> &HierarchicalSummary {
        MergeEngine::summary(self)
    }

    fn remove_edge(&mut self, a: SupernodeId, b: SupernodeId) {
        self.remove_pn_edge(a, b);
    }

    fn set_edge(&mut self, a: SupernodeId, b: SupernodeId, sign: EdgeSign) {
        self.add_pn_edge(a, b, sign.weight() as i8);
    }

    fn prune_supernode(&mut self, id: SupernodeId) {
        MergeEngine::prune_supernode(self, id);
    }
}

impl MergeEngine {
    fn decrement(
        roots: &mut FxHashMap<SupernodeId, RootMeta>,
        root: SupernodeId,
        other: SupernodeId,
    ) {
        let meta = roots.get_mut(&root).expect("root");
        let remove = match meta.adjacency.get_mut(&other) {
            Some(c) => {
                *c -= 1;
                meta.pn_count -= 1;
                *c == 0
            }
            None => false,
        };
        if remove {
            meta.adjacency.remove(&other);
        }
    }
}

// ----------------------------------------------------------------------------------
// Frozen-view access (used by the per-shard planning overlay)
// ----------------------------------------------------------------------------------

impl MergeEngine {
    /// Current root of the tree containing `id`, without path compression — usable on
    /// a shared (frozen) engine.
    pub(crate) fn root_of_frozen(&self, mut x: SupernodeId) -> SupernodeId {
        while self.dsu_parent[x as usize] != x {
            x = self.dsu_parent[x as usize];
        }
        self.set_root[&x]
    }

    /// Root metadata, if `root` currently is one.
    pub(crate) fn root_meta(&self, root: SupernodeId) -> Option<&RootMeta> {
        self.roots.get(&root)
    }
}

impl MergeView for MergeEngine {
    fn is_root(&self, id: SupernodeId) -> bool {
        self.summary.is_root(id)
    }

    fn children_of(&self, id: SupernodeId) -> &[SupernodeId] {
        self.summary.children(id)
    }

    fn node_size(&self, id: SupernodeId) -> usize {
        self.summary.members(id).len()
    }

    fn parent_of(&self, id: SupernodeId) -> Option<SupernodeId> {
        self.summary.parent(id)
    }

    fn edge_weight(&self, x: SupernodeId, y: SupernodeId) -> i32 {
        self.summary.edge_weight(x, y)
    }

    fn root_cost(&self, root: SupernodeId) -> usize {
        MergeEngine::root_cost(self, root)
    }

    fn root_height(&self, root: SupernodeId) -> usize {
        MergeEngine::root_height(self, root)
    }

    fn edges_between_roots(&self, a: SupernodeId, b: SupernodeId) -> usize {
        MergeEngine::edges_between_roots(self, a, b)
    }

    fn common_adjacent_roots_into(
        &self,
        a: SupernodeId,
        b: SupernodeId,
        out: &mut Vec<SupernodeId>,
    ) {
        view::common_adjacent_roots_from_maps(
            &self.roots[&a].adjacency,
            &self.roots[&b].adjacency,
            a,
            b,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slugger_graph::Graph;

    fn star_plus_edge() -> Graph {
        // 0 is a hub connected to 1, 2, 3; plus edge (1, 2).
        Graph::from_edges(4, vec![(0, 1), (0, 2), (0, 3), (1, 2)])
    }

    #[test]
    fn new_engine_mirrors_graph_edges() {
        let g = star_plus_edge();
        let engine = MergeEngine::new(&g);
        let s = engine.summary();
        assert_eq!(s.num_p_edges(), 4);
        assert_eq!(s.num_n_edges(), 0);
        assert_eq!(s.num_h_edges(), 0);
        assert_eq!(engine.num_roots(), 4);
        assert_eq!(engine.root_cost(0), 3); // hub touches 3 edges
        assert_eq!(engine.root_cost(3), 1);
        assert_eq!(engine.edges_between_roots(0, 1), 1);
        assert_eq!(engine.edges_between_roots(1, 3), 0);
        s.validate().unwrap();
    }

    #[test]
    fn common_adjacent_roots_of_two_spokes() {
        let g = star_plus_edge();
        let engine = MergeEngine::new(&g);
        // Nodes 2 and 3 share only the hub 0.
        let common = engine.common_adjacent_roots(2, 3);
        assert_eq!(common, vec![0]);
    }

    #[test]
    fn evaluate_merge_of_similar_spokes_is_beneficial() {
        // Spokes 2 and 3 share hub 0, but 2 additionally connects to 1, so the merge
        // only consolidates the two hub edges while paying two h-edges:
        // cost 3 -> 4, saving negative.  In a larger double star the saving rises to 0
        // and, once a pair is already merged, becomes strictly positive.
        let g = star_plus_edge();
        let engine = MergeEngine::new(&g);
        let mut ctx = MergeCtx::new();
        let eval = engine.evaluate_merge(2, 3, &mut ctx);
        assert_eq!(eval.cost_before, 3);
        assert_eq!(eval.cost_after, 4);
        assert!(eval.saving < 0.0);

        // Star with 5 spokes on two hubs: spokes adjacent to both hubs.
        let g2 = Graph::from_edges(
            7,
            vec![
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (0, 6),
                (1, 2),
                (1, 3),
                (1, 4),
                (1, 5),
                (1, 6),
            ],
        );
        let engine2 = MergeEngine::new(&g2);
        let eval2 = engine2.evaluate_merge(2, 3, &mut ctx);
        // Before: 4 p-edges attributed to the pair; after: 2 p-edges + 2 h-edges = 4.
        assert_eq!(eval2.cost_before, 4);
        assert_eq!(eval2.cost_after, 4);
        // In a 6-clique, merging any two nodes is strictly beneficial: the four
        // common neighbors each trade two p-edges for one (cost 9 -> 7).
        let mut clique_edges = Vec::new();
        for u in 0..6u32 {
            for v in (u + 1)..6u32 {
                clique_edges.push((u, v));
            }
        }
        let clique = Graph::from_edges(6, clique_edges);
        let engine_clique = MergeEngine::new(&clique);
        let eval3 = engine_clique.evaluate_merge(0, 1, &mut ctx);
        assert_eq!(eval3.cost_before, 9);
        assert_eq!(eval3.cost_after, 7);
        assert!(
            eval3.saving > 0.2,
            "expected positive saving, got {}",
            eval3.saving
        );
    }

    #[test]
    fn apply_merge_consolidates_edges_and_updates_indices() {
        let g2 = Graph::from_edges(
            7,
            vec![
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (0, 6),
                (1, 2),
                (1, 3),
                (1, 4),
                (1, 5),
                (1, 6),
            ],
        );
        let mut engine = MergeEngine::new(&g2);
        let mut ctx = MergeCtx::new();
        let before_cost = engine.summary().encoding_cost();
        let m = engine.apply_merge(2, 3, &mut ctx);
        let s = engine.summary();
        s.validate().unwrap();
        assert!(s.is_root(m));
        assert_eq!(s.members(m), &[2, 3]);
        // The four spoke edges to hubs 0 and 1 collapse to two edges (m,0), (m,1):
        // 10 p-edges before, 8 after, while h-edges grew by 2 (total cost unchanged).
        assert_eq!(s.num_p_edges(), 8);
        assert_eq!(s.encoding_cost(), before_cost);
        assert_eq!(engine.root_of(2), m);
        assert_eq!(engine.root_of(3), m);
        assert_eq!(engine.num_roots(), 6);
        assert_eq!(engine.edges_between_roots(m, 0), 1);
        assert_eq!(engine.edges_between_roots(m, 1), 1);
        assert_eq!(engine.root_height(m), 1);

        // Merge two more spokes and then merge the two pairs: the grand merge should
        // produce a single pair of edges to the hubs.
        let m2 = engine.apply_merge(4, 5, &mut ctx);
        let top = engine.apply_merge(m, m2, &mut ctx);
        let s = engine.summary();
        s.validate().unwrap();
        assert_eq!(s.members(top), &[2, 3, 4, 5]);
        assert_eq!(engine.edges_between_roots(top, 0), 1);
        assert_eq!(engine.edges_between_roots(top, 1), 1);
        assert_eq!(engine.root_height(top), 2);
    }

    #[test]
    fn merging_disconnected_roots_only_adds_hierarchy() {
        let g = Graph::from_edges(4, vec![(0, 1), (2, 3)]);
        let mut engine = MergeEngine::new(&g);
        let mut ctx = MergeCtx::new();
        let eval = engine.evaluate_merge(0, 2, &mut ctx);
        // Lemma 1: merging distant roots strictly increases the cost.
        assert!(eval.cost_after > eval.cost_before);
        let before = engine.summary().encoding_cost();
        engine.apply_merge(0, 2, &mut ctx);
        assert_eq!(engine.summary().encoding_cost(), before + 2);
        engine.summary().validate().unwrap();
    }

    /// One canonicalized root record: `(root, cost, tree_size, height, adjacency)`.
    type RootRecord = (SupernodeId, usize, usize, usize, Vec<(SupernodeId, u32)>);

    /// Canonicalized records of every current root — the engine state an
    /// incremental batch depends on.
    fn root_fingerprint(engine: &MergeEngine) -> Vec<RootRecord> {
        engine
            .roots()
            .into_iter()
            .map(|r| {
                let meta = engine.root_meta(r).unwrap();
                let mut adjacency: Vec<(SupernodeId, u32)> =
                    meta.adjacency.iter().map(|(&k, &v)| (k, v)).collect();
                adjacency.sort_unstable();
                (
                    r,
                    engine.root_cost(r),
                    meta.tree_size,
                    meta.height,
                    adjacency,
                )
            })
            .collect()
    }

    #[test]
    fn from_summary_rebuilds_the_live_engine_state() {
        let g = star_plus_edge();
        let mut live = MergeEngine::new(&g);
        let mut ctx = MergeCtx::new();
        let m = live.apply_merge(2, 3, &mut ctx);
        live.apply_merge(m, 1, &mut ctx);
        let rebuilt = MergeEngine::from_summary(live.summary().clone());
        assert_eq!(rebuilt.roots(), live.roots());
        assert_eq!(root_fingerprint(&rebuilt), root_fingerprint(&live));
        // And the rebuilt engine keeps working: evaluations agree with the live one.
        let roots = live.roots();
        for i in 0..roots.len() {
            for j in (i + 1)..roots.len() {
                let a = live.evaluate_merge(roots[i], roots[j], &mut ctx);
                let b = rebuilt.evaluate_merge(roots[i], roots[j], &mut ctx);
                assert_eq!(a.cost_before, b.cost_before);
                assert_eq!(a.cost_after, b.cost_after);
            }
        }
    }

    #[test]
    fn from_summary_handles_pruned_multi_arity_hierarchies() {
        use crate::model::EdgeSign;
        let mut s = crate::model::HierarchicalSummary::identity(5);
        let m = s.create_supernode_with_children(&[0, 1, 2]);
        s.set_edge(m, m, EdgeSign::Positive);
        s.set_edge(m, 3, EdgeSign::Positive);
        s.set_edge(0, 1, EdgeSign::Negative);
        let engine = MergeEngine::from_summary(s);
        assert_eq!(engine.num_roots(), 3);
        // Cost_m = 3 h-edges + 3 incident p/n-edges (self-loop, (m,3), (0,1)-in-tree).
        assert_eq!(engine.root_cost(m), 6);
        assert_eq!(engine.edges_between_roots(m, 3), 1);
        assert_eq!(engine.root_height(m), 1);
    }

    #[test]
    fn merging_next_to_a_multi_arity_root_stays_lossless() {
        // Regression: pruned hierarchies (adopted via `from_summary`) carry roots
        // with three or more children.  A Case-2 re-encoding against such a common
        // root used to expand only the first two children into the panel, so a
        // solved C-level edge silently covered the dropped child's subnodes too —
        // here, merging 4 and 5 (both adjacent to children 0 and 1 of c = {0,1,2}
        // at leaf level, but NOT to child 2) must not invent edges to 2.
        use crate::model::EdgeSign;
        let graph = Graph::from_edges(6, vec![(4, 0), (4, 1), (5, 0), (5, 1)]);
        let mut s = crate::model::HierarchicalSummary::identity(6);
        let _c = s.create_supernode_with_children(&[0, 1, 2]);
        for (u, v) in graph.edges() {
            s.set_edge(u, v, EdgeSign::Positive);
        }
        crate::decode::verify_lossless(&s, &graph).unwrap();
        let mut engine = MergeEngine::from_summary(s);
        let mut ctx = MergeCtx::new();
        engine.apply_merge(4, 5, &mut ctx);
        engine.summary().validate().unwrap();
        crate::decode::verify_lossless(engine.summary(), &graph).unwrap();
    }

    #[test]
    fn dissolve_root_reexpands_and_keeps_neighbor_metadata_exact() {
        let g = double_star_7();
        let mut engine = MergeEngine::new(&g);
        let mut ctx = MergeCtx::new();
        let m = engine.apply_merge(2, 3, &mut ctx);
        let m2 = engine.apply_merge(m, 4, &mut ctx);
        let (leaves, killed) = engine.dissolve_root(m2);
        assert_eq!((leaves, killed), (3, 2));
        engine.summary().validate().unwrap();
        // The dissolved leaves are fresh edge-free roots …
        for leaf in [2u32, 3, 4] {
            assert!(engine.summary().is_root(leaf));
            assert_eq!(engine.root_cost(leaf), 0);
        }
        // … and the hubs' metadata no longer mentions the dissolved tree.
        for hub in [0u32, 1] {
            assert_eq!(engine.edges_between_roots(hub, m2), 0);
            let mut adj = engine.adjacent_roots(hub);
            adj.sort_unstable();
            assert!(
                !adj.contains(&m) && !adj.contains(&m2),
                "hub {hub}: {adj:?}"
            );
        }
        // Restoring the region's graph edges at leaf level re-establishes
        // losslessness, and the state matches a freshly-built engine exactly.
        for leaf in [2u32, 3, 4] {
            for hub in [0u32, 1] {
                engine.restore_leaf_edge(leaf, hub);
            }
        }
        crate::decode::verify_lossless(engine.summary(), &g).unwrap();
        let fresh = MergeEngine::new(&g);
        assert_eq!(engine.roots(), fresh.roots());
        assert_eq!(root_fingerprint(&engine), root_fingerprint(&fresh));
    }

    fn double_star_7() -> Graph {
        let mut edges = vec![(0, 1)];
        for s in 2..5u32 {
            edges.push((0, s));
            edges.push((1, s));
        }
        Graph::from_edges(5, edges)
    }

    #[test]
    fn prune_supernode_splits_roots_with_exact_bookkeeping() {
        // Build a 3-level tree over {2,3,4} next to two hubs, then prune its root:
        // the children must come back as roots with exact adjacency metadata.
        let g = double_star_7();
        let mut engine = MergeEngine::new(&g);
        let mut ctx = MergeCtx::new();
        let m = engine.apply_merge(2, 3, &mut ctx);
        let m2 = engine.apply_merge(m, 4, &mut ctx);
        engine.validate().unwrap();
        // m2's own edges (to the hubs) must be re-encoded by the caller first —
        // simulate the substep by pushing them down to the children.
        let incident: Vec<SupernodeId> = {
            let mut v: Vec<SupernodeId> = engine.summary().incident(m2).collect();
            v.sort_unstable();
            v
        };
        for hub in incident {
            engine.remove_pn_edge(m2, hub);
            engine.add_pn_edge(m, hub, 1);
            engine.add_pn_edge(4, hub, 1);
        }
        engine.prune_supernode(m2);
        engine.validate().unwrap();
        assert!(engine.summary().is_root(m));
        assert!(engine.summary().is_root(4));
        assert!(!engine.summary().is_alive(m2));
        crate::decode::verify_lossless(engine.summary(), &g).unwrap();
        // Internal-node pruning keeps the root's identity.
        let mut engine = MergeEngine::new(&g);
        let m = engine.apply_merge(2, 3, &mut ctx);
        let m2 = engine.apply_merge(m, 4, &mut ctx);
        // Strip m's edges so it is substep-1 eligible (m2's edges cover the pairs).
        let incident: Vec<SupernodeId> = {
            let mut v: Vec<SupernodeId> = engine.summary().incident(m).collect();
            v.sort_unstable();
            v
        };
        for other in incident {
            engine.remove_pn_edge(m, other);
        }
        engine.prune_supernode(m);
        engine.validate().unwrap();
        assert!(engine.summary().is_root(m2));
        assert_eq!(engine.summary().children(m2).len(), 3);
        assert_eq!(engine.root_of(2), m2);
    }

    #[test]
    fn compact_rebuilds_the_engine_around_renumbered_ids() {
        let g = double_star_7();
        let mut engine = MergeEngine::new(&g);
        let mut ctx = MergeCtx::new();
        let m = engine.apply_merge(2, 3, &mut ctx);
        let m2 = engine.apply_merge(m, 4, &mut ctx);
        let (leaves, killed) = engine.dissolve_root(m2);
        assert_eq!((leaves, killed), (3, 2));
        for leaf in [2u32, 3, 4] {
            for hub in [0u32, 1] {
                engine.restore_leaf_edge(leaf, hub);
            }
        }
        assert_eq!(engine.summary().num_dead_slots(), 2);
        let reclaimed = engine.compact();
        assert_eq!(reclaimed, 2);
        assert_eq!(engine.summary().num_dead_slots(), 0);
        assert_eq!(engine.summary().arena_len(), 5);
        engine.validate().unwrap();
        crate::decode::verify_lossless(engine.summary(), &g).unwrap();
        assert_eq!(engine.compact(), 0, "dense arena: compaction is a no-op");
        // The compacted engine keeps working.
        let m = engine.apply_merge(2, 3, &mut ctx);
        assert_eq!(m, 5, "fresh products reuse the reclaimed id space");
        engine.validate().unwrap();
        crate::decode::verify_lossless(engine.summary(), &g).unwrap();
    }

    #[test]
    fn dissolve_partial_drops_one_leaf_and_keeps_the_sibling_tree() {
        // Tree m2 → {m{2,3}, 4}; touching leaf 4 must kill only m2 and leave
        // m = {2,3} intact — the resulting state is bit-for-bit the state of an
        // engine that only ever merged 2 and 3.
        let g = double_star_7();
        let mut engine = MergeEngine::new(&g);
        let mut ctx = MergeCtx::new();
        let m = engine.apply_merge(2, 3, &mut ctx);
        let m2 = engine.apply_merge(m, 4, &mut ctx);
        let part = engine.dissolve_partial(m2, &[4]);
        assert!(!part.fell_back);
        assert_eq!(part.restore_leaves, vec![4]);
        assert_eq!(part.new_roots, vec![4, m]);
        assert_eq!(part.killed, 1);
        engine.validate().unwrap();
        for hub in [0u32, 1] {
            engine.restore_leaf_edge(4, hub);
        }
        crate::decode::verify_lossless(engine.summary(), &g).unwrap();
        let mut reference = MergeEngine::new(&g);
        reference.apply_merge(2, 3, &mut ctx);
        assert_eq!(engine.roots(), reference.roots());
        assert_eq!(root_fingerprint(&engine), root_fingerprint(&reference));
    }

    #[test]
    fn dissolve_partial_kills_the_whole_spine_of_a_deep_leaf() {
        // Touching leaf 2 of m2 → {m{2,3}, 4} invalidates both ancestors: the
        // spine {m, m2} dies, siblings 3 and 4 come back as singleton roots, and
        // the re-attached edges reproduce the freshly-built engine exactly.
        let g = double_star_7();
        let mut engine = MergeEngine::new(&g);
        let mut ctx = MergeCtx::new();
        let m = engine.apply_merge(2, 3, &mut ctx);
        let m2 = engine.apply_merge(m, 4, &mut ctx);
        let part = engine.dissolve_partial(m2, &[2]);
        assert!(!part.fell_back);
        assert_eq!(part.restore_leaves, vec![2]);
        assert_eq!(part.new_roots, vec![2, 3, 4]);
        assert_eq!(part.killed, 2);
        engine.validate().unwrap();
        for hub in [0u32, 1] {
            engine.restore_leaf_edge(2, hub);
        }
        crate::decode::verify_lossless(engine.summary(), &g).unwrap();
        let reference = MergeEngine::new(&g);
        assert_eq!(engine.roots(), reference.roots());
        assert_eq!(root_fingerprint(&engine), root_fingerprint(&reference));
    }

    #[test]
    fn dissolve_partial_touching_every_member_is_whole_tree() {
        let g = double_star_7();
        let mut engine = MergeEngine::new(&g);
        let mut ctx = MergeCtx::new();
        let m = engine.apply_merge(2, 3, &mut ctx);
        let part = engine.dissolve_partial(m, &[2, 3]);
        assert!(part.fell_back);
        assert_eq!(part.restore_leaves, vec![2, 3]);
        assert_eq!(part.new_roots, vec![2, 3]);
        engine.validate().unwrap();
    }

    #[test]
    fn detach_subtree_promotes_the_subtree_and_its_siblings() {
        let g = double_star_7();
        let mut engine = MergeEngine::new(&g);
        let mut ctx = MergeCtx::new();
        let m = engine.apply_merge(2, 3, &mut ctx);
        let m2 = engine.apply_merge(m, 4, &mut ctx);
        let promoted = engine.detach_subtree(m).expect("representable split");
        assert_eq!(promoted, vec![4, m]);
        engine.validate().unwrap();
        assert!(engine.summary().is_root(m));
        assert!(engine.summary().is_root(4));
        assert!(!engine.summary().is_alive(m2));
        crate::decode::verify_lossless(engine.summary(), &g).unwrap();
        // Detaching a root is a no-op promotion of itself.
        assert_eq!(engine.detach_subtree(m), Some(vec![m]));
    }

    #[test]
    fn dissolve_partial_falls_back_on_unrepresentable_nested_coverage() {
        // top → {a{0,1}, 2} with a stored edge (top, a): pair (0,1) is covered
        // twice, so splitting out `a` would need a weight-2 edge (a, a) — the
        // planner must detect this and dissolve the whole tree instead.
        use crate::model::EdgeSign;
        let g = Graph::from_edges(4, vec![(0, 1), (0, 2), (1, 2)]);
        let mut s = crate::model::HierarchicalSummary::identity(4);
        let a = s.create_supernode_with_children(&[0, 1]);
        let top = s.create_supernode_with_children(&[a, 2]);
        s.set_edge(top, a, EdgeSign::Positive);
        crate::decode::verify_lossless(&s, &g).unwrap();
        let mut engine = MergeEngine::from_summary(s);
        let part = engine.dissolve_partial(top, &[2]);
        assert!(part.fell_back);
        assert_eq!(part.restore_leaves, vec![0, 1, 2]);
        engine.validate().unwrap();
        for (u, v) in g.edges() {
            engine.restore_leaf_edge(u, v);
        }
        crate::decode::verify_lossless(engine.summary(), &g).unwrap();
    }

    #[test]
    fn evaluation_matches_application() {
        // For a batch of merges on a small clique-ish graph, the cost predicted by
        // evaluate_merge must equal the real cost change produced by apply_merge.
        let g = Graph::from_edges(
            6,
            vec![
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (2, 5),
            ],
        );
        let mut engine = MergeEngine::new(&g);
        let mut ctx = MergeCtx::new();
        for (a, b) in [(0u32, 1u32), (2, 3)] {
            let eval = engine.evaluate_merge(a, b, &mut ctx);
            let total_before = engine.summary().encoding_cost();
            let other = total_before - eval.cost_before;
            engine.apply_merge(a, b, &mut ctx);
            let total_after = engine.summary().encoding_cost();
            assert_eq!(
                total_after,
                other + eval.cost_after,
                "prediction mismatch when merging {a} and {b}"
            );
            engine.summary().validate().unwrap();
        }
    }
}
