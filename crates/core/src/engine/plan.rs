//! The per-shard mutable planning state: a copy-on-write overlay over a frozen
//! [`MergeEngine`].
//!
//! Cloning the whole engine per shard would cost O(|V| + |E|) per shard per
//! iteration — more than the planning work itself on large graphs.  The overlay
//! instead borrows the frozen engine immutably and records only this candidate set's
//! own mutations:
//!
//! * **structure** — merged supernodes live in a local arena (ids continue past the
//!   frozen arena); merged-away frozen roots get a parent override;
//! * **edges** — a delta map shadows the frozen p/n-edges (`0` = removed);
//! * **root metadata** — maintained only for the *tracked* roots (the candidate set's
//!   members and their merge products).  Candidate sets are disjoint and the frozen
//!   view never changes mid-iteration, so untracked roots can never be merged away
//!   while planning, and their metadata is never read: `evaluate_merge` touches the
//!   metadata of its two (tracked) operands only.
//!
//! The cost of building an overlay is proportional to the candidate set's incident
//! edges, not to the graph — which is what lets the merge stage actually scale with
//! threads.

use super::view::{self, MergeView};
use super::{
    Case2Record, EvalScratch, MergeCtx, MergeEngine, MergeEvaluation, MergeState, RootMeta,
};
use crate::model::{edge_key, SupernodeId};
use slugger_graph::hash::FxHashMap;

/// A supernode created by this overlay's own merges.
#[derive(Clone, Debug)]
struct LocalNode {
    children: [SupernodeId; 2],
    size: usize,
    parent: Option<SupernodeId>,
}

/// Copy-on-write planning overlay over a frozen engine (see the module docs).
pub(crate) struct PlanningEngine<'a> {
    base: &'a MergeEngine,
    /// Arena length of the frozen summary; local ids start here.
    base_len: usize,
    local: Vec<LocalNode>,
    /// Parent overrides for frozen roots merged away by this overlay.
    parent_override: FxHashMap<SupernodeId, SupernodeId>,
    /// Edge delta: `±1` = (re)written sign, `0` = removed.
    edges: FxHashMap<(SupernodeId, SupernodeId), i8>,
    /// Root metadata for tracked roots only (copied from the frozen engine on entry).
    metas: FxHashMap<SupernodeId, RootMeta>,
}

impl<'a> PlanningEngine<'a> {
    /// Builds an overlay tracking the given candidate set (non-root entries are
    /// ignored; they cannot participate in merges anyway).
    pub(crate) fn new(base: &'a MergeEngine, tracked: &[SupernodeId]) -> Self {
        let mut metas = FxHashMap::default();
        for &r in tracked {
            if let Some(meta) = base.root_meta(r) {
                metas.insert(r, meta.clone());
            }
        }
        PlanningEngine {
            base,
            base_len: base.summary().arena_len(),
            local: Vec::new(),
            parent_override: FxHashMap::default(),
            edges: FxHashMap::default(),
            metas,
        }
    }

    fn local_index(&self, id: SupernodeId) -> Option<usize> {
        (id as usize >= self.base_len).then(|| id as usize - self.base_len)
    }

    /// Current root of the tree containing `id`, resolving through both the frozen
    /// union-find and this overlay's merges.
    fn root_of(&self, id: SupernodeId) -> SupernodeId {
        let mut r = match self.local_index(id) {
            Some(_) => id,
            None => self.base.root_of_frozen(id),
        };
        loop {
            let parent = match self.local_index(r) {
                Some(i) => self.local[i].parent,
                None => self.parent_override.get(&r).copied(),
            };
            match parent {
                Some(p) => r = p,
                None => return r,
            }
        }
    }

    fn set_parent(&mut self, id: SupernodeId, parent: SupernodeId) {
        match self.local_index(id) {
            Some(i) => self.local[i].parent = Some(parent),
            None => {
                self.parent_override.insert(id, parent);
            }
        }
    }

    fn meta_increment(&mut self, root: SupernodeId, other: SupernodeId) {
        if let Some(meta) = self.metas.get_mut(&root) {
            *meta.adjacency.entry(other).or_insert(0) += 1;
            meta.pn_count += 1;
        }
    }

    fn meta_decrement(&mut self, root: SupernodeId, other: SupernodeId) {
        if let Some(meta) = self.metas.get_mut(&root) {
            let remove = match meta.adjacency.get_mut(&other) {
                Some(c) => {
                    *c -= 1;
                    meta.pn_count -= 1;
                    *c == 0
                }
                None => false,
            };
            if remove {
                meta.adjacency.remove(&other);
            }
        }
    }

    /// Adds a p/n-edge, updating the tracked endpoint roots' metadata (mirrors
    /// [`MergeEngine`]'s private `add_pn_edge`).
    fn add_pn_edge(&mut self, x: SupernodeId, y: SupernodeId, weight: i8) {
        debug_assert!(weight == 1 || weight == -1);
        let prev = MergeView::edge_weight(self, x, y);
        self.edges.insert(edge_key(x, y), weight);
        if prev == 0 {
            let rx = self.root_of(x);
            let ry = self.root_of(y);
            self.meta_increment(rx, ry);
            if rx != ry {
                self.meta_increment(ry, rx);
            }
        }
    }

    /// Removes a p/n-edge, updating the tracked endpoint roots' metadata.
    fn remove_pn_edge(&mut self, x: SupernodeId, y: SupernodeId) {
        if MergeView::edge_weight(self, x, y) != 0 {
            self.edges.insert(edge_key(x, y), 0);
            let rx = self.root_of(x);
            let ry = self.root_of(y);
            self.meta_decrement(rx, ry);
            if rx != ry {
                self.meta_decrement(ry, rx);
            }
        }
    }

    /// Merges roots `a` and `b` inside the overlay, mirroring
    /// [`MergeEngine::apply_merge`] (same pre-merge problem construction, same
    /// re-encoding application) on the copy-on-write state.
    fn merge(&mut self, a: SupernodeId, b: SupernodeId, ctx: &mut MergeCtx) -> SupernodeId {
        debug_assert!(
            self.metas.contains_key(&a) && self.metas.contains_key(&b) && a != b,
            "planned merges must involve tracked roots"
        );
        let MergeCtx { memo, scratch } = ctx;
        let EvalScratch { commons, case2 } = scratch;
        // Solve everything against the *pre-merge* structure.
        let (_, a_kids) = view::side_panel(self, a);
        let (_, b_kids) = view::side_panel(self, b);
        let cross_ab = MergeView::edges_between_roots(self, a, b) as u32;
        let (problem1, old1) = view::case1_problem(self, a, b);
        let sol1 = memo.case1(&problem1);
        MergeView::common_adjacent_roots_into(self, a, b, commons);
        case2.clear();
        for &c in commons.iter() {
            let (problem2, old2) = view::case2_problem(self, a, b, c);
            let sol2 = memo.case2(&problem2);
            let (_, c_kids) = view::side_panel(self, c);
            case2.push(Case2Record {
                c,
                sol: sol2,
                old: old2,
                c_kids,
            });
        }

        // Structural merge in the local arena.
        let m = (self.base_len + self.local.len()) as SupernodeId;
        let size = self.node_size(a) + self.node_size(b);
        self.local.push(LocalNode {
            children: [a, b],
            size,
            parent: None,
        });
        self.set_parent(a, m);
        self.set_parent(b, m);

        // Fold the two tracked metas into the merged root's meta, exactly as the
        // authoritative engine does.
        let meta_a = self.metas.remove(&a).expect("tracked root a");
        let meta_b = self.metas.remove(&b).expect("tracked root b");
        let (tree_a, height_a) = (meta_a.tree_size, meta_a.height);
        let (tree_b, height_b) = (meta_b.tree_size, meta_b.height);
        let mut adjacency: FxHashMap<SupernodeId, u32> = FxHashMap::default();
        for (other, count) in meta_a.adjacency.into_iter().chain(meta_b.adjacency) {
            let key = if other == a || other == b { m } else { other };
            *adjacency.entry(key).or_insert(0) += count;
        }
        // Edges between tree(a) and tree(b) appeared in both maps while intra-tree
        // edges appeared once; the true intra(m) subtracts one cross count.
        if cross_ab > 0 {
            let self_count = adjacency
                .get_mut(&m)
                .expect("cross edges imply a self entry");
            *self_count -= cross_ab;
        }
        let neighbors: Vec<SupernodeId> = adjacency.keys().copied().filter(|&r| r != m).collect();
        let pn_count = adjacency.values().map(|&c| c as usize).sum();
        self.metas.insert(
            m,
            RootMeta {
                tree_size: tree_a + tree_b + 1,
                height: height_a.max(height_b) + 1,
                adjacency,
                pn_count,
            },
        );
        // Relabel a/b → m in *tracked* neighbor roots; untracked neighbors' metadata
        // is never read during this overlay's lifetime.
        for r in neighbors {
            if let Some(meta) = self.metas.get_mut(&r) {
                let mut moved = 0u32;
                if let Some(c) = meta.adjacency.remove(&a) {
                    moved += c;
                }
                if let Some(c) = meta.adjacency.remove(&b) {
                    moved += c;
                }
                if moved > 0 {
                    *meta.adjacency.entry(m).or_insert(0) += moved;
                }
            }
        }

        // Apply the Case-1 re-encoding: drop old panel edges, add the solved ones.
        for &(x, y) in old1.as_slice() {
            self.remove_pn_edge(x, y);
        }
        let none_kids = [None, None, None];
        for e in sol1.edges() {
            let x = view::concrete(e.a, m, a, b, &a_kids, &b_kids, None, &none_kids);
            let y = view::concrete(e.b, m, a, b, &a_kids, &b_kids, None, &none_kids);
            self.add_pn_edge(x, y, e.weight);
        }

        // Apply the Case-2 re-encodings.  (`case2` lives in the scratch; iterating by
        // index keeps `self` free for the mutating edge updates.)
        for rec in case2.iter() {
            for &(x, y) in rec.old.as_slice() {
                self.remove_pn_edge(x, y);
            }
            for e in rec.sol.edges() {
                let x = view::concrete(e.a, m, a, b, &a_kids, &b_kids, Some(rec.c), &rec.c_kids);
                let y = view::concrete(e.b, m, a, b, &a_kids, &b_kids, Some(rec.c), &rec.c_kids);
                self.add_pn_edge(x, y, e.weight);
            }
        }
        m
    }
}

impl MergeView for PlanningEngine<'_> {
    fn is_root(&self, id: SupernodeId) -> bool {
        match self.local_index(id) {
            Some(i) => self.local[i].parent.is_none(),
            None => !self.parent_override.contains_key(&id) && self.base.summary().is_root(id),
        }
    }

    fn children_of(&self, id: SupernodeId) -> &[SupernodeId] {
        match self.local_index(id) {
            Some(i) => &self.local[i].children,
            None => self.base.summary().children(id),
        }
    }

    fn node_size(&self, id: SupernodeId) -> usize {
        match self.local_index(id) {
            Some(i) => self.local[i].size,
            None => self.base.summary().members(id).len(),
        }
    }

    fn parent_of(&self, id: SupernodeId) -> Option<SupernodeId> {
        match self.local_index(id) {
            Some(i) => self.local[i].parent,
            None => self
                .parent_override
                .get(&id)
                .copied()
                .or_else(|| self.base.summary().parent(id)),
        }
    }

    fn edge_weight(&self, x: SupernodeId, y: SupernodeId) -> i32 {
        match self.edges.get(&edge_key(x, y)) {
            Some(&w) => w as i32,
            None => self.base.summary().edge_weight(x, y),
        }
    }

    fn root_cost(&self, root: SupernodeId) -> usize {
        let meta = &self.metas[&root];
        meta.h_edges() + meta.pn_incident()
    }

    fn root_height(&self, root: SupernodeId) -> usize {
        self.metas[&root].height
    }

    fn edges_between_roots(&self, a: SupernodeId, b: SupernodeId) -> usize {
        self.metas[&a].adjacency.get(&b).copied().unwrap_or(0) as usize
    }

    fn common_adjacent_roots_into(
        &self,
        a: SupernodeId,
        b: SupernodeId,
        out: &mut Vec<SupernodeId>,
    ) {
        out.clear();
        let adj_a = &self.metas[&a].adjacency;
        let adj_b = &self.metas[&b].adjacency;
        let (small, large) = if adj_a.len() <= adj_b.len() {
            (adj_a, adj_b)
        } else {
            (adj_b, adj_a)
        };
        out.extend(
            small
                .keys()
                .copied()
                .filter(|&r| r != a && r != b && large.contains_key(&r)),
        );
    }
}

impl MergeState for PlanningEngine<'_> {
    fn is_root(&self, id: SupernodeId) -> bool {
        MergeView::is_root(self, id)
    }

    fn root_height(&self, root: SupernodeId) -> usize {
        MergeView::root_height(self, root)
    }

    fn evaluate_merge(
        &self,
        a: SupernodeId,
        b: SupernodeId,
        ctx: &mut MergeCtx,
    ) -> MergeEvaluation {
        view::evaluate_merge(self, a, b, ctx)
    }

    fn apply_merge(&mut self, a: SupernodeId, b: SupernodeId, ctx: &mut MergeCtx) -> SupernodeId {
        self.merge(a, b, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slugger_graph::Graph;

    fn double_star() -> Graph {
        let mut edges = vec![(0, 1)];
        for s in 2..8u32 {
            edges.push((0, s));
            edges.push((1, s));
        }
        Graph::from_edges(8, edges)
    }

    #[test]
    fn overlay_evaluation_matches_the_engine() {
        let g = double_star();
        let engine = MergeEngine::new(&g);
        let mut ctx = MergeCtx::new();
        let overlay = PlanningEngine::new(&engine, &[2, 3, 4, 5]);
        for (a, b) in [(2u32, 3u32), (4, 5), (2, 5)] {
            let direct = engine.evaluate_merge(a, b, &mut ctx);
            let planned = MergeState::evaluate_merge(&overlay, a, b, &mut ctx);
            assert_eq!(direct.cost_before, planned.cost_before, "({a},{b})");
            assert_eq!(direct.cost_after, planned.cost_after, "({a},{b})");
        }
    }

    #[test]
    fn overlay_merges_track_the_engine_exactly() {
        // Perform the same merge sequence on a real engine and on an overlay; every
        // intermediate evaluation must agree, proving the CoW metadata stays exact.
        let g = double_star();
        let mut engine = MergeEngine::new(&g);
        let frozen = MergeEngine::new(&g);
        let mut ctx = MergeCtx::new();
        let mut overlay = PlanningEngine::new(&frozen, &[2, 3, 4, 5, 6]);

        let em = engine.apply_merge(2, 3, &mut ctx);
        let om = overlay.merge(2, 3, &mut ctx);
        assert!(MergeView::is_root(&overlay, om));
        assert!(!MergeView::is_root(&overlay, 2));
        assert_eq!(overlay.node_size(om), 2);
        assert_eq!(overlay.root_of(2), om);

        // Evaluate the follow-up merge (m ∪ 4) on both.
        let direct = engine.evaluate_merge(em, 4, &mut ctx);
        let planned = MergeState::evaluate_merge(&overlay, om, 4, &mut ctx);
        assert_eq!(direct.cost_before, planned.cost_before);
        assert_eq!(direct.cost_after, planned.cost_after);

        // And apply it; the overlay's root cost must match the engine's.
        let em2 = engine.apply_merge(em, 4, &mut ctx);
        let om2 = overlay.merge(om, 4, &mut ctx);
        assert_eq!(engine.root_cost(em2), MergeView::root_cost(&overlay, om2));
        assert_eq!(
            engine.root_height(em2),
            MergeView::root_height(&overlay, om2)
        );
        assert_eq!(
            engine.edges_between_roots(em2, 0),
            MergeView::edges_between_roots(&overlay, om2, 0)
        );
    }

    #[test]
    fn untracked_roots_are_left_alone() {
        let g = double_star();
        let frozen = MergeEngine::new(&g);
        let mut ctx = MergeCtx::new();
        let mut overlay = PlanningEngine::new(&frozen, &[2, 3]);
        overlay.merge(2, 3, &mut ctx);
        // The hubs (0, 1) are untracked: still roots, structure untouched, and the
        // frozen engine itself never changed.
        assert!(MergeView::is_root(&overlay, 0));
        assert!(MergeView::is_root(&overlay, 1));
        assert_eq!(frozen.num_roots(), 8);
        frozen.summary().validate().unwrap();
    }
}
