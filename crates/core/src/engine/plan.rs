//! The per-shard mutable planning state: a copy-on-write overlay over a frozen
//! [`MergeEngine`].
//!
//! Cloning the whole engine per shard would cost O(|V| + |E|) per shard per
//! iteration — more than the planning work itself on large graphs.  The overlay
//! instead borrows the frozen engine immutably and records only this candidate set's
//! own mutations:
//!
//! * **structure** — merged supernodes live in a local arena (ids continue past
//!   [`PlanningEngine`]'s `local_start`); merged-away frozen roots get a parent
//!   override;
//! * **edges** — a delta map shadows the frozen p/n-edges (`0` = removed);
//! * **root metadata** — maintained only for the *tracked* roots (the candidate set's
//!   members and their merge products).  Candidate sets are disjoint and the frozen
//!   view never changes mid-iteration, so untracked roots can never be merged away
//!   while planning, and their metadata is never read: `evaluate_merge` touches the
//!   metadata of its two (tracked) operands only.
//!
//! The cost of building an overlay is proportional to the candidate set's incident
//! edges, not to the graph — which is what lets the merge stage actually scale with
//! threads.
//!
//! # Pooled scratch
//!
//! All of the overlay's mutable state lives in a [`PlanScratch`] owned by the
//! per-worker planner and *reused* across candidate sets: the three delta maps are
//! cleared (keeping their capacity), and the per-root metadata values — each holding
//! its own adjacency map — are drained into a free pool and recycled.  After the
//! first few sets have warmed the pools, planning a set performs **zero heap
//! allocations** (pinned by the counting-allocator test in
//! `crates/core/tests/plan_alloc.rs`); previously every set churned three fresh
//! `FxHashMap`s plus one adjacency clone per tracked root and per merge.
//!
//! # Replay mode
//!
//! The same overlay also powers the conflict-partitioned parallel **apply** stage
//! ([`super::apply`]): `PlanningEngine::for_replay` starts the local arena at a
//! *forced* id (the slot the authoritative serial replay would allocate), so
//! replaying a plan's merges resolves them against concrete, authoritative ids —
//! committing those resolutions is then byte-identical to the serial path.

use super::view::{self, MergeView};
use super::{
    Case2Record, MergeCtx, MergeEngine, MergeEvaluation, MergeState, ResolvedMerge, RootMeta,
};
use crate::model::{edge_key, SupernodeId};
use slugger_graph::hash::FxHashMap;

/// A supernode created by this overlay's own merges.
#[derive(Clone, Debug)]
struct LocalNode {
    children: [SupernodeId; 2],
    size: usize,
    parent: Option<SupernodeId>,
}

/// Pooled mutable state of a [`PlanningEngine`], reused across candidate sets so
/// steady-state planning allocates nothing (see the module docs).
#[derive(Default)]
pub struct PlanScratch {
    /// Supernodes created by the current overlay's merges.
    local: Vec<LocalNode>,
    /// Parent overrides for frozen roots merged away by the current overlay.
    parent_override: FxHashMap<SupernodeId, SupernodeId>,
    /// Edge delta: `±1` = (re)written sign, `0` = removed.
    edges: FxHashMap<(SupernodeId, SupernodeId), i8>,
    /// Root metadata for tracked roots only (copied from the frozen engine on entry).
    metas: FxHashMap<SupernodeId, RootMeta>,
    /// Recycled [`RootMeta`] values; their adjacency maps keep their capacity.
    meta_pool: Vec<RootMeta>,
    /// Fold target for the merged root's adjacency map.
    fold: FxHashMap<SupernodeId, u32>,
    /// Reused neighbor-root list of the relabel pass.
    neighbors: Vec<SupernodeId>,
}

impl PlanScratch {
    /// An empty scratch (pools warm up over the first few sets).
    pub fn new() -> Self {
        PlanScratch::default()
    }

    /// Clears the overlay state for a new set, returning every tracked meta to the
    /// pool and keeping all map/vector capacity.
    fn reset(&mut self) {
        self.local.clear();
        self.parent_override.clear();
        self.edges.clear();
        let mut metas = std::mem::take(&mut self.metas);
        for (_, meta) in metas.drain() {
            self.meta_pool.push(meta);
        }
        // `drain` keeps the map's capacity; hand it back for the next set.
        self.metas = metas;
    }

    /// A recycled [`RootMeta`] whose adjacency map can hold `needed` entries without
    /// growing, best-fit matched against the pool.
    ///
    /// Pool order is a side effect of hash-map drain order, so a plain LIFO pop can
    /// hand a small map to a high-degree root pass after pass, re-growing a table
    /// each time.  Best-fit matching (the *smallest* sufficient pooled map; when
    /// none suffices, grow the largest) makes the pool's capacity multiset converge
    /// to the demand multiset: each growth permanently adds a sufficiently-large
    /// map, after which steady-state planning allocates nothing — pinned by
    /// `crates/core/tests/plan_alloc.rs`.
    fn take_meta_with(&mut self, needed: usize) -> RootMeta {
        let mut best: Option<(usize, usize)> = None; // (capacity, index), sufficient
        let mut largest: Option<(usize, usize)> = None;
        for (i, m) in self.meta_pool.iter().enumerate() {
            let cap = m.adjacency.capacity();
            if cap >= needed && best.is_none_or(|(c, _)| cap < c) {
                best = Some((cap, i));
            }
            if largest.is_none_or(|(c, _)| cap > c) {
                largest = Some((cap, i));
            }
        }
        let mut meta = match best.or(largest) {
            Some((_, i)) => self.meta_pool.swap_remove(i),
            None => RootMeta::default(),
        };
        meta.adjacency.clear();
        // No-op when the pooled capacity already suffices.
        meta.adjacency.reserve(needed);
        meta
    }
}

/// Copy-on-write planning overlay over a frozen engine (see the module docs).
pub struct PlanningEngine<'a> {
    base: &'a MergeEngine,
    /// First id of the overlay's local arena: the frozen arena length when planning,
    /// or a forced slot when replaying for the parallel apply stage.  Ids in
    /// `local_start..local_start + local.len()` are local; everything else resolves
    /// through the frozen (plus already-committed) authoritative state.
    local_start: usize,
    scratch: &'a mut PlanScratch,
}

impl<'a> PlanningEngine<'a> {
    /// Builds an overlay tracking the given candidate set (non-root entries are
    /// ignored; they cannot participate in merges anyway).
    pub fn new(
        base: &'a MergeEngine,
        tracked: &[SupernodeId],
        scratch: &'a mut PlanScratch,
    ) -> Self {
        let local_start = base.summary().arena_len();
        Self::with_start(base, tracked, local_start, scratch)
    }

    /// Builds a replay overlay whose local arena starts at the forced id
    /// `local_start` (the slot the serial replay would allocate for this plan's
    /// first merge; see [`super::apply`]).
    pub(crate) fn for_replay(
        base: &'a MergeEngine,
        tracked: &[SupernodeId],
        local_start: usize,
        scratch: &'a mut PlanScratch,
    ) -> Self {
        // Earlier-committed batches may already have grown the arena past this
        // plan's forced slots; those slots must then still be unfilled placeholders.
        debug_assert!(
            local_start >= base.summary().arena_len()
                || !base.summary().is_alive(local_start as SupernodeId),
            "forced replay slot {local_start} is already occupied"
        );
        Self::with_start(base, tracked, local_start, scratch)
    }

    fn with_start(
        base: &'a MergeEngine,
        tracked: &[SupernodeId],
        local_start: usize,
        scratch: &'a mut PlanScratch,
    ) -> Self {
        scratch.reset();
        for &r in tracked {
            if let Some(meta) = base.root_meta(r) {
                let mut copy = scratch.take_meta_with(meta.adjacency.len());
                copy.tree_size = meta.tree_size;
                copy.height = meta.height;
                copy.pn_count = meta.pn_count;
                copy.adjacency
                    .extend(meta.adjacency.iter().map(|(&k, &v)| (k, v)));
                scratch.metas.insert(r, copy);
            }
        }
        PlanningEngine {
            base,
            local_start,
            scratch,
        }
    }

    /// The id the overlay's next merge will allocate.
    fn next_id(&self) -> SupernodeId {
        (self.local_start + self.scratch.local.len()) as SupernodeId
    }

    fn local_index(&self, id: SupernodeId) -> Option<usize> {
        let i = (id as usize).checked_sub(self.local_start)?;
        (i < self.scratch.local.len()).then_some(i)
    }

    /// Current root of the tree containing `id`, resolving through both the frozen
    /// union-find and this overlay's merges.
    fn root_of(&self, id: SupernodeId) -> SupernodeId {
        let mut r = match self.local_index(id) {
            Some(_) => id,
            None => self.base.root_of_frozen(id),
        };
        loop {
            let parent = match self.local_index(r) {
                Some(i) => self.scratch.local[i].parent,
                None => self.scratch.parent_override.get(&r).copied(),
            };
            match parent {
                Some(p) => r = p,
                None => return r,
            }
        }
    }

    fn set_parent(&mut self, id: SupernodeId, parent: SupernodeId) {
        match self.local_index(id) {
            Some(i) => self.scratch.local[i].parent = Some(parent),
            None => {
                self.scratch.parent_override.insert(id, parent);
            }
        }
    }

    fn meta_increment(&mut self, root: SupernodeId, other: SupernodeId) {
        if let Some(meta) = self.scratch.metas.get_mut(&root) {
            *meta.adjacency.entry(other).or_insert(0) += 1;
            meta.pn_count += 1;
        }
    }

    fn meta_decrement(&mut self, root: SupernodeId, other: SupernodeId) {
        if let Some(meta) = self.scratch.metas.get_mut(&root) {
            let remove = match meta.adjacency.get_mut(&other) {
                Some(c) => {
                    *c -= 1;
                    meta.pn_count -= 1;
                    *c == 0
                }
                None => false,
            };
            if remove {
                meta.adjacency.remove(&other);
            }
        }
    }

    /// Merges roots `a` and `b` inside the overlay: resolves the merge against the
    /// pre-merge overlay state ([`view::resolve_merge_into`] — the same resolution
    /// the authoritative engine performs) and replays it onto the copy-on-write
    /// state.
    fn merge(&mut self, a: SupernodeId, b: SupernodeId, ctx: &mut MergeCtx) -> SupernodeId {
        let MergeCtx { memo, scratch } = ctx;
        scratch.case2.clear();
        let rm = view::resolve_merge_into(
            self,
            a,
            b,
            self.next_id(),
            memo,
            &mut scratch.commons,
            &mut scratch.case2,
        );
        self.apply_resolved(&rm, &scratch.case2);
        rm.m
    }

    /// Replays a merge (resolved by [`Self::merge`] or by the apply stage's recorded
    /// replay) onto the overlay, mirroring [`MergeEngine::commit_merge`] on the
    /// copy-on-write state.
    pub(crate) fn apply_resolved(&mut self, rm: &ResolvedMerge, case2: &[Case2Record]) {
        let (a, b, m) = (rm.a, rm.b, rm.m);
        debug_assert!(
            self.scratch.metas.contains_key(&a) && self.scratch.metas.contains_key(&b) && a != b,
            "planned merges must involve tracked roots"
        );
        debug_assert_eq!(m, self.next_id());
        let case2 = &case2[rm.case2_start..rm.case2_start + rm.case2_len];

        // Structural merge in the local arena.
        let size = self.node_size(a) + self.node_size(b);
        self.scratch.local.push(LocalNode {
            children: [a, b],
            size,
            parent: None,
        });
        self.set_parent(a, m);
        self.set_parent(b, m);

        // Fold the two tracked metas into the merged root's meta, exactly as the
        // authoritative engine does (everything through pooled buffers).
        let meta_a = self.scratch.metas.remove(&a).expect("tracked root a");
        let meta_b = self.scratch.metas.remove(&b).expect("tracked root b");
        let mut fold = std::mem::take(&mut self.scratch.fold);
        fold.clear();
        for (&other, &count) in meta_a.adjacency.iter().chain(meta_b.adjacency.iter()) {
            let key = if other == a || other == b { m } else { other };
            *fold.entry(key).or_insert(0) += count;
        }
        // Edges between tree(a) and tree(b) appeared in both maps while intra-tree
        // edges appeared once; the true intra(m) subtracts one cross count.
        if rm.cross_ab > 0 {
            let self_count = fold.get_mut(&m).expect("cross edges imply a self entry");
            *self_count -= rm.cross_ab;
        }
        let mut neighbors = std::mem::take(&mut self.scratch.neighbors);
        neighbors.clear();
        neighbors.extend(fold.keys().copied().filter(|&r| r != m));
        let pn_count = fold.values().map(|&c| c as usize).sum();
        // Copy the fold into a capacity-matched pooled meta (rather than swapping
        // the maps): the fold buffer keeps a stable identity, so it grows to the
        // pass's peak demand once and never again.
        let mut meta_m = self.scratch.take_meta_with(fold.len());
        meta_m.tree_size = meta_a.tree_size + meta_b.tree_size + 1;
        meta_m.height = meta_a.height.max(meta_b.height) + 1;
        meta_m.pn_count = pn_count;
        meta_m.adjacency.extend(fold.iter().map(|(&k, &v)| (k, v)));
        self.scratch.fold = fold;
        self.scratch.meta_pool.push(meta_a);
        self.scratch.meta_pool.push(meta_b);
        self.scratch.metas.insert(m, meta_m);
        // Relabel a/b → m in *tracked* neighbor roots; untracked neighbors' metadata
        // is never read during this overlay's lifetime.
        for &r in &neighbors {
            if let Some(meta) = self.scratch.metas.get_mut(&r) {
                let mut moved = 0u32;
                if let Some(c) = meta.adjacency.remove(&a) {
                    moved += c;
                }
                if let Some(c) = meta.adjacency.remove(&b) {
                    moved += c;
                }
                if moved > 0 {
                    *meta.adjacency.entry(m).or_insert(0) += moved;
                }
            }
        }
        self.scratch.neighbors = neighbors;

        // Apply the Case-1/Case-2 re-encodings (shared with the engine's commit).
        view::replay_reencodings(self, rm, case2);
    }

    /// Resolves and replays one merge for the parallel apply stage, *recording* the
    /// resolution: the Case-2 records are appended to `out` (not the per-call
    /// scratch) and the returned [`ResolvedMerge`] references them, ready to be
    /// committed verbatim on the authoritative engine.
    pub(crate) fn replay_merge_recorded(
        &mut self,
        a: SupernodeId,
        b: SupernodeId,
        ctx: &mut MergeCtx,
        out: &mut Vec<Case2Record>,
    ) -> ResolvedMerge {
        let MergeCtx { memo, scratch } = ctx;
        let rm =
            view::resolve_merge_into(self, a, b, self.next_id(), memo, &mut scratch.commons, out);
        self.apply_resolved(&rm, out);
        rm
    }
}

impl view::PnEdgeSink for PlanningEngine<'_> {
    /// Adds a p/n-edge, updating the tracked endpoint roots' metadata (mirrors the
    /// authoritative engine's sink on the copy-on-write state).
    fn add_pn_edge(&mut self, x: SupernodeId, y: SupernodeId, weight: i8) {
        debug_assert!(weight == 1 || weight == -1);
        let prev = MergeView::edge_weight(self, x, y);
        self.scratch.edges.insert(edge_key(x, y), weight);
        if prev == 0 {
            let rx = self.root_of(x);
            let ry = self.root_of(y);
            self.meta_increment(rx, ry);
            if rx != ry {
                self.meta_increment(ry, rx);
            }
        }
    }

    /// Removes a p/n-edge, updating the tracked endpoint roots' metadata.
    fn remove_pn_edge(&mut self, x: SupernodeId, y: SupernodeId) {
        if MergeView::edge_weight(self, x, y) != 0 {
            self.scratch.edges.insert(edge_key(x, y), 0);
            let rx = self.root_of(x);
            let ry = self.root_of(y);
            self.meta_decrement(rx, ry);
            if rx != ry {
                self.meta_decrement(ry, rx);
            }
        }
    }
}

impl MergeView for PlanningEngine<'_> {
    fn is_root(&self, id: SupernodeId) -> bool {
        match self.local_index(id) {
            Some(i) => self.scratch.local[i].parent.is_none(),
            None => {
                !self.scratch.parent_override.contains_key(&id) && self.base.summary().is_root(id)
            }
        }
    }

    fn children_of(&self, id: SupernodeId) -> &[SupernodeId] {
        match self.local_index(id) {
            Some(i) => &self.scratch.local[i].children,
            None => self.base.summary().children(id),
        }
    }

    fn node_size(&self, id: SupernodeId) -> usize {
        match self.local_index(id) {
            Some(i) => self.scratch.local[i].size,
            None => self.base.summary().members(id).len(),
        }
    }

    fn parent_of(&self, id: SupernodeId) -> Option<SupernodeId> {
        match self.local_index(id) {
            Some(i) => self.scratch.local[i].parent,
            // Until this overlay's first merge the override map is empty; skip
            // the probe — `parent_of` runs per panel cell on the evaluation hot
            // path, and most evaluations happen before any merge lands.
            None if self.scratch.parent_override.is_empty() => self.base.summary().parent(id),
            None => self
                .scratch
                .parent_override
                .get(&id)
                .copied()
                .or_else(|| self.base.summary().parent(id)),
        }
    }

    fn edge_weight(&self, x: SupernodeId, y: SupernodeId) -> i32 {
        // Same empty-overlay fast path as `parent_of`: the edge overlay only
        // fills once a merge re-encodes panels, but `edge_weight` is the single
        // hottest probe of the planner (every Case-1/Case-2 panel build).
        if self.scratch.edges.is_empty() {
            return self.base.summary().edge_weight(x, y);
        }
        match self.scratch.edges.get(&edge_key(x, y)) {
            Some(&w) => w as i32,
            None => self.base.summary().edge_weight(x, y),
        }
    }

    fn root_cost(&self, root: SupernodeId) -> usize {
        let meta = &self.scratch.metas[&root];
        meta.h_edges() + meta.pn_incident()
    }

    fn root_height(&self, root: SupernodeId) -> usize {
        self.scratch.metas[&root].height
    }

    fn edges_between_roots(&self, a: SupernodeId, b: SupernodeId) -> usize {
        self.scratch.metas[&a]
            .adjacency
            .get(&b)
            .copied()
            .unwrap_or(0) as usize
    }

    fn common_adjacent_roots_into(
        &self,
        a: SupernodeId,
        b: SupernodeId,
        out: &mut Vec<SupernodeId>,
    ) {
        view::common_adjacent_roots_from_maps(
            &self.scratch.metas[&a].adjacency,
            &self.scratch.metas[&b].adjacency,
            a,
            b,
            out,
        );
    }
}

impl MergeState for PlanningEngine<'_> {
    fn is_root(&self, id: SupernodeId) -> bool {
        MergeView::is_root(self, id)
    }

    fn root_height(&self, root: SupernodeId) -> usize {
        MergeView::root_height(self, root)
    }

    fn evaluate_merge(
        &self,
        a: SupernodeId,
        b: SupernodeId,
        ctx: &mut MergeCtx,
    ) -> MergeEvaluation {
        view::evaluate_merge(self, a, b, ctx)
    }

    fn apply_merge(&mut self, a: SupernodeId, b: SupernodeId, ctx: &mut MergeCtx) -> SupernodeId {
        self.merge(a, b, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slugger_graph::Graph;

    fn double_star() -> Graph {
        let mut edges = vec![(0, 1)];
        for s in 2..8u32 {
            edges.push((0, s));
            edges.push((1, s));
        }
        Graph::from_edges(8, edges)
    }

    #[test]
    fn overlay_evaluation_matches_the_engine() {
        let g = double_star();
        let engine = MergeEngine::new(&g);
        let mut ctx = MergeCtx::new();
        let mut scratch = PlanScratch::new();
        let overlay = PlanningEngine::new(&engine, &[2, 3, 4, 5], &mut scratch);
        for (a, b) in [(2u32, 3u32), (4, 5), (2, 5)] {
            let direct = engine.evaluate_merge(a, b, &mut ctx);
            let planned = MergeState::evaluate_merge(&overlay, a, b, &mut ctx);
            assert_eq!(direct.cost_before, planned.cost_before, "({a},{b})");
            assert_eq!(direct.cost_after, planned.cost_after, "({a},{b})");
        }
    }

    #[test]
    fn overlay_merges_track_the_engine_exactly() {
        // Perform the same merge sequence on a real engine and on an overlay; every
        // intermediate evaluation must agree, proving the CoW metadata stays exact.
        let g = double_star();
        let mut engine = MergeEngine::new(&g);
        let frozen = MergeEngine::new(&g);
        let mut ctx = MergeCtx::new();
        let mut scratch = PlanScratch::new();
        let mut overlay = PlanningEngine::new(&frozen, &[2, 3, 4, 5, 6], &mut scratch);

        let em = engine.apply_merge(2, 3, &mut ctx);
        let om = overlay.merge(2, 3, &mut ctx);
        assert!(MergeView::is_root(&overlay, om));
        assert!(!MergeView::is_root(&overlay, 2));
        assert_eq!(overlay.node_size(om), 2);
        assert_eq!(overlay.root_of(2), om);

        // Evaluate the follow-up merge (m ∪ 4) on both.
        let direct = engine.evaluate_merge(em, 4, &mut ctx);
        let planned = MergeState::evaluate_merge(&overlay, om, 4, &mut ctx);
        assert_eq!(direct.cost_before, planned.cost_before);
        assert_eq!(direct.cost_after, planned.cost_after);

        // And apply it; the overlay's root cost must match the engine's.
        let em2 = engine.apply_merge(em, 4, &mut ctx);
        let om2 = overlay.merge(om, 4, &mut ctx);
        assert_eq!(engine.root_cost(em2), MergeView::root_cost(&overlay, om2));
        assert_eq!(
            engine.root_height(em2),
            MergeView::root_height(&overlay, om2)
        );
        assert_eq!(
            engine.edges_between_roots(em2, 0),
            MergeView::edges_between_roots(&overlay, om2, 0)
        );
    }

    #[test]
    fn untracked_roots_are_left_alone() {
        let g = double_star();
        let frozen = MergeEngine::new(&g);
        let mut ctx = MergeCtx::new();
        let mut scratch = PlanScratch::new();
        let mut overlay = PlanningEngine::new(&frozen, &[2, 3], &mut scratch);
        overlay.merge(2, 3, &mut ctx);
        // The hubs (0, 1) are untracked: still roots, structure untouched, and the
        // frozen engine itself never changed.
        assert!(MergeView::is_root(&overlay, 0));
        assert!(MergeView::is_root(&overlay, 1));
        assert_eq!(frozen.num_roots(), 8);
        frozen.summary().validate().unwrap();
    }

    #[test]
    fn scratch_reuse_across_sets_is_invisible() {
        // Planning the same set on a cold scratch and on a scratch that already
        // planned other sets must produce identical evaluations and merge products.
        let g = double_star();
        let frozen = MergeEngine::new(&g);
        let mut ctx = MergeCtx::new();
        let mut cold = PlanScratch::new();
        let mut warm = PlanScratch::new();
        {
            // Warm the pools with an unrelated set.
            let mut other = PlanningEngine::new(&frozen, &[4, 5, 6], &mut warm);
            other.merge(4, 5, &mut ctx);
        }
        let mut a = PlanningEngine::new(&frozen, &[2, 3, 4], &mut cold);
        let mut b = PlanningEngine::new(&frozen, &[2, 3, 4], &mut warm);
        let ea = MergeState::evaluate_merge(&a, 2, 3, &mut ctx);
        let eb = MergeState::evaluate_merge(&b, 2, 3, &mut ctx);
        assert_eq!(ea.cost_before, eb.cost_before);
        assert_eq!(ea.cost_after, eb.cost_after);
        let ma = a.merge(2, 3, &mut ctx);
        let mb = b.merge(2, 3, &mut ctx);
        assert_eq!(ma, mb);
        assert_eq!(MergeView::root_cost(&a, ma), MergeView::root_cost(&b, mb));
    }

    #[test]
    fn replay_overlay_allocates_forced_ids() {
        let g = double_star();
        let frozen = MergeEngine::new(&g);
        let mut ctx = MergeCtx::new();
        let mut scratch = PlanScratch::new();
        let start = frozen.summary().arena_len() + 5;
        let mut overlay = PlanningEngine::for_replay(&frozen, &[2, 3, 4], start, &mut scratch);
        let mut case2 = Vec::new();
        let rm = overlay.replay_merge_recorded(2, 3, &mut ctx, &mut case2);
        assert_eq!(rm.m as usize, start);
        let rm2 = overlay.replay_merge_recorded(rm.m, 4, &mut ctx, &mut case2);
        assert_eq!(rm2.m as usize, start + 1);
        assert!(MergeView::is_root(&overlay, rm2.m));
        assert_eq!(overlay.node_size(rm2.m), 3);
    }
}
