//! Compact binary (de)serialization of a [`HierarchicalSummary`].
//!
//! The whole point of summarization is to *store* the graph in less space, so the
//! library ships a small, self-describing binary format for the summary itself:
//! varint-encoded supernode table (parent + members, from which children are rebuilt)
//! followed by the p/n-edge list.  The format is endian-stable and versioned.
//!
//! Dead arena slots are never serialized and reading re-creates supernodes in
//! ascending-id order, so a summary's encoding is already arena-*compact*: writing
//! then reading is equivalent to [`HierarchicalSummary::compact`] as far as ids go
//! (the id-free canonical form is preserved either way), and pruned, compacted
//! streaming summaries round-trip mid-stream —
//! `IncrementalSummarizer::from_summary` resumes from the reloaded bytes (pinned
//! by `crates/core/tests/{storage_roundtrip,incremental_prune_compact}.rs`).
//!
//! ```
//! use slugger_core::model::{EdgeSign, HierarchicalSummary};
//! use slugger_core::storage::{read_summary, write_summary};
//!
//! let mut summary = HierarchicalSummary::identity(4);
//! let m = summary.merge_roots(0, 1);
//! summary.set_edge(m, 2, EdgeSign::Positive);
//! let mut buffer = Vec::new();
//! write_summary(&summary, &mut buffer).unwrap();
//! let restored = read_summary(&buffer[..]).unwrap();
//! assert_eq!(restored.encoding_cost(), summary.encoding_cost());
//! ```

use crate::model::{EdgeSign, HierarchicalSummary, SupernodeId};
use bytes::{Bytes, BytesMut};
use std::io::{self, Read, Write};

pub mod durable;

/// Magic bytes identifying the format ("SLGR").
pub const MAGIC: [u8; 4] = *b"SLGR";
/// Current format version.
pub const VERSION: u8 = 1;

/// Errors produced while reading a serialized summary.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input does not start with the expected magic bytes.
    BadMagic,
    /// The format version is not supported by this build.
    UnsupportedVersion(u8),
    /// The payload is structurally invalid (truncated, inconsistent counts, …).
    Corrupt(&'static str),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::BadMagic => write!(f, "not a SLUGGER summary file (bad magic)"),
            StorageError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            StorageError::Corrupt(what) => write!(f, "corrupt summary payload: {what}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Serializes a summary into a writer. Returns the number of bytes written.
pub fn write_summary<W: Write>(
    summary: &HierarchicalSummary,
    mut writer: W,
) -> Result<usize, StorageError> {
    let bytes = encode_summary(summary);
    writer.write_all(&bytes)?;
    Ok(bytes.len())
}

/// Deserializes a summary from a reader.
pub fn read_summary<R: Read>(mut reader: R) -> Result<HierarchicalSummary, StorageError> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    decode_summary(&Bytes::from(raw))
}

/// Encodes a summary into a byte buffer.
pub fn encode_summary(summary: &HierarchicalSummary) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + summary.arena_len() * 8);
    buf.put_slice(&MAGIC);
    buf.put_u8(VERSION);
    put_varint(&mut buf, summary.num_subnodes() as u64);
    // Alive non-leaf supernodes, each with parent (or sentinel) — children and members
    // are reconstructed from parents, so leaves (ids 0..n) are implicit.
    let internal: Vec<SupernodeId> = (summary.num_subnodes() as SupernodeId
        ..summary.arena_len() as SupernodeId)
        .filter(|&id| summary.is_alive(id))
        .collect();
    put_varint(&mut buf, internal.len() as u64);
    for &id in &internal {
        put_varint(&mut buf, id as u64);
        match summary.parent(id) {
            Some(p) => put_varint(&mut buf, p as u64 + 1),
            None => put_varint(&mut buf, 0),
        }
    }
    // Parents of the leaves.
    for leaf in 0..summary.num_subnodes() as SupernodeId {
        match summary.parent(leaf) {
            Some(p) => put_varint(&mut buf, p as u64 + 1),
            None => put_varint(&mut buf, 0),
        }
    }
    // Edges.
    let edges: Vec<((SupernodeId, SupernodeId), EdgeSign)> = summary.pn_edges().collect();
    put_varint(&mut buf, edges.len() as u64);
    for ((a, b), sign) in edges {
        put_varint(&mut buf, a as u64);
        put_varint(&mut buf, b as u64);
        buf.put_u8(match sign {
            EdgeSign::Positive => 1,
            EdgeSign::Negative => 0,
        });
    }
    buf.freeze()
}

/// A count or id decoded from untrusted input, checked to fit [`SupernodeId`]
/// (serialized ids are `u32`; anything larger is corruption, and truncating casts
/// would silently alias ids).
fn checked_id(value: u64, what: &'static str) -> Result<SupernodeId, StorageError> {
    SupernodeId::try_from(value).map_err(|_| StorageError::Corrupt(what))
}

/// Decodes a summary from a byte buffer.
///
/// Never panics, whatever the input: every count is validated against the bytes
/// actually present **before** anything is allocated from it (a forged header must
/// not trigger a multi-gigabyte allocation), ids are range-checked instead of
/// truncated, and the reconstructed model is [`HierarchicalSummary::validate`]d so
/// an `Ok` summary is always internally consistent.  Pinned by the fuzz-style
/// proptest in `crates/core/tests/storage_roundtrip.rs`.
pub fn decode_summary(bytes: &Bytes) -> Result<HierarchicalSummary, StorageError> {
    let mut buf = bytes.clone();
    if buf.remaining() < 5 {
        return Err(StorageError::Corrupt("truncated header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(StorageError::BadMagic);
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(StorageError::UnsupportedVersion(version));
    }
    let num_subnodes = checked_id(get_varint(&mut buf)?, "subnode count overflows u32")? as usize;
    // Each leaf contributes at least one parent byte later in the payload, so a
    // subnode count beyond the remaining bytes cannot be honest.
    if num_subnodes > buf.remaining() {
        return Err(StorageError::Corrupt("subnode count exceeds payload"));
    }
    let num_internal = get_varint(&mut buf)? as usize;
    // Each internal entry needs at least two varint bytes (id + parent).
    if num_internal > buf.remaining() / 2 {
        return Err(StorageError::Corrupt("internal count exceeds payload"));
    }
    let mut internal: Vec<(SupernodeId, Option<SupernodeId>)> = Vec::with_capacity(num_internal);
    for _ in 0..num_internal {
        let id = checked_id(get_varint(&mut buf)?, "internal id overflows u32")?;
        let parent = match get_varint(&mut buf)? {
            0 => None,
            p => Some(checked_id(p - 1, "parent id overflows u32")?),
        };
        if (id as usize) < num_subnodes {
            return Err(StorageError::Corrupt(
                "internal supernode id overlaps leaves",
            ));
        }
        internal.push((id, parent));
    }
    let mut leaf_parents: Vec<Option<SupernodeId>> = Vec::with_capacity(num_subnodes);
    for _ in 0..num_subnodes {
        leaf_parents.push(match get_varint(&mut buf)? {
            0 => None,
            p => Some(checked_id(p - 1, "leaf parent id overflows u32")?),
        });
    }
    let num_edges = get_varint(&mut buf)? as usize;
    // Each edge needs at least three bytes (two endpoint varints plus the sign).
    if num_edges > buf.remaining() / 3 {
        return Err(StorageError::Corrupt("edge count exceeds payload"));
    }
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let a = checked_id(get_varint(&mut buf)?, "edge endpoint overflows u32")?;
        let b = checked_id(get_varint(&mut buf)?, "edge endpoint overflows u32")?;
        if !buf.has_remaining() {
            return Err(StorageError::Corrupt("truncated edge sign"));
        }
        let sign = match buf.get_u8() {
            1 => EdgeSign::Positive,
            0 => EdgeSign::Negative,
            _ => return Err(StorageError::Corrupt("invalid edge sign")),
        };
        edges.push(((a, b), sign));
    }

    // Rebuild: create the identity summary, then re-create the internal supernodes in
    // topological (children-before-parents) order by repeatedly merging roots.
    let summary = rebuild(num_subnodes, &internal, &leaf_parents, &edges)?;
    // Belt and braces: whatever the parent tables encoded, an `Ok` result must be a
    // model every downstream consumer can trust.
    summary
        .validate()
        .map_err(|_| StorageError::Corrupt("reconstructed summary is inconsistent"))?;
    Ok(summary)
}

/// Reconstructs a summary from the decoded tables.
fn rebuild(
    num_subnodes: usize,
    internal: &[(SupernodeId, Option<SupernodeId>)],
    leaf_parents: &[Option<SupernodeId>],
    edges: &[((SupernodeId, SupernodeId), EdgeSign)],
) -> Result<HierarchicalSummary, StorageError> {
    // children_of[new supernode] collected from both leaves and internal nodes.
    let mut children_of: std::collections::BTreeMap<SupernodeId, Vec<SupernodeId>> =
        std::collections::BTreeMap::new();
    for (leaf, parent) in leaf_parents.iter().enumerate() {
        if let Some(p) = parent {
            children_of.entry(*p).or_default().push(leaf as SupernodeId);
        }
    }
    for &(id, parent) in internal {
        children_of.entry(id).or_default();
        if let Some(p) = parent {
            children_of.entry(p).or_default().push(id);
        }
    }
    let mut summary = HierarchicalSummary::identity(num_subnodes);
    // The arena requires supernode ids to be dense and in creation order; serialized
    // ids are the original arena ids, so map old -> new as we recreate the supernodes
    // in ascending old-id order (children always have smaller ids than their parent,
    // both for the merge engine's output and for pruned hierarchies).
    let mut mapping: std::collections::BTreeMap<SupernodeId, SupernodeId> =
        (0..num_subnodes as SupernodeId).map(|x| (x, x)).collect();
    for (&old_id, children) in &children_of {
        if children.len() < 2 {
            return Err(StorageError::Corrupt(
                "internal supernode with fewer than two children",
            ));
        }
        let mapped: Vec<SupernodeId> = children
            .iter()
            .map(|c| {
                mapping
                    .get(c)
                    .copied()
                    .ok_or(StorageError::Corrupt("child created after parent"))
            })
            .collect::<Result<_, _>>()?;
        // Guard the arena's invariants before touching it (the model asserts them):
        // a child claimed by two parents, or listed twice, is no longer a root here.
        // Duplicate detection sorts a copy — an adversarial file can make one
        // children list arbitrarily long, so a quadratic scan would be a
        // CPU-exhaustion vector.
        for &c in &mapped {
            if !summary.is_root(c) {
                return Err(StorageError::Corrupt("supernode claimed by two parents"));
            }
        }
        let mut dedup_check = mapped.clone();
        dedup_check.sort_unstable();
        if dedup_check.windows(2).any(|w| w[0] == w[1]) {
            return Err(StorageError::Corrupt("supernode claimed by two parents"));
        }
        let new_id = summary.create_supernode_with_children(&mapped);
        mapping.insert(old_id, new_id);
    }
    for &((a, b), sign) in edges {
        let a = *mapping
            .get(&a)
            .ok_or(StorageError::Corrupt("edge references unknown supernode"))?;
        let b = *mapping
            .get(&b)
            .ok_or(StorageError::Corrupt("edge references unknown supernode"))?;
        summary.set_edge(a, b, sign);
    }
    Ok(summary)
}

fn put_varint(buf: &mut BytesMut, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Result<u64, StorageError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(StorageError::Corrupt("truncated varint"));
        }
        let byte = buf.get_u8();
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift >= 64 {
            return Err(StorageError::Corrupt("varint overflow"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode_full;
    use crate::slugger::{Slugger, SluggerConfig};
    use slugger_graph::gen::{caveman, CavemanConfig};

    #[test]
    fn varint_roundtrip() {
        let mut buf = BytesMut::new();
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut bytes = buf.freeze();
        for &v in &values {
            assert_eq!(get_varint(&mut bytes).unwrap(), v);
        }
    }

    #[test]
    fn handbuilt_summary_roundtrips() {
        let mut s = HierarchicalSummary::identity(5);
        let m01 = s.merge_roots(0, 1);
        let m = s.merge_roots(m01, 2);
        s.set_edge(m, 3, EdgeSign::Positive);
        s.set_edge(0, 4, EdgeSign::Negative);
        s.set_edge(m01, m01, EdgeSign::Positive);
        let bytes = encode_summary(&s);
        let restored = decode_summary(&bytes).unwrap();
        restored.validate().unwrap();
        assert_eq!(restored.num_p_edges(), s.num_p_edges());
        assert_eq!(restored.num_n_edges(), s.num_n_edges());
        assert_eq!(restored.num_h_edges(), s.num_h_edges());
        assert_eq!(
            decode_full(&restored).edge_set(),
            decode_full(&s).edge_set()
        );
    }

    #[test]
    fn real_slugger_output_roundtrips_through_a_writer() {
        let graph = caveman(&CavemanConfig {
            num_nodes: 150,
            num_cliques: 25,
            ..CavemanConfig::default()
        });
        let outcome = Slugger::new(SluggerConfig {
            iterations: 5,
            ..SluggerConfig::default()
        })
        .summarize(&graph);
        let mut buffer = Vec::new();
        let written = write_summary(&outcome.summary, &mut buffer).unwrap();
        assert_eq!(written, buffer.len());
        let restored = read_summary(&buffer[..]).unwrap();
        restored.validate().unwrap();
        assert_eq!(
            decode_full(&restored).edge_set(),
            graph.edge_set(),
            "restored summary must still decode to the input graph"
        );
        assert_eq!(restored.encoding_cost(), outcome.summary.encoding_cost());
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        assert!(matches!(
            decode_summary(&Bytes::from_static(b"nope")),
            Err(StorageError::Corrupt(_))
        ));
        assert!(matches!(
            decode_summary(&Bytes::from_static(b"XXXX\x01\x00\x00\x00")),
            Err(StorageError::BadMagic)
        ));
        let mut s = HierarchicalSummary::identity(3);
        s.set_edge(0, 1, EdgeSign::Positive);
        let bytes = encode_summary(&s);
        // Bad version byte.
        let mut tampered = bytes.to_vec();
        tampered[4] = 99;
        assert!(matches!(
            decode_summary(&Bytes::from(tampered)),
            Err(StorageError::UnsupportedVersion(99))
        ));
        // Truncation.
        let truncated = Bytes::copy_from_slice(&bytes[..bytes.len() - 1]);
        assert!(decode_summary(&truncated).is_err());
    }

    #[test]
    fn error_display_strings() {
        let e = StorageError::Corrupt("truncated varint");
        assert!(format!("{e}").contains("truncated varint"));
        let e = StorageError::UnsupportedVersion(3);
        assert!(format!("{e}").contains('3'));
    }
}
