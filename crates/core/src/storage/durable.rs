//! Crash-safe streaming: checksummed checkpoints, an append-only delta WAL, and
//! deterministic recovery for [`IncrementalSummarizer`] streams.
//!
//! The incremental re-summarizer keeps its state (summary, engine bookkeeping,
//! current graph, RNG epoch) only in RAM: a crash mid-stream loses every batch
//! since start.  [`DurableSummarizer`] wraps it in a **log-ahead protocol** so a
//! streaming session can restart from disk mid-stream and land on the *same*
//! summary an uninterrupted run would have produced (in id-free canonical form —
//! see [`crate::decode::canonical_form`]):
//!
//! 1. **Log ahead.**  Each [`DurableSummarizer::ingest`] first appends the
//!    [`GraphDelta`] verbatim to the current WAL segment (length-prefixed,
//!    per-record CRC32) and fsyncs it, *then* applies the batch through the
//!    normal [`IncrementalSummarizer::resummarize`] path.  A batch is therefore
//!    on disk before it is ever reflected in RAM.
//! 2. **Checkpoint.**  Every [`DurablePolicy::checkpoint_every_batches`] batches
//!    (or once the WAL grows past [`DurablePolicy::checkpoint_wal_bytes`]), the
//!    maintained summary is serialized via [`crate::storage::write_summary`]
//!    into a checkpoint file together with the deterministic-resume counters
//!    (pipeline epoch, batch count, seed), each section guarded by its own
//!    CRC32.  Checkpoints are written temp-file → fsync → rename → dir-fsync, so
//!    a crash never clobbers the previous one; the latest **two** checkpoints
//!    are retained and the WAL is only truncated up to the *older* of them, so
//!    recovery can always fall back one checkpoint and replay a longer WAL tail.
//! 3. **Recover.**  [`DurableSummarizer::open`] loads the newest checkpoint that
//!    passes its checksums (falling back to the previous one if the newest is
//!    corrupt), reconstructs the current graph by *decoding the summary* (the
//!    lossless invariant makes the summary itself the graph of record), restores
//!    the RNG epoch through [`IncrementalSummarizer::resume`], and replays every
//!    WAL record past the checkpoint through the normal batch path.  A torn
//!    final record (crash mid-append) is ignored and the active segment is
//!    **healed** — rewritten down to its intact prefix — before appends resume,
//!    so post-recovery batches are never stranded behind torn bytes; duplicated
//!    tail records (re-appended after a failed fsync) are skipped by batch
//!    index; anything else inconsistent — a gap in batch indexes, records after
//!    a torn tail — is a **typed error**, never a panic and never a silently
//!    wrong summary.
//!
//! Determinism of recovery is the load-bearing invariant: because the checkpoint
//! pins `(summary, epoch, batches)` and replay goes through the ordinary
//! resummarize path, a kill-and-recover at *any* point produces a summary whose
//! id-free canonical form is byte-identical to the uninterrupted run, across the
//! whole `parallelism × shards` scheduling lattice (pinned by
//! `crates/core/tests/durable_recovery.rs`).
//!
//! All I/O goes through the [`DurableIo`] trait.  [`DirIo`] is the real
//! filesystem implementation (one flat directory); [`fault::MemIo`] is an
//! in-memory filesystem with fault injection (fail-at-op-k with partial writes,
//! fsync failures, crash-drops-unsynced-data) that the recovery tests use to
//! kill the protocol at every step.
//!
//! ```
//! use slugger_core::decode::canonical_form;
//! use slugger_core::incremental::{IncrementalConfig, IncrementalSummarizer};
//! use slugger_core::storage::durable::{fault::MemIo, DurablePolicy, DurableSummarizer};
//! use slugger_graph::stream::GraphDelta;
//! use slugger_graph::Graph;
//!
//! let graph = Graph::from_edges(6, vec![(0, 1), (1, 2), (3, 4)]);
//! let config = IncrementalConfig::default();
//! let io = MemIo::new();
//!
//! // A durable stream: every ingested delta hits the WAL before it is applied.
//! let inner = IncrementalSummarizer::from_graph(&graph, config);
//! let mut durable =
//!     DurableSummarizer::create(inner, DurablePolicy::default(), io.clone()).unwrap();
//! durable.ingest(&GraphDelta::from_insertions([(2, 3), (4, 5)])).unwrap();
//! let before_crash = canonical_form(durable.summary());
//!
//! // "Crash": drop the summarizer, lose all RAM state (synced data survives).
//! drop(durable);
//! let mut crashed = io.clone();
//! crashed.crash(0);
//!
//! // Recovery replays the WAL and lands on the identical summary.
//! let (recovered, report) =
//!     DurableSummarizer::open(config, DurablePolicy::default(), crashed).unwrap();
//! assert_eq!(report.replayed_batches, 1);
//! assert_eq!(canonical_form(recovered.summary()), before_crash);
//! ```

use crate::incremental::{BatchReport, IncrementalConfig, IncrementalSummarizer};
use crate::model::HierarchicalSummary;
use crate::storage::{read_summary, write_summary, StorageError};
use slugger_graph::stream::GraphDelta;
use std::io;
use std::path::{Path, PathBuf};

/// Magic bytes of a checkpoint file ("SLGC").
pub const CKPT_MAGIC: [u8; 4] = *b"SLGC";
/// Magic bytes of a WAL segment file ("SLGW").
pub const WAL_MAGIC: [u8; 4] = *b"SLGW";
/// Version of the durable file formats.
pub const DURABLE_VERSION: u8 = 1;

/// Temp name a checkpoint is staged under before the atomic rename.
const CKPT_TMP: &str = "ckpt.tmp";
/// Fixed byte length of the checkpoint header (magic through header CRC).
const CKPT_HEADER_LEN: usize = 4 + 1 + 8 + 8 + 8 + 8 + 8 + 4;
/// Fixed byte length of a WAL segment header (magic through header CRC).
const WAL_HEADER_LEN: usize = 4 + 1 + 8 + 4;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, the ubiquitous zlib polynomial).

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of a byte slice.  Guards every durable-file section; a single
/// flipped byte is a burst error well under 32 bits, which this polynomial
/// detects with certainty — so a section that passes its CRC is intact against
/// the fault models the recovery tests inject.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Errors.

/// Errors of the durable layer.
#[derive(Debug)]
pub enum DurableError {
    /// Underlying I/O failure (including injected faults in tests).
    Io(io::Error),
    /// The checkpoint payload failed summary decoding.
    Storage(StorageError),
    /// A durable file is structurally invalid beyond what torn-tail tolerance
    /// covers (checksum-valid gap in batch indexes, records after a torn tail,
    /// mismatched segment sequence, …).
    Corrupt {
        /// File the inconsistency was found in.
        file: String,
        /// What was wrong.
        what: &'static str,
    },
    /// Recovery found no checkpoint that passes validation (an empty or
    /// never-initialized directory, or every retained checkpoint corrupt).
    NoCheckpoint,
    /// The persisted state and the caller's request disagree (seed mismatch,
    /// directory already initialized, …).
    State(String),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "I/O error: {e}"),
            DurableError::Storage(e) => write!(f, "checkpoint payload: {e}"),
            DurableError::Corrupt { file, what } => {
                write!(f, "corrupt durable file {file}: {what}")
            }
            DurableError::NoCheckpoint => write!(f, "no valid checkpoint to recover from"),
            DurableError::State(what) => write!(f, "invalid durable state: {what}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Io(e) => Some(e),
            DurableError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DurableError {
    fn from(e: io::Error) -> Self {
        DurableError::Io(e)
    }
}

impl From<StorageError> for DurableError {
    fn from(e: StorageError) -> Self {
        DurableError::Storage(e)
    }
}

// ---------------------------------------------------------------------------
// The I/O abstraction.

/// Every byte the durable layer touches goes through this trait, so tests can
/// substitute a fault-injecting in-memory filesystem ([`fault::MemIo`]) and
/// kill the protocol at any step.  The namespace is flat: one durable directory,
/// files addressed by name.
///
/// Contract expected from implementations (and modeled by `MemIo`):
/// * [`DurableIo::write`] and [`DurableIo::append`] buffer data that is only
///   guaranteed to survive a crash once [`DurableIo::sync`] on that file
///   returns `Ok`;
/// * [`DurableIo::rename`] and [`DurableIo::remove`] are metadata operations,
///   made durable by [`DurableIo::sync_dir`];
/// * a failed operation may have been partially applied (short write) — the
///   formats tolerate exactly that at the tail of a file.
pub trait DurableIo {
    /// Reads a whole file.
    fn read(&mut self, name: &str) -> io::Result<Vec<u8>>;
    /// Lists the file names in the directory (any order).
    fn list(&mut self) -> io::Result<Vec<String>>;
    /// Creates/truncates `name` and writes `bytes` to it.
    fn write(&mut self, name: &str, bytes: &[u8]) -> io::Result<()>;
    /// Appends `bytes` to `name`, creating it if absent.
    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()>;
    /// Makes `name`'s current contents durable (fsync).
    fn sync(&mut self, name: &str) -> io::Result<()>;
    /// Makes directory-level metadata (renames, removals, creations) durable.
    fn sync_dir(&mut self) -> io::Result<()>;
    /// Atomically renames `from` to `to`, replacing `to` if present.
    fn rename(&mut self, from: &str, to: &str) -> io::Result<()>;
    /// Removes `name`.
    fn remove(&mut self, name: &str) -> io::Result<()>;
}

/// The real-filesystem [`DurableIo`]: a flat directory of files.
#[derive(Debug)]
pub struct DirIo {
    dir: PathBuf,
}

impl DirIo {
    /// Opens (creating if needed) the durable directory.
    pub fn new<P: AsRef<Path>>(dir: P) -> io::Result<Self> {
        std::fs::create_dir_all(&dir)?;
        Ok(DirIo {
            dir: dir.as_ref().to_path_buf(),
        })
    }

    /// The underlying directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }
}

impl DurableIo for DirIo {
    fn read(&mut self, name: &str) -> io::Result<Vec<u8>> {
        std::fs::read(self.path(name))
    }

    fn list(&mut self) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        Ok(out)
    }

    fn write(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(self.path(name), bytes)
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))?;
        file.write_all(bytes)
    }

    fn sync(&mut self, name: &str) -> io::Result<()> {
        std::fs::File::open(self.path(name))?.sync_all()
    }

    fn sync_dir(&mut self) -> io::Result<()> {
        // Directory fsync is how renames/creations become durable on Linux.
        // Only the error kinds meaning "this platform cannot open a directory
        // for syncing" (Windows, restrictive mount options) downgrade to a
        // no-op — the rename itself is still atomic there.  Anything else
        // (directory removed, fd exhaustion) is a real durability failure and
        // must not be reported as success.
        match std::fs::File::open(&self.dir) {
            Ok(d) => d.sync_all(),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::Unsupported | io::ErrorKind::PermissionDenied
                ) =>
            {
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    fn rename(&mut self, from: &str, to: &str) -> io::Result<()> {
        std::fs::rename(self.path(from), self.path(to))
    }

    fn remove(&mut self, name: &str) -> io::Result<()> {
        std::fs::remove_file(self.path(name))
    }
}

// ---------------------------------------------------------------------------
// Little-endian encode/decode helpers over plain byte vectors.

fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn get_u32(bytes: &[u8], at: usize) -> Option<u32> {
    bytes
        .get(at..at + 4)
        .map(|b| u32::from_le_bytes(b.try_into().expect("4-byte slice")))
}

fn get_u64(bytes: &[u8], at: usize) -> Option<u64> {
    bytes
        .get(at..at + 8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
}

/// Checkpoint file name for a sequence number.
pub fn checkpoint_name(seq: u64) -> String {
    format!("ckpt-{seq:016x}.slgc")
}

/// WAL segment file name for a checkpoint sequence number.
pub fn wal_name(seq: u64) -> String {
    format!("wal-{seq:016x}.slgw")
}

fn parse_seq(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    let hex = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

// ---------------------------------------------------------------------------
// Checkpoint format.

/// The deterministic-resume state a checkpoint carries next to the summary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct CheckpointHeader {
    seq: u64,
    epoch: u64,
    batches: u64,
    seed: u64,
}

/// Encodes a checkpoint: header (magic, version, seq/epoch/batches/seed,
/// payload length, header CRC) followed by the `write_summary` payload and the
/// payload CRC.  The two CRCs are independent so header corruption and payload
/// corruption are distinguishable — both fail closed.
fn encode_checkpoint(header: CheckpointHeader, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(CKPT_HEADER_LEN + payload.len() + 4);
    out.extend_from_slice(&CKPT_MAGIC);
    out.push(DURABLE_VERSION);
    put_u64(&mut out, header.seq);
    put_u64(&mut out, header.epoch);
    put_u64(&mut out, header.batches);
    put_u64(&mut out, header.seed);
    put_u64(&mut out, payload.len() as u64);
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    debug_assert_eq!(out.len(), CKPT_HEADER_LEN);
    out.extend_from_slice(payload);
    put_u32(&mut out, crc32(payload));
    out
}

/// Decodes and checksum-validates a checkpoint file; the payload is returned
/// still serialized (summary decoding has its own hardened path).
fn decode_checkpoint(
    file: &str,
    bytes: &[u8],
) -> Result<(CheckpointHeader, Vec<u8>), DurableError> {
    let corrupt = |what: &'static str| DurableError::Corrupt {
        file: file.to_string(),
        what,
    };
    if bytes.len() < CKPT_HEADER_LEN + 4 {
        return Err(corrupt("truncated checkpoint header"));
    }
    if bytes[..4] != CKPT_MAGIC {
        return Err(corrupt("bad checkpoint magic"));
    }
    if bytes[4] != DURABLE_VERSION {
        return Err(corrupt("unsupported checkpoint version"));
    }
    let stored_crc = get_u32(bytes, CKPT_HEADER_LEN - 4).expect("length checked");
    if crc32(&bytes[..CKPT_HEADER_LEN - 4]) != stored_crc {
        return Err(corrupt("checkpoint header checksum mismatch"));
    }
    let header = CheckpointHeader {
        seq: get_u64(bytes, 5).expect("length checked"),
        epoch: get_u64(bytes, 13).expect("length checked"),
        batches: get_u64(bytes, 21).expect("length checked"),
        seed: get_u64(bytes, 29).expect("length checked"),
    };
    let payload_len = get_u64(bytes, 37).expect("length checked") as usize;
    let body = &bytes[CKPT_HEADER_LEN..];
    if body.len() != payload_len + 4 {
        return Err(corrupt("checkpoint payload length mismatch"));
    }
    let payload = &body[..payload_len];
    let payload_crc = get_u32(body, payload_len).expect("length checked");
    if crc32(payload) != payload_crc {
        return Err(corrupt("checkpoint payload checksum mismatch"));
    }
    Ok((header, payload.to_vec()))
}

// ---------------------------------------------------------------------------
// WAL format.

fn encode_wal_header(seq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(WAL_HEADER_LEN);
    out.extend_from_slice(&WAL_MAGIC);
    out.push(DURABLE_VERSION);
    put_u64(&mut out, seq);
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    debug_assert_eq!(out.len(), WAL_HEADER_LEN);
    out
}

/// Encodes one WAL record: `[payload len][payload crc][payload]` with the
/// payload being `[batch index][deletion count][insertion count][edge pairs]`.
/// The delta is serialized verbatim (order and no-op entries included) so
/// replaying it through `resummarize` is byte-faithful to the original call.
fn encode_wal_record(batch: u64, delta: &GraphDelta) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16 + 8 * (delta.deletions.len() + delta.insertions.len()));
    put_u64(&mut payload, batch);
    put_u32(&mut payload, delta.deletions.len() as u32);
    put_u32(&mut payload, delta.insertions.len() as u32);
    for &(u, v) in delta.deletions.iter().chain(delta.insertions.iter()) {
        put_u32(&mut payload, u);
        put_u32(&mut payload, v);
    }
    let mut out = Vec::with_capacity(8 + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

/// Everything recovered from one WAL segment.
struct WalSegment {
    records: Vec<(u64, GraphDelta)>,
    /// The segment ended in a torn (incomplete or checksum-failing) tail, which
    /// recovery tolerates **only** when nothing valid follows it.
    torn: bool,
    /// Byte length of the intact prefix (header plus every valid record); the
    /// bytes past it are the torn tail.  Recovery rewrites the active segment
    /// down to this length before accepting new appends, so an acknowledged
    /// batch can never land behind torn bytes where a later recovery's
    /// stop-at-first-torn-record parse would not reach it.
    valid_len: usize,
}

/// Parses a WAL segment, stopping at the first torn record (see the module docs
/// for the torn-tail rules).  A header that does not parse is treated as a
/// fully torn segment (crash during segment creation); a *checksum-valid*
/// header carrying the wrong sequence number is a hard error.
fn parse_wal_segment(
    file: &str,
    bytes: &[u8],
    expected_seq: u64,
) -> Result<WalSegment, DurableError> {
    let corrupt = |what: &'static str| DurableError::Corrupt {
        file: file.to_string(),
        what,
    };
    let torn = |records, valid_len| {
        Ok(WalSegment {
            records,
            torn: true,
            valid_len,
        })
    };
    if bytes.len() < WAL_HEADER_LEN
        || bytes[..4] != WAL_MAGIC
        || bytes[4] != DURABLE_VERSION
        || crc32(&bytes[..WAL_HEADER_LEN - 4]) != get_u32(bytes, WAL_HEADER_LEN - 4).unwrap_or(0)
    {
        return torn(Vec::new(), 0);
    }
    if get_u64(bytes, 5).expect("length checked") != expected_seq {
        return Err(corrupt("wal segment sequence mismatch"));
    }
    let mut records = Vec::new();
    let mut at = WAL_HEADER_LEN;
    while at < bytes.len() {
        let (len, crc) = match (get_u32(bytes, at), get_u32(bytes, at + 4)) {
            (Some(len), Some(crc)) => (len as usize, crc),
            _ => return torn(records, at),
        };
        let Some(payload) = bytes.get(at + 8..at + 8 + len) else {
            return torn(records, at);
        };
        if crc32(payload) != crc {
            return torn(records, at);
        }
        // Past the CRC the record is intact: internal inconsistency can only be
        // a writer bug or corruption beyond the torn-tail model — fail closed.
        if len < 16 {
            return Err(corrupt("wal record shorter than its fixed fields"));
        }
        let batch = get_u64(payload, 0).expect("length checked");
        let ndel = get_u32(payload, 8).expect("length checked") as usize;
        let nins = get_u32(payload, 12).expect("length checked") as usize;
        if len != 16 + 8 * (ndel + nins) {
            return Err(corrupt("wal record length disagrees with its counts"));
        }
        let mut pairs = (0..ndel + nins).map(|i| {
            (
                get_u32(payload, 16 + 8 * i).expect("length checked"),
                get_u32(payload, 20 + 8 * i).expect("length checked"),
            )
        });
        let delta = GraphDelta {
            deletions: pairs.by_ref().take(ndel).collect(),
            insertions: pairs.collect(),
        };
        records.push((batch, delta));
        at += 8 + len;
    }
    Ok(WalSegment {
        records,
        torn: false,
        valid_len: at,
    })
}

// ---------------------------------------------------------------------------
// The durable wrapper.

/// When [`DurableSummarizer`] writes a checkpoint and truncates the WAL.
///
/// Between checkpoints, recovery time is proportional to the WAL tail that must
/// be replayed; checkpoints themselves cost one summary serialization plus two
/// fsyncs.  Both triggers are disjunctive — whichever fires first.
#[derive(Clone, Copy, Debug)]
pub struct DurablePolicy {
    /// Checkpoint after this many ingested batches (`0` disables the
    /// batch-count trigger).
    pub checkpoint_every_batches: usize,
    /// Checkpoint once the current WAL segment exceeds this many bytes (`0`
    /// disables the byte trigger).
    pub checkpoint_wal_bytes: u64,
}

impl Default for DurablePolicy {
    fn default() -> Self {
        DurablePolicy {
            checkpoint_every_batches: 8,
            checkpoint_wal_bytes: 1 << 20,
        }
    }
}

/// What [`DurableSummarizer::open`] did to get back to a consistent state.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryReport {
    /// Sequence number of the checkpoint recovery loaded.
    pub checkpoint_seq: u64,
    /// Checkpoints that failed validation before one loaded (0 = the newest
    /// loaded cleanly; 1 = fell back to the previous checkpoint).
    pub checkpoints_skipped: usize,
    /// WAL batches replayed through the normal resummarize path.
    pub replayed_batches: usize,
    /// A torn WAL tail (crash mid-append) was found and discarded.
    pub torn_tail: bool,
}

/// Crash-safe wrapper around [`IncrementalSummarizer`]: see the module docs for
/// the protocol.  Generic over [`DurableIo`]; production code uses
/// [`DirIo`], the fault-injection tests use [`fault::MemIo`].
pub struct DurableSummarizer<IO: DurableIo> {
    inner: IncrementalSummarizer,
    io: IO,
    policy: DurablePolicy,
    /// Newest checkpoint known valid (recovery starts here).
    trusted_seq: u64,
    /// Retention floor: files below this sequence are dead and removed at the
    /// next checkpoint (always ≤ `trusted_seq`; the gap is the fallback window).
    keep_seq: u64,
    /// Next checkpoint sequence to allocate (strictly above every sequence ever
    /// seen in the directory, valid or not).
    next_seq: u64,
    /// Segment new WAL records are appended to.
    wal_seq: u64,
    /// Bytes in the current WAL segment (header included).
    wal_bytes: u64,
    /// Batches ingested since the last checkpoint.
    batches_since_checkpoint: usize,
}

impl<IO: DurableIo> DurableSummarizer<IO> {
    /// Initializes a fresh durable directory around an existing (typically just
    /// bootstrapped) summarizer: writes checkpoint 0 and opens WAL segment 0.
    /// Fails if the directory already holds a durable stream — recover it with
    /// [`DurableSummarizer::open`] (or [`DurableSummarizer::open_or_create`])
    /// instead of clobbering it.
    pub fn create(
        inner: IncrementalSummarizer,
        policy: DurablePolicy,
        mut io: IO,
    ) -> Result<Self, DurableError> {
        let (ckpts, _wals) = scan(&mut io)?;
        if !ckpts.is_empty() {
            return Err(DurableError::State(
                "durable directory already initialized; open it instead".to_string(),
            ));
        }
        let mut this = DurableSummarizer {
            inner,
            io,
            policy,
            trusted_seq: 0,
            keep_seq: 0,
            next_seq: 0,
            wal_seq: 0,
            wal_bytes: 0,
            batches_since_checkpoint: 0,
        };
        this.write_checkpoint()?;
        Ok(this)
    }

    /// Recovers a durable stream from its directory: newest valid checkpoint
    /// (falling back once if the newest is corrupt), then WAL replay through the
    /// normal batch path.  `config` must match the one the stream was created
    /// with — the seed is persisted and checked, since a different seed would
    /// silently break the determinism-of-recovery invariant.
    ///
    /// The persistent candidate index
    /// ([`IncrementalConfig::candidate_index`](crate::incremental::IncrementalConfig::candidate_index))
    /// is **not** persisted: recovery rebuilds it cold.  That is deliberately
    /// safe for identity — an empty cache means every root re-hashes, and
    /// shingle seeds are batch-stable
    /// ([`crate::incremental::pass_shingle_seed`]), so the replayed batches
    /// compute exactly what the uninterrupted run computed; the cache re-warms
    /// over the first replayed batches.
    pub fn open(
        config: IncrementalConfig,
        policy: DurablePolicy,
        mut io: IO,
    ) -> Result<(Self, RecoveryReport), DurableError> {
        let (ckpts, wals) = scan(&mut io)?;
        if ckpts.is_empty() {
            return Err(DurableError::NoCheckpoint);
        }
        let mut report = RecoveryReport::default();
        // Newest checkpoint that validates wins; every reject is counted.
        let mut chosen: Option<(CheckpointHeader, HierarchicalSummary)> = None;
        for &seq in ckpts.iter().rev() {
            match load_checkpoint(&mut io, seq) {
                Ok((header, summary)) => {
                    report.checkpoint_seq = seq;
                    chosen = Some((header, summary));
                    break;
                }
                // A transient read failure (EINTR, fd exhaustion, …) is not
                // evidence of corruption: silently falling back a checkpoint —
                // or reporting NoCheckpoint when valid checkpoints exist on
                // disk — would discard acknowledged state.  Propagate instead;
                // the caller retries recovery once the condition clears.
                Err(e @ DurableError::Io(_)) => return Err(e),
                Err(_) => report.checkpoints_skipped += 1,
            }
        }
        let Some((header, summary)) = chosen else {
            return Err(DurableError::NoCheckpoint);
        };
        if header.seed != config.seed {
            return Err(DurableError::State(format!(
                "checkpoint was written with seed {} but the stream is opened with seed {}",
                header.seed, config.seed
            )));
        }
        // The summary is lossless, so it *is* the graph of record.
        let graph = crate::decode::decode_full(&summary);
        let mut inner = IncrementalSummarizer::resume(
            summary,
            &graph,
            config,
            header.epoch as usize,
            header.batches as usize,
        )
        .map_err(DurableError::State)?;

        // Appends will continue on the newest segment (created below if the
        // crash hit between checkpoint rename and segment creation).
        let wal_seq = wals
            .iter()
            .copied()
            .max()
            .unwrap_or(header.seq)
            .max(header.seq);

        // Replay every WAL record past the checkpoint, oldest segment first.
        // Duplicated tail records (batch index already applied) are skipped; a
        // gap, or a valid record after a torn tail, is corruption.
        let mut saw_torn = false;
        let mut active: Option<(Vec<u8>, usize, bool)> = None;
        for &wseq in wals.iter().filter(|&&w| w >= header.seq) {
            let name = wal_name(wseq);
            let bytes = io.read(&name)?;
            let segment = parse_wal_segment(&name, &bytes, wseq)?;
            for (batch, delta) in &segment.records {
                if *batch <= inner.batches() as u64 {
                    continue;
                }
                if saw_torn {
                    return Err(DurableError::Corrupt {
                        file: name,
                        what: "valid wal records follow a torn tail",
                    });
                }
                if *batch != inner.batches() as u64 + 1 {
                    return Err(DurableError::Corrupt {
                        file: name,
                        what: "gap in wal batch indexes",
                    });
                }
                inner.resummarize(delta);
                report.replayed_batches += 1;
            }
            saw_torn |= segment.torn;
            if wseq == wal_seq {
                active = Some((bytes, segment.valid_len, segment.torn));
            }
        }
        report.torn_tail = saw_torn;

        let wal_file = wal_name(wal_seq);
        let wal_bytes = match active {
            // Heal a torn active segment before accepting appends: rewrite it
            // down to its intact prefix (or a fresh header when the header
            // itself is torn), so the next record lands directly after the
            // last valid one.  Appending past the torn bytes instead would
            // make every post-recovery batch unreachable to the next
            // recovery, whose parse stops at the first torn record —
            // acknowledged, fsynced batches would silently vanish.
            Some((bytes, valid_len, true)) => {
                let intact = if valid_len >= WAL_HEADER_LEN {
                    bytes[..valid_len].to_vec()
                } else {
                    encode_wal_header(wal_seq)
                };
                io.write(&wal_file, &intact)?;
                io.sync(&wal_file)?;
                io.sync_dir()?;
                intact.len() as u64
            }
            Some((bytes, _, false)) => bytes.len() as u64,
            None => {
                let head = encode_wal_header(wal_seq);
                io.write(&wal_file, &head)?;
                io.sync(&wal_file)?;
                io.sync_dir()?;
                head.len() as u64
            }
        };
        let next_seq = ckpts
            .iter()
            .chain(wals.iter())
            .copied()
            .max()
            .unwrap_or(0)
            .saturating_add(1);
        let mut this = DurableSummarizer {
            inner,
            io,
            policy,
            trusted_seq: header.seq,
            // Conservative retention until the next checkpoint: keep everything
            // still on disk at or below the trusted sequence.
            keep_seq: ckpts.first().copied().unwrap_or(header.seq).min(header.seq),
            next_seq,
            wal_seq,
            wal_bytes,
            batches_since_checkpoint: report.replayed_batches,
        };
        // A crash can interrupt the post-checkpoint cleanup; redo it (it is
        // idempotent) so storage stays bounded across crash loops.
        this.cleanup()?;
        Ok((this, report))
    }

    /// [`DurableSummarizer::open`]s the directory when it holds a stream,
    /// otherwise [`DurableSummarizer::create`]s a fresh one from `bootstrap()`.
    /// The recovery report is `None` for the fresh-create path.
    pub fn open_or_create<F>(
        config: IncrementalConfig,
        policy: DurablePolicy,
        mut io: IO,
        bootstrap: F,
    ) -> Result<(Self, Option<RecoveryReport>), DurableError>
    where
        F: FnOnce() -> IncrementalSummarizer,
    {
        let (ckpts, _) = scan(&mut io)?;
        if ckpts.is_empty() {
            Ok((Self::create(bootstrap(), policy, io)?, None))
        } else {
            let (this, report) = Self::open(config, policy, io)?;
            Ok((this, Some(report)))
        }
    }

    /// Ingests one delta batch under the log-ahead protocol: append + fsync the
    /// WAL record, apply the batch, checkpoint if the policy says so.  On error
    /// the in-memory state may lag the caller's intent — drop the summarizer
    /// and [`DurableSummarizer::open`] to get back to a consistent state (the
    /// recovery tests do exactly this at every possible failure point).
    pub fn ingest(&mut self, delta: &GraphDelta) -> Result<BatchReport, DurableError> {
        let record = encode_wal_record(self.inner.batches() as u64 + 1, delta);
        let wal_file = wal_name(self.wal_seq);
        self.io.append(&wal_file, &record)?;
        self.io.sync(&wal_file)?;
        let report = self.inner.resummarize(delta);
        self.wal_bytes += record.len() as u64;
        self.batches_since_checkpoint += 1;
        let by_count = self.policy.checkpoint_every_batches > 0
            && self.batches_since_checkpoint >= self.policy.checkpoint_every_batches;
        let by_bytes = self.policy.checkpoint_wal_bytes > 0
            && self.wal_bytes >= self.policy.checkpoint_wal_bytes;
        if by_count || by_bytes {
            self.checkpoint_now()?;
        }
        Ok(report)
    }

    /// Forces a checkpoint: serialize the maintained summary + resume counters,
    /// stage → fsync → rename → dir-fsync, open a fresh WAL segment, then
    /// retire files older than the *previous* checkpoint (which stays on disk
    /// as the corruption-fallback target).
    pub fn checkpoint_now(&mut self) -> Result<(), DurableError> {
        self.write_checkpoint()
    }

    fn write_checkpoint(&mut self) -> Result<(), DurableError> {
        let seq = self.next_seq;
        let mut payload = Vec::new();
        write_summary(self.inner.summary(), &mut payload)?;
        let bytes = encode_checkpoint(
            CheckpointHeader {
                seq,
                epoch: self.inner.epoch() as u64,
                batches: self.inner.batches() as u64,
                seed: self.inner.config().seed,
            },
            &payload,
        );
        self.io.write(CKPT_TMP, &bytes)?;
        self.io.sync(CKPT_TMP)?;
        self.io.rename(CKPT_TMP, &checkpoint_name(seq))?;
        self.io.sync_dir()?;
        // Fresh WAL segment for the batches after this checkpoint.
        let wal_file = wal_name(seq);
        let head = encode_wal_header(seq);
        self.io.write(&wal_file, &head)?;
        self.io.sync(&wal_file)?;
        self.io.sync_dir()?;
        // The previous trusted checkpoint becomes the fallback; everything
        // older is retired, which truncates the log up to that fallback.
        self.keep_seq = self.trusted_seq;
        self.trusted_seq = seq;
        self.next_seq = seq + 1;
        self.wal_seq = seq;
        self.wal_bytes = head.len() as u64;
        self.batches_since_checkpoint = 0;
        self.cleanup()?;
        Ok(())
    }

    /// Removes checkpoints and WAL segments below the retention floor, plus any
    /// superseded checkpoint *between* the fallback and the trusted one (a
    /// corrupt checkpoint recovery skipped, or the staging temp file).
    /// Idempotent; re-run by [`DurableSummarizer::open`] after crashes.
    fn cleanup(&mut self) -> Result<(), DurableError> {
        let names = self.io.list()?;
        for name in names {
            if name == CKPT_TMP {
                self.io.remove(&name)?;
            } else if let Some(seq) = parse_seq(&name, "ckpt-", ".slgc") {
                if seq < self.keep_seq || (seq > self.keep_seq && seq < self.trusted_seq) {
                    self.io.remove(&name)?;
                }
            } else if let Some(seq) = parse_seq(&name, "wal-", ".slgw") {
                if seq < self.keep_seq {
                    self.io.remove(&name)?;
                }
            }
        }
        Ok(())
    }

    /// The maintained summary (see [`IncrementalSummarizer::summary`]).
    pub fn summary(&self) -> &HierarchicalSummary {
        self.inner.summary()
    }

    /// Delta batches applied so far — a recovered stream continues from here.
    pub fn batches(&self) -> usize {
        self.inner.batches()
    }

    /// Read access to the wrapped summarizer (pruned snapshots, losslessness
    /// checks, …).  There is deliberately no `&mut` access: mutating the inner
    /// state without logging it first would break the recovery invariant.
    pub fn inner(&self) -> &IncrementalSummarizer {
        &self.inner
    }

    /// Attaches a [`crate::snapshot::SnapshotSlot`] to the wrapped summarizer
    /// (see [`IncrementalSummarizer::attach_snapshots`]) — the one narrow
    /// mutation exposed on the inner state, safe for the recovery invariant
    /// because publication only *reads* the summary.  Called after
    /// [`DurableSummarizer::open`], it immediately publishes the recovered
    /// state, so readers re-pin onto a post-recovery epoch.
    pub fn attach_snapshots(&mut self, slot: crate::snapshot::SnapshotSlot) -> Result<(), String> {
        self.inner.attach_snapshots(slot)
    }

    /// The active checkpoint cadence.
    pub fn policy(&self) -> &DurablePolicy {
        &self.policy
    }

    /// Unwraps into the in-memory summarizer, abandoning durability.
    pub fn into_inner(self) -> IncrementalSummarizer {
        self.inner
    }
}

/// Sorted (ascending) checkpoint and WAL sequence numbers present in the
/// directory; unrelated files are ignored.
fn scan<IO: DurableIo>(io: &mut IO) -> Result<(Vec<u64>, Vec<u64>), DurableError> {
    let mut ckpts = Vec::new();
    let mut wals = Vec::new();
    for name in io.list()? {
        if let Some(seq) = parse_seq(&name, "ckpt-", ".slgc") {
            ckpts.push(seq);
        } else if let Some(seq) = parse_seq(&name, "wal-", ".slgw") {
            wals.push(seq);
        }
    }
    ckpts.sort_unstable();
    wals.sort_unstable();
    Ok((ckpts, wals))
}

/// Loads and fully validates one checkpoint: checksums, then the hardened
/// summary decoder, then a cross-check of the name-embedded sequence.
fn load_checkpoint<IO: DurableIo>(
    io: &mut IO,
    seq: u64,
) -> Result<(CheckpointHeader, HierarchicalSummary), DurableError> {
    let name = checkpoint_name(seq);
    let bytes = io.read(&name)?;
    let (header, payload) = decode_checkpoint(&name, &bytes)?;
    if header.seq != seq {
        return Err(DurableError::Corrupt {
            file: name,
            what: "checkpoint sequence disagrees with its file name",
        });
    }
    let summary = read_summary(&payload[..])?;
    Ok((header, summary))
}

pub mod fault {
    //! Fault-injection harness: an in-memory [`DurableIo`] with a crash model.
    //!
    //! [`MemIo`] models a journaling filesystem the way the durability protocol
    //! assumes one works: file *data* becomes durable only on
    //! [`DurableIo::sync`], while metadata operations (create, rename, remove)
    //! are applied immediately.  [`MemIo::crash`] discards whatever was not
    //! durable — optionally keeping a prefix of each unsynced tail, which is
    //! exactly a torn write.  An armed [`FaultPlan`] makes the N-th mutating
    //! operation fail (after applying a configurable number of bytes, for data
    //! operations), and every operation after it fail too — a fail-stop crash —
    //! so tests can kill the protocol at every step it takes.
    //!
    //! This lives in the library (not the test tree) because the crash/recovery
    //! integration tests, the corruption proptests, and doc examples all drive
    //! it; it has no place in a production deployment, where [`super::DirIo`]
    //! is the implementation of record.

    use super::DurableIo;
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::io;
    use std::rc::Rc;

    /// Fail the `at_op`-th mutating operation (0-based, counted across write /
    /// append / sync / sync-dir / rename / remove), applying at most
    /// `keep_bytes` of the data for write/append before failing.
    #[derive(Clone, Copy, Debug)]
    pub struct FaultPlan {
        /// Index of the mutating operation that fails.
        pub at_op: u64,
        /// Bytes of a failing write/append that still reach the buffer (a
        /// short write); ignored for non-data operations.
        pub keep_bytes: usize,
    }

    #[derive(Clone, Default)]
    struct MemFile {
        data: Vec<u8>,
        /// Prefix length guaranteed to survive a crash.
        synced: usize,
    }

    #[derive(Default)]
    struct MemState {
        files: BTreeMap<String, MemFile>,
        plan: Option<FaultPlan>,
        ops: u64,
        dead: bool,
    }

    /// The in-memory fault-injecting [`DurableIo`].  Cloning shares the
    /// filesystem, so a test can keep a handle across the "process lifetime" of
    /// each [`super::DurableSummarizer`] it crashes.
    #[derive(Clone, Default)]
    pub struct MemIo {
        state: Rc<RefCell<MemState>>,
    }

    fn injected() -> io::Error {
        io::Error::other("injected fault")
    }

    impl MemIo {
        /// An empty in-memory directory.
        pub fn new() -> Self {
            MemIo::default()
        }

        /// Arms a fault plan (replacing any previous one) and resets the
        /// mutating-operation counter.
        pub fn arm(&self, plan: FaultPlan) {
            let mut s = self.state.borrow_mut();
            s.plan = Some(plan);
            s.ops = 0;
            s.dead = false;
        }

        /// Mutating operations performed since the last [`MemIo::arm`] /
        /// [`MemIo::crash`] — run a scenario once unarmed to learn how many
        /// fault points it has.
        pub fn ops(&self) -> u64 {
            self.state.borrow().ops
        }

        /// Whether an armed fault has fired.
        pub fn fault_fired(&self) -> bool {
            self.state.borrow().dead
        }

        /// Simulates a crash + restart: every file keeps its durable prefix
        /// plus at most `keep_unsynced` bytes of its unsynced tail (0 = clean
        /// fail-stop loss, larger values model data that happened to reach the
        /// platter — including torn tails).  Clears any armed fault so the
        /// "restarted process" can do I/O again.
        pub fn crash(&mut self, keep_unsynced: usize) {
            let mut s = self.state.borrow_mut();
            for file in s.files.values_mut() {
                let keep = file
                    .synced
                    .saturating_add(keep_unsynced)
                    .min(file.data.len());
                file.data.truncate(keep);
                file.synced = file.data.len();
            }
            s.plan = None;
            s.ops = 0;
            s.dead = false;
        }

        /// Reads a file's current (possibly unsynced) contents.
        pub fn file(&self, name: &str) -> Option<Vec<u8>> {
            self.state.borrow().files.get(name).map(|f| f.data.clone())
        }

        /// Overwrites a file's bytes in place **without** touching its durable
        /// mark — the corruption tests use this to flip bits or duplicate tail
        /// records "on the platter".
        pub fn tamper(&self, name: &str, mutate: impl FnOnce(&mut Vec<u8>)) {
            let mut s = self.state.borrow_mut();
            let file = s.files.get_mut(name).expect("tamper target must exist");
            mutate(&mut file.data);
            file.synced = file.data.len();
        }

        /// Current file names (sorted).
        pub fn names(&self) -> Vec<String> {
            self.state.borrow().files.keys().cloned().collect()
        }

        /// Charges one mutating op; returns the short-write budget if the fault
        /// fires on this op (`None` = proceed normally).
        fn charge(s: &mut MemState) -> Result<Option<usize>, io::Error> {
            if s.dead {
                return Err(injected());
            }
            let op = s.ops;
            s.ops += 1;
            if let Some(plan) = s.plan {
                if plan.at_op == op {
                    s.dead = true;
                    return Ok(Some(plan.keep_bytes));
                }
            }
            Ok(None)
        }
    }

    impl DurableIo for MemIo {
        fn read(&mut self, name: &str) -> io::Result<Vec<u8>> {
            let s = self.state.borrow();
            if s.dead {
                return Err(injected());
            }
            s.files
                .get(name)
                .map(|f| f.data.clone())
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))
        }

        fn list(&mut self) -> io::Result<Vec<String>> {
            let s = self.state.borrow();
            if s.dead {
                return Err(injected());
            }
            Ok(s.files.keys().cloned().collect())
        }

        fn write(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
            let mut s = self.state.borrow_mut();
            let fault = MemIo::charge(&mut s)?;
            let file = s.files.entry(name.to_string()).or_default();
            // Create/truncate is metadata (durable); the data itself is not
            // durable until synced.
            file.synced = 0;
            match fault {
                Some(keep) => {
                    file.data = bytes[..keep.min(bytes.len())].to_vec();
                    Err(injected())
                }
                None => {
                    file.data = bytes.to_vec();
                    Ok(())
                }
            }
        }

        fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
            let mut s = self.state.borrow_mut();
            let fault = MemIo::charge(&mut s)?;
            let file = s.files.entry(name.to_string()).or_default();
            match fault {
                Some(keep) => {
                    file.data.extend_from_slice(&bytes[..keep.min(bytes.len())]);
                    Err(injected())
                }
                None => {
                    file.data.extend_from_slice(bytes);
                    Ok(())
                }
            }
        }

        fn sync(&mut self, name: &str) -> io::Result<()> {
            let mut s = self.state.borrow_mut();
            if MemIo::charge(&mut s)?.is_some() {
                return Err(injected());
            }
            match s.files.get_mut(name) {
                Some(file) => {
                    file.synced = file.data.len();
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, name.to_string())),
            }
        }

        fn sync_dir(&mut self) -> io::Result<()> {
            let mut s = self.state.borrow_mut();
            if MemIo::charge(&mut s)?.is_some() {
                return Err(injected());
            }
            Ok(())
        }

        fn rename(&mut self, from: &str, to: &str) -> io::Result<()> {
            let mut s = self.state.borrow_mut();
            if MemIo::charge(&mut s)?.is_some() {
                return Err(injected());
            }
            match s.files.remove(from) {
                Some(file) => {
                    s.files.insert(to.to_string(), file);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, from.to_string())),
            }
        }

        fn remove(&mut self, name: &str) -> io::Result<()> {
            let mut s = self.state.borrow_mut();
            if MemIo::charge(&mut s)?.is_some() {
                return Err(injected());
            }
            match s.files.remove(name) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(io::ErrorKind::NotFound, name.to_string())),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::fault::{FaultPlan, MemIo};
    use super::*;
    use crate::decode::canonical_form;
    use slugger_graph::gen::{caveman, CavemanConfig};
    use slugger_graph::stream::{stream_batches, StreamConfig};
    use slugger_graph::Graph;

    #[test]
    fn crc32_known_vectors() {
        // The standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn checkpoint_roundtrips_and_rejects_flips() {
        let header = CheckpointHeader {
            seq: 7,
            epoch: 42,
            batches: 13,
            seed: 0xdead_beef,
        };
        let payload = b"not really a summary, but the codec must not care".to_vec();
        let bytes = encode_checkpoint(header, &payload);
        let (decoded, body) = decode_checkpoint("ckpt", &bytes).unwrap();
        assert_eq!(decoded, header);
        assert_eq!(body, payload);
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(
                decode_checkpoint("ckpt", &bad).is_err(),
                "flip at {pos} must be caught by a checksum"
            );
        }
        for len in 0..bytes.len() {
            assert!(decode_checkpoint("ckpt", &bytes[..len]).is_err());
        }
    }

    #[test]
    fn wal_segment_roundtrips_and_tolerates_torn_tails() {
        let deltas = [
            GraphDelta::from_insertions([(0, 1), (2, 3)]),
            GraphDelta {
                deletions: vec![(0, 1)],
                insertions: vec![(1, 2)],
            },
            GraphDelta::new(),
        ];
        let mut bytes = encode_wal_header(3);
        for (i, delta) in deltas.iter().enumerate() {
            bytes.extend_from_slice(&encode_wal_record(i as u64 + 1, delta));
        }
        let full = parse_wal_segment("wal", &bytes, 3).unwrap();
        assert!(!full.torn);
        assert_eq!(full.records.len(), 3);
        for (i, delta) in deltas.iter().enumerate() {
            assert_eq!(full.records[i].0, i as u64 + 1);
            assert_eq!(&full.records[i].1, delta);
        }
        // Wrong sequence in a valid header is a hard error, not a torn tail.
        assert!(parse_wal_segment("wal", &bytes, 4).is_err());
        // Every truncation keeps a (possibly empty) prefix of the records and
        // reports the tail as torn (or keeps all records when the cut lands
        // exactly on a record boundary).
        for len in 0..bytes.len() {
            let seg = parse_wal_segment("wal", &bytes[..len], 3).unwrap();
            assert!(seg.records.len() <= 3);
            for (i, (batch, delta)) in seg.records.iter().enumerate() {
                assert_eq!(*batch, i as u64 + 1);
                assert_eq!(delta, &deltas[i]);
            }
            if len < bytes.len() {
                assert!(seg.torn || seg.records.len() < 3 || len >= bytes.len());
            }
        }
    }

    #[test]
    fn memio_crash_drops_unsynced_data_only() {
        let io = MemIo::new();
        let mut h = io.clone();
        h.write("a", b"hello").unwrap();
        h.sync("a").unwrap();
        h.append("a", b" world").unwrap();
        h.write("b", b"never synced").unwrap();
        let mut crashed = io.clone();
        crashed.crash(0);
        assert_eq!(crashed.read("a").unwrap(), b"hello");
        assert_eq!(crashed.read("b").unwrap(), b"");
        // Torn variant: keep 3 bytes of the unsynced tail.
        let io2 = MemIo::new();
        let mut h2 = io2.clone();
        h2.write("a", b"hello").unwrap();
        h2.sync("a").unwrap();
        h2.append("a", b" world").unwrap();
        let mut crashed2 = io2.clone();
        crashed2.crash(3);
        assert_eq!(crashed2.read("a").unwrap(), b"hello wo");
    }

    #[test]
    fn memio_fault_fires_once_then_fail_stop() {
        let io = MemIo::new();
        io.arm(FaultPlan {
            at_op: 1,
            keep_bytes: 2,
        });
        let mut h = io.clone();
        h.write("a", b"first").unwrap();
        let err = h.append("a", b"second").unwrap_err();
        assert_eq!(err.to_string(), "injected fault");
        assert!(io.fault_fired());
        // The short write kept exactly 2 bytes, and everything after fails.
        assert_eq!(io.file("a").unwrap(), b"firstse");
        assert!(h.sync("a").is_err());
        assert!(h.read("a").is_err());
    }

    fn small_stream() -> (Graph, Graph, Vec<GraphDelta>) {
        let target = caveman(&CavemanConfig {
            num_nodes: 90,
            num_cliques: 12,
            min_clique: 5,
            max_clique: 8,
            rewire_probability: 0.02,
            seed: 5,
        });
        let (initial, batches) = stream_batches(
            &target,
            &StreamConfig {
                initial_fraction: 0.8,
                num_batches: 5,
                churn: 0.3,
                seed: 3,
            },
        );
        (target, initial, batches)
    }

    fn quick_config() -> IncrementalConfig {
        IncrementalConfig {
            iterations: 2,
            max_candidate_size: 32,
            max_shingle_splits: 4,
            seed: 17,
            ..IncrementalConfig::default()
        }
    }

    #[test]
    fn durable_stream_matches_plain_stream_and_recovers() {
        let (_, initial, batches) = small_stream();
        let config = quick_config();
        let policy = DurablePolicy {
            checkpoint_every_batches: 2,
            checkpoint_wal_bytes: 0,
        };

        // Reference: plain in-memory run over the full stream.
        let mut plain = IncrementalSummarizer::from_graph(&initial, config);
        for delta in &batches {
            plain.resummarize(delta);
        }

        let io = MemIo::new();
        let inner = IncrementalSummarizer::from_graph(&initial, config);
        let mut durable = DurableSummarizer::create(inner, policy, io.clone()).unwrap();
        for delta in &batches[..3] {
            durable.ingest(delta).unwrap();
        }
        drop(durable);

        let mut crashed = io.clone();
        crashed.crash(0);
        let (mut recovered, report) = DurableSummarizer::open(config, policy, crashed).unwrap();
        // Checkpoints landed at batches 2; batch 3 lives in the WAL.
        assert_eq!(recovered.batches(), 3);
        assert_eq!(report.replayed_batches, 1);
        assert_eq!(report.checkpoints_skipped, 0);
        for delta in &batches[3..] {
            recovered.ingest(delta).unwrap();
        }
        recovered.inner().verify_lossless().unwrap();
        assert_eq!(
            canonical_form(recovered.summary()),
            canonical_form(plain.summary()),
            "recovered stream must match the uninterrupted run"
        );
    }

    #[test]
    fn create_refuses_an_initialized_directory() {
        let (_, initial, _) = small_stream();
        let config = quick_config();
        let io = MemIo::new();
        let inner = IncrementalSummarizer::from_graph(&initial, config);
        let d = DurableSummarizer::create(inner, DurablePolicy::default(), io.clone()).unwrap();
        drop(d);
        let inner = IncrementalSummarizer::from_graph(&initial, config);
        assert!(matches!(
            DurableSummarizer::create(inner, DurablePolicy::default(), io.clone()),
            Err(DurableError::State(_))
        ));
    }

    #[test]
    fn open_rejects_seed_mismatch_and_empty_dir() {
        let (_, initial, batches) = small_stream();
        let config = quick_config();
        assert!(matches!(
            DurableSummarizer::open(config, DurablePolicy::default(), MemIo::new()),
            Err(DurableError::NoCheckpoint)
        ));
        let io = MemIo::new();
        let inner = IncrementalSummarizer::from_graph(&initial, config);
        let mut d = DurableSummarizer::create(inner, DurablePolicy::default(), io.clone()).unwrap();
        d.ingest(&batches[0]).unwrap();
        drop(d);
        let mut other = config;
        other.seed = 999;
        assert!(matches!(
            DurableSummarizer::open(other, DurablePolicy::default(), io.clone()),
            Err(DurableError::State(_))
        ));
    }

    #[test]
    fn checkpoints_truncate_the_wal_and_retain_a_fallback() {
        let (_, initial, batches) = small_stream();
        let config = quick_config();
        let policy = DurablePolicy {
            checkpoint_every_batches: 1,
            checkpoint_wal_bytes: 0,
        };
        let io = MemIo::new();
        let inner = IncrementalSummarizer::from_graph(&initial, config);
        let mut d = DurableSummarizer::create(inner, policy, io.clone()).unwrap();
        for delta in &batches {
            d.ingest(delta).unwrap();
        }
        drop(d);
        let names = io.names();
        let ckpts: Vec<_> = names.iter().filter(|n| n.starts_with("ckpt-")).collect();
        let wals: Vec<_> = names.iter().filter(|n| n.starts_with("wal-")).collect();
        assert_eq!(ckpts.len(), 2, "latest two checkpoints retained: {names:?}");
        assert!(
            wals.len() <= 2,
            "wal truncated to the fallback window: {names:?}"
        );
    }

    #[test]
    fn dir_io_roundtrip_on_the_real_filesystem() {
        let dir = std::env::temp_dir().join(format!("slugger_durable_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (_, initial, batches) = small_stream();
        let config = quick_config();
        let policy = DurablePolicy {
            checkpoint_every_batches: 2,
            checkpoint_wal_bytes: 0,
        };
        let mut plain = IncrementalSummarizer::from_graph(&initial, config);
        for delta in &batches {
            plain.resummarize(delta);
        }
        {
            let io = DirIo::new(&dir).unwrap();
            let inner = IncrementalSummarizer::from_graph(&initial, config);
            let mut d = DurableSummarizer::create(inner, policy, io).unwrap();
            for delta in &batches[..3] {
                d.ingest(delta).unwrap();
            }
            // Process "dies" here: no checkpoint of batch 3, only its WAL record.
        }
        let io = DirIo::new(&dir).unwrap();
        let (mut recovered, report) = DurableSummarizer::open(config, policy, io).unwrap();
        assert_eq!(recovered.batches(), 3);
        assert!(report.replayed_batches >= 1);
        for delta in &batches[3..] {
            recovered.ingest(delta).unwrap();
        }
        assert_eq!(
            canonical_form(recovered.summary()),
            canonical_form(plain.summary())
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
