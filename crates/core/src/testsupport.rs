//! Shared invariance-test machinery.
//!
//! The byte-identity pins (`apply_invariance`, `incremental_invariance`,
//! `query_snapshot`, `scenario_matrix`, ...) all compare summaries through the
//! same canonical form and sweep the same `parallelism × shards` lattice.
//! This module is that machinery's single home; it ships in the library (not
//! `#[cfg(test)]`) so integration tests *and* downstream crates' tests can use
//! it, but it is documented as test support and carries no stability promise
//! beyond what the tests themselves pin.

use crate::model::HierarchicalSummary;
use crate::pipeline::Parallelism;

/// One arena slot of the canonical form: `(parent, children, members, alive)`.
pub type CanonicalSlot = (Option<u32>, Vec<u32>, Vec<u32>, bool);

/// The canonical form of a summary: every observable byte of the model, with
/// the (layout-dependent) hash maps flattened into sorted vectors.  Two
/// summaries with equal canonical forms are byte-identical as far as any
/// consumer can tell — this is the **id-exact** comparison; for the id-free
/// (structural) comparison used across compaction/recovery boundaries see
/// [`crate::decode::canonical_form`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CanonicalSummary {
    /// Subnode-universe size.
    pub num_subnodes: usize,
    /// Every arena slot in id order (dead slots included).
    pub arena: Vec<CanonicalSlot>,
    /// Sorted `((a, b), weight)` p/n-edge list.
    pub edges: Vec<((u32, u32), i32)>,
}

/// Flattens a summary into its canonical form (see [`CanonicalSummary`]).
pub fn canonical(summary: &HierarchicalSummary) -> CanonicalSummary {
    let arena = (0..summary.arena_len() as u32)
        .map(|id| {
            (
                summary.parent(id),
                summary.children(id).to_vec(),
                summary.members(id).to_vec(),
                summary.is_alive(id),
            )
        })
        .collect();
    let mut edges: Vec<((u32, u32), i32)> = summary
        .pn_edges()
        .map(|(key, sign)| (key, sign.weight()))
        .collect();
    edges.sort_unstable();
    CanonicalSummary {
        num_subnodes: summary.num_subnodes(),
        arena,
        edges,
    }
}

/// Thread counts the invariance lattice sweeps.
pub const PARALLELISM_LEVELS: [usize; 4] = [1, 2, 4, 8];

/// Shard counts the invariance lattice sweeps.
pub const SHARD_COUNTS: [usize; 3] = [1, 4, 16];

/// One point of the `parallelism × shards` invariance lattice.
#[derive(Clone, Copy, Debug)]
pub struct LatticePoint {
    /// The swept thread count (1 maps to [`Parallelism::Sequential`]).
    pub threads: usize,
    /// The pipeline parallelism setting for `threads`.
    pub parallelism: Parallelism,
    /// The swept shard count.
    pub shards: usize,
}

/// The full 12-point lattice: `threads {1, 2, 4, 8} × shards {1, 4, 16}`,
/// threads-major, with `threads == 1` mapped to [`Parallelism::Sequential`]
/// (the serial ascending-set-index replay every other point must reproduce).
pub fn lattice() -> Vec<LatticePoint> {
    let mut points = Vec::with_capacity(PARALLELISM_LEVELS.len() * SHARD_COUNTS.len());
    for &threads in &PARALLELISM_LEVELS {
        for &shards in &SHARD_COUNTS {
            let parallelism = if threads == 1 {
                Parallelism::Sequential
            } else {
                Parallelism::Fixed(threads)
            };
            points.push(LatticePoint {
                threads,
                parallelism,
                shards,
            });
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Slugger, SluggerConfig};
    use slugger_graph::Graph;

    #[test]
    fn lattice_has_twelve_points_and_maps_one_to_sequential() {
        let points = lattice();
        assert_eq!(points.len(), 12);
        for p in &points {
            match p.parallelism {
                Parallelism::Sequential => assert_eq!(p.threads, 1),
                Parallelism::Fixed(n) => assert_eq!(n, p.threads),
                other => panic!("unexpected lattice parallelism {other:?}"),
            }
            assert!(SHARD_COUNTS.contains(&p.shards));
        }
    }

    #[test]
    fn canonical_distinguishes_structurally_different_summaries() {
        let a = Slugger::new(SluggerConfig {
            iterations: 3,
            seed: 1,
            ..SluggerConfig::default()
        })
        .summarize(&Graph::from_edges(6, vec![(0, 1), (1, 2), (2, 3), (3, 4)]));
        let b = Slugger::new(SluggerConfig {
            iterations: 3,
            seed: 1,
            ..SluggerConfig::default()
        })
        .summarize(&Graph::from_edges(6, vec![(0, 1), (1, 2), (2, 3), (4, 5)]));
        assert_eq!(canonical(&a.summary), canonical(&a.summary));
        assert_ne!(canonical(&a.summary), canonical(&b.summary));
    }
}
