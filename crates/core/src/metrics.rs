//! Output-size and hierarchy statistics reported by the paper's experiments.

use crate::model::HierarchicalSummary;
use serde::{Deserialize, Serialize};

/// Size and structure metrics of a hierarchical summary (the quantities appearing in
/// Fig. 5/6 and Tables III–V of the paper).
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct SummaryMetrics {
    /// `|P+|`.
    pub p_edges: usize,
    /// `|P−|`.
    pub n_edges: usize,
    /// `|H|`.
    pub h_edges: usize,
    /// `Cost(G) = |P+| + |P−| + |H|` (Eq. 1).
    pub cost: usize,
    /// Relative size of the output, `Cost(G) / |E|` (Eq. 10).
    pub relative_size: f64,
    /// Number of alive supernodes.
    pub num_supernodes: usize,
    /// Number of root supernodes.
    pub num_roots: usize,
    /// Maximum height over all hierarchy trees.
    pub max_height: usize,
    /// Average depth of the leaf (singleton) supernodes.
    pub avg_leaf_depth: f64,
}

impl SummaryMetrics {
    /// Computes the metrics of a summary against the input-graph edge count.
    pub fn compute(summary: &HierarchicalSummary, num_input_edges: usize) -> Self {
        let p_edges = summary.num_p_edges();
        let n_edges = summary.num_n_edges();
        let h_edges = summary.num_h_edges();
        let cost = p_edges + n_edges + h_edges;
        let relative_size = if num_input_edges == 0 {
            0.0
        } else {
            cost as f64 / num_input_edges as f64
        };
        let depths = summary.leaf_depths();
        let avg_leaf_depth = if depths.is_empty() {
            0.0
        } else {
            depths.iter().sum::<usize>() as f64 / depths.len() as f64
        };
        let mut max_height = 0usize;
        let mut num_roots = 0usize;
        for r in summary.roots() {
            num_roots += 1;
            max_height = max_height.max(summary.tree_height(r));
        }
        SummaryMetrics {
            p_edges,
            n_edges,
            h_edges,
            cost,
            relative_size,
            num_supernodes: summary.num_supernodes(),
            num_roots,
            max_height,
            avg_leaf_depth,
        }
    }

    /// Fraction of p-edges among all output edges (Fig. 6).
    pub fn p_edge_ratio(&self) -> f64 {
        ratio(self.p_edges, self.cost)
    }

    /// Fraction of n-edges among all output edges (Fig. 6).
    pub fn n_edge_ratio(&self) -> f64 {
        ratio(self.n_edges, self.cost)
    }

    /// Fraction of h-edges among all output edges (Fig. 6).
    pub fn h_edge_ratio(&self) -> f64 {
        ratio(self.h_edges, self.cost)
    }
}

fn ratio(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EdgeSign;

    #[test]
    fn metrics_of_handbuilt_summary() {
        let mut s = HierarchicalSummary::identity(4);
        let m = s.merge_roots(0, 1);
        s.set_edge(m, 2, EdgeSign::Positive);
        s.set_edge(0, 3, EdgeSign::Negative);
        let metrics = SummaryMetrics::compute(&s, 10);
        assert_eq!(metrics.p_edges, 1);
        assert_eq!(metrics.n_edges, 1);
        assert_eq!(metrics.h_edges, 2);
        assert_eq!(metrics.cost, 4);
        assert!((metrics.relative_size - 0.4).abs() < 1e-12);
        assert_eq!(metrics.num_roots, 3);
        assert_eq!(metrics.max_height, 1);
        assert!((metrics.avg_leaf_depth - 0.5).abs() < 1e-12);
        assert!((metrics.p_edge_ratio() - 0.25).abs() < 1e-12);
        assert!((metrics.n_edge_ratio() - 0.25).abs() < 1e-12);
        assert!((metrics.h_edge_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_edge_graph_has_zero_relative_size() {
        let s = HierarchicalSummary::identity(3);
        let metrics = SummaryMetrics::compute(&s, 0);
        assert_eq!(metrics.cost, 0);
        assert_eq!(metrics.relative_size, 0.0);
        assert_eq!(metrics.p_edge_ratio(), 0.0);
    }
}
