//! PageRank over any [`NeighborAccess`] graph (Algorithm 6 of the paper, undirected
//! power iteration with uniform teleport).

use slugger_graph::{NeighborAccess, NodeId};

/// PageRank parameters.
#[derive(Clone, Copy, Debug)]
pub struct PageRankConfig {
    /// Damping factor `d` (probability of following an edge).
    pub damping: f64,
    /// Number of power iterations.
    pub iterations: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            iterations: 20,
        }
    }
}

/// Computes PageRank scores for every node.  Dangling (degree-0) nodes redistribute
/// their mass uniformly, so the scores always sum to 1.
pub fn pagerank<G: NeighborAccess + ?Sized>(graph: &G, config: &PageRankConfig) -> Vec<f64> {
    let n = graph.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    let degrees: Vec<usize> = (0..n as NodeId).map(|u| graph.degree_of(u)).collect();
    for _ in 0..config.iterations {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling_mass = 0.0;
        for u in 0..n as NodeId {
            let d = degrees[u as usize];
            if d == 0 {
                dangling_mass += rank[u as usize];
                continue;
            }
            let share = rank[u as usize] / d as f64;
            graph.for_each_neighbor(u, &mut |v| {
                next[v as usize] += share;
            });
        }
        let teleport = (1.0 - config.damping) * uniform + config.damping * dangling_mass * uniform;
        for x in next.iter_mut() {
            *x = config.damping * *x + teleport;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use slugger_graph::Graph;

    #[test]
    fn ranks_sum_to_one() {
        let g = Graph::from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let ranks = pagerank(&g, &PageRankConfig::default());
        let sum: f64 = ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn symmetric_cycle_has_uniform_ranks() {
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let ranks = pagerank(&g, &PageRankConfig::default());
        for r in &ranks {
            assert!((r - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn hub_outranks_spokes() {
        let g = Graph::from_edges(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]);
        let ranks = pagerank(&g, &PageRankConfig::default());
        for spoke in 1..5 {
            assert!(ranks[0] > ranks[spoke]);
        }
    }

    #[test]
    fn dangling_nodes_keep_total_mass() {
        let g = Graph::from_edges(4, vec![(0, 1)]);
        let ranks = pagerank(&g, &PageRankConfig::default());
        let sum: f64 = ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(ranks[2] > 0.0 && ranks[3] > 0.0);
    }

    #[test]
    fn empty_graph_returns_empty() {
        let g = Graph::empty(0);
        assert!(pagerank(&g, &PageRankConfig::default()).is_empty());
    }
}
