//! Breadth-first and depth-first traversal over any [`NeighborAccess`] graph.

use slugger_graph::{NeighborAccess, NodeId};

/// Nodes reachable from `start` in BFS visit order (including `start`).
pub fn bfs_order<G: NeighborAccess + ?Sized>(graph: &G, start: NodeId) -> Vec<NodeId> {
    let n = graph.num_nodes();
    let mut visited = vec![false; n];
    let mut order = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    visited[start as usize] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        graph.for_each_neighbor(u, &mut |v| {
            if !visited[v as usize] {
                visited[v as usize] = true;
                queue.push_back(v);
            }
        });
    }
    order
}

/// Nodes reachable from `start` in (iterative) DFS visit order (including `start`).
///
/// The paper's Algorithm 5 is the recursive formulation; the iterative version below
/// is equivalent and avoids stack overflows on long paths.
pub fn dfs_order<G: NeighborAccess + ?Sized>(graph: &G, start: NodeId) -> Vec<NodeId> {
    let n = graph.num_nodes();
    let mut visited = vec![false; n];
    let mut order = Vec::new();
    let mut stack = vec![start];
    while let Some(u) = stack.pop() {
        if visited[u as usize] {
            continue;
        }
        visited[u as usize] = true;
        order.push(u);
        // Push neighbors in reverse-sorted order so the smallest id is visited first,
        // making the order deterministic regardless of the provider's neighbor order.
        let mut nbrs = graph.neighbors_vec(u);
        nbrs.sort_unstable_by(|a, b| b.cmp(a));
        for v in nbrs {
            if !visited[v as usize] {
                stack.push(v);
            }
        }
    }
    order
}

/// The set of nodes in the connected component containing `start`.
pub fn connected_component_of<G: NeighborAccess + ?Sized>(graph: &G, start: NodeId) -> Vec<NodeId> {
    let mut component = bfs_order(graph, start);
    component.sort_unstable();
    component
}

#[cfg(test)]
mod tests {
    use super::*;
    use slugger_graph::Graph;

    fn sample() -> Graph {
        // 0-1-2 triangle, 2-3 bridge, isolated 4, 5-6 pair.
        Graph::from_edges(7, vec![(0, 1), (1, 2), (0, 2), (2, 3), (5, 6)])
    }

    #[test]
    fn bfs_visits_component_in_breadth_order() {
        let g = sample();
        let order = bfs_order(&g, 0);
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn dfs_visits_component_depth_first() {
        let g = sample();
        let order = dfs_order(&g, 0);
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], 0);
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn isolated_node_component_is_itself() {
        let g = sample();
        assert_eq!(connected_component_of(&g, 4), vec![4]);
        assert_eq!(connected_component_of(&g, 5), vec![5, 6]);
    }

    #[test]
    fn traversals_cover_the_same_nodes() {
        let g = sample();
        let mut bfs = bfs_order(&g, 2);
        let mut dfs = dfs_order(&g, 2);
        bfs.sort_unstable();
        dfs.sort_unstable();
        assert_eq!(bfs, dfs);
    }
}
