//! Shortest paths over any [`NeighborAccess`] graph: unweighted BFS distances and a
//! Dijkstra variant with a caller-supplied edge-weight function (the paper's graphs
//! are unweighted, so the weight function defaults to 1 in the experiments).

use slugger_graph::{NeighborAccess, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Hop distances from `start`; unreachable nodes get `None`.
pub fn bfs_distances<G: NeighborAccess + ?Sized>(graph: &G, start: NodeId) -> Vec<Option<usize>> {
    let n = graph.num_nodes();
    let mut dist: Vec<Option<usize>> = vec![None; n];
    let mut queue = std::collections::VecDeque::new();
    dist[start as usize] = Some(0);
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize].expect("queued nodes have distances");
        graph.for_each_neighbor(u, &mut |v| {
            if dist[v as usize].is_none() {
                dist[v as usize] = Some(du + 1);
                queue.push_back(v);
            }
        });
    }
    dist
}

/// Dijkstra's algorithm with non-negative edge weights given by `weight(u, v)`.
/// Returns the distance from `start` to every node (`None` when unreachable).
pub fn dijkstra<G, W>(graph: &G, start: NodeId, weight: W) -> Vec<Option<f64>>
where
    G: NeighborAccess + ?Sized,
    W: Fn(NodeId, NodeId) -> f64,
{
    let n = graph.num_nodes();
    let mut dist: Vec<Option<f64>> = vec![None; n];
    // BinaryHeap over ordered bits of the distance (f64 is not Ord); distances are
    // non-negative so the bit pattern ordering matches numeric ordering.
    let mut heap: BinaryHeap<Reverse<(u64, NodeId)>> = BinaryHeap::new();
    dist[start as usize] = Some(0.0);
    heap.push(Reverse((0u64, start)));
    while let Some(Reverse((dbits, u))) = heap.pop() {
        let du = f64::from_bits(dbits);
        match dist[u as usize] {
            Some(best) if du > best + f64::EPSILON => continue,
            _ => {}
        }
        graph.for_each_neighbor(u, &mut |v| {
            let w = weight(u, v);
            debug_assert!(w >= 0.0, "Dijkstra requires non-negative weights");
            let candidate = du + w;
            let improves = match dist[v as usize] {
                None => true,
                Some(current) => candidate < current,
            };
            if improves {
                dist[v as usize] = Some(candidate);
                heap.push(Reverse((candidate.to_bits(), v)));
            }
        });
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use slugger_graph::Graph;

    fn sample() -> Graph {
        Graph::from_edges(6, vec![(0, 1), (1, 2), (2, 3), (0, 4), (4, 3)])
    }

    #[test]
    fn bfs_distances_on_path_and_shortcut() {
        let g = sample();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[0], Some(0));
        assert_eq!(d[1], Some(1));
        assert_eq!(d[2], Some(2));
        assert_eq!(d[3], Some(2)); // via 4
        assert_eq!(d[4], Some(1));
        assert_eq!(d[5], None); // isolated
    }

    #[test]
    fn dijkstra_unit_weights_matches_bfs() {
        let g = sample();
        let bfs = bfs_distances(&g, 0);
        let dij = dijkstra(&g, 0, |_, _| 1.0);
        for (b, d) in bfs.iter().zip(dij.iter()) {
            match (b, d) {
                (None, None) => {}
                (Some(hops), Some(w)) => assert!((*hops as f64 - w).abs() < 1e-9),
                other => panic!("mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn dijkstra_prefers_cheaper_longer_path() {
        // 0-1 weight 10, 0-2-1 weight 1+1.
        let g = Graph::from_edges(3, vec![(0, 1), (0, 2), (2, 1)]);
        let d = dijkstra(&g, 0, |u, v| {
            if (u, v) == (0, 1) || (u, v) == (1, 0) {
                10.0
            } else {
                1.0
            }
        });
        assert!((d[1].unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unreachable_nodes_stay_none() {
        let g = Graph::from_edges(4, vec![(0, 1)]);
        let d = dijkstra(&g, 0, |_, _| 1.0);
        assert_eq!(d[2], None);
        assert_eq!(d[3], None);
    }
}
