//! # slugger-algos
//!
//! Graph algorithms that access their input **only** through
//! [`slugger_graph::NeighborAccess`], so they run unchanged on
//!
//! * a raw [`slugger_graph::Graph`], and
//! * a compressed `slugger_core::HierarchicalSummary` via
//!   `slugger_core::decode::SummaryNeighborView` (on-the-fly partial decompression,
//!   Sect. VIII-C of the SLUGGER paper; this crate deliberately does not depend on
//!   `slugger-core` — the view implements the shared `NeighborAccess` trait).
//!
//! Provided algorithms: BFS/DFS traversal ([`traversal`]), PageRank ([`mod@pagerank`]),
//! Dijkstra / unweighted shortest paths ([`shortest_path`]), and triangle counting
//! ([`triangles`]) — the four workloads of the paper's appendix experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pagerank;
pub mod shortest_path;
pub mod traversal;
pub mod triangles;

pub use pagerank::{pagerank, PageRankConfig};
pub use shortest_path::{bfs_distances, dijkstra};
pub use traversal::{bfs_order, connected_component_of, dfs_order};
pub use triangles::count_triangles;
