//! Triangle counting over any [`NeighborAccess`] graph.

use slugger_graph::hash::FxHashSet;
use slugger_graph::{NeighborAccess, NodeId};

/// Counts the triangles of the graph (each triangle counted once).
///
/// Uses the standard ordered-wedge method: for every node `u`, collect its neighbors
/// greater than `u`, and count pairs of them that are themselves adjacent.  Adjacency
/// is tested against a per-node hash set, so the provider only needs neighbor
/// iteration (which is all a compressed summary offers).
pub fn count_triangles<G: NeighborAccess + ?Sized>(graph: &G) -> usize {
    let n = graph.num_nodes();
    let mut total = 0usize;
    let mut neighbor_set: FxHashSet<NodeId> = FxHashSet::default();
    for u in 0..n as NodeId {
        let higher: Vec<NodeId> = {
            let mut v = graph.neighbors_vec(u);
            v.retain(|&x| x > u);
            v
        };
        if higher.len() < 2 {
            continue;
        }
        neighbor_set.clear();
        neighbor_set.extend(higher.iter().copied());
        for &a in &higher {
            // Count b adjacent to a with b > a, so each triangle (u < a < b) is
            // counted exactly once.
            let a_neighbors = graph.neighbors_vec(a);
            for &b in &a_neighbors {
                if b > a && neighbor_set.contains(&b) {
                    total += 1;
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use slugger_graph::Graph;

    #[test]
    fn triangle_count_of_k4_is_four() {
        let g = Graph::from_edges(4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(count_triangles(&g), 4);
    }

    #[test]
    fn path_has_no_triangles() {
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(count_triangles(&g), 0);
    }

    #[test]
    fn two_disjoint_triangles() {
        let g = Graph::from_edges(6, vec![(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        assert_eq!(count_triangles(&g), 2);
    }

    #[test]
    fn shared_edge_triangles() {
        // Triangles (0,1,2) and (0,1,3) share edge (0,1).
        let g = Graph::from_edges(4, vec![(0, 1), (0, 2), (1, 2), (0, 3), (1, 3)]);
        assert_eq!(count_triangles(&g), 2);
    }
}
