//! Fuzz-style equivalence: arbitrary well-formed [`GraphDelta`] sequences
//! (drawn from [`slugger_scenarios::strategy::DeltaSequences`]), interleaved
//! with pruning, compaction and checkpoint/resume recovery, keep the
//! incrementally maintained summary equivalent to a from-scratch rebuild of
//! the same final graph — decode-identical, lossless and internally valid at
//! every step.
//!
//! This probes the full *legal* delta space (duplicate ops, deletions of
//! absent edges, empty batches, delete-and-re-insert inside one batch), not
//! just the curated scenario streams.

use proptest::prelude::*;
use slugger_core::decode::decode_full;
use slugger_core::incremental::{IncrementalConfig, IncrementalSummarizer};
use slugger_core::{Slugger, SluggerConfig};
use slugger_graph::gen::{caveman, CavemanConfig};
use slugger_graph::{DynamicGraph, GraphDelta};
use slugger_scenarios::strategy::DeltaSequences;

const NUM_NODES: usize = 80;

fn bootstrap_slugger() -> Slugger {
    Slugger::new(SluggerConfig {
        iterations: 3,
        max_candidate_size: 48,
        max_shingle_splits: 4,
        seed: 7,
        ..SluggerConfig::default()
    })
}

fn incremental_config() -> IncrementalConfig {
    IncrementalConfig {
        iterations: 2,
        max_candidate_size: 32,
        max_shingle_splits: 3,
        seed: 13,
        ..IncrementalConfig::default()
    }
}

/// The proptest body (a plain function so the vendored `proptest!` macro only
/// expands a single statement): drive the deltas through the incremental
/// engine with maintenance interleaved, oracle-checking against an
/// independently maintained live graph and a from-scratch rebuild.
fn check_incremental_equals_rebuild(deltas: Vec<GraphDelta>) -> Result<(), String> {
    let initial = caveman(&CavemanConfig {
        num_nodes: NUM_NODES,
        num_cliques: 10,
        min_clique: 4,
        max_clique: 8,
        rewire_probability: 0.05,
        seed: 5,
    });
    let config = incremental_config();
    let mut inc = IncrementalSummarizer::bootstrap(&initial, &bootstrap_slugger(), config);
    let mut live = DynamicGraph::from_graph(&initial);
    for (i, delta) in deltas.iter().enumerate() {
        inc.resummarize(delta);
        delta.apply_to(&mut live);
        // Deterministic maintenance interleaving: prune, compact, and a full
        // checkpoint/resume recovery all rotate through the stream.
        match i % 4 {
            1 => {
                inc.prune_now(2);
            }
            2 => {
                inc.compact_now();
            }
            3 => {
                inc = IncrementalSummarizer::resume(
                    inc.summary().clone(),
                    &inc.graph().to_graph(),
                    config,
                    inc.epoch(),
                    inc.batches(),
                )
                .map_err(|e| format!("resume after batch {i}: {e}"))?;
            }
            _ => {}
        }
        prop_assert_eq!(
            decode_full(inc.summary()).edge_set(),
            live.to_graph().edge_set(),
            "decode-identity broke after batch {i}"
        );
        inc.validate()
            .map_err(|e| format!("engine invalid after batch {i}: {e}"))?;
    }
    inc.verify_lossless()
        .map_err(|e| format!("final summary not lossless: {e}"))?;
    // Incremental ≡ rebuild: a from-scratch summarization of the final graph
    // decodes to the same graph the incremental summary decodes to.
    let rebuilt = bootstrap_slugger().summarize(&live.to_graph());
    prop_assert_eq!(
        decode_full(&rebuilt.summary).edge_set(),
        decode_full(inc.summary()).edge_set(),
        "incremental and rebuilt summaries decode differently"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn random_delta_sequences_with_maintenance_stay_equivalent_to_rebuild(
        deltas in DeltaSequences {
            num_nodes: NUM_NODES,
            batches: 1..6,
            ops_per_batch: 0..30,
        },
    ) {
        check_incremental_equals_rebuild(deltas)?;
    }
}
