//! Deterministic streaming-scenario generator for SLUGGER.
//!
//! A [`Scenario`] composes a [`Topology`] (the initial graph family) with a
//! [`ChurnProgram`] (how the delta stream evolves it) under one name, e.g.
//! `powerlaw-hub-death`.  [`Scenario::instantiate`] yields a
//! [`ScenarioInstance`]: the initial [`Graph`] plus an
//! `Iterator<Item = GraphDelta>` that generates **one batch at a time** against
//! a live [`DynamicGraph`] mirror — a scenario's
//! total stream is never materialized, so instances can exceed RAM.
//!
//! The [`registry`] names the scenarios the tier-1 `scenario_matrix` test
//! re-proves the whole invariance lattice on, and the ones the `streaming` /
//! `query_serving` bench bins accept via `--scenario NAME`.
//!
//! Everything is a pure function of `(scenario, scale, num_batches, seed)`:
//! two instantiations with equal arguments produce byte-identical streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod churn;
pub mod strategy;
mod topology;

pub use churn::{ChurnProgram, ChurnState};
pub use topology::Topology;

use rand::rngs::StdRng;
use rand::SeedableRng;
use slugger_graph::{DynamicGraph, Graph, GraphDelta};

/// A named, reproducible streaming workload: topology × churn program.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Stable scenario name (`--scenario NAME`, history/gate key component).
    pub name: &'static str,
    /// One-line human description.
    pub description: &'static str,
    /// Which invariance-lattice properties this scenario is designed to
    /// stress hardest (documentation, surfaced by `--scenario list`).
    pub stresses: &'static str,
    /// Initial graph family.
    pub topology: Topology,
    /// Delta-stream generator.
    pub churn: ChurnProgram,
}

impl Scenario {
    /// Builds the initial graph and a streaming delta iterator.
    ///
    /// `scale` linearly multiplies the topology's base size, `num_batches`
    /// bounds the iterator's length, and `seed` drives both the topology build
    /// and the churn stream.  Deterministic: equal arguments yield
    /// byte-identical initial graphs and delta sequences.
    pub fn instantiate(&self, scale: f64, num_batches: usize, seed: u64) -> ScenarioInstance {
        // Mix the scenario name into the seed so same-seed scenarios diverge.
        let mixed = self
            .name
            .bytes()
            .fold(seed ^ 0xcbf2_9ce4_8422_2325, |h, b| {
                (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
            });
        let initial = self.topology.build(scale, mixed);
        let mirror = DynamicGraph::from_graph(&initial);
        // Per-batch ops budget: ~1% of the initial edges, floored so smoke
        // instances still produce meaningful deltas.
        let base_ops = (initial.num_edges() / 100).max(8);
        ScenarioInstance {
            initial,
            mirror,
            churn: self.churn,
            state: ChurnState::default(),
            rng: StdRng::seed_from_u64(mixed.wrapping_mul(0x2545_f491_4f6c_dd1d)),
            base_ops,
            next_batch: 0,
            num_batches,
        }
    }
}

/// A live instantiation of a [`Scenario`]: the initial graph plus a streaming
/// delta generator.  Iterating yields `num_batches` [`GraphDelta`]s; each is
/// generated against (and then applied to) an internal [`DynamicGraph`]
/// mirror, so memory stays O(graph + one batch).
pub struct ScenarioInstance {
    initial: Graph,
    mirror: DynamicGraph,
    churn: ChurnProgram,
    state: ChurnState,
    rng: StdRng,
    base_ops: usize,
    next_batch: usize,
    num_batches: usize,
}

impl ScenarioInstance {
    /// The initial snapshot the delta stream starts from.
    pub fn initial(&self) -> &Graph {
        &self.initial
    }

    /// Number of nodes in the scenario's (fixed) node universe.
    pub fn num_nodes(&self) -> usize {
        self.mirror.num_nodes()
    }

    /// The graph state after every delta yielded so far.
    pub fn current(&self) -> &DynamicGraph {
        &self.mirror
    }

    /// Total batches the iterator will yield.
    pub fn num_batches(&self) -> usize {
        self.num_batches
    }

    /// Drains the stream into memory (initial + all batches + final state).
    /// Convenience for benches and tests at smoke scale; defeats the
    /// streaming property, so avoid it for very long scenarios.
    pub fn collect_stream(mut self) -> CollectedScenario {
        let initial = self.initial.clone();
        let num_nodes = self.num_nodes();
        let batches: Vec<GraphDelta> = self.by_ref().collect();
        CollectedScenario {
            initial,
            batches,
            num_nodes,
            final_edges: self.mirror.num_edges(),
        }
    }
}

impl Iterator for ScenarioInstance {
    type Item = GraphDelta;

    fn next(&mut self) -> Option<GraphDelta> {
        if self.next_batch >= self.num_batches {
            return None;
        }
        let delta = self.churn.next_batch(
            self.next_batch,
            self.base_ops,
            &self.mirror,
            &mut self.state,
            &mut self.rng,
        );
        // Keep the mirror in lock-step with what a consumer applying this
        // delta (deletions first, then insertions, idempotently) would hold.
        delta.apply_to(&mut self.mirror);
        self.next_batch += 1;
        Some(delta)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.num_batches - self.next_batch;
        (left, Some(left))
    }
}

/// A fully materialized scenario stream (see
/// [`ScenarioInstance::collect_stream`]).
pub struct CollectedScenario {
    /// The initial snapshot.
    pub initial: Graph,
    /// Every delta batch, in order.
    pub batches: Vec<GraphDelta>,
    /// Node-universe size.
    pub num_nodes: usize,
    /// Edge count after the final batch.
    pub final_edges: usize,
}

/// All registered scenarios, in stable order.
///
/// Names are part of the bench history / perf-gate key — renaming one rolls
/// its gate baseline over.
pub fn registry() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "rmat-temporal",
            description: "RMAT graph under a drifting hot-window of inserts and deletes",
            stresses: "region localization under temporal locality; steady mixed churn",
            topology: Topology::Rmat {
                base_edges: 120_000,
            },
            churn: ChurnProgram::TemporalLocality {
                window_fraction: 0.08,
                delete_share: 0.35,
            },
        },
        Scenario {
            name: "caveman-community-merge",
            description: "caveman cliques repeatedly merged by cross edges and split again",
            stresses: "supernode merge/dissolve decisions at community granularity",
            topology: Topology::Caveman { base_nodes: 24_000 },
            churn: ChurnProgram::CommunityCycle {
                block_fraction: 0.06,
            },
        },
        Scenario {
            name: "powerlaw-hub-death",
            description:
                "Barabási–Albert graph whose top hub dies (all edges at once) and is reborn",
            stresses: "partial dissolution and region pruning when a dense neighborhood vanishes",
            topology: Topology::PowerLaw {
                base_nodes: 20_000,
                attach: 4,
            },
            churn: ChurnProgram::HubUpheaval { period: 3 },
        },
        Scenario {
            name: "caveman-hub-death",
            description: "caveman cliques with periodic death/rebirth of the densest node",
            stresses: "dissolution inside near-cliques; candidate-index retirement",
            topology: Topology::Caveman { base_nodes: 16_000 },
            churn: ChurnProgram::HubUpheaval { period: 4 },
        },
        Scenario {
            name: "grid-burst",
            description: "grid+shortcuts under Pareto-sized batches (mostly tiny, rarely 40x)",
            stresses: "batch-size robustness; breadth-driven (hub-free) region growth",
            topology: Topology::GridShortcuts {
                base_side: 160,
                shortcut_fraction: 0.05,
            },
            churn: ChurnProgram::Burst {
                alpha: 1.8,
                delete_share: 0.3,
            },
        },
        Scenario {
            name: "bipartite-delete-heavy",
            description: "skewed bipartite graph through alternating demolition/rebuild phases",
            stresses: "dead-slot growth, compaction triggers, shared-neighborhood supernodes",
            topology: Topology::Bipartite {
                base_hubs: 400,
                base_leaves: 20_000,
                attach: 3,
            },
            churn: ChurnProgram::DeleteHeavy { period: 2 },
        },
        Scenario {
            name: "rmat-noop-storm",
            description: "RMAT graph under deltas dominated by duplicate and no-op operations",
            stresses: "idempotence of apply/dissolve paths; empty-batch handling",
            topology: Topology::Rmat { base_edges: 80_000 },
            churn: ChurnProgram::NoopStorm,
        },
    ]
}

/// Looks a scenario up by name.
pub fn find(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}

/// The registered scenario names, in registry order.
pub fn names() -> Vec<&'static str> {
    registry().iter().map(|s| s.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slugger_graph::NodeId;

    #[test]
    fn registry_names_are_stable_and_cover_required_classes() {
        let names = names();
        assert!(names.len() >= 6);
        for required in [
            "hub-death",
            "community-merge",
            "delete-heavy",
            "burst",
            "noop",
            "temporal",
        ] {
            assert!(
                names.iter().any(|n| n.contains(required)),
                "no scenario name contains {required:?}: {names:?}"
            );
        }
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate scenario names");
        assert!(find("powerlaw-hub-death").is_some());
        assert!(find("nonexistent").is_none());
    }

    #[test]
    fn instances_are_deterministic_and_stay_in_bounds() {
        for scenario in registry() {
            let a = scenario.instantiate(0.02, 5, 11).collect_stream();
            let b = scenario.instantiate(0.02, 5, 11).collect_stream();
            assert_eq!(
                a.initial.edge_set(),
                b.initial.edge_set(),
                "{}: initial graph must be deterministic",
                scenario.name
            );
            assert_eq!(
                a.batches, b.batches,
                "{}: stream must be deterministic",
                scenario.name
            );
            assert_eq!(a.batches.len(), 5);
            let n = a.num_nodes;
            for delta in &a.batches {
                for &(u, v) in delta.deletions.iter().chain(delta.insertions.iter()) {
                    assert!(
                        (u as usize) < n && (v as usize) < n,
                        "{}: op ({u}, {v}) outside universe {n}",
                        scenario.name
                    );
                }
            }
            let c = scenario.instantiate(0.02, 5, 12).collect_stream();
            assert!(
                a.initial.edge_set() != c.initial.edge_set() || a.batches != c.batches,
                "{}: seed must matter",
                scenario.name
            );
        }
    }

    #[test]
    fn mirror_tracks_consumer_application_exactly() {
        for scenario in registry() {
            let mut instance = scenario.instantiate(0.02, 6, 3);
            let mut consumer = DynamicGraph::from_graph(instance.initial());
            while let Some(delta) = instance.next() {
                delta.apply_to(&mut consumer);
                assert_eq!(
                    consumer.num_edges(),
                    instance.current().num_edges(),
                    "{}: mirror diverged from consumer",
                    scenario.name
                );
            }
            let a: Vec<(NodeId, NodeId)> = consumer.edges().collect();
            let b: Vec<(NodeId, NodeId)> = instance.current().edges().collect();
            assert_eq!(a, b, "{}: final edge sets differ", scenario.name);
        }
    }

    #[test]
    fn streams_produce_real_change() {
        for scenario in registry() {
            let collected = scenario.instantiate(0.02, 6, 7).collect_stream();
            let ops: usize = collected.batches.iter().map(|d| d.len()).sum();
            assert!(ops > 0, "{}: stream is entirely empty", scenario.name);
            assert!(
                collected.final_edges > 0,
                "{}: scenario emptied the graph",
                scenario.name
            );
        }
    }
}
