//! Proptest strategies over [`GraphDelta`] sequences.
//!
//! [`DeltaSequences`] draws arbitrary *well-formed* delta batches: every node
//! id stays inside the declared universe and no operation is a self-loop, but
//! otherwise anything goes — deletions of absent edges, duplicate operations,
//! empty batches, delete-and-re-insert within one batch.  That is exactly the
//! contract consumers promise to honour idempotently, so fuzz tests built on
//! this strategy probe the full legal input space, not just the streams the
//! curated scenarios emit.

use proptest::Strategy;
use rand::rngs::StdRng;
use rand::RngExt;
use slugger_graph::{GraphDelta, NodeId};
use std::ops::Range;

/// Strategy generating `Vec<GraphDelta>`: a random number of batches, each
/// with random deletion/insertion counts over a fixed node universe.
#[derive(Clone, Debug)]
pub struct DeltaSequences {
    /// Node-universe size; every generated id is `< num_nodes`.
    pub num_nodes: usize,
    /// Range of batch counts to draw from.
    pub batches: Range<usize>,
    /// Range of per-batch operation counts (split randomly between deletions
    /// and insertions; zero-op batches are legal and deliberately generated).
    pub ops_per_batch: Range<usize>,
}

impl DeltaSequences {
    fn random_pair(&self, rng: &mut StdRng) -> (NodeId, NodeId) {
        loop {
            let u = rng.random_range(0..self.num_nodes) as NodeId;
            let v = rng.random_range(0..self.num_nodes) as NodeId;
            if u != v {
                return (u, v);
            }
        }
    }
}

impl Strategy for DeltaSequences {
    type Value = Vec<GraphDelta>;

    fn generate(&self, rng: &mut StdRng) -> Vec<GraphDelta> {
        assert!(self.num_nodes >= 2, "universe too small for edges");
        let num_batches = rng.random_range(self.batches.clone());
        (0..num_batches)
            .map(|_| {
                let ops = rng.random_range(self.ops_per_batch.clone());
                let deletions = rng.random_range(0..=ops);
                let mut delta = GraphDelta::new();
                for _ in 0..deletions {
                    delta.deletions.push(self.random_pair(rng));
                }
                for _ in deletions..ops {
                    delta.insertions.push(self.random_pair(rng));
                }
                // Occasionally duplicate an op verbatim to stress idempotence.
                if ops > 0 && rng.random_bool(0.3) {
                    if let Some(&e) = delta.insertions.first().or(delta.deletions.first()) {
                        delta.insertions.push(e);
                    }
                }
                delta
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use slugger_graph::DynamicGraph;

    #[test]
    fn generated_sequences_are_deterministic_and_well_formed() {
        let strategy = DeltaSequences {
            num_nodes: 40,
            batches: 1..8,
            ops_per_batch: 0..30,
        };
        let a = strategy.generate(&mut StdRng::seed_from_u64(5));
        let b = strategy.generate(&mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
        for delta in &a {
            for &(u, v) in delta.deletions.iter().chain(delta.insertions.iter()) {
                assert!(u != v && (u as usize) < 40 && (v as usize) < 40);
            }
        }
    }

    fn check_applies_cleanly(deltas: Vec<GraphDelta>) -> Result<(), String> {
        let mut graph = DynamicGraph::new(24);
        for delta in &deltas {
            delta.apply_to(&mut graph);
            prop_assert!(graph.num_edges() <= 24 * 23 / 2);
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn sequences_apply_without_panicking(deltas in DeltaSequences {
            num_nodes: 24,
            batches: 0..6,
            ops_per_batch: 0..20,
        }) {
            check_applies_cleanly(deltas)?;
        }
    }
}
