//! Initial-graph topologies a [`crate::Scenario`] starts from.
//!
//! Each variant wraps either one of the `slugger_graph::gen` generators (RMAT,
//! caveman, Barabási–Albert) or a structure built here (grid with shortcuts,
//! skewed bipartite attachment) that the generator module does not cover.  All
//! of them are pure functions of `(config, scale, seed)` and produce graphs
//! whose *shape* survives scaling: a smoke-scale instance stresses the same
//! code paths as a benchmark-scale one, only smaller.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use slugger_graph::gen::{barabasi_albert, caveman, rmat, CavemanConfig, RmatConfig};
use slugger_graph::{Graph, GraphBuilder, NodeId};

/// The initial-graph family of a scenario (sizes given at `scale = 1.0`).
#[derive(Clone, Copy, Debug)]
pub enum Topology {
    /// RMAT / Kronecker-style graph: self-similar communities plus heavy hubs
    /// (the repo's long-standing default workload).
    Rmat {
        /// Attempted edges at `scale = 1.0` (duplicates/self-loops drop out).
        base_edges: usize,
    },
    /// Relaxed caveman: overlapping near-cliques, the high-compressibility
    /// collaboration-graph stand-in.
    Caveman {
        /// Nodes at `scale = 1.0`.
        base_nodes: usize,
    },
    /// Barabási–Albert preferential attachment: a power-law degree
    /// distribution whose hubs are the prime targets of hub-death churn.
    PowerLaw {
        /// Nodes at `scale = 1.0`.
        base_nodes: usize,
        /// Edges each new node attaches with.
        attach: usize,
    },
    /// A 2-D grid (4-neighborhood) plus random long-range shortcuts: locally
    /// regular structure with none of the degree skew the other families have,
    /// so region growth is breadth-driven instead of hub-driven.
    GridShortcuts {
        /// Grid side length at `scale = 1.0` (the graph has `side²` nodes).
        base_side: usize,
        /// Shortcut edges as a fraction of the grid edges.
        shortcut_fraction: f64,
    },
    /// Skewed bipartite attachment: `leaves` nodes each pick `attach` partners
    /// from a small `hubs` set under a Zipf-like popularity skew, so many
    /// leaves share identical neighborhoods — ideal supernode material whose
    /// dissolution behaves very differently from clique dissolution.
    Bipartite {
        /// Hub-side nodes at `scale = 1.0`.
        base_hubs: usize,
        /// Leaf-side nodes at `scale = 1.0`.
        base_leaves: usize,
        /// Hub attachments per leaf.
        attach: usize,
    },
}

impl Topology {
    /// Builds the initial graph at `scale` (a linear size multiplier with a
    /// small floor so smoke instances stay non-degenerate).  Deterministic in
    /// `(self, scale, seed)`.
    pub fn build(&self, scale: f64, seed: u64) -> Graph {
        match *self {
            Topology::Rmat { base_edges } => {
                let num_edges = ((base_edges as f64 * scale).round() as usize).max(96);
                // Size the node universe to the edge budget so average degree
                // stays scale-independent (~6 attempted edges per node).
                let log2_nodes = ((num_edges as f64 / 6.0).log2().ceil() as u32).clamp(6, 20);
                rmat(&RmatConfig {
                    scale: log2_nodes,
                    num_edges,
                    seed,
                    ..RmatConfig::default()
                })
            }
            Topology::Caveman { base_nodes } => {
                let num_nodes = ((base_nodes as f64 * scale).round() as usize).max(80);
                caveman(&CavemanConfig {
                    num_nodes,
                    num_cliques: (num_nodes / 8).max(4),
                    min_clique: 5,
                    max_clique: 9,
                    rewire_probability: 0.03,
                    seed,
                })
            }
            Topology::PowerLaw { base_nodes, attach } => {
                let num_nodes = ((base_nodes as f64 * scale).round() as usize).max(2 * attach + 20);
                barabasi_albert(num_nodes, attach, seed)
            }
            Topology::GridShortcuts {
                base_side,
                shortcut_fraction,
            } => {
                let cells = (base_side * base_side) as f64 * scale;
                let side = (cells.sqrt().round() as usize).max(6);
                let n = side * side;
                let mut builder = GraphBuilder::with_capacity(n, 2 * n);
                for r in 0..side {
                    for c in 0..side {
                        let u = (r * side + c) as NodeId;
                        if c + 1 < side {
                            builder.add_edge(u, u + 1);
                        }
                        if r + 1 < side {
                            builder.add_edge(u, u + side as NodeId);
                        }
                    }
                }
                let grid_edges = 2 * side * (side - 1);
                let shortcuts = (grid_edges as f64 * shortcut_fraction).round() as usize;
                let mut rng = StdRng::seed_from_u64(seed ^ 0x9d1d_5c0e);
                for _ in 0..shortcuts {
                    let u = rng.random_range(0..n) as NodeId;
                    let v = rng.random_range(0..n) as NodeId;
                    if u != v {
                        builder.add_edge(u, v);
                    }
                }
                builder.build()
            }
            Topology::Bipartite {
                base_hubs,
                base_leaves,
                attach,
            } => {
                let hubs = ((base_hubs as f64 * scale).round() as usize).max(8);
                let leaves = ((base_leaves as f64 * scale).round() as usize).max(32);
                let n = hubs + leaves;
                // Zipf-like cumulative hub popularity (skew 1.0): a handful of
                // hubs absorb most attachments, so leaf neighborhoods overlap.
                let weights: Vec<f64> = (0..hubs).map(|i| 1.0 / (i + 1) as f64).collect();
                let total: f64 = weights.iter().sum();
                let mut cumulative = Vec::with_capacity(hubs);
                let mut acc = 0.0;
                for w in &weights {
                    acc += w / total;
                    cumulative.push(acc);
                }
                let mut rng = StdRng::seed_from_u64(seed ^ 0xb1_4a47);
                let mut builder = GraphBuilder::with_capacity(n, leaves * attach);
                for leaf in hubs..n {
                    for _ in 0..attach {
                        let r: f64 = rng.random::<f64>();
                        let hub =
                            cumulative.iter().position(|&c| r <= c).unwrap_or(hubs - 1) as NodeId;
                        builder.add_edge(leaf as NodeId, hub);
                    }
                }
                builder.build()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_builds_valid_nondegenerate_graphs() {
        let topologies = [
            Topology::Rmat { base_edges: 4_000 },
            Topology::Caveman { base_nodes: 600 },
            Topology::PowerLaw {
                base_nodes: 500,
                attach: 3,
            },
            Topology::GridShortcuts {
                base_side: 24,
                shortcut_fraction: 0.05,
            },
            Topology::Bipartite {
                base_hubs: 24,
                base_leaves: 400,
                attach: 3,
            },
        ];
        for topology in topologies {
            for scale in [0.05, 0.5] {
                let g = topology.build(scale, 7);
                g.validate().unwrap();
                assert!(
                    g.num_edges() >= 32,
                    "{topology:?} at scale {scale}: only {} edges",
                    g.num_edges()
                );
            }
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let topology = Topology::GridShortcuts {
            base_side: 20,
            shortcut_fraction: 0.1,
        };
        let a = topology.build(0.3, 11);
        let b = topology.build(0.3, 11);
        assert_eq!(a.edge_set(), b.edge_set());
        let c = topology.build(0.3, 12);
        assert_ne!(a.edge_set(), c.edge_set(), "seed must matter");
    }

    #[test]
    fn powerlaw_has_hubs_and_bipartite_has_shared_neighborhoods() {
        let pl = Topology::PowerLaw {
            base_nodes: 500,
            attach: 2,
        }
        .build(1.0, 3);
        assert!(pl.max_degree() as f64 > 4.0 * pl.avg_degree());
        let bp = Topology::Bipartite {
            base_hubs: 16,
            base_leaves: 300,
            attach: 3,
        }
        .build(1.0, 3);
        // The most popular hub should dominate (Zipf skew).
        assert!(bp.max_degree() > 50, "max degree {}", bp.max_degree());
    }
}
