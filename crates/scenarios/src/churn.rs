//! Churn programs: how a scenario's delta stream evolves the initial graph.
//!
//! A [`ChurnProgram`] is a pure function of `(batch index, ops budget, current
//! graph mirror, carried state, rng)` producing one [`GraphDelta`].  Programs
//! never see more than the current mirror — no materialized history — so a
//! scenario stream stays O(one batch) in memory no matter how long it runs.
//!
//! Every program is free to emit deltas that are *adversarial but well-formed*:
//! deletions of absent edges, duplicate operations, delete-and-re-insert of the
//! same edge inside one batch, and completely empty batches are all legal
//! (consumers apply deletions first, then insertions, each idempotently).

use rand::rngs::StdRng;
use rand::RngExt;
use slugger_graph::{DynamicGraph, GraphDelta, NodeId};

/// Mutable state a [`ChurnProgram`] carries across batches (edges it promised
/// to re-insert later, cross-community edges it will sever again, ...).
#[derive(Clone, Debug, Default)]
pub struct ChurnState {
    /// Hub spokes deleted by [`ChurnProgram::HubUpheaval`], awaiting rebirth.
    pending_rebirth: Vec<(NodeId, Vec<NodeId>)>,
    /// Edges deleted by [`ChurnProgram::DeleteHeavy`], awaiting recycling.
    recycled: Vec<(NodeId, NodeId)>,
    /// Cross-community edges inserted by the last merge step of
    /// [`ChurnProgram::CommunityCycle`], severed again by the next split step.
    cross_edges: Vec<(NodeId, NodeId)>,
}

/// The per-batch delta generator of a scenario.
#[derive(Clone, Copy, Debug)]
pub enum ChurnProgram {
    /// Drifting hot window: each batch touches a small id window that slides
    /// forward with ~50% overlap, mimicking temporal locality in real streams.
    TemporalLocality {
        /// Window width as a fraction of the node-id space.
        window_fraction: f64,
        /// Fraction of the ops budget spent on deletions (rest on insertions).
        delete_share: f64,
    },
    /// Hub death and rebirth: every `period` batches the current maximum-degree
    /// node loses *all* its edges at once; the following batch re-creates them.
    /// The single most adversarial input for partial dissolution and region
    /// pruning — an entire dense neighborhood vanishes in one delta.
    HubUpheaval {
        /// Batches between consecutive hub deaths.
        period: usize,
    },
    /// Community merge/split cycle: even steps pick two disjoint id blocks and
    /// stitch them together with cross edges; odd steps sever exactly those
    /// edges again.  Stresses supernode merge/dissolve decisions at community
    /// granularity.
    CommunityCycle {
        /// Block width as a fraction of the node-id space.
        block_fraction: f64,
    },
    /// Power-law batch sizes: most batches are tiny, a few are enormous
    /// (Pareto-distributed multiplier on the ops budget, capped at 40×).
    Burst {
        /// Pareto shape parameter (> 1; smaller means heavier bursts).
        alpha: f64,
        /// Fraction of each batch's ops spent on deletions.
        delete_share: f64,
    },
    /// Alternating demolition and reconstruction: `period` batches of almost
    /// pure deletion, then `period` batches re-inserting the demolished edges
    /// (plus fresh ones).  Drives the dead-slot ratio up and forces compaction.
    DeleteHeavy {
        /// Batches per demolition (and per reconstruction) phase.
        period: usize,
    },
    /// Adversarial no-op pressure: deltas dominated by deletions of absent
    /// edges, re-insertions of present edges, duplicate ops, delete+re-insert
    /// of one edge within a single batch, and periodic fully-empty batches —
    /// with only a trickle of real change.  Pins the idempotence contract.
    NoopStorm,
}

impl ChurnProgram {
    /// Produces the delta for batch `batch_index` given the current graph
    /// `mirror` (the state *before* this delta applies).  `base_ops` is the
    /// scenario's per-batch operation budget; programs may exceed it (bursts)
    /// or undercut it (empty batches).  Deterministic in all arguments plus
    /// the rng state.
    pub fn next_batch(
        &self,
        batch_index: usize,
        base_ops: usize,
        mirror: &DynamicGraph,
        state: &mut ChurnState,
        rng: &mut StdRng,
    ) -> GraphDelta {
        match *self {
            ChurnProgram::TemporalLocality {
                window_fraction,
                delete_share,
            } => temporal_locality(
                batch_index,
                base_ops,
                mirror,
                rng,
                window_fraction,
                delete_share,
            ),
            ChurnProgram::HubUpheaval { period } => {
                hub_upheaval(batch_index, base_ops, mirror, state, rng, period.max(2))
            }
            ChurnProgram::CommunityCycle { block_fraction } => {
                community_cycle(batch_index, base_ops, mirror, state, rng, block_fraction)
            }
            ChurnProgram::Burst {
                alpha,
                delete_share,
            } => burst(base_ops, mirror, rng, alpha, delete_share),
            ChurnProgram::DeleteHeavy { period } => {
                delete_heavy(batch_index, base_ops, mirror, state, rng, period.max(1))
            }
            ChurnProgram::NoopStorm => noop_storm(batch_index, base_ops, mirror, rng),
        }
    }
}

/// Samples an edge currently present in `mirror`, or `None` if (nearly) empty.
fn random_present_edge(mirror: &DynamicGraph, rng: &mut StdRng) -> Option<(NodeId, NodeId)> {
    let n = mirror.num_nodes();
    if n == 0 || mirror.num_edges() == 0 {
        return None;
    }
    for _ in 0..64 {
        let u = rng.random_range(0..n) as NodeId;
        let deg = mirror.degree(u);
        if deg == 0 {
            continue;
        }
        let v = mirror.neighbors(u)[rng.random_range(0..deg)];
        return Some((u, v));
    }
    None
}

/// Samples a node pair `(u, v)` with `u != v` that is *not* currently an edge.
fn random_absent_pair(mirror: &DynamicGraph, rng: &mut StdRng) -> Option<(NodeId, NodeId)> {
    let n = mirror.num_nodes();
    if n < 2 {
        return None;
    }
    for _ in 0..64 {
        let u = rng.random_range(0..n) as NodeId;
        let v = rng.random_range(0..n) as NodeId;
        if u != v && !mirror.has_edge(u, v) {
            return Some((u, v));
        }
    }
    None
}

fn temporal_locality(
    batch_index: usize,
    base_ops: usize,
    mirror: &DynamicGraph,
    rng: &mut StdRng,
    window_fraction: f64,
    delete_share: f64,
) -> GraphDelta {
    let n = mirror.num_nodes();
    let width = ((n as f64 * window_fraction.clamp(0.01, 1.0)) as usize).clamp(2, n);
    // Slide the window by half its width per batch so consecutive batches
    // overlap — the hallmark of temporal locality.
    let start = (batch_index * width / 2) % n.max(1);
    let in_window = |rng: &mut StdRng| ((start + rng.random_range(0..width)) % n) as NodeId;
    let deletes = ((base_ops as f64) * delete_share.clamp(0.0, 1.0)) as usize;
    let mut delta = GraphDelta::new();
    for _ in 0..deletes {
        // Delete an edge incident to the window when one exists.
        let u = in_window(rng);
        let deg = mirror.degree(u);
        if deg > 0 {
            let v = mirror.neighbors(u)[rng.random_range(0..deg)];
            delta.deletions.push((u, v));
        } else if let Some(e) = random_present_edge(mirror, rng) {
            delta.deletions.push(e);
        }
    }
    for _ in 0..base_ops.saturating_sub(deletes) {
        let u = in_window(rng);
        let v = in_window(rng);
        if u != v {
            delta.insertions.push((u, v));
        }
    }
    delta
}

fn hub_upheaval(
    batch_index: usize,
    base_ops: usize,
    mirror: &DynamicGraph,
    state: &mut ChurnState,
    rng: &mut StdRng,
    period: usize,
) -> GraphDelta {
    let mut delta = GraphDelta::new();
    // Rebirth first: re-insert every spoke of hubs killed last batch.
    for (hub, spokes) in state.pending_rebirth.drain(..) {
        delta.insertions.extend(spokes.iter().map(|&v| (hub, v)));
    }
    if batch_index.is_multiple_of(period) && mirror.num_edges() > 0 {
        // Deterministically pick the max-degree node (lowest id wins ties) and
        // delete its entire neighborhood in one stroke.
        let hub = (0..mirror.num_nodes() as NodeId)
            .max_by_key(|&u| (mirror.degree(u), std::cmp::Reverse(u)))
            .expect("non-empty graph");
        let spokes = mirror.neighbors(hub).to_vec();
        delta.deletions.extend(spokes.iter().map(|&v| (hub, v)));
        state.pending_rebirth.push((hub, spokes));
    } else {
        // Background drift between upheavals keeps the stream alive.
        for _ in 0..base_ops / 2 {
            if let Some(e) = random_present_edge(mirror, rng) {
                delta.deletions.push(e);
            }
            if let Some(e) = random_absent_pair(mirror, rng) {
                delta.insertions.push(e);
            }
        }
    }
    delta
}

fn community_cycle(
    batch_index: usize,
    base_ops: usize,
    mirror: &DynamicGraph,
    state: &mut ChurnState,
    rng: &mut StdRng,
    block_fraction: f64,
) -> GraphDelta {
    let n = mirror.num_nodes();
    let width = ((n as f64 * block_fraction.clamp(0.01, 0.4)) as usize).clamp(2, n / 2);
    let mut delta = GraphDelta::new();
    if batch_index.is_multiple_of(2) {
        // Merge: stitch two disjoint id blocks together with cross edges and
        // remember them so the next batch can sever exactly these.
        let a_start = rng.random_range(0..n.saturating_sub(2 * width).max(1));
        let b_start = a_start + width + rng.random_range(0..(n - a_start - 2 * width).max(1));
        state.cross_edges.clear();
        for _ in 0..base_ops {
            let u = (a_start + rng.random_range(0..width)) as NodeId;
            let v = (b_start + rng.random_range(0..width)) as NodeId;
            if u != v {
                delta.insertions.push((u, v));
                state.cross_edges.push((u, v));
            }
        }
    } else {
        // Split: sever the remembered cross edges (duplicates included — the
        // consumer treats repeat deletions as no-ops).
        delta.deletions.append(&mut state.cross_edges);
        // A little background insertion keeps non-merge structure evolving.
        for _ in 0..base_ops / 4 {
            if let Some(e) = random_absent_pair(mirror, rng) {
                delta.insertions.push(e);
            }
        }
    }
    delta
}

fn burst(
    base_ops: usize,
    mirror: &DynamicGraph,
    rng: &mut StdRng,
    alpha: f64,
    delete_share: f64,
) -> GraphDelta {
    // Pareto-distributed batch-size multiplier: u^(-1/(alpha-1)), capped.
    let u: f64 = rng.random::<f64>().max(1e-9);
    let multiplier = u.powf(-1.0 / (alpha - 1.0).max(0.1)).min(40.0);
    let ops = ((base_ops as f64) * multiplier) as usize;
    let deletes = ((ops as f64) * delete_share.clamp(0.0, 1.0)) as usize;
    let mut delta = GraphDelta::new();
    for _ in 0..deletes {
        if let Some(e) = random_present_edge(mirror, rng) {
            delta.deletions.push(e);
        }
    }
    for _ in 0..ops.saturating_sub(deletes) {
        if let Some(e) = random_absent_pair(mirror, rng) {
            delta.insertions.push(e);
        }
    }
    delta
}

fn delete_heavy(
    batch_index: usize,
    base_ops: usize,
    mirror: &DynamicGraph,
    state: &mut ChurnState,
    rng: &mut StdRng,
    period: usize,
) -> GraphDelta {
    let demolishing = (batch_index / period).is_multiple_of(2);
    let mut delta = GraphDelta::new();
    if demolishing {
        // Demolition: overwhelmingly deletions, stashed for later recycling.
        for _ in 0..base_ops {
            if let Some(e) = random_present_edge(mirror, rng) {
                delta.deletions.push(e);
                state.recycled.push(e);
            }
        }
        for _ in 0..base_ops / 8 {
            if let Some(e) = random_absent_pair(mirror, rng) {
                delta.insertions.push(e);
            }
        }
    } else {
        // Reconstruction: drain the recycled edges back in, plus fresh ones.
        let take = state.recycled.len().div_ceil(period);
        let tail = state
            .recycled
            .split_off(state.recycled.len() - take.min(state.recycled.len()));
        delta.insertions.extend(tail);
        for _ in 0..base_ops / 4 {
            if let Some(e) = random_absent_pair(mirror, rng) {
                delta.insertions.push(e);
            }
        }
    }
    delta
}

fn noop_storm(
    batch_index: usize,
    base_ops: usize,
    mirror: &DynamicGraph,
    rng: &mut StdRng,
) -> GraphDelta {
    // Every fourth batch is completely empty.
    if batch_index % 4 == 3 {
        return GraphDelta::new();
    }
    let mut delta = GraphDelta::new();
    for _ in 0..base_ops {
        match rng.random_range(0..5u32) {
            // Deletion of an absent pair: must be an exact no-op.
            0 => {
                if let Some(e) = random_absent_pair(mirror, rng) {
                    delta.deletions.push(e);
                }
            }
            // Insertion of an already-present edge: must be an exact no-op.
            1 => {
                if let Some(e) = random_present_edge(mirror, rng) {
                    delta.insertions.push(e);
                }
            }
            // Delete-and-re-insert the same edge within one batch: net no-op
            // (deletions apply first), duplicated for good measure.
            2 => {
                if let Some(e) = random_present_edge(mirror, rng) {
                    delta.deletions.push(e);
                    delta.deletions.push(e);
                    delta.insertions.push(e);
                    delta.insertions.push(e);
                }
            }
            // A trickle of real insertions so the stream is not pure noise.
            3 => {
                if let Some(e) = random_absent_pair(mirror, rng) {
                    delta.insertions.push(e);
                }
            }
            // A trickle of real deletions.
            _ => {
                if let Some(e) = random_present_edge(mirror, rng) {
                    delta.deletions.push(e);
                }
            }
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ring(n: usize) -> DynamicGraph {
        let mut g = DynamicGraph::new(n);
        for u in 0..n {
            g.insert_edge(u as NodeId, ((u + 1) % n) as NodeId);
        }
        g
    }

    fn drive(program: ChurnProgram, batches: usize, seed: u64) -> Vec<GraphDelta> {
        let mut mirror = ring(200);
        let mut state = ChurnState::default();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..batches)
            .map(|b| {
                let delta = program.next_batch(b, 24, &mirror, &mut state, &mut rng);
                delta.apply_to(&mut mirror);
                delta
            })
            .collect()
    }

    #[test]
    fn all_programs_are_deterministic_and_in_bounds() {
        let programs = [
            ChurnProgram::TemporalLocality {
                window_fraction: 0.1,
                delete_share: 0.3,
            },
            ChurnProgram::HubUpheaval { period: 3 },
            ChurnProgram::CommunityCycle {
                block_fraction: 0.1,
            },
            ChurnProgram::Burst {
                alpha: 2.0,
                delete_share: 0.3,
            },
            ChurnProgram::DeleteHeavy { period: 2 },
            ChurnProgram::NoopStorm,
        ];
        for program in programs {
            let a = drive(program, 8, 42);
            let b = drive(program, 8, 42);
            assert_eq!(a, b, "{program:?} must be deterministic");
            for delta in a.iter() {
                for &(u, v) in delta.deletions.iter().chain(delta.insertions.iter()) {
                    assert!((u as usize) < 200 && (v as usize) < 200, "{program:?}");
                }
            }
            assert!(
                a.iter().any(|d| !d.is_empty()),
                "{program:?} generated only empty batches"
            );
        }
    }

    #[test]
    fn hub_upheaval_kills_and_resurrects_the_hub() {
        // Build a star so node 0 is unambiguously the hub.
        let mut mirror = DynamicGraph::new(50);
        for v in 1..50 {
            mirror.insert_edge(0, v as NodeId);
        }
        let before = mirror.to_graph().edge_set();
        let program = ChurnProgram::HubUpheaval { period: 2 };
        let mut state = ChurnState::default();
        let mut rng = StdRng::seed_from_u64(1);
        let kill = program.next_batch(0, 0, &mirror, &mut state, &mut rng);
        assert_eq!(kill.deletions.len(), 49, "hub loses everything at once");
        kill.apply_to(&mut mirror);
        assert_eq!(mirror.degree(0), 0);
        let rebirth = program.next_batch(1, 0, &mirror, &mut state, &mut rng);
        rebirth.apply_to(&mut mirror);
        assert_eq!(mirror.to_graph().edge_set(), before, "hub fully restored");
    }

    #[test]
    fn community_cycle_split_undoes_merge() {
        let mut mirror = ring(300);
        let before = mirror.to_graph().edge_set();
        let program = ChurnProgram::CommunityCycle {
            block_fraction: 0.08,
        };
        let mut state = ChurnState::default();
        let mut rng = StdRng::seed_from_u64(9);
        let merge = program.next_batch(0, 0, &mirror, &mut state, &mut rng);
        merge.apply_to(&mut mirror);
        let split = program.next_batch(1, 0, &mirror, &mut state, &mut rng);
        split.apply_to(&mut mirror);
        assert_eq!(
            mirror.to_graph().edge_set(),
            before,
            "split must sever exactly the merge's cross edges"
        );
    }

    #[test]
    fn noop_storm_emits_empty_batches_and_mostly_noops() {
        let deltas = drive(ChurnProgram::NoopStorm, 8, 5);
        assert!(deltas[3].is_empty() && deltas[7].is_empty());
        assert!(deltas.iter().any(|d| !d.deletions.is_empty()));
    }

    #[test]
    fn delete_heavy_alternates_phases() {
        let deltas = drive(ChurnProgram::DeleteHeavy { period: 2 }, 8, 3);
        let demolition_deletes: usize = deltas[..2].iter().map(|d| d.deletions.len()).sum();
        let rebuild_inserts: usize = deltas[2..4].iter().map(|d| d.insertions.len()).sum();
        assert!(demolition_deletes > 20, "{demolition_deletes}");
        assert!(rebuild_inserts > 10, "{rebuild_inserts}");
    }
}
