//! Criterion micro-benchmarks for the hot paths of the reproduction:
//!
//! * neighbor retrieval from a summary by partial decompression (Sect. VIII-B),
//! * min-hash candidate generation (Sect. III-B2),
//! * the local re-encoding solver with and without memoization (Sect. III-B3),
//! * optimal flat encoding of a fixed grouping (the baselines' final phase),
//! * one full SLUGGER run on a small structured graph.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use slugger_baselines::{FlatSummary, Grouping};
use slugger_bench::ExperimentScale;
use slugger_core::candidates::{candidate_sets, CandidateConfig};
use slugger_core::decode::neighbors_of;
use slugger_core::encoder::{pair_index, Case1Problem, Case1Shape, EncoderMemo};
use slugger_core::engine::MergeEngine;
use slugger_core::model::HierarchicalSummary;
use slugger_core::MergeCtx;
use slugger_core::{Slugger, SluggerConfig};
use slugger_datasets::{dataset, DatasetKey};
use slugger_graph::NodeId;
use std::hint::black_box;

/// Shared small benchmark input: the PR stand-in at a reduced scale.
fn bench_graph() -> slugger_graph::Graph {
    dataset(DatasetKey::PR).generate(0.4)
}

fn bench_neighbor_query(c: &mut Criterion) {
    let graph = bench_graph();
    let outcome = Slugger::new(SluggerConfig {
        iterations: 10,
        ..SluggerConfig::default()
    })
    .summarize(&graph);
    let summary = outcome.summary;
    let nodes: Vec<NodeId> = (0..graph.num_nodes() as NodeId).step_by(7).collect();
    c.bench_function("neighbor_query_partial_decompression", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &v in &nodes {
                total += neighbors_of(black_box(&summary), v).len();
            }
            black_box(total)
        })
    });
    c.bench_function("neighbor_query_raw_graph", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &v in &nodes {
                total += black_box(&graph).neighbors(v).len();
            }
            black_box(total)
        })
    });
}

fn bench_candidate_generation(c: &mut Criterion) {
    let graph = bench_graph();
    let summary = HierarchicalSummary::identity(graph.num_nodes());
    let roots: Vec<_> = summary.roots().collect();
    c.bench_function("candidate_generation_minhash", |b| {
        b.iter(|| {
            let sets = candidate_sets(
                black_box(&summary),
                black_box(&graph),
                &roots,
                42,
                &CandidateConfig::default(),
            );
            black_box(sets.len())
        })
    });
    // The naive per-call-rehash oracle, kept measurable so the lazy-hash win (and
    // any regression of it) shows up next to the optimized number above.
    c.bench_function("candidate_generation_minhash_reference", |b| {
        b.iter(|| {
            let sets = slugger_core::candidates::reference::candidate_sets(
                black_box(&summary),
                black_box(&graph),
                &roots,
                42,
                &CandidateConfig::default(),
            );
            black_box(sets.len())
        })
    });
}

fn bench_merge_evaluation(c: &mut Criterion) {
    // Saving(A, B, G) with a reused MergeCtx: the allocation-free inner loop of the
    // merge stage (panel problems built on inline buffers + scratch).
    let graph = bench_graph();
    let engine = MergeEngine::new(&graph);
    let roots: Vec<u32> = engine.roots();
    let pairs: Vec<(u32, u32)> = roots
        .windows(2)
        .step_by(17)
        .map(|w| (w[0], w[1]))
        .take(64)
        .collect();
    let mut ctx = MergeCtx::new();
    c.bench_function("merge_evaluation_reused_ctx", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &(a, b) in &pairs {
                acc += engine
                    .evaluate_merge(black_box(a), black_box(b), &mut ctx)
                    .cost_after;
            }
            black_box(acc)
        })
    });
}

fn bench_encoder(c: &mut Criterion) {
    // A representative Case-1 problem: fully internal panel, dense-minus-one-pair.
    let shape = Case1Shape {
        a_internal: true,
        b_internal: true,
    };
    let mut required = [0i8; 10];
    let mut constrained = 0u16;
    for i in 0..4 {
        for j in i..4 {
            let idx = pair_index(i, j, 4);
            constrained |= 1 << idx;
            required[idx] = if (i, j) == (0, 2) { 0 } else { 1 };
        }
    }
    let problem = Case1Problem {
        shape,
        required,
        constrained,
    };
    c.bench_function("encoder_case1_without_memo", |b| {
        b.iter_batched(
            EncoderMemo::disabled,
            |mut memo| black_box(memo.case1(&problem).cost),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("encoder_case1_with_memo", |b| {
        let mut memo = EncoderMemo::new();
        let _ = memo.case1(&problem); // warm the cache
        b.iter(|| black_box(memo.case1(&problem).cost))
    });
}

fn bench_flat_encoding(c: &mut Criterion) {
    let graph = bench_graph();
    // Group nodes into blocks of 8 (a crude but non-trivial grouping).
    let assignment: Vec<u32> = (0..graph.num_nodes() as u32).map(|u| u / 8 * 8).collect();
    c.bench_function("flat_optimal_encoding", |b| {
        b.iter(|| {
            let summary = FlatSummary::build(
                black_box(&graph),
                Grouping::from_assignment(assignment.clone()),
            );
            black_box(summary.total_cost())
        })
    });
}

fn bench_slugger_end_to_end(c: &mut Criterion) {
    let graph = dataset(DatasetKey::PR).generate(0.2);
    let mut group = c.benchmark_group("slugger_end_to_end");
    group.sample_size(10);
    group.bench_function("pr_scale_0.2_t5", |b| {
        b.iter(|| {
            let outcome = Slugger::new(SluggerConfig {
                iterations: 5,
                ..SluggerConfig::default()
            })
            .summarize(black_box(&graph));
            black_box(outcome.metrics.cost)
        })
    });
    group.finish();
    // Keep the runner's arg parser exercised so the bench target compiles it.
    let _ = ExperimentScale::default();
}

criterion_group!(
    benches,
    bench_neighbor_query,
    bench_candidate_generation,
    bench_merge_evaluation,
    bench_encoder,
    bench_flat_encoding,
    bench_slugger_end_to_end
);
criterion_main!(benches);
