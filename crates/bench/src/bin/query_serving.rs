//! Harness binary for the summary-native query-serving experiment: N query
//! workers answer neighbor/degree/BFS/PageRank queries against epoch snapshots
//! while the churn loop re-summarizes the RMAT delta stream, reporting
//! p50/p99/max latency per query class and the batch-loop overhead versus a
//! no-readers baseline.  Identity is asserted after every batch, so it doubles
//! as the CI query-serving smoke test; `--history BENCH_queries.json` feeds
//! the same-config perf gate.
//!
//! ```text
//! cargo run --release --bin query_serving [--scale 1.0] [--iterations 5]
//!     [--seed 0] [--workers 4] [--scenario powerlaw-hub-death]
//!     [--json queries.json] [--history BENCH_queries.json]
//! ```

use slugger_bench::experiments::query_serving::{self, QueryServingOptions};
use slugger_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_env();
    let options = QueryServingOptions::from_env();
    print!("{}", query_serving::run_with(&scale, &options));
}
