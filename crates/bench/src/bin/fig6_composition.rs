//! Harness binary for fig6.  Flags: `--scale`, `--iterations`, `--seed`, `--datasets`, `--quick`.
fn main() {
    let scale = slugger_bench::ExperimentScale::from_env();
    print!("{}", slugger_bench::experiments::fig6::run(&scale));
}
