//! Harness binary for the candidate-stage experiment (per-stage wall time plus the
//! lazy-hash candidate-generation speedup).
//!
//! ```text
//! cargo run --release --bin candidate_stage [--scale 1.0] [--iterations 10] [--seed 0] [--threads N]
//!     [--json candidates.json] [--history BENCH_candidates.json]
//! ```

use slugger_bench::experiments::candidate_stage::{self, CandidateStageOptions};
use slugger_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_env();
    let options = CandidateStageOptions::from_env();
    print!("{}", candidate_stage::run_with(&scale, &options));
}
