//! Harness binary for the thread-scaling experiment (sharded merge pipeline).
//!
//! ```text
//! cargo run --release --bin thread_scaling [--scale 1.0] [--iterations 10] [--seed 0]
//! ```

use slugger_bench::experiments::thread_scaling;
use slugger_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_env();
    print!("{}", thread_scaling::run(&scale));
}
