//! Harness binary for table4.  Flags: `--scale`, `--iterations`, `--seed`, `--datasets`, `--quick`.
fn main() {
    let scale = slugger_bench::ExperimentScale::from_env();
    print!("{}", slugger_bench::experiments::table4::run(&scale));
}
