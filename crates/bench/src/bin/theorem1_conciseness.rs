//! Harness binary for theorem1.  Flags: `--scale`, `--iterations`, `--seed`, `--datasets`, `--quick`.
fn main() {
    let scale = slugger_bench::ExperimentScale::from_env();
    print!("{}", slugger_bench::experiments::theorem1::run(&scale));
}
