//! Harness binary for Fig. 5(b): running times and speed-ups on every dataset stand-in.
//! Flags: `--scale`, `--iterations`, `--seed`, `--datasets`, `--quick`.
use slugger_bench::experiments::fig5;

fn main() {
    let scale = slugger_bench::ExperimentScale::from_env();
    let sweeps = fig5::sweep(&scale);
    print!("{}", fig5::report_runtime(&sweeps));
}
