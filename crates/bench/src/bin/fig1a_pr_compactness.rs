//! Harness binary for fig1a.  Flags: `--scale`, `--iterations`, `--seed`, `--datasets`, `--quick`.
fn main() {
    let scale = slugger_bench::ExperimentScale::from_env();
    print!("{}", slugger_bench::experiments::fig1a::run(&scale));
}
