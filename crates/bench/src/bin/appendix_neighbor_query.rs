//! Harness binary for neighbor_query.  Flags: `--scale`, `--iterations`, `--seed`, `--datasets`, `--quick`.
fn main() {
    let scale = slugger_bench::ExperimentScale::from_env();
    print!(
        "{}",
        slugger_bench::experiments::neighbor_query::run(&scale)
    );
}
