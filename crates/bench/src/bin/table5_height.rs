//! Harness binary for table5.  Flags: `--scale`, `--iterations`, `--seed`, `--datasets`, `--quick`.
fn main() {
    let scale = slugger_bench::ExperimentScale::from_env();
    print!("{}", slugger_bench::experiments::table5::run(&scale));
}
