//! Harness binary for ablation_candidate_size.  Flags: `--scale`, `--iterations`, `--seed`, `--datasets`, `--quick`.
fn main() {
    let scale = slugger_bench::ExperimentScale::from_env();
    print!(
        "{}",
        slugger_bench::experiments::ablation_candidate_size::run(&scale)
    );
}
