//! Harness binary for fig1b.  Flags: `--scale`, `--iterations`, `--seed`, `--datasets`, `--quick`.
fn main() {
    let scale = slugger_bench::ExperimentScale::from_env();
    print!("{}", slugger_bench::experiments::fig1b::run(&scale));
}
