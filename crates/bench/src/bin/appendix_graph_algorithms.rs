//! Harness binary for graph_algorithms.  Flags: `--scale`, `--iterations`, `--seed`, `--datasets`, `--quick`.
fn main() {
    let scale = slugger_bench::ExperimentScale::from_env();
    print!(
        "{}",
        slugger_bench::experiments::graph_algorithms::run(&scale)
    );
}
