//! Harness binary for the streaming re-summarization experiment (incremental vs
//! full rebuild vs MoSSo on fully dynamic edge streams).  Asserts decode-identity
//! of the incrementally maintained summary after every delta batch, so it doubles
//! as the CI streaming smoke test.
//!
//! ```text
//! cargo run --release --bin streaming [--scale 1.0] [--iterations 5] [--seed 0]
//! ```

use slugger_bench::experiments::streaming;
use slugger_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_env();
    print!("{}", streaming::run(&scale));
}
