//! Harness binary for the streaming re-summarization experiment (incremental vs
//! full rebuild vs MoSSo on fully dynamic edge streams).  Asserts decode-identity
//! of the incrementally maintained summary after every delta batch, so it doubles
//! as the CI streaming smoke test; CI additionally forces a low `--compact-ratio`
//! to smoke the arena-compaction path and uploads the `--json` report so the
//! bench trajectory is tracked across PRs.
//!
//! ```text
//! cargo run --release --bin streaming [--scale 1.0] [--iterations 5] [--seed 0]
//!     [--prune-rounds 2] [--compact-ratio 0.5] [--scenario powerlaw-hub-death]
//!     [--json streaming.json]
//! ```

use slugger_bench::experiments::streaming::{self, StreamingOptions};
use slugger_bench::ExperimentScale;

fn main() {
    let scale = ExperimentScale::from_env();
    let options = StreamingOptions::from_env();
    print!("{}", streaming::run_with(&scale, &options));
}
