//! Runs the complete experiment suite (every table and figure of the paper) and prints
//! one EXPERIMENTS.md-ready report.  Pass `--output <path>` to also write it to a file;
//! the usual `--scale/--iterations/--seed/--datasets/--quick` flags apply.
use slugger_bench::experiments;
use slugger_bench::ExperimentScale;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = ExperimentScale::from_args(args.clone());
    let output = args
        .iter()
        .position(|a| a == "--output")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let mut report = String::new();
    report.push_str("# SLUGGER reproduction — full experiment run\n");
    report.push_str(&format!(
        "\nScale {} | T = {} | seed {} | quick = {}\n",
        scale.scale, scale.iterations, scale.seed, scale.quick
    ));
    eprintln!("[1/15] Fig. 1(a)");
    report.push_str(&experiments::fig1a::run(&scale));
    eprintln!("[2/15] Fig. 1(b)");
    report.push_str(&experiments::fig1b::run(&scale));
    eprintln!("[3/15] Fig. 5(a)+(b)");
    report.push_str(&experiments::fig5::run(&scale));
    eprintln!("[4/15] Table III");
    report.push_str(&experiments::table3::run(&scale));
    eprintln!("[5/15] Table IV");
    report.push_str(&experiments::table4::run(&scale));
    eprintln!("[6/15] Table V");
    report.push_str(&experiments::table5::run(&scale));
    eprintln!("[7/15] Fig. 6");
    report.push_str(&experiments::fig6::run(&scale));
    eprintln!("[8/15] Neighbor query (Sect. VIII-B)");
    report.push_str(&experiments::neighbor_query::run(&scale));
    eprintln!("[9/15] Graph algorithms (Sect. VIII-C)");
    report.push_str(&experiments::graph_algorithms::run(&scale));
    eprintln!("[10/15] Theorem 1");
    report.push_str(&experiments::theorem1::run(&scale));
    eprintln!("[11/15] Ablations");
    report.push_str(&experiments::ablation_candidate_size::run(&scale));
    eprintln!("[12/15] Thread scaling");
    report.push_str(&experiments::thread_scaling::run(&scale));
    eprintln!("[13/15] Candidate stage");
    report.push_str(&experiments::candidate_stage::run(&scale));
    eprintln!("[14/15] Streaming (incremental vs rebuild vs MoSSo)");
    report.push_str(&experiments::streaming::run(&scale));
    eprintln!("[15/15] Query serving (epoch snapshots under churn)");
    report.push_str(&experiments::query_serving::run(&scale));

    print!("{report}");
    if let Some(path) = output {
        let mut file = std::fs::File::create(&path).expect("create output file");
        file.write_all(report.as_bytes()).expect("write report");
        eprintln!("report written to {path}");
    }
}
