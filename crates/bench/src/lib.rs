//! # slugger-bench
//!
//! Experiment harness of the SLUGGER reproduction.  One binary per table/figure of the
//! paper's evaluation (see DESIGN.md §4 for the index) plus Criterion micro-benchmarks.
//!
//! * [`runner`] — dataset selection at a chosen scale, running SLUGGER and the four
//!   baselines with the paper's parameters, and the shared `--scale/--iterations/...`
//!   command-line flags.
//! * [`table`] — plain-text / markdown table rendering for the reports.
//! * [`history`] — the append-per-run JSON-Lines perf history (`BENCH_*.json` at the
//!   repo root) the `streaming` and `candidate_stage` binaries write via `--history`.
//! * [`perf_gate`] — the CI regression gate over the streaming history: the smoke run
//!   fails when `incr_total_secs` regresses >20% vs the last same-config record.
//! * [`experiments`] — one module per table/figure; each returns a report string that
//!   the corresponding binary prints and `run_all_experiments` aggregates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod history;
pub mod perf_gate;
pub mod runner;
pub mod table;

pub use runner::{run_algorithm, run_all_algorithms, AlgoResult, Algorithm, ExperimentScale};
pub use table::TableWriter;
